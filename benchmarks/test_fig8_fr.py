"""Fig. 8: execution time per query on the Friendster analog.

Paper shape: GCSM beats ZC on every query (1.4-2.9x there); Naive ≈ ZC;
the CPU baseline is slower than ZC; GCSM cuts CPU-memory access 1.3-6.7x.
"""

from conftest import run_once

from repro.bench import figures
from repro.query import QUERY_ORDER
from repro.utils import geometric_mean


def test_fig8_fr_exec_time(benchmark, record_table):
    with record_table("fig8_fr"):
        out = run_once(benchmark, figures.fig8_to_10_exec_time, "FR")

    assert set(out) == set(QUERY_ORDER)
    zc_speedups = []
    cpu_speedups = []
    naive_ratio = []
    access_reduction = []
    for qname, res in out.items():
        total = {s: r.breakdown.total_ns for s, r in res.items()}
        # all systems agree on the incremental result
        deltas = {r.delta_total for r in res.values()}
        assert len(deltas) == 1, f"systems disagree on ΔM for {qname}"
        zc_speedups.append(total["ZC"] / total["GCSM"])
        cpu_speedups.append(total["CPU"] / total["GCSM"])
        naive_ratio.append(total["Naive"] / total["ZC"])
        access_reduction.append(
            res["ZC"].cpu_access_bytes / max(1, res["GCSM"].cpu_access_bytes)
        )

    # GCSM beats ZC on every query; average speedup in the paper's band
    assert all(s > 1.0 for s in zc_speedups), zc_speedups
    assert 1.2 <= geometric_mean(zc_speedups) <= 3.5
    # GCSM beats the CPU baseline on every query (paper: 1.4-11.4x)
    assert all(s > 1.3 for s in cpu_speedups), cpu_speedups
    # Naive (degree cache) is approximately ZC, not approximately GCSM
    assert 0.6 <= geometric_mean(naive_ratio) <= 1.6, naive_ratio
    # CPU-access reduction in the paper's 1.3-6.7x band
    assert all(r > 1.15 for r in access_reduction), access_reduction
