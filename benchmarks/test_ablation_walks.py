"""Ablation: estimator sampling budget and continuation schedule
(DESIGN.md §6, items 2 and 4; paper Eq. 5 trade-off).

More walks buy better cache coverage at higher FE cost; the survival
continuation schedule reaches deep levels that the paper's 1/D schedule
starves at scaled-down max degrees.
"""

from conftest import run_once

from repro.bench.harness import build_workload, print_table
from repro.core.engine import GCSMEngine
from repro.query import query_by_name


def sweep_walks(dataset="FR", qname="Q1", batch=256):
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    results = {}
    rows = []
    for walks in (64, 256, 1024, 4096):
        engine = GCSMEngine(g0, query_by_name(qname), num_walks=walks, seed=0)
        r = engine.process_batch(batches[0])
        results[walks] = r
        rows.append([
            walks, r.coverage(0.01), r.coverage(0.05),
            100 * r.breakdown.fe_fraction,
            r.cache_hits / max(1, r.cache_hits + r.cache_misses),
        ])
    print_table(
        f"Ablation: number of walks M ({dataset}, {qname})",
        ["M", "coverage top-1%", "coverage top-5%", "FE %", "hit rate"], rows,
    )
    return results


def compare_schedules(dataset="FR", qname="Q6", batch=256, walks=1024):
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    results = {}
    rows = []
    for label, survival in (("paper 1/D", None), ("survival c=0.5", 0.5),
                            ("survival c=1.0", 1.0), ("survival c=2.0", 2.0)):
        engine = GCSMEngine(g0, query_by_name(qname), num_walks=walks,
                            survival=survival, seed=0)
        r = engine.process_batch(batches[0])
        results[label] = r
        rows.append([
            label, r.coverage(0.01), r.estimation.nodes_visited,
            100 * r.breakdown.fe_fraction,
        ])
    print_table(
        f"Ablation: walk continuation schedule ({dataset}, {qname}, M={walks})",
        ["schedule", "coverage top-1%", "nodes visited", "FE %"], rows,
    )
    return results


def test_ablation_num_walks(benchmark, record_table):
    with record_table("ablation_walks"):
        results = run_once(benchmark, sweep_walks)

    walks = sorted(results)
    cov = [results[w].coverage(0.01) for w in walks]
    fe = [results[w].breakdown.estimate_ns for w in walks]
    # coverage does not degrade with more walks; FE cost grows
    assert cov[-1] >= cov[0]
    assert fe[-1] > fe[0]
    # the largest budget achieves solid coverage of the hot set
    assert cov[-1] > 0.7


def test_ablation_walk_schedule(benchmark, record_table):
    with record_table("ablation_schedule"):
        results = run_once(benchmark, compare_schedules)

    paper = results["paper 1/D"]
    boosted = results["survival c=1.0"]
    # the survival schedule visits deeper tree nodes and covers the hot set
    # at least as well as the paper schedule at scaled-down D
    assert boosted.coverage(0.01) >= paper.coverage(0.01) - 0.05
    assert boosted.estimation.nodes_visited > 0
    # all schedules produce the identical match result
    assert len({r.delta_count for r in results.values()}) == 1
