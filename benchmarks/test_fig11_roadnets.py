"""Fig. 11: size-3/4/5 motif counting on the road-network analogs.

Paper shape: GCSM still wins on low-degree graphs (1.6-2.0x vs ZC,
1.6-2.1x vs Naive) because locality comes from the small update batches,
not only from degree skew — and the degree policy is useless when degrees
are nearly uniform.
"""

from conftest import run_once

from repro.bench import figures
from repro.utils import geometric_mean


def test_fig11_roadnet_motifs(benchmark, record_table):
    with record_table("fig11_roadnets"):
        out = run_once(benchmark, figures.fig11_roadnet_motifs)

    assert set(out) == {(g, s) for g in ("PA", "CA") for s in (3, 4, 5)}
    zc_speedups = []
    naive_speedups = []
    for (graph, size), totals in out.items():
        zc_speedups.append(totals["ZC"] / totals["GCSM"])
        naive_speedups.append(totals["Naive"] / totals["GCSM"])

    # GCSM wins against both on the road networks
    assert all(s > 1.0 for s in zc_speedups), zc_speedups
    assert geometric_mean(zc_speedups) > 1.15
    # degree-based caching is no better than GCSM anywhere here
    assert all(s > 0.95 for s in naive_speedups), naive_speedups
    assert geometric_mean(naive_speedups) > 1.05
