"""Service-layer benchmark: pipeline overlap wins and bounded-p99 overload.

Two claims, both asserted and persisted to ``results/BENCH_service.json``:

1. **Pipeline overlap**: on a matching-dominated workload (FR, Q1, large
   batches) the pipelined engine sustains >= 1.3x the serial engine's
   edge-update throughput — host prep (update/FE/pack) and reorganize hide
   under the kernel, so the device lane, not the stage sum, sets the pace.
   Results stay bit-identical (same ΔM, same counters); only the clock moves.
2. **Admission control**: under a 3-tenant overload burst, shed-oldest with
   a tight queue bounds p99 latency (each served batch waited behind at most
   ``capacity`` others), where an over-provisioned queue lets p99 grow with
   the backlog.  The price is an explicit, measured shed rate.
"""

import json
import time

from conftest import RESULTS_DIR, run_once

from repro.bench.harness import print_table, run_service, run_stream
from repro.query import query_by_name

DATASET = "FR"
QUERY = "Q1"
BATCH = 256
NUM_BATCHES = 3

OVERLOAD = dict(
    num_batches=6, batch_size=8, rate_per_sec=1e9, threaded=False,
    num_devices=1, admission="shed-oldest", seed=3,
    workload_kwargs={"graph_size": 24, "avg_degree": 5.0},
)


def pipeline_vs_serial():
    query = query_by_name(QUERY)
    wall0 = time.perf_counter()
    serial = run_stream("GCSM", DATASET, query,
                        batch_size=BATCH, num_batches=NUM_BATCHES, seed=0)
    wall_serial = time.perf_counter() - wall0
    wall0 = time.perf_counter()
    piped = run_stream("Pipelined", DATASET, query,
                       batch_size=BATCH, num_batches=NUM_BATCHES, seed=0)
    wall_piped = time.perf_counter() - wall0

    serial_ns = serial.breakdown.total_ns       # mean per batch
    piped_ns = piped.breakdown.critical_path_ns  # mean makespan contribution
    speedup = serial_ns / piped_ns
    rows = [
        ["serial GCSM", f"{serial_ns / 1e6:.3f}", "-",
         f"{BATCH / (serial_ns / 1e9):,.0f}", f"{wall_serial:.2f}"],
        ["Pipelined", f"{piped.breakdown.total_ns / 1e6:.3f}",
         f"{piped_ns / 1e6:.3f}",
         f"{BATCH / (piped_ns / 1e9):,.0f}", f"{wall_piped:.2f}"],
    ]
    print_table(
        f"pipelined vs serial ({DATASET}, {QUERY}, |ΔE|={BATCH}, "
        f"{NUM_BATCHES} batches; speedup {speedup:.2f}x)",
        ["engine", "stage sum ms/batch", "schedule ms/batch",
         "sustained edges/s", "wall s"],
        rows,
    )
    return {
        "serial": serial, "piped": piped, "speedup": speedup,
        "wall_serial_s": wall_serial, "wall_piped_s": wall_piped,
    }


def overload_p99():
    bounded = run_service(3, queue_capacity=2, **OVERLOAD)
    relaxed = run_service(3, queue_capacity=64, **OVERLOAD)
    rows = []
    for label, rep in (("capacity=2 (shed)", bounded), ("capacity=64", relaxed)):
        p99 = max(t["latency"]["p99_ns"] for t in rep.tenants)
        rows.append([
            label, rep.completed, f"{rep.max_shed_rate:.2f}",
            f"{p99 / 1e6:.3f}", f"{rep.sustained_edges_per_sec:,.0f}",
        ])
    print_table(
        "overload: admission control bounds tail latency (3 tenants, burst)",
        ["config", "done", "shed rate", "worst p99 ms", "edges/s"],
        rows,
    )
    return bounded, relaxed


def test_service_throughput(benchmark, record_table):
    with record_table("service_throughput"):
        out = run_once(benchmark, pipeline_vs_serial)
        bounded, relaxed = overload_p99()

    serial, piped = out["serial"], out["piped"]
    # bit-parity: the pipeline changed the clock, not the answers
    assert piped.delta_total == serial.delta_total
    assert piped.breakdown.total_ns == serial.breakdown.total_ns
    assert piped.counters.summary() == serial.counters.summary()

    # the headline claim: >= 1.3x sustained throughput from overlap alone
    assert out["speedup"] >= 1.3, f"pipeline speedup only {out['speedup']:.2f}x"
    serial_rate = BATCH / (serial.breakdown.total_ns / 1e9)
    piped_rate = BATCH / (piped.breakdown.critical_path_ns / 1e9)
    assert piped_rate >= 1.3 * serial_rate

    # overload: tight queue + shedding bounds p99 below the relaxed queue's
    p99_bounded = max(t["latency"]["p99_ns"] for t in bounded.tenants)
    p99_relaxed = max(t["latency"]["p99_ns"] for t in relaxed.tenants)
    assert bounded.max_shed_rate > 0.0
    assert relaxed.max_shed_rate == 0.0
    assert p99_bounded < p99_relaxed

    artifact = {
        "stream": {
            "dataset": DATASET, "query": QUERY, "batch_size": BATCH,
            "num_batches": NUM_BATCHES,
            "serial_ns_per_batch": serial.breakdown.total_ns,
            "pipelined_ns_per_batch": piped.breakdown.critical_path_ns,
            "speedup": out["speedup"],
            "serial_edges_per_sec": serial_rate,
            "pipelined_edges_per_sec": piped_rate,
            "delta_total": piped.delta_total,
            "wall_clock_s": {
                "serial": out["wall_serial_s"], "pipelined": out["wall_piped_s"],
            },
            "counters": piped.counters.summary(),
        },
        "service_overload": {
            "bounded": bounded.to_dict(),
            "relaxed": relaxed.to_dict(),
            "p99_bounded_ns": p99_bounded,
            "p99_relaxed_ns": p99_relaxed,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_service.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert json.loads(path.read_text())["stream"]["speedup"] >= 1.3
