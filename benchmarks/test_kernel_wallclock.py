"""Frontier vs recursive executor: real wall-clock comparison.

Times both executors on the same workloads — incremental ``match_batch`` at
several batch sizes plus a full-snapshot ``match_static`` pass — and prints
a speedup table (teed to ``benchmarks/results/kernel_wallclock.txt``).  Both
executors produce bit-identical counters (enforced by
``tests/test_frontier_parity.py``); the only difference is Python-side
wall-clock, which is exactly what this file measures.

The frontier executor's advantage grows with frontier width (roots per
plan): its per-level NumPy costs are fixed while the recursive executor pays
per tree node.  At the paper's operating point (8192-edge batches) the
representative regime is the larger batch sizes below.

The CI smoke asserts the frontier executor is never slower; the ≥3× target
applies to the wide-frontier configurations (batch ≥ 512 and static).
"""

from __future__ import annotations

import time

from conftest import run_once
from repro.core.matching import match_batch, match_static
from repro.graphs import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu import AccessCounters, ZeroCopyView, default_device
from repro.query import (
    compile_delta_plans,
    compile_static_plan,
    query_by_name,
)
from repro.utils import geometric_mean

GRAPH_N = 8_000
BATCH_SIZES = (128, 512, 1024)
REPEATS = 3


def _time_batches(executor: str, g0, batches, plans) -> float:
    """Total executor seconds over a stream (update/reorg excluded)."""
    device = default_device()
    graph = DynamicGraph(g0)
    total = 0.0
    for batch in batches:
        graph.apply_batch(batch)
        view = ZeroCopyView(graph, device, AccessCounters())
        start = time.perf_counter()
        match_batch(plans, batch, view, executor=executor)
        total += time.perf_counter() - start
        graph.reorganize()
    return total


def _time_static(executor: str, graph_static, plan) -> float:
    device = default_device()
    graph = DynamicGraph(graph_static)
    view = ZeroCopyView(graph, device, AccessCounters())
    start = time.perf_counter()
    match_static(plan, view, executor=executor)
    return time.perf_counter() - start


def _measure(fn, *args) -> float:
    """Best-of-N wall-clock (minimum filters scheduler noise)."""
    return min(fn(*args) for _ in range(REPEATS))


def test_kernel_wallclock(benchmark, record_table):
    graph = powerlaw_graph(GRAPH_N, 10.0, max_degree=120, num_labels=4, seed=0)
    plans = compile_delta_plans(query_by_name("Q1"))
    static_plan = compile_static_plan(query_by_name("Q1"))

    def run():
        rows = []
        for batch_size in BATCH_SIZES:
            g0, batches = derive_stream(
                graph, num_updates=2048, batch_size=batch_size, seed=0
            )
            rec = _measure(_time_batches, "recursive", g0, batches, plans)
            fro = _measure(_time_batches, "frontier", g0, batches, plans)
            rows.append((f"match_batch/bs={batch_size}", rec, fro))
        rec = _measure(_time_static, "recursive", graph, static_plan)
        fro = _measure(_time_static, "frontier", graph, static_plan)
        rows.append(("match_static", rec, fro))
        return rows

    rows = run_once(benchmark, run)

    speedups = [rec / fro for _, rec, fro in rows]
    wide = [rec / fro for name, rec, fro in rows
            if name == "match_static" or name.endswith(("512", "1024"))]
    with record_table("kernel_wallclock"):
        print(f"kernel wall-clock: frontier vs recursive executor "
              f"(Q1, powerlaw n={GRAPH_N}, best of {REPEATS})")
        print(f"{'workload':<22} {'recursive s':>12} {'frontier s':>12} "
              f"{'speedup':>8}")
        for (name, rec, fro), s in zip(rows, speedups):
            print(f"{name:<22} {rec:>12.3f} {fro:>12.3f} {s:>7.2f}x")
        print(f"{'geomean':<22} {'':>12} {'':>12} "
              f"{geometric_mean(speedups):>7.2f}x")
        print(f"{'geomean (wide)':<22} {'':>12} {'':>12} "
              f"{geometric_mean(wide):>7.2f}x")

    # CI smoke: the default executor must never lose to the reference,
    # and must deliver the headline >=3x in the wide-frontier regime.
    assert all(s > 1.0 for s in speedups), speedups
    assert geometric_mean(wide) >= 3.0, wide
