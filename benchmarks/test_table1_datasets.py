"""Table I: dataset inventory — scaled analogs mirror the paper's memory
relationships (which graphs fit the GPU cache buffer)."""

from conftest import run_once

from repro.bench import figures
from repro.graphs import datasets


def test_table1_datasets(benchmark, record_table):
    with record_table("table1_datasets"):
        rows = run_once(benchmark, figures.table1_datasets)

    by_name = {r["graph"]: r for r in rows}
    assert set(by_name) == set(datasets.TABLE1_ORDER)
    # the paper's fit/overflow pattern
    for name in ("AZ", "PA", "CA", "LJ"):
        assert by_name[name]["fits_buffer"], name
    for name in ("FR", "SF3K", "SF10K"):
        assert not by_name[name]["fits_buffer"], name
    # size ordering matches the paper's Table I
    sizes = [by_name[n]["size_bytes"] for n in ("LJ", "FR", "SF3K", "SF10K")]
    assert sizes == sorted(sizes)
    # road networks have bounded degree; social analogs are skewed
    assert by_name["PA"]["max_degree"] <= 14
    assert by_name["CA"]["max_degree"] <= 14
    assert by_name["FR"]["max_degree"] > 100
