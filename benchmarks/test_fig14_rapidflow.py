"""Fig. 14: comparison with RapidFlow on the small graphs (AZ, LJ).

Paper shape: RapidFlow is competitive with (and on favorable queries up to
7.7x faster than) the plain CPU baseline thanks to its candidate index and
matching order, but GCSM beats RapidFlow on every case (1.6-4.4x there);
and RapidFlow cannot run on the large graphs at all (index OOM).
"""

from conftest import run_once

from repro.bench import figures
from repro.utils import geometric_mean


def test_fig14_rapidflow(benchmark, record_table):
    with record_table("fig14_rapidflow"):
        out = run_once(benchmark, figures.fig14_rapidflow)

    gcsm_speedups = []
    rf_vs_cpu = []
    for dataset in ("AZ", "LJ"):
        for qname, res in out[dataset].items():
            total = {s: r.breakdown.total_ns for s, r in res.items()}
            # all three systems agree on ΔM
            deltas = {r.delta_total for r in res.values()}
            assert len(deltas) == 1, (dataset, qname)
            gcsm_speedups.append(total["RapidFlow"] / total["GCSM"])
            rf_vs_cpu.append(total["CPU"] / total["RapidFlow"])

    # GCSM outperforms RapidFlow (paper: 1.6-4.4x in all cases; we allow one
    # near-tie within noise on the tiny AZ analog)
    assert all(s > 0.9 for s in gcsm_speedups), gcsm_speedups
    assert sum(s > 1.0 for s in gcsm_speedups) >= len(gcsm_speedups) - 1
    assert geometric_mean(gcsm_speedups) > 1.3
    # RapidFlow beats the CPU baseline overall thanks to its candidate index
    # and matching order (paper: comparable, up to 7.7x on favorable cases)
    assert geometric_mean(rf_vs_cpu) > 1.0, rf_vs_cpu
    assert max(rf_vs_cpu) > 1.3, rf_vs_cpu
    # the index OOMs on the Friendster analog (why Fig. 8-10 exclude RF)
    assert out["FR_oom"] is True
