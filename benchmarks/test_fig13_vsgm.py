"""Fig. 13: VSGM vs GCSM execution breakdown.

Paper shape: the matching kernel takes about the same time in both (they
run the same kernel from device-resident data), but VSGM's data-copy phase
dominates its total — it bulk-uploads the whole k-hop neighborhood, so
GCSM wins end-to-end.  Also reproduces the procedure of shrinking the
batch until VSGM's working set fits device memory.
"""

from conftest import run_once

from repro.bench import figures


def test_fig13_vsgm_breakdown(benchmark, record_table):
    with record_table("fig13_vsgm"):
        out = run_once(benchmark, figures.fig13_vsgm_breakdown)

    for dataset in ("SF3K", "SF10K"):
        vsgm = out[dataset]["VSGM"]
        gcsm = out[dataset]["GCSM"]
        # VSGM is copy-dominated
        assert vsgm["dc_ms"] > vsgm["match_ms"], (dataset, vsgm)
        # VSGM copies far more data per batch than GCSM
        assert vsgm["copy_bytes"] > 5 * max(1.0, gcsm["copy_bytes"]), (dataset, vsgm, gcsm)
        assert vsgm["dc_ms"] > 2 * gcsm["dc_ms"], (dataset, vsgm, gcsm)
        # end-to-end, GCSM wins
        assert gcsm["dc_ms"] + gcsm["match_ms"] < vsgm["dc_ms"] + vsgm["match_ms"]
        # VSGM is capacity-limited even at the paper-scaled tiny batches
        assert vsgm["batch"] <= 32
        assert vsgm["buffer_overflow_x"] > 1.0
