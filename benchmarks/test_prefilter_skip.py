"""Aggregate-invariant pre-filter benchmark: skip wins and overhead bound.

Three legs, two asserted, all persisted to ``results/BENCH_prefilter.json``:

1. **Sparse stream** (label-skewed inserts, labeled triangle): most batches
   land where no endpoint can ever satisfy the query's adjacency
   requirement, so the invariant index certifies ΔM = 0 and the engine
   skips estimation, packing, and the kernel.  Asserted: >= 50 % of batches
   skipped and >= 2x wall-clock over the prefilter-off twin — with
   bit-identical ΔM per batch.
2. **Dense stream** (FR analog, catalog Q1): nearly every batch carries
   live roots, so the prefilter is pure overhead.  Asserted: modeled
   total_ns (which charges the maintenance through the cost model) within
   10 % of the prefilter-off run, same ΔM and embeddings.
3. **Road-net wildcard** (PA analog, unlabeled triangle): wildcard
   patterns give the invariants nothing to refute, the worst case for the
   index.  Reported only — skip rate and overhead land in the artifact.
"""

import json
import time

import numpy as np
from conftest import RESULTS_DIR, run_once

from repro.bench.harness import clear_caches, print_table, run_stream
from repro.core.engine import GCSMEngine
from repro.graphs import StaticGraph, UpdateBatch
from repro.query import QueryGraph, query_by_name

TRI_LABELED = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], [0, 1, 2], name="tri012")
TRI_WILD = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="tri_wild")

N_COLD = 1000  # labels 0/1 only: dense, but no label-2 neighbor anywhere
N_HOT = 500    # labels 0/1/2 mixed: real triangles appear here
N = N_COLD + N_HOT
NUM_BATCHES = 20
BATCH = 64


def build_sparse_workload():
    """Insert stream where 18/20 batches land in a dense label-{0,1}-only
    region.  Those roots *pass* the per-edge label check — the prefilter-off
    engine walks FE estimation and expands the frontier over the dense
    neighborhoods before failing — but every root endpoint is missing the
    label-2 neighbor the triangle's adjacency requirement demands, so the
    invariant index certifies ΔM = 0 and skips the whole pipeline."""
    rng = np.random.default_rng(7)
    labels = np.empty(N, dtype=np.int64)
    labels[:N_COLD] = np.arange(N_COLD) % 2          # cold: labels 0/1
    labels[N_COLD:] = np.arange(N_HOT) % 3           # hot: labels 0/1/2
    cold_edges = rng.integers(0, N_COLD, size=(N_COLD * 15, 2))
    hot_edges = rng.integers(N_COLD, N, size=(N_HOT * 4, 2))
    base = np.concatenate([cold_edges, hot_edges])
    g0 = StaticGraph.from_edges(N, base[base[:, 0] != base[:, 1]], labels)

    def fresh_pairs(pool_a, pool_b, count, seen):
        out = []
        while len(out) < count:
            u = int(pool_a[rng.integers(0, pool_a.size)])
            v = int(pool_b[rng.integers(0, pool_b.size)])
            key = (min(u, v), max(u, v))
            if u != v and key not in seen:
                seen.add(key)
                out.append(key)
        return np.array(out, dtype=np.int64)

    idx = np.arange(N)
    cold = [idx[(idx < N_COLD) & (labels == lab)] for lab in range(2)]
    hot = [idx[(idx >= N_COLD) & (labels == lab)] for lab in range(3)]
    seen = {(int(u), int(v)) for u, v in g0.edge_array()}
    batches = []
    for i in range(NUM_BATCHES):
        if i % 10 == 9:  # hot batch: mixed-label edges, real ΔM work
            edges = np.concatenate([
                fresh_pairs(hot[0], hot[1], BATCH // 3, seen),
                fresh_pairs(hot[1], hot[2], BATCH // 3, seen),
                fresh_pairs(hot[0], hot[2], BATCH // 3, seen),
            ])
        else:  # cold batch: (0,1) edges that label-match but cannot close
            edges = fresh_pairs(cold[0], cold[1], BATCH, seen)
        batches.append(
            UpdateBatch(edges, np.ones(edges.shape[0], dtype=np.int64))
        )
    return g0, batches


def run_serial(g0, batches, **kwargs):
    engine = GCSMEngine(g0, TRI_LABELED, seed=0, **kwargs)
    wall0 = time.perf_counter()
    results = engine.process_stream(batches)
    return results, time.perf_counter() - wall0


def sparse_leg():
    g0, batches = build_sparse_workload()
    res_off, wall_off = run_serial(g0, batches)
    res_on, wall_on = run_serial(g0, batches, prefilter="on")

    skipped = sum(r.prefilter.batches_skipped for r in res_on)
    roots_masked = sum(r.prefilter.roots_skipped for r in res_on)
    model_on = sum(r.breakdown.total_ns for r in res_on)
    model_off = sum(r.breakdown.total_ns for r in res_off)
    speedup = wall_off / wall_on
    rows = [
        ["off", "-", "-", f"{model_off / 1e6:.3f}", f"{wall_off:.3f}"],
        ["invariant", f"{skipped}/{NUM_BATCHES}", f"{roots_masked}",
         f"{model_on / 1e6:.3f}", f"{wall_on:.3f}"],
    ]
    print_table(
        f"sparse stream: labeled triangle, {NUM_BATCHES} batches of {BATCH} "
        f"(wall speedup {speedup:.2f}x)",
        ["prefilter", "batches skipped", "roots masked", "model ms", "wall s"],
        rows,
    )
    deltas_equal = all(
        a.delta_count == b.delta_count for a, b in zip(res_on, res_off)
    )
    return {
        "num_batches": NUM_BATCHES, "batch_size": BATCH,
        "batches_skipped": skipped, "skip_rate": skipped / NUM_BATCHES,
        "roots_masked": roots_masked,
        "wall_off_s": wall_off, "wall_on_s": wall_on,
        "wall_speedup": speedup,
        "model_off_ns": model_off, "model_on_ns": model_on,
        "delta_total": sum(r.delta_count for r in res_on),
        "deltas_equal": deltas_equal,
    }


def stream_leg(dataset, query, *, num_batches, batch_size=None):
    clear_caches()
    off = run_stream("GCSM", dataset, query,
                     batch_size=batch_size, num_batches=num_batches, seed=0)
    on = run_stream("GCSM", dataset, query,
                    batch_size=batch_size, num_batches=num_batches, seed=0,
                    prefilter="on")
    overhead = on.breakdown.total_ns / off.breakdown.total_ns
    return on, off, {
        "dataset": dataset, "query": query.name,
        "num_batches": num_batches,
        "model_off_ns": off.breakdown.total_ns,
        "model_on_ns": on.breakdown.total_ns,
        "prefilter_ns": on.breakdown.prefilter_ns,
        "overhead_ratio": overhead,
        "batches_skipped": on.batches_skipped,
        "roots_skipped": on.roots_skipped,
        "delta_total": on.delta_total,
        "deltas_equal": on.delta_total == off.delta_total,
        "embeddings_equal": on.embeddings_total == off.embeddings_total,
    }


def dense_and_road_legs():
    q1 = query_by_name("Q1")
    _, _, dense = stream_leg("FR", q1, num_batches=3, batch_size=256)
    _, _, road = stream_leg("PA", TRI_WILD, num_batches=4)
    rows = [
        [leg["dataset"], leg["query"],
         f"{leg['batches_skipped']}/{leg['num_batches']}",
         f"{leg['roots_skipped']}",
         f"{leg['overhead_ratio']:.3f}"]
        for leg in (dense, road)
    ]
    print_table(
        "prefilter overhead on dense / wildcard streams (modeled ns ratio)",
        ["dataset", "query", "batches skipped", "roots masked", "on/off ratio"],
        rows,
    )
    return dense, road


def test_prefilter_skip(benchmark, record_table):
    with record_table("prefilter_skip"):
        sparse = run_once(benchmark, sparse_leg)
        dense, road = dense_and_road_legs()

    # exactness everywhere: the prefilter may only remove provably dead work
    assert sparse["deltas_equal"]
    assert dense["deltas_equal"] and dense["embeddings_equal"]
    assert road["deltas_equal"] and road["embeddings_equal"]

    # headline sparse claim: >= 50 % certified batch skips, >= 2x wall clock
    assert sparse["skip_rate"] >= 0.5, f"skip rate {sparse['skip_rate']:.2f}"
    assert sparse["wall_speedup"] >= 2.0, (
        f"sparse wall speedup only {sparse['wall_speedup']:.2f}x"
    )
    # the modeled clock must agree with the wall-clock direction
    assert sparse["model_on_ns"] < sparse["model_off_ns"]

    # dense bound: maintenance charged through the cost model stays <= 10 %
    assert dense["batches_skipped"] == 0
    assert dense["overhead_ratio"] <= 1.10, (
        f"dense overhead {dense['overhead_ratio']:.3f}"
    )

    artifact = {"sparse": sparse, "dense": dense, "road_wildcard": road}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_prefilter.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert json.loads(path.read_text())["sparse"]["skip_rate"] >= 0.5
