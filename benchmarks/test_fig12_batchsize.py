"""Fig. 12: execution time vs batch size (Q6@SF3K, Q5@SF10K).

Paper shape: execution time is almost proportional to batch size, and
GCSM's advantage over ZC holds across the whole sweep (1.8-2.9x there).
"""

from conftest import run_once

from repro.bench import figures
from repro.utils import geometric_mean


def test_fig12_batch_size_sweep(benchmark, record_table):
    sizes = (16, 32, 64, 128, 256, 512)
    with record_table("fig12_batchsize"):
        out = run_once(
            benchmark, figures.fig12_batch_size_sweep, batch_sizes=sizes
        )

    for dataset, qname in (("SF3K", "Q6"), ("SF10K", "Q5")):
        gcsm_times = [out[(dataset, qname, bs)]["GCSM"].breakdown.total_ns
                      for bs in sizes]
        zc_times = [out[(dataset, qname, bs)]["ZC"].breakdown.total_ns
                    for bs in sizes]
        # time grows with batch size, roughly proportionally: going 16 -> 512
        # (32x) must scale the time by well over 8x but below ~130x
        assert gcsm_times == sorted(gcsm_times)
        growth = gcsm_times[-1] / gcsm_times[0]
        assert 8 < growth < 130, (dataset, growth)
        # GCSM's advantage holds across the sweep (allow noise at tiny sizes)
        speedups = [z / g for z, g in zip(zc_times, gcsm_times)]
        assert geometric_mean(speedups) > 1.1, (dataset, speedups)
        assert all(s > 0.9 for s in speedups), (dataset, speedups)
