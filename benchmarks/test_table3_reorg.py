"""Table III: CPU graph-reorganization time per batch.

Paper shape: a few milliseconds at most — negligible against matching time
— growing with batch size and with graph/list sizes.

Also covers the vectorized per-list merge that reorganize() uses: parity
against the retained scalar reference (``merge_runs_reference``) and the
wall-clock win on long adjacency lists.
"""

import time

import numpy as np
from conftest import run_once

from repro.bench import figures
from repro.graphs import datasets
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.utils import merge_sorted


def test_table3_reorg_time(benchmark, record_table):
    with record_table("table3_reorg"):
        out = run_once(benchmark, figures.table3_reorg_time)

    small, big = figures.SCALED_BATCH_4096, figures.SCALED_BATCH_8192
    for name in datasets.TABLE1_ORDER:
        # bigger batches reorganize more lists
        assert out[(name, big)] > out[(name, small)], name
        # reorganization stays tiny: well under a simulated millisecond at
        # our scale (the paper's absolute values are 0.8-9.5 ms)
        assert out[(name, big)] < 1.0, (name, out[(name, big)])
    # denser graphs pay more (longer lists to merge)
    assert out[("SF10K", big)] > out[("PA", big)]
    assert out[("FR", small)] > out[("AZ", small)]


def test_reorganize_merge_parity_with_scalar_reference(benchmark, monkeypatch):
    """Replaying the same stream with the vectorized merge and with the
    scalar reference must leave bit-identical stores and ReorganizeStats."""
    from repro.graphs import DynamicGraph
    from repro.graphs import dynamic_graph as dg_mod
    from repro.graphs.dynamic_graph import merge_runs_reference

    g = erdos_renyi(400, 8.0, num_labels=2, seed=21)
    g0, batches = derive_stream(g, update_fraction=0.4, batch_size=64, seed=21)

    def replay(use_reference):
        if use_reference:
            monkeypatch.setattr(dg_mod, "merge_sorted", merge_runs_reference)
        else:
            monkeypatch.setattr(dg_mod, "merge_sorted", merge_sorted)
        store = DynamicGraph(g0)
        stats = []
        for batch in batches:
            store.apply_batch(batch)
            s = store.reorganize()
            stats.append((s.lists_touched, s.merged_elements,
                          s.deletions_dropped, s.insertions_merged))
        return store.snapshot(), stats

    snap_vec, stats_vec = run_once(benchmark, replay, False)
    snap_ref, stats_ref = replay(True)
    assert snap_vec == snap_ref
    assert stats_vec == stats_ref  # bit-for-bit counter parity


def test_reorganize_vectorized_merge_wallclock(benchmark):
    """The numpy two-searchsorted merge beats the scalar two-pointer loop
    on long adjacency lists (where reorganize time actually accrues)."""
    from repro.graphs.dynamic_graph import merge_runs_reference

    rng = np.random.default_rng(7)
    pool = rng.choice(2_000_000, size=120_000, replace=False)
    kept = np.sort(pool[:100_000]).astype(np.int64)
    delta = np.sort(pool[100_000:]).astype(np.int64)

    def timed(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn(kept, delta)
            best = min(best, time.perf_counter() - t0)
        return best, out

    t_vec, out_vec = run_once(benchmark, timed, merge_sorted)
    t_ref, out_ref = timed(merge_runs_reference, repeats=1)
    assert out_vec.tolist() == out_ref.tolist()
    speedup = t_ref / max(t_vec, 1e-9)
    print(f"\nvectorized merge: {t_vec*1e3:.2f} ms vs scalar {t_ref*1e3:.2f} ms "
          f"({speedup:.0f}x) on {kept.size + delta.size} elements")
    assert speedup > 3.0
