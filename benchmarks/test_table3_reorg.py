"""Table III: CPU graph-reorganization time per batch.

Paper shape: a few milliseconds at most — negligible against matching time
— growing with batch size and with graph/list sizes.
"""

from conftest import run_once

from repro.bench import figures
from repro.graphs import datasets


def test_table3_reorg_time(benchmark, record_table):
    with record_table("table3_reorg"):
        out = run_once(benchmark, figures.table3_reorg_time)

    small, big = figures.SCALED_BATCH_4096, figures.SCALED_BATCH_8192
    for name in datasets.TABLE1_ORDER:
        # bigger batches reorganize more lists
        assert out[(name, big)] > out[(name, small)], name
        # reorganization stays tiny: well under a simulated millisecond at
        # our scale (the paper's absolute values are 0.8-9.5 ms)
        assert out[(name, big)] < 1.0, (name, out[(name, big)])
    # denser graphs pay more (longer lists to merge)
    assert out[("SF10K", big)] > out[("PA", big)]
    assert out[("FR", small)] > out[("AZ", small)]
