"""Wall-clock micro-benchmarks of the hot paths (pytest-benchmark proper).

Unlike the figure targets (which time one deterministic simulation pass),
these measure the real Python/NumPy throughput of the matching executor,
the frequency estimator, and the dynamic-store update path over several
rounds — the numbers a developer optimizing this library watches.
"""

import pytest

from repro.core.engine import GCSMEngine
from repro.core.frequency import FrequencyEstimator
from repro.core.matching import match_batch
from repro.graphs import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu import AccessCounters, ZeroCopyView, default_device
from repro.query import compile_delta_plans, query_by_name


@pytest.fixture(scope="module")
def workload():
    graph = powerlaw_graph(8_000, 10.0, max_degree=120, num_labels=4, seed=0)
    g0, batches = derive_stream(graph, num_updates=128, batch_size=128, seed=0)
    return g0, batches[0]


def test_match_batch_throughput(benchmark, workload):
    g0, batch = workload
    plans = compile_delta_plans(query_by_name("Q1"))
    dg = DynamicGraph(g0)
    dg.apply_batch(batch)

    def run():
        view = ZeroCopyView(dg, default_device(), AccessCounters())
        return match_batch(plans, batch, view)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.roots_processed > 0


def test_estimator_throughput(benchmark, workload):
    g0, batch = workload
    plans = compile_delta_plans(query_by_name("Q1"))
    dg = DynamicGraph(g0)
    dg.apply_batch(batch)
    estimator = FrequencyEstimator(dg, default_device(), seed=1, survival=1.0)

    res = benchmark.pedantic(
        lambda: estimator.estimate(plans, batch, num_walks=512),
        rounds=3, iterations=1,
    )
    assert res.sampled_vertices.size > 0


def test_update_and_reorganize_throughput(benchmark, workload):
    g0, batch = workload

    def run():
        dg = DynamicGraph(g0)
        dg.apply_batch(batch)
        return dg.reorganize()

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.lists_touched > 0


def test_engine_end_to_end_throughput(benchmark, workload):
    g0, batch = workload

    def run():
        engine = GCSMEngine(g0, query_by_name("Q1"), seed=2)
        return engine.process_batch(batch)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.match_stats.roots_processed > 0
