"""Fig. 9: execution time per query on the LDBC SF3K analog."""

from conftest import run_once

from repro.bench import figures
from repro.query import QUERY_ORDER
from repro.utils import geometric_mean


def test_fig9_sf3k_exec_time(benchmark, record_table):
    with record_table("fig9_sf3k"):
        out = run_once(benchmark, figures.fig8_to_10_exec_time, "SF3K")

    assert set(out) == set(QUERY_ORDER)
    zc_speedups = []
    cpu_speedups = []
    for qname, res in out.items():
        deltas = {r.delta_total for r in res.values()}
        assert len(deltas) == 1, f"systems disagree on ΔM for {qname}"
        total = {s: r.breakdown.total_ns for s, r in res.items()}
        zc_speedups.append(total["ZC"] / total["GCSM"])
        cpu_speedups.append(total["CPU"] / total["GCSM"])
        # GCSM always reduces PCIe traffic
        assert res["GCSM"].cpu_access_bytes < res["ZC"].cpu_access_bytes

    assert all(s > 1.0 for s in zc_speedups), zc_speedups
    assert geometric_mean(zc_speedups) > 1.2
    assert all(s > 1.3 for s in cpu_speedups), cpu_speedups
