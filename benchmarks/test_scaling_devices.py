"""Multi-GPU scaling study: device sweep + partitioner ablation.

Extension beyond the paper (which evaluates a single RTX3090): shard the
GCSM pipeline across a simulated NVLink fleet and measure where the speedup
goes.  Expected shape:

* end-to-end speedup is **monotone but sub-linear** in the device count —
  the host-side phases (update, estimation, reorganize) are shared serial
  work (Amdahl), and the kernel phase pays peer-interconnect stalls for
  every cross-shard read plus a ΔM all-reduce per batch;
* the **frequency-aware partitioner** strictly reduces PEER traffic vs
  hash partitioning by co-locating hot lists with their neighborhoods —
  at the price of a host-side clustering pass and a looser load balance;
* the **min-cut partitioner** (reader-graph Fennel streaming + bounded
  refinement) cuts PEER bytes by >= 30 % below even ``freq`` at 4 and 8
  devices while holding the owner-map degree-mass imbalance under 1.15;
* **online repartitioning** started from a deliberately bad sticky map
  recovers the heat-weighted cut-rate, paying for the recovery in
  explicit migration traffic (``repartition_ns``), with ΔM untouched.

Everything asserted here is persisted to ``results/BENCH_partition.json``
for the CI ``partition-smoke`` job.
"""

import json

import numpy as np
from conftest import RESULTS_DIR, run_once

from repro.bench.harness import build_workload, print_table, run_stream
from repro.core.baselines import make_system
from repro.gpu.counters import Channel
from repro.query import query_by_name

DATASET = "SF3K"
QUERY = "Q1"
BATCH = 256
NUM_BATCHES = 2
DEVICE_SWEEP = (1, 2, 4, 8)


def _run(devices, partitioner="hash"):
    return run_stream(
        "GCSM", DATASET, query_by_name(QUERY),
        batch_size=BATCH, num_batches=NUM_BATCHES, seed=0,
        devices=devices, partitioner=partitioner,
    )


def scale_devices():
    results = {}
    rows = []
    base_ns = None
    for n in DEVICE_SWEEP:
        r = _run(n)
        results[n] = r
        if base_ns is None:
            base_ns = r.breakdown.total_ns
        speedup = base_ns / r.breakdown.total_ns
        rows.append([
            n, r.breakdown.total_ns / 1e6, r.breakdown.match_ns / 1e6,
            f"{speedup:.2f}x", f"{speedup / n:.2f}",
            r.peer_bytes, r.breakdown.comm_ns / 1e3,
            f"{r.imbalance:.2f}" if r.imbalance is not None else "-",
        ])
    print_table(
        f"device scaling ({DATASET}, {QUERY}, |ΔE|={BATCH}, hash partitioner)",
        ["devices", "total ms", "match ms", "speedup", "efficiency",
         "peer B", "comm us", "imbalance"],
        rows,
    )
    return results


def ablate_partitioners(devices=4):
    results = {}
    rows = []
    for part in ("hash", "range", "freq", "mincut"):
        r = _run(devices, part)
        results[part] = r
        rows.append([
            part, r.breakdown.total_ns / 1e6, r.peer_bytes,
            f"{r.imbalance:.2f}" if r.imbalance is not None else "-",
        ])
    print_table(
        f"partitioner ablation ({DATASET}, {QUERY}, {devices} devices)",
        ["partitioner", "total ms", "peer B", "imbalance"],
        rows,
    )
    return results


def _partition_leg(devices, part):
    """One direct engine run capturing the owner map the fleet actually used.

    ``run_stream`` reports peer bytes and match-time imbalance but discards
    the placement; the balance the partitioners *control* is the owner-map
    degree-mass spread (match-time imbalance is dominated by which shard
    draws the expensive roots — even ``hash`` shows 1.2-1.8 there), so we
    recompute it from the captured map.
    """
    g0, batches = build_workload(
        DATASET, batch_size=BATCH, num_batches=NUM_BATCHES, seed=0
    )
    eng = make_system(
        "GCSM", g0, query_by_name(QUERY), devices=devices,
        partitioner=part, seed=0,
    )
    captured = {}
    inner = eng.partitioner.assign

    def capture(*args, **kwargs):
        captured["owner"] = inner(*args, **kwargs)
        return captured["owner"]

    eng.partitioner.assign = capture
    peer = delta = 0
    match_imb = []
    for batch in batches:
        r = eng.process_batch(batch)
        delta += r.delta_count
        peer += r.match_counters.bytes_by_channel[Channel.PEER]
        match_imb.append(r.load_balance.imbalance)
    owner = captured["owner"]
    degrees = eng.graph.degrees_new().astype(np.int64)
    load = np.bincount(owner, weights=degrees, minlength=devices)
    return {
        "devices": devices,
        "partitioner": part,
        "peer_bytes": int(peer),
        "delta_total": int(delta),
        "degmass_imbalance": float(load.max() / load.mean()),
        "match_imbalance": float(np.mean(match_imb)),
    }


def partition_quality(device_points=(4, 8)):
    """PEER bytes + balance of hash/freq/mincut at each fleet size."""
    legs = {}
    rows = []
    for devices in device_points:
        for part in ("hash", "freq", "mincut"):
            legs[(devices, part)] = _partition_leg(devices, part)
        freq_peer = legs[(devices, "freq")]["peer_bytes"]
        for part in ("hash", "freq", "mincut"):
            leg = legs[(devices, part)]
            rows.append([
                devices, part, leg["peer_bytes"],
                f"{leg['peer_bytes'] / freq_peer:.3f}",
                f"{leg['degmass_imbalance']:.3f}",
                f"{leg['match_imbalance']:.2f}",
            ])
    print_table(
        f"partition quality ({DATASET}, {QUERY}, |ΔE|={BATCH}x{NUM_BATCHES})",
        ["devices", "partitioner", "peer B", "vs freq",
         "degmass imbalance", "match imbalance"],
        rows,
    )
    return legs


def drift_recovery(devices=4):
    """Sticky ownership from a bad (hash) seed map, repartitioning on.

    The hash map's heat-weighted cut-rate trips the drift detector; the
    replans must lower the cut, charge their migration to
    ``repartition_ns``, and leave ΔM identical to the repartition-off run.
    """
    cfg = {"every": 2, "threshold": 0.05, "horizon": 200.0}
    on = run_stream(
        "GCSM", DATASET, query_by_name(QUERY),
        batch_size=BATCH, num_batches=4, seed=0,
        devices=devices, partitioner="hash", repartition=cfg,
    )
    off = run_stream(
        "GCSM", DATASET, query_by_name(QUERY),
        batch_size=BATCH, num_batches=4, seed=0,
        devices=devices, partitioner="hash",
    )
    rep = on.repartition
    last = rep["last"] or {}
    print_table(
        f"online repartitioning ({DATASET}, {QUERY}, {devices} devices, hash seed map)",
        ["replans", "moved", "migration B", "repart us",
         "cut before", "cut after", "ΔM on", "ΔM off"],
        [[
            f"{rep['triggered']}/{rep['evaluated']}", rep["moved"],
            rep["migration_bytes"], rep["repartition_ns"] / 1e3,
            f"{last.get('cut_rate_before', 0.0):.3f}",
            f"{last.get('cut_rate_after', 0.0):.3f}",
            on.delta_total, off.delta_total,
        ]],
    )
    return {
        "devices": devices,
        "config": rep["config"],
        "evaluated": rep["evaluated"],
        "triggered": rep["triggered"],
        "moved": rep["moved"],
        "migration_bytes": rep["migration_bytes"],
        "repartition_ns": rep["repartition_ns"],
        "last_report": rep["last"],
        "delta_on": on.delta_total,
        "delta_off": off.delta_total,
    }


def test_scaling_devices(benchmark, record_table):
    with record_table("scaling_devices"):
        results = run_once(benchmark, scale_devices)

    # sharding never changes the answer
    assert len({r.delta_total for r in results.values()}) == 1
    base = results[1].breakdown.total_ns
    speedups = {n: base / results[n].breakdown.total_ns for n in DEVICE_SWEEP}
    # monotone: each doubling of the fleet helps ...
    for a, b in zip(DEVICE_SWEEP, DEVICE_SWEEP[1:]):
        assert speedups[b] > speedups[a], speedups
    # ... but sub-linearly (shared host phases + peer stalls + all-reduce)
    for n in DEVICE_SWEEP[1:]:
        assert speedups[n] < n, speedups
    # cross-device traffic exists iff the fleet is sharded
    assert results[1].peer_bytes == 0
    for n in DEVICE_SWEEP[1:]:
        assert results[n].peer_bytes > 0
        assert results[n].breakdown.comm_ns > 0
    # every sharded run carries a per-batch load-balance report
    assert all(len(results[n].load_balance) == NUM_BATCHES
               for n in DEVICE_SWEEP[1:])


def test_partitioner_ablation(benchmark, record_table):
    with record_table("scaling_partitioners"):
        results = run_once(benchmark, ablate_partitioners)

    # partitioning never changes the answer
    assert len({r.delta_total for r in results.values()}) == 1
    # the frequency-aware partitioner strictly reduces peer traffic vs hash
    assert results["freq"].peer_bytes < results["hash"].peer_bytes
    # degree-mass range partitioning also beats oblivious hashing here
    assert results["range"].peer_bytes < results["hash"].peer_bytes
    # the reader-graph min-cut placement beats all of them
    assert results["mincut"].peer_bytes < results["freq"].peer_bytes
    # the resolved knobs travel with the result for the JSON records
    assert results["mincut"].partitioner_opts is not None
    assert "balance_slack" in results["mincut"].partitioner_opts


def test_partition_quality(benchmark, record_table):
    with record_table("partition_quality"):
        legs = run_once(benchmark, partition_quality)
        drift = drift_recovery()

    # placement never changes the answer
    assert len({leg["delta_total"] for leg in legs.values()}) == 1

    for devices in (4, 8):
        freq = legs[(devices, "freq")]
        mincut = legs[(devices, "mincut")]
        ratio = mincut["peer_bytes"] / freq["peer_bytes"]
        # headline claim: >= 30 % PEER bytes below the freq baseline
        assert ratio <= 0.70, (
            f"mincut/freq peer ratio {ratio:.3f} at {devices} devices"
        )
        # ... without giving the balance away: the owner-map degree-mass
        # spread (what balance_slack constrains) stays under 1.15
        assert mincut["degmass_imbalance"] <= 1.15, mincut

    # drift recovery: the bad sticky map must trip the detector, the
    # replan must lower the heat-weighted cut, and the migration must be
    # paid for in the dedicated lane -- all without touching ΔM
    assert drift["triggered"] >= 1
    assert drift["moved"] > 0 and drift["migration_bytes"] > 0
    assert drift["repartition_ns"] > 0.0
    last = drift["last_report"]
    assert last["cut_rate_after"] < last["cut_rate_before"]
    assert drift["delta_on"] == drift["delta_off"]

    artifact = {
        "quality": [legs[key] for key in sorted(legs)],
        "drift_recovery": drift,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_partition.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    assert json.loads(path.read_text())["drift_recovery"]["triggered"] >= 1
