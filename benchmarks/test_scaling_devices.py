"""Multi-GPU scaling study: device sweep + partitioner ablation.

Extension beyond the paper (which evaluates a single RTX3090): shard the
GCSM pipeline across a simulated NVLink fleet and measure where the speedup
goes.  Expected shape:

* end-to-end speedup is **monotone but sub-linear** in the device count —
  the host-side phases (update, estimation, reorganize) are shared serial
  work (Amdahl), and the kernel phase pays peer-interconnect stalls for
  every cross-shard read plus a ΔM all-reduce per batch;
* the **frequency-aware partitioner** strictly reduces PEER traffic vs
  hash partitioning by co-locating hot lists with their neighborhoods —
  at the price of a host-side clustering pass and a looser load balance.
"""

from conftest import run_once

from repro.bench.harness import print_table, run_stream
from repro.query import query_by_name

DATASET = "SF3K"
QUERY = "Q1"
BATCH = 256
NUM_BATCHES = 2
DEVICE_SWEEP = (1, 2, 4, 8)


def _run(devices, partitioner="hash"):
    return run_stream(
        "GCSM", DATASET, query_by_name(QUERY),
        batch_size=BATCH, num_batches=NUM_BATCHES, seed=0,
        devices=devices, partitioner=partitioner,
    )


def scale_devices():
    results = {}
    rows = []
    base_ns = None
    for n in DEVICE_SWEEP:
        r = _run(n)
        results[n] = r
        if base_ns is None:
            base_ns = r.breakdown.total_ns
        speedup = base_ns / r.breakdown.total_ns
        rows.append([
            n, r.breakdown.total_ns / 1e6, r.breakdown.match_ns / 1e6,
            f"{speedup:.2f}x", f"{speedup / n:.2f}",
            r.peer_bytes, r.breakdown.comm_ns / 1e3,
            f"{r.imbalance:.2f}" if r.imbalance is not None else "-",
        ])
    print_table(
        f"device scaling ({DATASET}, {QUERY}, |ΔE|={BATCH}, hash partitioner)",
        ["devices", "total ms", "match ms", "speedup", "efficiency",
         "peer B", "comm us", "imbalance"],
        rows,
    )
    return results


def ablate_partitioners(devices=4):
    results = {}
    rows = []
    for part in ("hash", "range", "freq"):
        r = _run(devices, part)
        results[part] = r
        rows.append([
            part, r.breakdown.total_ns / 1e6, r.peer_bytes,
            f"{r.imbalance:.2f}" if r.imbalance is not None else "-",
        ])
    print_table(
        f"partitioner ablation ({DATASET}, {QUERY}, {devices} devices)",
        ["partitioner", "total ms", "peer B", "imbalance"],
        rows,
    )
    return results


def test_scaling_devices(benchmark, record_table):
    with record_table("scaling_devices"):
        results = run_once(benchmark, scale_devices)

    # sharding never changes the answer
    assert len({r.delta_total for r in results.values()}) == 1
    base = results[1].breakdown.total_ns
    speedups = {n: base / results[n].breakdown.total_ns for n in DEVICE_SWEEP}
    # monotone: each doubling of the fleet helps ...
    for a, b in zip(DEVICE_SWEEP, DEVICE_SWEEP[1:]):
        assert speedups[b] > speedups[a], speedups
    # ... but sub-linearly (shared host phases + peer stalls + all-reduce)
    for n in DEVICE_SWEEP[1:]:
        assert speedups[n] < n, speedups
    # cross-device traffic exists iff the fleet is sharded
    assert results[1].peer_bytes == 0
    for n in DEVICE_SWEEP[1:]:
        assert results[n].peer_bytes > 0
        assert results[n].breakdown.comm_ns > 0
    # every sharded run carries a per-batch load-balance report
    assert all(len(results[n].load_balance) == NUM_BATCHES
               for n in DEVICE_SWEEP[1:])


def test_partitioner_ablation(benchmark, record_table):
    with record_table("scaling_partitioners"):
        results = run_once(benchmark, ablate_partitioners)

    # partitioning never changes the answer
    assert len({r.delta_total for r in results.values()}) == 1
    # the frequency-aware partitioner strictly reduces peer traffic vs hash
    assert results["freq"].peer_bytes < results["hash"].peer_bytes
    # degree-mass range partitioning also beats oblivious hashing here
    assert results["range"].peer_bytes < results["hash"].peer_bytes
