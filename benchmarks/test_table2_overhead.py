"""Table II: frequency-estimation (FE) and data-copy (DC) overheads.

Paper shape: FE < ~17 % of total time (usually < 10 %), decreasing for
larger patterns; DC < ~13 %.  The overheads never dominate matching.
"""

import numpy as np
from conftest import run_once

from repro.bench import figures


def test_table2_overhead(benchmark, record_table):
    with record_table("table2_overhead"):
        out = run_once(benchmark, figures.table2_overhead)

    fe_values = []
    dc_values = []
    for (dataset, qname), (fe, dc) in out.items():
        fe_values.append(fe)
        dc_values.append(dc)
        assert 0.0 <= fe < 45.0, (dataset, qname, fe)
        assert 0.0 <= dc < 35.0, (dataset, qname, dc)

    # overheads are small on average (paper: FE mostly < 10 %, DC < 5 %);
    # the FE share must sit inside the paper's < 10 % band — the sampler
    # stays a sideline of matching under either estimator implementation
    assert float(np.mean(fe_values)) < 10.0, fe_values
    assert float(np.mean(dc_values)) < 15.0, dc_values
    # matching dominates: FE+DC below half of total everywhere
    assert all(fe + dc < 50.0 for fe, dc in out.values())
