"""Frontier vs recursive frequency estimator: real wall-clock comparison.

Times both samplers on the same estimation workloads — ``estimate`` over a
stream of batches for several queries and walk budgets — plus the vectorized
vs reference ``DcsrCache.build`` at several cache sizes, and prints a speedup
table (teed to ``benchmarks/results/estimator_wallclock.txt``).  Both
samplers perform an identical multiset of charges in the deterministic
regime (enforced by ``tests/test_estimator_parity.py``) and both ``build``
paths produce bit-identical arrays (``tests/test_dcsr.py``); the only
difference is Python-side wall-clock, which is exactly what this file
measures.

The frontier sampler's advantage grows with frontier width (live walks per
level): its per-level NumPy costs are fixed while the recursive sampler pays
per walk-tree node.  The paper's operating point is a *large* walk budget —
Eq. (4) sets M = |delta E| * D^(n-2) / 32^n and the adaptive loop (Eq. 5)
raises M up to 2^20 until the confidence bound holds — so the representative
regime is the largest budget below.

The CI smoke asserts the frontier sampler is never slower; the >=3x target
applies to the representative (largest-budget) configurations, and the
vectorized DCSR pack must hold >=2x across all cache sizes.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.core.dcsr import DcsrCache
from repro.core.frequency import make_estimator
from repro.graphs import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu import default_device
from repro.query import compile_delta_plans, query_by_name
from repro.utils import geometric_mean

GRAPH_N = 8_000
BATCH_SIZE = 4_096
QUERIES = ("Q1", "Q3", "Q5")
WALK_BUDGETS = (8_192, 32_768)
REPRESENTATIVE_WALKS = 32_768
CACHE_SIZES = (500, 2_000, 8_000)
REPEATS = 3


def _time_estimates(name: str, g0, batches, plans, num_walks: int) -> float:
    """Total ``estimate`` seconds over a stream (update/reorg excluded)."""
    device = default_device()
    graph = DynamicGraph(g0)
    est = make_estimator(name, graph, device, seed=7, survival=1.0)
    total = 0.0
    for batch in batches:
        graph.apply_batch(batch)
        start = time.perf_counter()
        est.estimate(plans, batch, num_walks=num_walks)
        total += time.perf_counter() - start
        graph.reorganize()
    return total


def _time_build(builder, graph, vertices) -> float:
    start = time.perf_counter()
    builder(graph, vertices)
    return time.perf_counter() - start


def _measure(fn, *args) -> float:
    """Best-of-N wall-clock (minimum filters scheduler noise)."""
    return min(fn(*args) for _ in range(REPEATS))


def test_estimator_wallclock(benchmark, record_table):
    graph = powerlaw_graph(GRAPH_N, 10.0, max_degree=120, num_labels=4, seed=0)
    g0, batches = derive_stream(
        graph, num_updates=2 * BATCH_SIZE, batch_size=BATCH_SIZE, seed=0
    )

    def run():
        est_rows = []
        for query_name in QUERIES:
            plans = compile_delta_plans(query_by_name(query_name))
            for num_walks in WALK_BUDGETS:
                rec = _measure(
                    _time_estimates, "recursive", g0, batches, plans, num_walks
                )
                fro = _measure(
                    _time_estimates, "frontier", g0, batches, plans, num_walks
                )
                est_rows.append((f"estimate/{query_name}/M={num_walks}",
                                 num_walks, rec, fro))

        # DCSR pack: vectorized build vs the per-vertex reference loop,
        # mid-batch (marks + deltas present) on the most frequent vertices.
        build_rows = []
        dyn = DynamicGraph(g0)
        dyn.apply_batch(batches[0])
        est = make_estimator("frontier", dyn, default_device(), seed=7)
        plans = compile_delta_plans(query_by_name("Q1"))
        freq_result = est.estimate(plans, batches[0], num_walks=4096)
        for k in CACHE_SIZES:
            # top_vertices only returns frequency-support vertices; the
            # largest row packs every list to bound the full-graph cost
            if k >= GRAPH_N:
                verts = np.arange(GRAPH_N, dtype=np.int64)
            else:
                verts = freq_result.top_vertices(k)
            rec = _measure(_time_build, DcsrCache.build_reference, dyn, verts)
            fro = _measure(_time_build, DcsrCache.build, dyn, verts)
            build_rows.append((f"dcsr_build/k={verts.size}", rec, fro))
        return est_rows, build_rows

    est_rows, build_rows = run_once(benchmark, run)

    est_speedups = [rec / fro for *_, rec, fro in est_rows]
    representative = [rec / fro for _, nw, rec, fro in est_rows
                      if nw == REPRESENTATIVE_WALKS]
    build_speedups = [rec / fro for _, rec, fro in build_rows]
    with record_table("estimator_wallclock"):
        print(f"estimator wall-clock: frontier vs recursive sampler "
              f"(powerlaw n={GRAPH_N}, batch={BATCH_SIZE}, "
              f"best of {REPEATS})")
        print(f"{'workload':<26} {'recursive s':>12} {'frontier s':>12} "
              f"{'speedup':>8}")
        for (name, _, rec, fro), s in zip(est_rows, est_speedups):
            print(f"{name:<26} {rec:>12.3f} {fro:>12.3f} {s:>7.2f}x")
        for (name, rec, fro), s in zip(build_rows, build_speedups):
            print(f"{name:<26} {rec:>12.3f} {fro:>12.3f} {s:>7.2f}x")
        print(f"{'geomean (estimate)':<26} {'':>12} {'':>12} "
              f"{geometric_mean(est_speedups):>7.2f}x")
        print(f"{'geomean (representative)':<26} {'':>12} {'':>12} "
              f"{geometric_mean(representative):>7.2f}x")
        print(f"{'geomean (dcsr build)':<26} {'':>12} {'':>12} "
              f"{geometric_mean(build_speedups):>7.2f}x")

    # CI smoke: the default sampler must never lose to the reference, must
    # deliver the headline >=3x at the paper's (large-budget) operating
    # point, and the single-DMA pack must stay >=2x across cache sizes.
    assert all(s > 1.0 for s in est_speedups), est_speedups
    assert geometric_mean(representative) >= 3.0, representative
    assert all(s > 1.0 for s in build_speedups), build_speedups
    assert geometric_mean(build_speedups) >= 2.0, build_speedups
