"""Ablation (extension): update-stream locality.

The paper observes that CSM's data locality comes from two sources: degree
skew and the smallness of update batches.  Real streams add a third —
*spatial* locality (activity clusters on hot regions).  This bench sweeps
the hotspot weight of :func:`repro.graphs.stream.derive_localized_stream`
(with degree-biased hotspots — activity concentrating on popular vertices)
and measures how stream locality concentrates the kernel's memory accesses
(the Fig. 15a statistic).  Per-batch cache hit rates stay roughly flat —
GCSM's estimator re-adapts to every batch, so it converts whatever
concentration exists into hits either way; the moving quantity is the
access-share of the hottest vertices.
"""

from conftest import run_once

from repro.bench.harness import print_table
from repro.core.engine import GCSMEngine
from repro.graphs import datasets
from repro.graphs.stream import derive_localized_stream
from repro.query import query_by_name


def sweep_locality(dataset="FR", qname="Q1", batch=256, num_batches=2):
    graph = datasets.build(dataset, seed=0)
    query = query_by_name(qname)
    results = {}
    rows = []
    for weight in (1.0, 10.0, 100.0):
        g0, batches = derive_localized_stream(
            graph, num_updates=batch * num_batches, batch_size=batch,
            hotspot_fraction=0.01, hotspot_weight=weight,
            hotspot_bias="degree", seed=3,
        )
        engine = GCSMEngine(g0, query, seed=4)
        hits = misses = 0
        distinct = 0
        top5 = 0.0
        for b in batches[:num_batches]:
            r = engine.process_batch(b)
            hits += r.cache_hits
            misses += r.cache_misses
            counts = r.match_counters.vertex_access_counts()
            distinct += int((counts > 0).sum())
            top5 += r.match_counters.top_fraction_share(0.05)
        hit_rate = hits / max(1, hits + misses)
        results[weight] = {
            "hit_rate": hit_rate,
            "distinct_per_batch": distinct / num_batches,
            "top5_share": top5 / num_batches,
        }
        rows.append([weight, distinct / num_batches, top5 / num_batches, hit_rate])
    print_table(
        f"Ablation: stream locality ({dataset}, {qname}, hotspot weight sweep)",
        ["hotspot weight", "distinct vertices/batch", "top-5% access share",
         "cache hit rate"],
        rows,
    )
    return results


def test_ablation_stream_locality(benchmark, record_table):
    with record_table("ablation_locality"):
        results = run_once(benchmark, sweep_locality)

    uniform = results[1.0]
    hottest = results[100.0]
    # hotter streams concentrate the workload on fewer, hotter vertices
    assert hottest["top5_share"] > uniform["top5_share"]
    # GCSM keeps converting the concentration into cache hits throughout
    assert all(r["hit_rate"] > 0.3 for r in results.values())
