"""Fig. 15a/15b: memory-access locality and estimator cache coverage.

Paper shape: accesses are highly concentrated (top 5 % of accessed vertices
≥ 80 % of memory access at the paper's 65M-vertex scale; the concentration
weakens with graph size, so the scaled analogs land lower — see
EXPERIMENTS.md), and the random-walk cache covers most of the truly-hot
vertices (paper: 90-100 % of the top 1 %).
"""

from conftest import run_once

from repro.bench import figures


def test_fig15_access_locality(benchmark, record_table):
    with record_table("fig15_access_locality"):
        out = run_once(benchmark, figures.fig15_locality)

    for dataset in ("FR", "SF3K", "SF10K"):
        stats = out[dataset]
        shares = stats["access_share"]
        byte_shares = stats["byte_share"]
        fractions = stats["fractions"]
        # CDF is monotone in the fraction
        assert shares == sorted(shares)
        # strong concentration: top 5 % of accessed vertices serve a large
        # multiple of their population share
        idx5 = fractions.index(0.05)
        assert shares[idx5] > 0.30, (dataset, shares)
        assert byte_shares[idx5] > 0.40, (dataset, byte_shares)
        assert shares[idx5] > 5 * 0.05  # >5x their population share
        # estimator coverage of the truly-hot set (paper Fig. 15b)
        assert stats["coverage_top1"] > 0.6, dataset
        assert stats["coverage_top5"] > 0.5, dataset
