"""Sec. VI-B text claim: the unified-memory baseline is 69-210x slower
than zero-copy (which is why UM is left off the paper's figures).

At our scaled page-cache-to-graph ratios the exact multiple varies; we
assert the qualitative claim with a generous floor.
"""

from conftest import run_once

from repro.bench import figures


def test_um_slowdown(benchmark, record_table):
    with record_table("um_slowdown"):
        out = run_once(benchmark, figures.um_slowdown)

    for dataset, ratio in out.items():
        # the paper's band is 69-210x; require at least a 15x blowup and
        # sanity-cap the model at 2000x
        assert ratio > 15.0, (dataset, ratio)
        assert ratio < 2000.0, (dataset, ratio)
    # the effect is universal, not an artifact of one graph
    assert len(out) >= 2
