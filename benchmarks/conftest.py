"""Shared fixtures for the benchmark suite.

Each benchmark target runs one figure/table reproduction exactly once
(``benchmark.pedantic(rounds=1)``): the experiment functions are themselves
deterministic simulations, so repeating them only wastes wall-clock.  Their
printed paper-style tables are teed into ``benchmarks/results/`` so they
survive pytest's stdout capture.
"""

from __future__ import annotations

import contextlib
import io
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def record_table():
    """Context manager teeing stdout to ``benchmarks/results/<name>.txt``."""

    @contextlib.contextmanager
    def _record(name: str):
        RESULTS_DIR.mkdir(exist_ok=True)
        buffer = io.StringIO()
        original = sys.stdout

        class Tee(io.TextIOBase):
            def write(self, s):
                buffer.write(s)
                original.write(s)
                return len(s)

            def flush(self):
                original.flush()

        sys.stdout = Tee()
        try:
            yield
        finally:
            sys.stdout = original
            (RESULTS_DIR / f"{name}.txt").write_text(buffer.getvalue())

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
