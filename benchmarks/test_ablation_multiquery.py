"""Ablation (extension): multi-query amortization.

Real CSM deployments monitor rule books of patterns; the
:class:`~repro.core.multiquery.MultiQueryEngine` shares the per-batch graph
update, frequency estimation, DCSR packing/DMA, and reorganization across
all patterns.  This bench quantifies the saving against one GCSM engine per
pattern on the same stream.
"""

from conftest import run_once

from repro.bench.harness import build_workload, print_table
from repro.core.engine import GCSMEngine
from repro.core.multiquery import MultiQueryEngine
from repro.query import QUERIES


def compare_multiquery(dataset="SF3K", batch=256, query_names=("Q1", "Q2", "Q4")):
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    queries = [QUERIES[n] for n in query_names]
    batch0 = batches[0]

    multi = MultiQueryEngine(g0, queries, seed=1)
    mr = multi.process_batch(batch0)

    separate_total = 0.0
    separate_shared = 0.0
    deltas = {}
    for q in queries:
        engine = GCSMEngine(g0, q, seed=1)
        sr = engine.process_batch(batch0)
        separate_total += sr.breakdown.total_ns
        separate_shared += (sr.breakdown.update_ns + sr.breakdown.estimate_ns
                            + sr.breakdown.pack_ns + sr.breakdown.reorg_ns)
        deltas[q.name] = sr.delta_count

    multi_shared = (mr.breakdown.update_ns + mr.breakdown.estimate_ns
                    + mr.breakdown.pack_ns + mr.breakdown.reorg_ns)
    rows = [
        ["separate engines", separate_total / 1e6, separate_shared / 1e6],
        ["multi-query engine", mr.breakdown.total_ns / 1e6, multi_shared / 1e6],
    ]
    print_table(
        f"Ablation: multi-query amortization ({dataset}, {len(queries)} patterns)",
        ["configuration", "total ms", "shared-phase ms"], rows,
    )
    return mr, deltas, separate_total, separate_shared, multi_shared


def test_ablation_multiquery(benchmark, record_table):
    with record_table("ablation_multiquery"):
        mr, deltas, separate_total, separate_shared, multi_shared = run_once(
            benchmark, compare_multiquery
        )

    # identical per-pattern results
    assert mr.delta_counts == deltas
    # the shared phases are paid roughly once instead of N times
    assert multi_shared < 0.7 * separate_shared
    # end-to-end the shared pipeline is no slower
    assert mr.breakdown.total_ns <= separate_total * 1.05
