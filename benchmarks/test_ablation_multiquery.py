"""Ablation (extension): multi-query amortization.

Real CSM deployments monitor rule books of patterns; the
:class:`~repro.core.multiquery.MultiQueryEngine` shares the per-batch graph
update, frequency estimation, DCSR packing/DMA, and reorganization across
all patterns.  This bench quantifies the saving against one GCSM engine per
pattern on the same stream, and sweeps rulebook sizes 10/30/100 to show the
execution-trie sharing (one frontier expansion per shared plan prefix)
scales sub-linearly in the number of standing queries.
"""

import time

from conftest import run_once

from repro.bench.harness import build_workload, print_table
from repro.core.engine import GCSMEngine
from repro.core.multiquery import MultiQueryEngine
from repro.query import QUERIES
from repro.query.generator import rulebook_suite


def compare_multiquery(dataset="SF3K", batch=256, query_names=("Q1", "Q2", "Q4")):
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    queries = [QUERIES[n] for n in query_names]
    batch0 = batches[0]

    multi = MultiQueryEngine(g0, queries, seed=1)
    mr = multi.process_batch(batch0)

    separate_total = 0.0
    separate_shared = 0.0
    deltas = {}
    for q in queries:
        engine = GCSMEngine(g0, q, seed=1)
        sr = engine.process_batch(batch0)
        separate_total += sr.breakdown.total_ns
        separate_shared += (sr.breakdown.update_ns + sr.breakdown.estimate_ns
                            + sr.breakdown.pack_ns + sr.breakdown.reorg_ns)
        deltas[q.name] = sr.delta_count

    multi_shared = (mr.breakdown.update_ns + mr.breakdown.estimate_ns
                    + mr.breakdown.pack_ns + mr.breakdown.reorg_ns)
    rows = [
        ["separate engines", separate_total / 1e6, separate_shared / 1e6],
        ["multi-query engine", mr.breakdown.total_ns / 1e6, multi_shared / 1e6],
    ]
    print_table(
        f"Ablation: multi-query amortization ({dataset}, {len(queries)} patterns)",
        ["configuration", "total ms", "shared-phase ms"], rows,
    )
    return mr, deltas, separate_total, separate_shared, multi_shared


def test_ablation_multiquery(benchmark, record_table):
    with record_table("ablation_multiquery"):
        mr, deltas, separate_total, separate_shared, multi_shared = run_once(
            benchmark, compare_multiquery
        )

    # identical per-pattern results
    assert mr.delta_counts == deltas
    # the shared phases are paid roughly once instead of N times
    assert multi_shared < 0.7 * separate_shared
    # end-to-end the shared pipeline is no slower
    assert mr.breakdown.total_ns <= separate_total * 1.05


def _timed_batch(make_engine, batch, repeats=2):
    """Best-of-``repeats`` wall time (fresh engine each rep: batches mutate)."""
    result, wall = None, float("inf")
    for _ in range(repeats):
        engine = make_engine()
        start = time.perf_counter()
        res = engine.process_batch(batch)
        wall = min(wall, time.perf_counter() - start)
        result = result or res
    return result, wall


def sweep_rulebook(dataset="SF3K", batch=256, sizes=(10, 30, 100)):
    """Shared-trie vs independent execution across rulebook sizes.

    Both legs use the same :class:`MultiQueryEngine` (identical update /
    estimate / pack / reorg work), so the ratio isolates the matching-phase
    saving from the execution trie.  Independent mode runs every query's
    plans separately — the same per-query cost a fleet of single-query
    engines would pay in the kernel — which makes it the per-size baseline;
    a true separate-engines leg (repeating every shared phase too) is
    measured once at the smallest size to anchor the comparison.
    """
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    batch0 = batches[0]
    book = rulebook_suite(max(sizes), num_labels=3, seed=0)

    rows = []
    sweep = []
    for size in sizes:
        queries = book[:size]
        shared_res, shared_wall = _timed_batch(
            lambda: MultiQueryEngine(
                g0, queries, seed=1, shared=True, attribute_counters=False),
            batch0)
        indep_res, indep_wall = _timed_batch(
            lambda: MultiQueryEngine(g0, queries, seed=1, shared=False),
            batch0)

        stats = shared_res.trie_stats
        sweep.append({
            "size": size,
            "shared_wall": shared_wall,
            "indep_wall": indep_wall,
            "shared_match": shared_res.breakdown.match_ns,
            "indep_match": indep_res.breakdown.match_ns,
            "delta_parity": shared_res.delta_counts == indep_res.delta_counts,
            "aliases": len(shared_res.aliases),
        })
        rows.append([
            size,
            indep_wall,
            shared_wall,
            shared_wall / indep_wall,
            indep_res.breakdown.match_ns / 1e6,
            shared_res.breakdown.match_ns / 1e6,
            shared_res.breakdown.match_ns / indep_res.breakdown.match_ns,
            len(shared_res.aliases),
            stats.sharing_ratio,
        ])

    # anchor: true separate-engines wall at the smallest size (repeats the
    # shared phases per query, so it only gets worse at larger sizes)
    size0 = sizes[0]
    start = time.perf_counter()
    for q in book[:size0]:
        GCSMEngine(g0, q, seed=1).process_batch(batch0)
    engines_wall = time.perf_counter() - start

    print_table(
        f"Ablation: shared-trie rulebook sweep ({dataset}, batch {batch})",
        ["size", "indep s", "shared s", "wall ratio",
         "indep match ms", "shared match ms", "match ratio",
         "aliases", "sharing"],
        rows,
    )
    print(f"separate engines at size {size0}: {engines_wall:.2f}s "
          f"(vs shared {sweep[0]['shared_wall']:.2f}s)")
    return sweep, engines_wall


def test_ablation_multiquery_sweep(benchmark, record_table):
    with record_table("ablation_multiquery_sweep"):
        sweep, engines_wall = run_once(benchmark, sweep_rulebook)

    by_size = {entry["size"]: entry for entry in sweep}

    # per-query Delta-M is bit-identical between shared and independent runs
    assert all(entry["delta_parity"] for entry in sweep)

    # shared never loses on kernel work: its access charges are a subset of
    # the independent ones, so simulated match time can only go down
    for entry in sweep:
        assert entry["shared_match"] <= entry["indep_match"], entry

    # strictly sub-linear kernel-time growth: 10x more queries costs < 10x
    growth = by_size[100]["shared_match"] / by_size[10]["shared_match"]
    assert growth < 10.0, f"kernel growth {growth:.2f}x over 10x queries"
    # ...and the advantage widens with rulebook size
    ratios = [e["shared_match"] / e["indep_match"] for e in sweep]
    assert ratios == sorted(ratios, reverse=True), ratios

    # at 100 queries shared execution is at most 60% of the independent
    # wall-clock (itself a lower bound on one-engine-per-query cost: the
    # separate-engines anchor repeats update/estimate/pack/reorg per query)
    big = by_size[100]
    assert big["shared_wall"] <= 0.6 * big["indep_wall"], big
    assert engines_wall >= by_size[10]["indep_wall"]
