"""Ablation: cache-selection policy (DESIGN.md §6, items 1 and 3).

Sweeps the policy axis — no cache at all (budget 0, ≡ pure zero-copy),
degree-ranked (Naive), frequency-ranked (GCSM), and the hybrid extension
(frequency + degree backfill of the unused buffer) — plus a cache-budget
sweep that interpolates between ZC-like and VSGM-like behaviour.
"""

from conftest import run_once

from repro.bench.harness import build_workload, print_table
from repro.core.engine import GCSMEngine
from repro.query import query_by_name


def _run_policy(policy, budget=None, dataset="SF3K", qname="Q1", batch=256):
    g0, batches = build_workload(dataset, batch_size=batch, seed=0)
    kwargs = {} if budget is None else {"cache_budget_bytes": budget}
    engine = GCSMEngine(g0, query_by_name(qname), policy=policy, seed=0, **kwargs)
    return engine.process_batch(batches[0])


def ablate_policies():
    rows = []
    results = {}
    for label, policy, budget in (
        ("no-cache", "frequency", 0),
        ("degree", "degree", 200_000),
        ("frequency (GCSM)", "frequency", None),
        ("hybrid (extension)", "hybrid", None),
    ):
        r = _run_policy(policy, budget)
        results[label] = r
        rows.append([
            label, r.breakdown.total_ns / 1e6, r.breakdown.match_ns / 1e6,
            r.cpu_access_bytes,
            r.cache_hits / max(1, r.cache_hits + r.cache_misses),
        ])
    print_table(
        "Ablation: cache policy (SF3K, Q1, |ΔE|=256)",
        ["policy", "total ms", "match ms", "CPU access B", "hit rate"], rows,
    )
    return results


def ablate_budget():
    rows = []
    results = {}
    for budget in (0, 25_000, 100_000, 400_000, 1_400_000):
        r = _run_policy("frequency", budget)
        results[budget] = r
        rows.append([budget, r.breakdown.total_ns / 1e6, r.cpu_access_bytes])
    print_table(
        "Ablation: cache budget (SF3K, Q1, frequency policy)",
        ["budget B", "total ms", "CPU access B"], rows,
    )
    return results


def test_ablation_cache_policy(benchmark, record_table):
    with record_table("ablation_cache_policy"):
        results = run_once(benchmark, ablate_policies)

    t = {k: r.breakdown.total_ns for k, r in results.items()}
    m = {k: r.breakdown.match_ns for k, r in results.items()}
    # every result identical (caching never changes ΔM)
    assert len({r.delta_count for r in results.values()}) == 1
    # frequency caching beats no caching end-to-end
    assert t["frequency (GCSM)"] < t["no-cache"]
    # the hybrid extension buys the best *kernel* time (it absorbs the most
    # traffic) at the price of a full-buffer DMA each batch — so compare the
    # match phase, where its win must show
    assert m["hybrid (extension)"] <= m["frequency (GCSM)"]
    # hit rates ordered: hybrid >= frequency >= degree >= none
    hr = {k: r.cache_hits / max(1, r.cache_hits + r.cache_misses)
          for k, r in results.items()}
    assert hr["no-cache"] == 0.0
    assert hr["hybrid (extension)"] >= hr["frequency (GCSM)"] >= hr["degree"] * 0.9


def test_ablation_cache_budget(benchmark, record_table):
    with record_table("ablation_cache_budget"):
        results = run_once(benchmark, ablate_budget)

    budgets = sorted(results)
    traffic = [results[b].cpu_access_bytes for b in budgets]
    # more budget -> monotonically less PCIe traffic (weakly)
    for a, b in zip(traffic, traffic[1:]):
        assert b <= a * 1.02, traffic
    assert traffic[-1] < traffic[0]
