"""Load generation for the continuous-ingest service.

A tenant is one standing (graph, query) registration plus a stream of
:class:`~repro.graphs.stream.UpdateBatch` es arriving over *simulated* time.
Batches come from the PR 5 adversarial stream families
(:func:`~repro.core.validation.generate_adversarial_stream`), so the service
layer is exercised on exactly the dirty real-world inputs the update
protocol was hardened against.

Arrival processes (all in simulated nanoseconds, seeded → deterministic):

* ``"poisson"`` — open loop, exponential inter-arrival at ``rate_per_sec``.
* ``"bursty"``  — open loop, bursts of ``burst`` back-to-back batches
  (1 µs apart) with exponential gaps between bursts; same long-run mean
  rate as the Poisson process.
* ``"closed"``  — closed loop: the next batch arrives ``think_ns`` after
  the previous one *completes* (arrival times are resolved by the server,
  which owns completion times).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.validation import generate_adversarial_stream
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import UpdateBatch
from repro.query.pattern import QueryGraph
from repro.utils import as_generator, require

__all__ = [
    "ARRIVAL_PROCESSES",
    "TenantWorkload",
    "make_tenant_workloads",
]

ARRIVAL_PROCESSES = ("poisson", "bursty", "closed")

_NS_PER_SEC = 1_000_000_000.0
_BURST_GAP_NS = 1_000.0  # intra-burst spacing: 1 µs


@dataclass
class TenantWorkload:
    """One tenant's registration and its pre-generated arrival trace.

    ``arrival_ns[i]`` is batch *i*'s arrival time for open-loop processes;
    for ``"closed"`` it holds only the first arrival — later arrivals are
    completion-driven (``think_ns`` after the previous batch finishes).
    """

    name: str
    initial_graph: StaticGraph
    query: QueryGraph
    batches: list[UpdateBatch]
    arrival_ns: list[float]
    arrival: str = "poisson"
    priority: int = 0
    think_ns: float = 0.0

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def total_updates(self) -> int:
        return sum(len(b) for b in self.batches)


def _arrival_times(
    arrival: str,
    num_batches: int,
    rate_per_sec: float,
    burst: int,
    rng: np.random.Generator,
) -> list[float]:
    require(rate_per_sec > 0, "arrival rate must be positive")
    mean_gap = _NS_PER_SEC / rate_per_sec
    if arrival == "poisson":
        gaps = rng.exponential(mean_gap, size=num_batches)
        return np.cumsum(gaps).tolist()
    if arrival == "bursty":
        require(burst >= 1, "burst size must be >= 1")
        times: list[float] = []
        t = 0.0
        while len(times) < num_batches:
            # keep the long-run rate: one exponential gap buys a whole burst
            t += float(rng.exponential(mean_gap * burst))
            for j in range(burst):
                if len(times) >= num_batches:
                    break
                times.append(t + j * _BURST_GAP_NS)
        return times
    if arrival == "closed":
        # only the first arrival is pre-determined; the server derives the
        # rest from completions + think time
        return [float(rng.exponential(mean_gap))]
    raise ValueError(f"unknown arrival process {arrival!r}")


def make_tenant_workloads(
    num_tenants: int,
    *,
    num_batches: int = 8,
    batch_size: int = 16,
    rate_per_sec: float = 50.0,
    arrival: str = "poisson",
    burst: int = 4,
    think_ns: float = 0.0,
    priorities: list[int] | None = None,
    graph_size: int = 36,
    avg_degree: float = 7.0,
    queries: list[QueryGraph] | None = None,
    seed: int | np.random.Generator | None = 0,
) -> list[TenantWorkload]:
    """Build ``num_tenants`` independent tenants with adversarial streams.

    Each tenant gets its own random labeled graph, a query from the catalog
    rotation, an adversarial update stream, and an arrival trace — all
    derived from one master seed so a service run replays bit-for-bit.
    ``priorities`` defaults to descending (tenant 0 highest), which is what
    makes the priority-scheduler tests discriminating.
    """
    from repro.graphs import generators
    from repro.query import QUERIES

    require(num_tenants >= 1, "need at least one tenant")
    require(arrival in ARRIVAL_PROCESSES, f"unknown arrival process {arrival!r}")
    master = as_generator(seed)
    rotation = queries or [QUERIES["Q1"], QUERIES["Q2"], QUERIES["Q4"]]
    if priorities is None:
        priorities = list(range(num_tenants - 1, -1, -1))
    require(len(priorities) == num_tenants, "one priority per tenant")
    tenants: list[TenantWorkload] = []
    for i in range(num_tenants):
        tseed = int(master.integers(0, 2**31 - 1))
        rng = np.random.default_rng(tseed)
        g0 = generators.erdos_renyi(
            graph_size, avg_degree, num_labels=3,
            seed=np.random.default_rng(tseed),
        )
        batches = generate_adversarial_stream(
            g0, num_batches=num_batches, batch_size=batch_size,
            seed=np.random.default_rng(tseed + 1),
        )
        tenants.append(TenantWorkload(
            name=f"tenant{i}",
            initial_graph=g0,
            query=rotation[i % len(rotation)],
            batches=batches,
            arrival_ns=_arrival_times(arrival, len(batches), rate_per_sec, burst, rng),
            arrival=arrival,
            priority=priorities[i],
            think_ns=think_ns,
        ))
    return tenants
