"""The continuous-ingest service: queues, admission, scheduling, SLOs.

:class:`MatchService` multiplexes many tenant update streams onto a fleet
of simulated devices.  Each tenant owns an engine (pipelined or serial)
over its own graph/query registration; the service owns *when* each batch
runs.  The simulation is event-driven in simulated nanoseconds — the same
clock the engines charge — so a run is fully deterministic given its seed.

Model
-----
* **Arrival**: per-tenant open-loop traces (Poisson/bursty) or closed-loop
  (completion + think time), from :mod:`repro.service.load`.
* **Queues**: one bounded FIFO :class:`TenantQueue` per tenant; pushing
  into a full queue raises :class:`QueueFullError`.
* **Admission** (what the server does with that error):
  ``"reject"`` drops the arriving batch, ``"shed-oldest"`` evicts the
  queue head to make room, ``"backpressure"`` stalls the producer (the
  arrival — and everything behind it — shifts later; the stall is
  recorded).
* **Scheduling**: when a device frees, ``"fair"`` round-robins over ready
  tenants; ``"priority"`` serves the highest-priority ready tenant
  (least-recently-served within a tie).  A tenant is *ready* when its
  queue is non-empty and it has no batch in service (per-tenant streams
  are strictly ordered: batch k+1's update needs batch k reorganized).
* **Service time**: a dispatched batch occupies its device for the
  engine-reported :attr:`~repro.gpu.clock.TimeBreakdown.pipelined_ns` —
  the pipeline critical path for :class:`~repro.service.pipeline.PipelinedEngine`
  (host prep of the next batch hides under the kernel), the serial
  ``total_ns`` otherwise.  That single number is exactly what the ≥1.3x
  sustained-throughput benchmark measures.
"""

from __future__ import annotations

import heapq
import os
import time
from collections import deque

from repro.core.engine import GCSMEngine
from repro.gpu.counters import AccessCounters
from repro.gpu.device import DeviceConfig
from repro.parallel import default_workers
from repro.service.load import TenantWorkload
from repro.service.metrics import ServiceReport, TenantMetrics
from repro.service.pipeline import PipelinedEngine
from repro.utils import require

__all__ = [
    "QueueFullError",
    "TenantQueue",
    "MatchService",
    "ADMISSION_POLICIES",
    "SCHEDULERS",
]

ADMISSION_POLICIES = ("reject", "shed-oldest", "backpressure")
SCHEDULERS = ("fair", "priority")

# event kinds: completions settle before same-instant arrivals so a freed
# slot is visible to the arrival's admission check
_EV_COMPLETE = 0
_EV_ARRIVAL = 1


class QueueFullError(RuntimeError):
    """Raised by :meth:`TenantQueue.push` when the queue is at capacity."""

    def __init__(self, tenant: str, capacity: int) -> None:
        super().__init__(
            f"tenant {tenant!r} ingest queue full (capacity {capacity})"
        )
        self.tenant = tenant
        self.capacity = capacity


class TenantQueue:
    """Bounded FIFO of pending ``(arrival_ns, batch_index)`` entries."""

    def __init__(self, tenant: str, capacity: int) -> None:
        require(capacity >= 1, "queue capacity must be >= 1")
        self.tenant = tenant
        self.capacity = capacity
        self._items: deque[tuple[float, int]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, arrival_ns: float, batch_index: int) -> None:
        if self.full:
            raise QueueFullError(self.tenant, self.capacity)
        self._items.append((arrival_ns, batch_index))

    def pop(self) -> tuple[float, int]:
        require(len(self._items) > 0, "pop from empty tenant queue")
        return self._items.popleft()

    def shed_oldest(self) -> tuple[float, int]:
        """Evict the head entry (the shed-oldest admission action)."""
        return self.pop()


class _TenantState:
    """Server-side runtime state for one tenant."""

    def __init__(
        self, workload: TenantWorkload, engine: GCSMEngine,
        queue: TenantQueue, metrics: TenantMetrics,
    ) -> None:
        self.workload = workload
        self.engine = engine
        self.queue = queue
        self.metrics = metrics
        self.next_arrival_index = 0   # cursor into workload.batches
        self.stall_offset_ns = 0.0    # accumulated backpressure shift
        self.busy = False             # a batch of this tenant is in service
        self.waiting: tuple[float, int] | None = None  # stalled arrival
        self.last_served_seq = -1     # for fair/priority tie-breaking

    @property
    def ready(self) -> bool:
        return not self.busy and len(self.queue) > 0


class MatchService:
    """Multi-tenant continuous matching over a simulated device fleet."""

    def __init__(
        self,
        workloads: list[TenantWorkload],
        *,
        num_devices: int = 1,
        queue_capacity: int = 8,
        scheduler: str = "fair",
        admission: str = "reject",
        pipeline: bool = True,
        threaded: bool = True,
        device: DeviceConfig | None = None,
        seed: int = 0,
        engine_kwargs: dict | None = None,
    ) -> None:
        require(len(workloads) >= 1, "need at least one tenant")
        require(num_devices >= 1, "need at least one device")
        require(scheduler in SCHEDULERS, f"unknown scheduler {scheduler!r}")
        require(admission in ADMISSION_POLICIES,
                f"unknown admission policy {admission!r}")
        names = [w.name for w in workloads]
        require(len(set(names)) == len(names), "tenant names must be unique")
        self.scheduler = scheduler
        self.admission = admission
        self.pipeline = pipeline
        self.num_devices = num_devices
        self.queue_capacity = queue_capacity
        self.seed = seed
        kwargs = dict(engine_kwargs or {})
        self.tenants: dict[str, _TenantState] = {}
        for w in workloads:
            if pipeline:
                engine: GCSMEngine = PipelinedEngine(
                    w.initial_graph, w.query, seed=seed, device=device,
                    threaded=threaded, **kwargs,
                )
            else:
                engine = GCSMEngine(
                    w.initial_graph, w.query, seed=seed, device=device, **kwargs
                )
            self.tenants[w.name] = _TenantState(
                w, engine, TenantQueue(w.name, queue_capacity),
                TenantMetrics(w.name, w.priority),
            )
        self._order = names  # round-robin order
        self._rr_next = 0
        self._free_devices = num_devices
        self._events: list[tuple[float, int, int, str]] = []
        self._seq = 0
        self._now = 0.0
        self._serve_seq = 0
        self._counters = AccessCounters()

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, when: float, kind: int, tenant: str) -> None:
        self._seq += 1
        heapq.heappush(self._events, (when, kind, self._seq, tenant))

    def _schedule_next_arrival(self, state: _TenantState) -> None:
        """Put the tenant's next pending arrival on the event heap."""
        i = state.next_arrival_index
        if i >= state.workload.num_batches:
            return
        w = state.workload
        if w.arrival == "closed":
            if i == 0:
                when = w.arrival_ns[0]
            else:
                # resolved at completion time: previous end + think time
                when = self._now + w.think_ns
        else:
            when = w.arrival_ns[i] + state.stall_offset_ns
        self._schedule(max(when, self._now), _EV_ARRIVAL, w.name)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, state: _TenantState, sched_ns: float) -> None:
        """Apply the admission policy to the tenant's next arrival."""
        m = state.metrics
        idx = state.next_arrival_index
        m.on_arrival(self._now)
        try:
            state.queue.push(self._now, idx)
        except QueueFullError:
            if self.admission == "reject":
                m.rejected += 1
            elif self.admission == "shed-oldest":
                state.queue.shed_oldest()
                m.shed += 1
                state.queue.push(self._now, idx)
            else:  # backpressure: the producer stalls with this batch in hand
                state.waiting = (sched_ns, idx)
                m.sample_depth(len(state.queue))
                return  # next arrival deferred until this one is admitted
        state.next_arrival_index = idx + 1
        m.sample_depth(len(state.queue))
        if state.workload.arrival != "closed":
            self._schedule_next_arrival(state)

    def _admit_waiting(self, state: _TenantState) -> None:
        """A queue slot freed: admit the stalled arrival (backpressure)."""
        if state.waiting is None or state.queue.full:
            return
        sched_ns, idx = state.waiting
        state.waiting = None
        stall = max(0.0, self._now - sched_ns)
        state.metrics.stall_ns += stall
        state.stall_offset_ns += stall
        state.queue.push(self._now, idx)
        state.next_arrival_index = idx + 1
        state.metrics.sample_depth(len(state.queue))
        if state.workload.arrival != "closed":
            self._schedule_next_arrival(state)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _pick_tenant(self) -> _TenantState | None:
        ready = [self.tenants[n] for n in self._order if self.tenants[n].ready]
        if not ready:
            return None
        if self.scheduler == "priority":
            best_prio = max(s.workload.priority for s in ready)
            tied = [s for s in ready if s.workload.priority == best_prio]
            return min(tied, key=lambda s: s.last_served_seq)
        # fair: round-robin scan from the cursor
        n = len(self._order)
        for off in range(n):
            state = self.tenants[self._order[(self._rr_next + off) % n]]
            if state.ready:
                self._rr_next = (self._order.index(state.workload.name) + 1) % n
                return state
        return None  # pragma: no cover - ready list non-empty above

    def _dispatch(self) -> None:
        """Assign ready batches to free devices until one side runs out."""
        while self._free_devices > 0:
            state = self._pick_tenant()
            if state is None:
                return
            arrival_ns, idx = state.queue.pop()
            self._admit_waiting(state)  # a slot just freed
            batch = state.workload.batches[idx]
            result = state.engine.process_batch(batch)
            self._counters.merge(result.match_counters)
            service_ns = result.breakdown.pipelined_ns
            start = self._now
            end = start + service_ns
            state.busy = True
            self._serve_seq += 1
            state.last_served_seq = self._serve_seq
            state.metrics.on_complete(
                arrival_ns, start, end, len(batch), result.delta_count
            )
            self._free_devices -= 1
            self._schedule(end, _EV_COMPLETE, state.workload.name)

    # ------------------------------------------------------------------
    def run(self) -> ServiceReport:
        """Drive every tenant's stream to completion; returns the report."""
        wall_start = time.perf_counter()
        for state in self.tenants.values():
            self._schedule_next_arrival(state)
        makespan = 0.0
        while self._events:
            when, kind, _, name = heapq.heappop(self._events)
            self._now = max(self._now, when)
            state = self.tenants[name]
            if kind == _EV_ARRIVAL:
                self._admit(state, when)
            else:  # complete
                state.busy = False
                self._free_devices += 1
                makespan = max(makespan, self._now)
                state.metrics.sample_depth(len(state.queue))
                if state.workload.arrival == "closed":
                    self._schedule_next_arrival(state)
            self._dispatch()
        wall = time.perf_counter() - wall_start
        schedule = None
        if self.pipeline:
            agg: dict[str, float] = {}
            for state in self.tenants.values():
                rep = state.engine.schedule_report().to_dict()  # type: ignore[attr-defined]
                for key in ("serial_ns", "makespan_ns", "overlap_ns",
                            "fill_ns", "drain_ns"):
                    agg[key] = agg.get(key, 0.0) + rep[key]
            agg["speedup"] = (
                agg["serial_ns"] / agg["makespan_ns"] if agg.get("makespan_ns") else 1.0
            )
            schedule = agg
        report = ServiceReport(
            scheduler=self.scheduler,
            admission=self.admission,
            pipeline=self.pipeline,
            num_devices=self.num_devices,
            queue_capacity=self.queue_capacity,
            workers=default_workers(),
            workers_env=os.environ.get("REPRO_WORKERS") or None,
            seed=self.seed,
            makespan_ns=makespan,
            wall_clock_s=wall,
            tenants=[s.metrics.to_dict() for s in self.tenants.values()],
            counters=self._counters.summary(),
            schedule=schedule,
        )
        return report
