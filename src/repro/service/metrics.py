"""Service metrics: per-tenant latency/throughput SLO accounting.

All times are simulated nanoseconds (the same clock the engines charge);
``wall_clock_s`` on the report is the harness's real elapsed time for the
whole run, recorded separately so the artifact captures both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyStats", "TenantMetrics", "ServiceReport"]

_NS_PER_SEC = 1_000_000_000.0


@dataclass
class LatencyStats:
    """Percentile summary of one latency population (ns)."""

    count: int = 0
    p50_ns: float = 0.0
    p95_ns: float = 0.0
    p99_ns: float = 0.0
    max_ns: float = 0.0
    mean_ns: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencyStats":
        if not samples:
            return cls()
        arr = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
        return cls(
            count=int(arr.size),
            p50_ns=float(p50),
            p95_ns=float(p95),
            p99_ns=float(p99),
            max_ns=float(arr.max()),
            mean_ns=float(arr.mean()),
        )

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "max_ns": self.max_ns,
            "mean_ns": self.mean_ns,
        }


class TenantMetrics:
    """Mutable per-tenant collector the server feeds during a run."""

    def __init__(self, name: str, priority: int = 0) -> None:
        self.name = name
        self.priority = priority
        self.latencies_ns: list[float] = []
        self.queue_wait_ns: list[float] = []
        self.completed = 0
        self.arrived = 0
        self.rejected = 0      # dropped at admission (reject policy)
        self.shed = 0          # evicted from the queue (shed-oldest policy)
        self.stall_ns = 0.0    # producer stall time (backpressure policy)
        self.delta_total = 0
        self.edges_completed = 0
        self.service_ns = 0.0  # device-lane occupancy charged to this tenant
        self.depth_samples: list[int] = []
        self.first_arrival_ns = float("inf")
        self.last_completion_ns = 0.0

    # -- recording hooks ------------------------------------------------
    def on_arrival(self, now_ns: float) -> None:
        self.arrived += 1
        self.first_arrival_ns = min(self.first_arrival_ns, now_ns)

    def on_complete(
        self, arrival_ns: float, start_ns: float, end_ns: float,
        batch_len: int, delta: int,
    ) -> None:
        self.completed += 1
        self.latencies_ns.append(end_ns - arrival_ns)
        self.queue_wait_ns.append(start_ns - arrival_ns)
        self.service_ns += end_ns - start_ns
        self.edges_completed += batch_len
        self.delta_total += delta
        self.last_completion_ns = max(self.last_completion_ns, end_ns)

    def sample_depth(self, depth: int) -> None:
        self.depth_samples.append(depth)

    # -- derived --------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.rejected + self.shed

    @property
    def shed_rate(self) -> float:
        """Fraction of arrived batches dropped (rejected or shed)."""
        return self.dropped / self.arrived if self.arrived else 0.0

    @property
    def sustained_edges_per_sec(self) -> float:
        """Completed edge updates per simulated second of active span."""
        span = self.last_completion_ns - min(self.first_arrival_ns, self.last_completion_ns)
        if span <= 0:
            return 0.0
        return self.edges_completed / (span / _NS_PER_SEC)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "priority": self.priority,
            "arrived": self.arrived,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "stall_ns": self.stall_ns,
            "delta_total": self.delta_total,
            "edges_completed": self.edges_completed,
            "service_ns": self.service_ns,
            "sustained_edges_per_sec": self.sustained_edges_per_sec,
            "latency": LatencyStats.from_samples(self.latencies_ns).to_dict(),
            "queue_wait": LatencyStats.from_samples(self.queue_wait_ns).to_dict(),
            "queue_depth_mean": float(np.mean(self.depth_samples)) if self.depth_samples else 0.0,
            "queue_depth_max": int(max(self.depth_samples)) if self.depth_samples else 0,
        }


@dataclass
class ServiceReport:
    """Machine-readable outcome of one service run (JSON round-trippable)."""

    scheduler: str
    admission: str
    pipeline: bool
    num_devices: int
    queue_capacity: int
    workers: int
    workers_env: str | None
    seed: int
    makespan_ns: float
    wall_clock_s: float
    tenants: list[dict] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    schedule: dict | None = None

    # -- aggregates -----------------------------------------------------
    @property
    def completed(self) -> int:
        return sum(t["completed"] for t in self.tenants)

    @property
    def total_edges(self) -> int:
        return sum(t["edges_completed"] for t in self.tenants)

    @property
    def sustained_edges_per_sec(self) -> float:
        """Fleet-level completed edge updates per simulated second."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.total_edges / (self.makespan_ns / _NS_PER_SEC)

    @property
    def max_shed_rate(self) -> float:
        return max((t["shed_rate"] for t in self.tenants), default=0.0)

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "admission": self.admission,
            "pipeline": self.pipeline,
            "num_devices": self.num_devices,
            "queue_capacity": self.queue_capacity,
            "workers": self.workers,
            "workers_env": self.workers_env,
            "seed": self.seed,
            "makespan_ns": self.makespan_ns,
            "wall_clock_s": self.wall_clock_s,
            "sustained_edges_per_sec": self.sustained_edges_per_sec,
            "completed": self.completed,
            "total_edges": self.total_edges,
            "tenants": list(self.tenants),
            "counters": dict(self.counters),
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceReport":
        return cls(
            scheduler=data["scheduler"],
            admission=data["admission"],
            pipeline=data["pipeline"],
            num_devices=data["num_devices"],
            queue_capacity=data["queue_capacity"],
            workers=data["workers"],
            workers_env=data.get("workers_env"),
            seed=data["seed"],
            makespan_ns=data["makespan_ns"],
            wall_clock_s=data["wall_clock_s"],
            tenants=list(data.get("tenants", [])),
            counters=dict(data.get("counters", {})),
            schedule=data.get("schedule"),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ServiceReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- human-readable SLO table ----------------------------------------
    def slo_rows(self) -> list[list[object]]:
        rows: list[list[object]] = []
        for t in sorted(self.tenants, key=lambda t: t["name"]):
            lat = t["latency"]
            rows.append([
                t["name"], t["priority"], t["arrived"], t["completed"],
                f"{lat['p50_ns'] / 1e6:.3f}", f"{lat['p95_ns'] / 1e6:.3f}",
                f"{lat['p99_ns'] / 1e6:.3f}",
                f"{t['sustained_edges_per_sec']:.0f}",
                t["queue_depth_max"], f"{t['shed_rate']:.3f}",
            ])
        return rows

    SLO_HEADER = [
        "tenant", "prio", "arrived", "done", "p50 ms", "p95 ms", "p99 ms",
        "edges/s", "max depth", "shed rate",
    ]
