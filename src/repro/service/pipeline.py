"""The pipelined batch engine: staged, overlapped execution of Fig. 3.

The serial :class:`~repro.core.engine.GCSMEngine` runs the five steps of
every batch back to back.  The paper's system (and GPU batch-dynamic
matchers generally) instead overlap host-side preparation with device-side
matching: while the kernel matches batch *k*, the host already reorganizes
batch *k*'s lists and updates/estimates/packs batch *k+1*.

:class:`PipelinedEngine` implements that schedule on the stage methods the
serial engine exposes (``_stage_update`` .. ``_stage_reorganize``), in two
coupled ways:

* **Simulated time** — a :class:`~repro.gpu.clock.PipelineClock` places each
  batch's stage durations on FIFO CPU/GPU/PEER lanes and annotates the
  batch's :class:`~repro.gpu.clock.TimeBreakdown` with ``critical_path_ns``
  / ``fill_ns`` / ``drain_ns``.  The per-batch critical path sums to the
  schedule makespan, which is what the service layer charges a device for.
* **Wall clock** — the GPU match really runs on a
  :func:`repro.parallel.submit` worker thread against a
  :meth:`~repro.graphs.dynamic_graph.DynamicGraph.freeze` of the store
  (copy-on-write isolation), while the host thread runs reorganize and the
  next batch's CPU stages concurrently.

**Bit-parity contract.**  Per-batch ΔM, ``MatchStats``, access counters,
cache selection, estimator output, and the final store are identical to the
serial engine on any stream, because

1. the frozen view the kernel reads *is* the store state the serial kernel
   would have read (captured after update/pack, before reorganize);
2. reorganize consumes only batch *k*'s touch-set, which the kernel never
   mutates; and
3. the estimator's RNG is consumed in the same order (all CPU stages stay
   serialized on the host thread).

Only the three pipeline fields of the breakdown differ from the serial
engine (they are zero there); ``total_ns`` and every stage time are equal.
The differential stream fuzzer enforces this via the ``"Pipelined"`` system
spec in :mod:`repro.core.validation`.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BatchResult, GCSMEngine
from repro.core.matching import MatchStats
from repro.gpu.clock import PipelineClock, ScheduleReport, TimeBreakdown
from repro.gpu.counters import AccessCounters
from repro.parallel import submit
from repro.query.pattern import QueryGraph  # noqa: F401  (doc cross-ref)
from repro.utils import VERTEX_DTYPE, require

__all__ = ["PipelinedEngine"]


class PipelinedEngine(GCSMEngine):
    """GCSM with cross-batch stage overlap (same results, different clock).

    Accepts every :class:`~repro.core.engine.GCSMEngine` parameter plus:

    threaded:
        Run the GPU match stage on a real worker thread overlapping the
        host stages (the default).  ``False`` keeps execution single-
        threaded — the simulated-time pipeline model still applies, so
        results and annotated breakdowns are identical either way; only
        the harness wall clock changes.
    """

    name = "Pipelined"

    def __init__(self, *args, threaded: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.threaded = threaded
        self.clock = PipelineClock()

    # ------------------------------------------------------------------
    def process_batch(self, batch) -> BatchResult:
        """One batch through the staged pipeline.

        Within the batch, reorganize overlaps the match (the kernel reads a
        frozen epoch); across :meth:`process_batch` calls the pipeline
        clock keeps modeling cross-batch overlap, because its lanes persist
        on the engine.  For real cross-batch wall-clock overlap, feed whole
        streams to :meth:`process_stream`.
        """
        require(len(batch) > 0, "empty batch")
        breakdown = TimeBreakdown()
        batch, breakdown.update_ns = self._stage_update(batch)
        conflicts = self.graph.last_canonical_report
        decision, breakdown.prefilter_ns = self._stage_prefilter(batch)
        if decision is not None and decision.skip_batch:
            breakdown.reorg_ns = self._stage_reorganize()
            return self._finish_skipped(breakdown, decision, conflicts)
        estimate_input = decision.estimate_batch if decision is not None else batch
        estimation, breakdown.estimate_ns = self._stage_estimate(estimate_input)
        selected, cache, breakdown.pack_ns = self._stage_pack(estimation)
        if self.threaded:
            with self.graph.freeze() as frozen:
                task = submit(self._stage_match, batch, cache, frozen, decision)
                breakdown.reorg_ns = self._stage_reorganize()
                stats, match_counters, view, breakdown.match_ns = task.result()
        else:
            stats, match_counters, view, breakdown.match_ns = self._stage_match(
                batch, cache, prefilter=decision
            )
            breakdown.reorg_ns = self._stage_reorganize()
        return self._finish_batch(
            breakdown, stats, match_counters, view, estimation,
            selected, cache, conflicts, decision,
        )

    def process_stream(self, batches) -> list[BatchResult]:
        """Software-pipelined stream execution.

        While the device lane matches batch *k* (on its worker thread,
        against the frozen epoch), the host thread reorganizes *k* and runs
        update/estimate/pack of *k+1* — the schedule
        :class:`~repro.gpu.clock.PipelineClock` models.  Results are
        collected in batch order, so the returned list is exactly what the
        serial engine would have produced.
        """
        if not self.threaded:
            return [self.process_batch(b) for b in batches]
        results: list[BatchResult] = []
        inflight = None
        for raw in batches:
            require(len(raw) > 0, "empty batch")
            breakdown = TimeBreakdown()
            batch, breakdown.update_ns = self._stage_update(raw)
            conflicts = self.graph.last_canonical_report
            decision, breakdown.prefilter_ns = self._stage_prefilter(batch)
            if decision is not None and decision.skip_batch:
                # certified ΔM = 0: nothing to ship to the device lane; the
                # store still reorganizes, and the in-flight batch drains
                # first so results stay in batch order
                breakdown.reorg_ns = self._stage_reorganize()
                if inflight is not None:
                    results.append(self._collect(*inflight))
                    inflight = None
                results.append(self._finish_skipped(breakdown, decision, conflicts))
                continue
            estimate_input = decision.estimate_batch if decision is not None else batch
            estimation, breakdown.estimate_ns = self._stage_estimate(estimate_input)
            selected, cache, breakdown.pack_ns = self._stage_pack(estimation)
            frozen = self.graph.freeze()
            # the decision's masks are immutable, so the kernel thread never
            # races the live index (maintained on this host thread)
            task = submit(self._stage_match, batch, cache, frozen, decision)
            # host continues immediately: the freeze isolates the kernel
            breakdown.reorg_ns = self._stage_reorganize()
            if inflight is not None:
                results.append(self._collect(*inflight))
            inflight = (
                task, frozen, breakdown, estimation, selected, cache, conflicts,
                decision,
            )
        if inflight is not None:
            results.append(self._collect(*inflight))
        return results

    # ------------------------------------------------------------------
    def _collect(
        self, task, frozen, breakdown, estimation, selected, cache, conflicts,
        decision=None,
    ) -> BatchResult:
        try:
            stats, match_counters, view, breakdown.match_ns = task.result()
        finally:
            frozen.release()
        return self._finish_batch(
            breakdown, stats, match_counters, view, estimation,
            selected, cache, conflicts, decision,
        )

    def _finish_batch(
        self, breakdown, stats, match_counters, view, estimation,
        selected, cache, conflicts, decision=None,
    ) -> BatchResult:
        self.clock.annotate(breakdown)
        self.batches_processed += 1
        self.total_delta += stats.signed_count
        return BatchResult(
            delta_count=stats.signed_count,
            match_stats=stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=estimation,
            cached_vertices=selected,
            cache_bytes=cache.total_bytes,
            cache_hits=view.hits,
            cache_misses=view.misses,
            conflicts=conflicts,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
        )

    def _finish_skipped(self, breakdown, decision, conflicts) -> BatchResult:
        """Batch-level certified skip: annotate the (prefilter + reorganize)
        schedule and return an all-zero result carrying the skip stats."""
        self.clock.annotate(breakdown)
        self.batches_processed += 1
        return BatchResult(
            delta_count=0,
            match_stats=MatchStats(roots_skipped=decision.roots_total),
            breakdown=breakdown,
            match_counters=AccessCounters(),
            estimation=None,
            cached_vertices=np.empty(0, dtype=VERTEX_DTYPE),
            cache_bytes=0,
            cache_hits=0,
            cache_misses=0,
            conflicts=conflicts,
            prefilter=decision.to_stats(breakdown.prefilter_ns),
        )

    # ------------------------------------------------------------------
    def schedule_report(self) -> ScheduleReport:
        """Stream-level pipeline schedule summary (makespan, overlap, fill/drain)."""
        return self.clock.report()
