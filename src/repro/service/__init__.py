"""``repro.service``: the pipelined batch engine and the multi-tenant
continuous-ingest service layer built on top of it.

Two layers (see ``docs/service.md``):

* :mod:`repro.service.pipeline` — :class:`~repro.service.pipeline.PipelinedEngine`,
  the staged/overlapped execution of the paper's five-step batch pipeline.
  Bit-identical results to the serial :class:`~repro.core.engine.GCSMEngine`;
  only the schedule (and therefore the time accounting and the wall clock)
  changes.
* :mod:`repro.service.server` — :class:`~repro.service.server.MatchService`,
  a simulated-time serving stack: per-tenant bounded queues, open/closed-loop
  load generators, admission control, fair/priority scheduling over a device
  fleet, and per-tenant latency/throughput SLO metrics.
"""

from repro.service.load import (
    ARRIVAL_PROCESSES,
    TenantWorkload,
    make_tenant_workloads,
)
from repro.service.metrics import LatencyStats, ServiceReport, TenantMetrics
from repro.service.pipeline import PipelinedEngine
from repro.service.server import (
    ADMISSION_POLICIES,
    SCHEDULERS,
    MatchService,
    QueueFullError,
    TenantQueue,
)

__all__ = [
    "PipelinedEngine",
    "MatchService",
    "TenantQueue",
    "QueueFullError",
    "ADMISSION_POLICIES",
    "SCHEDULERS",
    "ARRIVAL_PROCESSES",
    "TenantWorkload",
    "make_tenant_workloads",
    "LatencyStats",
    "TenantMetrics",
    "ServiceReport",
]
