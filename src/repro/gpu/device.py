"""Device model and channel cost constants.

The paper's platform (Sec. VI-A): dual Xeon Gold 6226R (32 cores), RTX3090
(24 GB global memory, 82 SMs, kernels launched as 82 blocks x 1024 threads),
PCIe interconnect.  CUDA offers three CPU->GPU data paths (Sec. II-C):

* **DMA** (``cudaMemcpy``) — high bandwidth for bulk transfers, but each
  request pays a setup cost, so it is wrong for small reads.
* **Unified memory** — page-granular (4 KiB) demand migration with a device
  page cache; wasteful for fine-grained access and each fault stalls.
* **Zero-copy** — direct loads of CPU memory in 128 B cache lines; no setup
  cost, only moves what is touched, but every access crosses PCIe.

``DeviceConfig`` encodes those channels plus GPU global-memory bandwidth and
aggregate compute throughput for the GPU and the 32-thread CPU.  Absolute
values are *scaled analogs* — what the reproduction preserves is the
relative cost structure (global memory ~40x cheaper per byte than PCIe, UM
faults orders of magnitude above a zero-copy line, DMA amortizing only in
bulk), which is what produces the paper's system ranking.  Memory sizes are
scaled by the same ~1e4 factor as the datasets (see
:mod:`repro.graphs.datasets`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.graphs.datasets import (
    DEVICE_BUFFER_BYTES,
    DEVICE_KERNEL_RESERVE_BYTES,
    DEVICE_TOTAL_BYTES,
)

__all__ = [
    "DeviceConfig",
    "ClusterConfig",
    "default_device",
    "default_cluster",
    "BYTES_PER_NEIGHBOR",
    "INTERCONNECTS",
]

#: Neighbor-list entry width: the paper's CUDA kernels use int32 vertex ids.
BYTES_PER_NEIGHBOR = 4


@dataclass(frozen=True)
class DeviceConfig:
    """Cost/capacity model of the simulated CPU-GPU system.

    All times in nanoseconds, sizes in bytes, bandwidths in bytes/ns (= GB/s
    divided by ~1e9... conveniently GB/s == bytes/ns within 7%; we use exact
    bytes-per-nanosecond values).
    """

    # --- capacities ----------------------------------------------------
    global_memory_bytes: int = DEVICE_TOTAL_BYTES
    kernel_reserve_bytes: int = DEVICE_KERNEL_RESERVE_BYTES
    #: budget available for cached graph data (paper: 24 GB - ~10 GB kernel)
    cache_buffer_bytes: int = DEVICE_BUFFER_BYTES

    # --- PCIe / zero-copy ----------------------------------------------
    pcie_bandwidth_bpns: float = 16.0  # ~16 GB/s effective PCIe 3.0 x16
    zero_copy_line_bytes: int = 128  # zero-copy moves 128 B cache lines
    zero_copy_line_overhead_ns: float = 2.0  # per-line issue overhead (amortized over warps)

    # --- peer interconnect (multi-GPU) -----------------------------------
    #: device-to-device reads of a remote shard's cached lists.  Defaults are
    #: NVLink-class: well above PCIe bandwidth, small per-line issue cost.
    #: A remote read still stalls the requesting kernel (same reasoning as
    #: zero-copy: fine-grained, latency-bound), so PEER traffic is priced as
    #: a stall, not overlapped.
    peer_bandwidth_bpns: float = 40.0
    peer_line_bytes: int = 128
    peer_line_overhead_ns: float = 1.5

    # --- unified memory -------------------------------------------------
    um_page_bytes: int = 4096
    um_fault_overhead_ns: float = 25_000.0  # GPU page-fault handling stall
    #: fraction of device memory usable as the UM page cache
    um_cache_fraction: float = 1.0

    # --- DMA -------------------------------------------------------------
    #: per-request engine setup; scaled with the ~1e4 data-size scaling so
    #: fixed costs keep their paper-relative weight
    dma_setup_ns: float = 1_000.0
    dma_bandwidth_bpns: float = 14.0  # pinned-memory DMA over PCIe

    # --- memories --------------------------------------------------------
    gpu_global_bandwidth_bpns: float = 700.0  # RTX3090-class HBM/GDDR6X
    cpu_dram_bandwidth_bpns: float = 100.0  # dual-socket DDR4 aggregate

    # --- compute ----------------------------------------------------------
    #: aggregate GPU throughput for intersection/compare ops (82 blocks x
    #: 1024 threads; tens of thousands of resident threads hide memory
    #: latency almost completely): ops per nanosecond
    gpu_compute_ops_per_ns: float = 60.0
    #: aggregate 32-thread CPU throughput for the same pointer-chasing,
    #: branchy inner loop — latency-bound with far less parallelism to hide
    #: it, hence the large gap to the GPU figure
    cpu_compute_ops_per_ns: float = 1.5
    #: single-threaded CPU throughput (host-side scalar steps)
    cpu_scalar_ops_per_ns: float = 0.5
    #: 32-thread CPU throughput for the frequency-estimation walks: straight
    #: sequential list scans with trivial control flow, far friendlier to
    #: prefetchers and SIMD than the matching loops — hence the higher figure
    cpu_estimator_ops_per_ns: float = 6.0

    # --- derived helpers ---------------------------------------------------
    def zero_copy_lines(self, nbytes: int) -> int:
        """Number of 128 B lines a zero-copy read of ``nbytes`` touches."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.zero_copy_line_bytes)

    def zero_copy_time_ns(self, lines: int) -> float:
        moved = lines * self.zero_copy_line_bytes
        return moved / self.pcie_bandwidth_bpns + lines * self.zero_copy_line_overhead_ns

    def peer_lines(self, nbytes: int) -> int:
        """Number of interconnect lines a peer read of ``nbytes`` touches."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.peer_line_bytes)

    def peer_time_ns(self, lines: int) -> float:
        moved = lines * self.peer_line_bytes
        return moved / self.peer_bandwidth_bpns + lines * self.peer_line_overhead_ns

    def um_fault_time_ns(self, faults: int) -> float:
        moved = faults * self.um_page_bytes
        return faults * self.um_fault_overhead_ns + moved / self.pcie_bandwidth_bpns

    def dma_time_ns(self, nbytes: int, requests: int = 1) -> float:
        if nbytes <= 0 and requests <= 0:
            return 0.0
        return requests * self.dma_setup_ns + nbytes / self.dma_bandwidth_bpns

    def gpu_read_time_ns(self, nbytes: int) -> float:
        return nbytes / self.gpu_global_bandwidth_bpns

    def cpu_read_time_ns(self, nbytes: int) -> float:
        return nbytes / self.cpu_dram_bandwidth_bpns

    def um_cache_pages(self) -> int:
        usable = int(self.global_memory_bytes * self.um_cache_fraction)
        return max(1, usable // self.um_page_bytes)

    def scaled(self, **overrides: float) -> "DeviceConfig":
        """Copy with selected fields overridden (ablation convenience)."""
        return replace(self, **overrides)


def default_device() -> DeviceConfig:
    """The scaled RTX3090-class device used by all paper experiments."""
    return DeviceConfig()


#: named interconnect presets: (peer_bandwidth_bpns, peer_line_overhead_ns).
#: ``nvlink`` is an NVLink3-class point-to-point link; ``pcie`` is P2P over
#: the shared PCIe root complex — barely better than host zero-copy, which is
#: why PCIe-only multi-GPU boxes scale poorly on fine-grained reads.
INTERCONNECTS: dict[str, tuple[float, float]] = {
    "nvlink": (40.0, 1.5),
    "pcie": (12.0, 2.5),
}


@dataclass(frozen=True)
class ClusterConfig:
    """A fleet of identical devices joined by a peer interconnect.

    ``num_devices`` simulated GPUs, each with its own ``base`` DeviceConfig
    (own global memory, cache buffer, and host PCIe link — multi-GPU hosts
    give every card its own x16 slot).  ``interconnect`` picks the peer-link
    cost preset applied on top of ``base``.  ``allreduce_latency_ns`` is the
    per-step software/launch latency of the ring all-reduce used to combine
    per-shard ΔM after matching — scaled by the same factor as
    ``dma_setup_ns`` so the launch-dominated collective keeps its real-world
    weight relative to the scaled-down batches.
    """

    num_devices: int = 1
    interconnect: str = "nvlink"
    base: DeviceConfig = DeviceConfig()
    allreduce_latency_ns: float = 150.0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.interconnect not in INTERCONNECTS:
            raise ValueError(
                f"unknown interconnect {self.interconnect!r}; "
                f"choose from {sorted(INTERCONNECTS)}"
            )

    def device(self) -> DeviceConfig:
        """The per-shard DeviceConfig with the interconnect preset applied."""
        bw, overhead = INTERCONNECTS[self.interconnect]
        return replace(
            self.base, peer_bandwidth_bpns=bw, peer_line_overhead_ns=overhead
        )

    def devices(self) -> list[DeviceConfig]:
        """One config per shard (identical; heterogeneity is future work)."""
        cfg = self.device()
        return [cfg for _ in range(self.num_devices)]

    def allreduce_time_ns(self, nbytes: int) -> float:
        """Ring all-reduce of ``nbytes`` across the fleet: ``2(N-1)`` steps,
        each paying the step latency plus a ``nbytes/N`` payload transfer.
        Zero for a single device (nothing to combine)."""
        n = self.num_devices
        if n <= 1:
            return 0.0
        dev = self.device()
        steps = 2 * (n - 1)
        per_step_payload = max(1, nbytes // n)
        return steps * (
            self.allreduce_latency_ns + per_step_payload / dev.peer_bandwidth_bpns
        )


def default_cluster(num_devices: int = 1, interconnect: str = "nvlink") -> ClusterConfig:
    """Convenience: a fleet of default devices on the given interconnect."""
    return ClusterConfig(num_devices=num_devices, interconnect=interconnect)
