"""Access-trace capture and what-if replay.

A matching run's memory behaviour is fully described by its sequence of
neighbor-list accesses.  :class:`TracingView` wraps any
:class:`~repro.gpu.views.GraphView` and records that sequence; the resulting
:class:`AccessTrace` can then be **replayed** under a different data-path
assignment — a different cached set, a different device, unified memory —
*without re-running the matcher*.  This is how a user answers "what would
this exact workload have cost with a 2x buffer / half the PCIe bandwidth /
an oracle cache?" in milliseconds, and how the test suite cross-validates
the views against each other (replaying a trace through the zero-copy
pricing must reproduce the live ZeroCopyView counters exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.gpu.memory import HostMemoryLayout, UnifiedMemoryPager
from repro.gpu.views import GraphView
from repro.query.plan import EdgeVersion
from repro.utils import require

__all__ = ["AccessTrace", "TracingView", "replay_zero_copy", "replay_cached", "replay_unified_memory"]


@dataclass
class AccessTrace:
    """Recorded access sequence: parallel arrays of (vertex, bytes).

    ``list_lengths`` snapshots per-vertex list lengths at trace time, which
    the unified-memory replay needs to lay out the host address space.
    """

    vertices: np.ndarray
    nbytes: np.ndarray
    list_lengths: np.ndarray

    def __len__(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def total_bytes(self) -> int:
        return int(self.nbytes.sum())

    def distinct_vertices(self) -> np.ndarray:
        return np.unique(self.vertices)

    def access_counts(self) -> np.ndarray:
        """Per-vertex access counts (same histogram the live counters keep)."""
        out = np.zeros(self.list_lengths.shape[0], dtype=np.int64)
        np.add.at(out, self.vertices, 1)
        return out

    def top_vertices(self, k: int) -> np.ndarray:
        """The k most-accessed vertices — the oracle cache set."""
        counts = self.access_counts()
        k = min(k, int(np.count_nonzero(counts)))
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        idx = np.argpartition(-counts, k - 1)[:k]
        return np.sort(idx[np.argsort(-counts[idx], kind="stable")])


class TracingView(GraphView):
    """Wraps an inner view; records every access while delegating to it."""

    def __init__(self, inner: GraphView) -> None:
        super().__init__(inner.graph, inner.device, inner.counters)
        self.platform = inner.platform
        self.inner = inner
        self._vertices: list[int] = []
        self._nbytes: list[int] = []

    def fetch(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        runs = self.inner.fetch(v, version)
        self._vertices.append(v)
        self._nbytes.append(self._nbytes_of(runs))
        return runs

    @staticmethod
    def _nbytes_of(runs: tuple[np.ndarray, ...]) -> int:
        return sum(r.size for r in runs) * BYTES_PER_NEIGHBOR

    def _record(self, v: int, nbytes: int) -> None:  # pragma: no cover
        raise AssertionError("TracingView delegates recording to its inner view")

    def trace(self) -> AccessTrace:
        graph = self.graph
        lengths = np.array(
            [graph.degree_old(v) + graph.delta_neighbors(v).size
             for v in range(graph.num_vertices)],
            dtype=np.int64,
        )
        return AccessTrace(
            vertices=np.asarray(self._vertices, dtype=np.int64),
            nbytes=np.asarray(self._nbytes, dtype=np.int64),
            list_lengths=lengths,
        )


# ----------------------------------------------------------------------
# replay pricers
# ----------------------------------------------------------------------
def replay_zero_copy(trace: AccessTrace, device: DeviceConfig) -> AccessCounters:
    """Price the trace as the ZC baseline would serve it."""
    counters = AccessCounters()
    for v, nb in zip(trace.vertices.tolist(), trace.nbytes.tolist()):
        lines = device.zero_copy_lines(nb)
        counters.record_access(Channel.ZERO_COPY, v, nb, transactions=lines)
    return counters


def replay_cached(
    trace: AccessTrace, device: DeviceConfig, cached: set[int] | np.ndarray
) -> AccessCounters:
    """Price the trace with an arbitrary cached vertex set (GCSM-style:
    hits read device memory, misses zero-copy).  Passing
    ``trace.top_vertices(k)`` gives the *oracle* cache of size k — the upper
    bound any online policy (frequency, degree, hybrid) can approach."""
    cached_set = set(np.asarray(cached).tolist()) if not isinstance(cached, set) else cached
    counters = AccessCounters()
    for v, nb in zip(trace.vertices.tolist(), trace.nbytes.tolist()):
        if v in cached_set:
            counters.record_access(Channel.GPU_GLOBAL, v, nb)
        else:
            lines = device.zero_copy_lines(nb)
            counters.record_access(Channel.ZERO_COPY, v, nb, transactions=lines)
    return counters


def replay_unified_memory(trace: AccessTrace, device: DeviceConfig) -> AccessCounters:
    """Price the trace through a cold UM pager (the UM baseline)."""
    require(trace.list_lengths.size > 0 or len(trace) == 0, "trace missing layout")
    layout = HostMemoryLayout(trace.list_lengths)
    pager = UnifiedMemoryPager(device)
    counters = AccessCounters()
    for v, nb in zip(trace.vertices.tolist(), trace.nbytes.tolist()):
        pages = layout.pages_for(v, nb, device.um_page_bytes)
        hits, faults = pager.access(pages)
        counters.record_um_hit(hits)
        counters.record_um_fault(faults)
        counters.record_access(Channel.UM, v, nb, transactions=len(pages))
        counters.bytes_by_channel[Channel.GPU_GLOBAL] += nb
    return counters
