"""Traffic and work counters.

Every neighbor-list access the matching executor performs is recorded here,
per channel, together with a per-vertex access histogram.  The histogram is
the ground truth behind two paper artifacts: the access-locality CDF of
Fig. 15a (top 5 % of vertices absorb ≥ 80 % of accesses) and the cache
coverage metric of Fig. 15b (``|S ∩ T| / |S|``); it is also the "exact
access frequency" ``C_v`` that the random-walk estimator of Sec. IV is
validated against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Channel", "AccessCounters"]


class Channel(enum.Enum):
    """Where a memory access was served from."""

    GPU_GLOBAL = "gpu_global"  # cached data in device memory
    ZERO_COPY = "zero_copy"  # CPU pinned memory over PCIe, 128 B lines
    UM = "unified_memory"  # page-fault-driven migration
    CPU_DRAM = "cpu_dram"  # host-side execution (CPU baselines)
    PEER = "peer"  # device-to-device reads (NVLink / PCIe P2P, multi-GPU)


@dataclass
class AccessCounters:
    """Mutable per-run counters.

    ``bytes_by_channel`` / ``transactions_by_channel`` aggregate traffic;
    ``compute_ops`` counts inner-loop work (intersection element steps plus
    per-candidate bookkeeping); the vertex histogram counts *accesses to each
    vertex's neighbor list* regardless of channel.
    """

    bytes_by_channel: dict[Channel, int] = field(
        default_factory=lambda: {c: 0 for c in Channel}
    )
    transactions_by_channel: dict[Channel, int] = field(
        default_factory=lambda: {c: 0 for c in Channel}
    )
    um_faults: int = 0
    um_hits: int = 0
    dma_bytes: int = 0
    dma_requests: int = 0
    compute_ops: int = 0
    output_embeddings: int = 0

    def __post_init__(self) -> None:
        self._vertex_counts = np.zeros(1024, dtype=np.int64)
        self._vertex_bytes = np.zeros(1024, dtype=np.int64)

    # ------------------------------------------------------------------
    def record_access(self, channel: Channel, vertex: int, nbytes: int,
                      transactions: int = 1) -> None:
        """Record one neighbor-list access served by ``channel``."""
        self.bytes_by_channel[channel] += nbytes
        self.transactions_by_channel[channel] += transactions
        if vertex >= self._vertex_counts.shape[0]:
            size = max(vertex + 1, 2 * self._vertex_counts.shape[0])
            grown = np.zeros(size, dtype=np.int64)
            grown[: self._vertex_counts.shape[0]] = self._vertex_counts
            self._vertex_counts = grown
            grown_b = np.zeros(size, dtype=np.int64)
            grown_b[: self._vertex_bytes.shape[0]] = self._vertex_bytes
            self._vertex_bytes = grown_b
        self._vertex_counts[vertex] += 1
        self._vertex_bytes[vertex] += nbytes

    def record_access_block(
        self,
        channel: Channel,
        vertices: np.ndarray,
        nbytes: np.ndarray,
        transactions: np.ndarray | None = None,
    ) -> None:
        """Vectorized :meth:`record_access` for one access per array element.

        Produces exactly the counter state that calling :meth:`record_access`
        once per element would — bytes/transactions are summed, the per-vertex
        histogram is bumped with an unbuffered scatter-add — but in O(1)
        NumPy calls.  ``transactions=None`` charges one transaction per
        access, matching the scalar default.
        """
        if vertices.size == 0:
            return
        self.bytes_by_channel[channel] += int(nbytes.sum())
        self.transactions_by_channel[channel] += (
            int(transactions.sum()) if transactions is not None else int(vertices.size)
        )
        top = int(vertices.max())
        if top >= self._vertex_counts.shape[0]:
            size = max(top + 1, 2 * self._vertex_counts.shape[0])
            grown = np.zeros(size, dtype=np.int64)
            grown[: self._vertex_counts.shape[0]] = self._vertex_counts
            self._vertex_counts = grown
            grown_b = np.zeros(size, dtype=np.int64)
            grown_b[: self._vertex_bytes.shape[0]] = self._vertex_bytes
            self._vertex_bytes = grown_b
        np.add.at(self._vertex_counts, vertices, 1)
        np.add.at(self._vertex_bytes, vertices, nbytes)

    def record_um_fault(self, pages: int) -> None:
        self.um_faults += pages

    def record_um_hit(self, pages: int) -> None:
        self.um_hits += pages

    def record_dma(self, nbytes: int, requests: int = 1) -> None:
        self.dma_bytes += nbytes
        self.dma_requests += requests

    def record_compute(self, ops: int) -> None:
        self.compute_ops += ops

    def record_output(self, embeddings: int) -> None:
        self.output_embeddings += embeddings

    # ------------------------------------------------------------------
    def cpu_access_bytes(self, um_page_bytes: int = 4096) -> int:
        """Bytes read from CPU memory by the GPU — the quantity labeled on
        the bars of paper Fig. 8-10 ("data access sizes from CPU").  For the
        zero-copy-based systems this is the PCIe line traffic; UM faults are
        charged at page granularity."""
        return (
            self.bytes_by_channel[Channel.ZERO_COPY]
            + self.um_faults * um_page_bytes
        )

    @property
    def total_access_count(self) -> int:
        return int(self._vertex_counts.sum())

    def vertex_access_counts(self, num_vertices: int | None = None) -> np.ndarray:
        """Per-vertex access histogram, optionally padded/truncated to n."""
        if num_vertices is None:
            return self._vertex_counts.copy()
        out = np.zeros(num_vertices, dtype=np.int64)
        k = min(num_vertices, self._vertex_counts.shape[0])
        out[:k] = self._vertex_counts[:k]
        return out

    def vertex_access_bytes(self, num_vertices: int | None = None) -> np.ndarray:
        """Per-vertex byte histogram, optionally padded/truncated to n."""
        if num_vertices is None:
            return self._vertex_bytes.copy()
        out = np.zeros(num_vertices, dtype=np.int64)
        k = min(num_vertices, self._vertex_bytes.shape[0])
        out[:k] = self._vertex_bytes[:k]
        return out

    def top_fraction_share(self, fraction: float, *, weight: str = "count") -> float:
        """Share of memory access going to the top ``fraction`` of accessed
        vertices (the Fig. 15a statistic).

        ``weight="count"`` ranks and sums access *counts*; ``weight="bytes"``
        ranks and sums the *bytes* those accesses moved — the quantity PCIe
        actually carries, dominated by the large hub lists.
        """
        if weight == "count":
            values = self._vertex_counts
        elif weight == "bytes":
            values = self._vertex_bytes
        else:
            raise ValueError(f"unknown weight {weight!r}")
        values = values[self._vertex_counts > 0]
        total = values.sum()
        if total == 0:
            return 0.0
        # fraction is relative to vertices that were accessed at least once
        k = max(1, int(round(fraction * values.size)))
        top = np.sort(values)[::-1][:k].sum()
        return float(top / total)

    def access_cdf(self, fractions: list[float], *, weight: str = "count") -> list[float]:
        """The Fig. 15a curve: cumulative access share at each top-fraction."""
        return [self.top_fraction_share(f, weight=weight) for f in fractions]

    def merge(self, other: "AccessCounters") -> None:
        """Accumulate ``other`` into ``self`` (multi-batch aggregation)."""
        for c in Channel:
            self.bytes_by_channel[c] += other.bytes_by_channel[c]
            self.transactions_by_channel[c] += other.transactions_by_channel[c]
        self.um_faults += other.um_faults
        self.um_hits += other.um_hits
        self.dma_bytes += other.dma_bytes
        self.dma_requests += other.dma_requests
        self.compute_ops += other.compute_ops
        self.output_embeddings += other.output_embeddings
        if other._vertex_counts.shape[0] > self._vertex_counts.shape[0]:
            grown = np.zeros(other._vertex_counts.shape[0], dtype=np.int64)
            grown[: self._vertex_counts.shape[0]] = self._vertex_counts
            self._vertex_counts = grown
            grown_b = np.zeros(other._vertex_bytes.shape[0], dtype=np.int64)
            grown_b[: self._vertex_bytes.shape[0]] = self._vertex_bytes
            self._vertex_bytes = grown_b
        self._vertex_counts[: other._vertex_counts.shape[0]] += other._vertex_counts
        self._vertex_bytes[: other._vertex_bytes.shape[0]] += other._vertex_bytes

    def summary(self) -> dict[str, float]:
        return {
            "zero_copy_bytes": float(self.bytes_by_channel[Channel.ZERO_COPY]),
            "gpu_global_bytes": float(self.bytes_by_channel[Channel.GPU_GLOBAL]),
            "cpu_dram_bytes": float(self.bytes_by_channel[Channel.CPU_DRAM]),
            "peer_bytes": float(self.bytes_by_channel[Channel.PEER]),
            "um_faults": float(self.um_faults),
            "um_hits": float(self.um_hits),
            "dma_bytes": float(self.dma_bytes),
            "dma_requests": float(self.dma_requests),
            "compute_ops": float(self.compute_ops),
            "accesses": float(self.total_access_count),
            "embeddings": float(self.output_embeddings),
        }
