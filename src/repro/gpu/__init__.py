"""Simulated CPU–GPU memory hierarchy.

The paper's systems all run one and the same matching kernel and differ only
in *where neighbor lists live and how they travel* — GPU global memory, PCIe
zero-copy cache lines, unified-memory page faults, or bulk DMA.  This package
models exactly that: :class:`~repro.gpu.device.DeviceConfig` holds the
channel cost model (derived from the paper's RTX3090/PCIe platform, Sec. II-C
and VI-A), :class:`~repro.gpu.counters.AccessCounters` records the traffic an
actual matching run generates, and the view classes in
:mod:`repro.gpu.views` route every neighbor-list access of the executor
through the appropriate channel.
"""

from repro.gpu.device import ClusterConfig, DeviceConfig, default_cluster, default_device
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.memory import UnifiedMemoryPager, HostMemoryLayout
from repro.gpu.transfer import DmaEngine
from repro.gpu.views import (
    GraphView,
    HostCPUView,
    ZeroCopyView,
    UnifiedMemoryView,
    FullDeviceView,
)
from repro.gpu.trace import (
    AccessTrace,
    TracingView,
    replay_zero_copy,
    replay_cached,
    replay_unified_memory,
)

__all__ = [
    "DeviceConfig",
    "ClusterConfig",
    "default_device",
    "default_cluster",
    "AccessCounters",
    "Channel",
    "TimeBreakdown",
    "simulated_time_ns",
    "UnifiedMemoryPager",
    "HostMemoryLayout",
    "DmaEngine",
    "GraphView",
    "HostCPUView",
    "ZeroCopyView",
    "UnifiedMemoryView",
    "FullDeviceView",
    "AccessTrace",
    "TracingView",
    "replay_zero_copy",
    "replay_cached",
    "replay_unified_memory",
]
