"""Bulk DMA transfer engine (``cudaMemcpy`` analog).

DMA is the right channel for the two bulk movements in the evaluated
systems: GCSM's single packed-DCSR upload per batch (paper Sec. V-B pads the
three arrays into one allocation precisely so one DMA transaction suffices)
and VSGM's k-hop neighbor-list uploads (which dominate its runtime in
Fig. 13).  Each request pays :attr:`DeviceConfig.dma_setup_ns` before the
bandwidth term — the reason fine-grained DMA is never competitive
(Sec. II-C).
"""

from __future__ import annotations

from repro.gpu.counters import AccessCounters
from repro.gpu.device import DeviceConfig

__all__ = ["DmaEngine"]


class DmaEngine:
    """Records DMA transfers into counters and prices them."""

    def __init__(self, device: DeviceConfig, counters: AccessCounters) -> None:
        self.device = device
        self.counters = counters

    def transfer(self, nbytes: int) -> float:
        """Move ``nbytes`` host→device in one request; returns simulated ns."""
        self.counters.record_dma(int(nbytes), requests=1)
        return self.device.dma_time_ns(int(nbytes), requests=1)

    def transfer_many(self, sizes: list[int]) -> float:
        """One request per buffer (the unpacked alternative GCSM avoids)."""
        total = 0.0
        for nbytes in sizes:
            total += self.transfer(nbytes)
        return total
