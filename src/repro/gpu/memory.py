"""Host memory layout and the unified-memory pager.

Unified memory (paper Sec. II-C) maps CPU allocations into the GPU address
space and migrates data on demand at 4 KiB page granularity.  The paper's UM
baseline allocates *all* neighbor lists as managed memory; every cold access
triggers a page fault that stalls the kernel and moves a full page across
PCIe even when only a handful of neighbors are needed — which is why UM ends
up 69-210x slower than zero-copy.

:class:`HostMemoryLayout` assigns every vertex's neighbor list a byte range
in a flat host address space (the analog of the per-vertex
``cudaMallocManaged`` regions laid out by the allocator), and
:class:`UnifiedMemoryPager` implements the device-side LRU page cache.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.utils import require

__all__ = ["HostMemoryLayout", "UnifiedMemoryPager"]


class HostMemoryLayout:
    """Byte offsets of per-vertex neighbor lists in host memory.

    Built from the per-vertex list lengths at batch time.  Each list is
    padded to its allocation capacity (the doubling growth of the dynamic
    store), mirroring how separately-allocated lists really land on distinct
    page ranges.
    """

    def __init__(self, list_lengths: np.ndarray, *, alignment: int = 64) -> None:
        lengths = np.asarray(list_lengths, dtype=np.int64)
        require(bool(np.all(lengths >= 0)), "negative list length")
        sizes = lengths * BYTES_PER_NEIGHBOR
        padded = ((sizes + alignment - 1) // alignment) * alignment
        self.offsets = np.zeros(lengths.shape[0] + 1, dtype=np.int64)
        np.cumsum(padded, out=self.offsets[1:])

    @property
    def total_bytes(self) -> int:
        return int(self.offsets[-1])

    def byte_range(self, vertex: int, nbytes: int) -> tuple[int, int]:
        start = int(self.offsets[vertex])
        return start, start + max(0, nbytes)

    def pages_for(self, vertex: int, nbytes: int, page_bytes: int) -> range:
        """Page ids touched by reading ``nbytes`` of ``vertex``'s list."""
        if nbytes <= 0:
            return range(0)
        start, stop = self.byte_range(vertex, nbytes)
        return range(start // page_bytes, (stop - 1) // page_bytes + 1)


class UnifiedMemoryPager:
    """Device-side LRU page cache for unified memory.

    ``access(pages)`` returns ``(hits, faults)``: already-resident pages are
    refreshed in LRU order; missing pages fault in, evicting the least
    recently used pages once the cache is full.
    """

    def __init__(self, device: DeviceConfig) -> None:
        self.capacity_pages = device.um_cache_pages()
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.total_hits = 0
        self.total_faults = 0
        self.total_evictions = 0

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def access(self, pages: range) -> tuple[int, int]:
        hits = 0
        faults = 0
        for page in pages:
            if page in self._resident:
                self._resident.move_to_end(page)
                hits += 1
            else:
                faults += 1
                self._resident[page] = None
                if len(self._resident) > self.capacity_pages:
                    self._resident.popitem(last=False)
                    self.total_evictions += 1
        self.total_hits += hits
        self.total_faults += faults
        return hits, faults

    def reset(self) -> None:
        """Drop residency and statistics (fresh kernel launch)."""
        self._resident.clear()
        self.total_hits = 0
        self.total_faults = 0
        self.total_evictions = 0
