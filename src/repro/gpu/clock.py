"""Simulated-time accounting.

All experiment timings in the reproduction are *simulated*: deterministic
functions of the traffic and work counted during a real run of the matching
algorithm, priced with the :class:`~repro.gpu.device.DeviceConfig` channel
model.  This keeps the figures machine-independent and reproducible, and is
the substitution for the paper's wall-clock measurements on an RTX3090 (see
DESIGN.md §2).  Wall-clock performance of the harness itself is measured
separately by pytest-benchmark.

The kernel model: a GPU (or parallel CPU) matching kernel overlaps compute
with memory traffic across tens of thousands of threads, so its duration is
the **maximum** of the compute time and each memory stream — except
zero-copy and UM-fault stalls, which serialize with execution (paper
Sec. II-C: "zero-copy access stalls the GPU kernel"), so they *add*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import DeviceConfig

__all__ = [
    "simulated_time_ns",
    "TimeBreakdown",
    "StageSpec",
    "PIPELINE_STAGES",
    "STAGE_RESOURCES",
    "BatchSchedule",
    "PipelineClock",
    "ScheduleReport",
]


def simulated_time_ns(
    counters: AccessCounters,
    device: DeviceConfig,
    *,
    platform: str = "gpu",
) -> float:
    """Price one kernel's counted work as nanoseconds.

    ``platform`` selects the executing processor: ``"gpu"`` (82x1024-thread
    kernel), ``"cpu"`` (32-thread host baseline) or ``"cpu_scalar"``
    (single-threaded host-side steps such as frequency estimation).
    """
    if platform == "gpu":
        compute = counters.compute_ops / device.gpu_compute_ops_per_ns
        overlap = max(
            compute,
            device.gpu_read_time_ns(counters.bytes_by_channel[Channel.GPU_GLOBAL]),
        )
        stalls = (
            device.zero_copy_time_ns(
                counters.transactions_by_channel[Channel.ZERO_COPY]
            )
            + device.um_fault_time_ns(counters.um_faults)
            # remote (peer) reads are as fine-grained as zero-copy ones and
            # stall the requesting kernel the same way — only the link is
            # faster (NVLink) or comparable (PCIe P2P)
            + device.peer_time_ns(counters.transactions_by_channel[Channel.PEER])
        )
        dma = device.dma_time_ns(counters.dma_bytes, counters.dma_requests) \
            if counters.dma_requests else 0.0
        return overlap + stalls + dma
    if platform == "cpu":
        compute = counters.compute_ops / device.cpu_compute_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    if platform == "cpu_scalar":
        compute = counters.compute_ops / device.cpu_scalar_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    if platform == "cpu_estimator":
        compute = counters.compute_ops / device.cpu_estimator_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    raise ValueError(f"unknown platform {platform!r}")


@dataclass
class TimeBreakdown:
    """Per-batch phase timings (the Fig. 13 / Table II decomposition).

    * ``update_ns``   — step 1, folding ΔE into the CPU store
    * ``estimate_ns`` — step 2, random-walk frequency estimation ("FE")
    * ``pack_ns``     — step 3, DCSR packing + DMA to the GPU ("DC")
    * ``match_ns``    — step 4, the incremental matching kernel
    * ``reorg_ns``    — step 5, CPU graph reorganization
    * ``comm_ns``     — multi-GPU only: cross-device collectives (ΔM
      all-reduce); always 0 on a single device
    * ``prefilter_ns`` — aggregate-invariant index maintenance + the
      certified-skip decision (``repro.core.prefilter``); a host-side step
      between update and estimate, always 0 with ``prefilter="off"``
    * ``repartition_ns`` — multi-GPU online repartitioning
      (``repro.multigpu.repartition``): drift evaluation + migration
      planning on the host, plus the PEER/DMA bytes of any accepted
      migration; a host-side step between estimate and pack, always 0
      without ``repartition=``

    The three pipeline fields are 0 for serially executed batches and are
    filled in by :class:`PipelineClock` when the engine models cross-batch
    stage overlap:

    * ``critical_path_ns`` — this batch's contribution to the pipelined
      schedule's makespan (the wall the stream clock actually advanced);
      the sum over a stream equals the schedule makespan, and per batch it
      is ``<= total_ns`` whenever overlap hid some stage under another.
    * ``fill_ns``  — device idle time waiting on this batch's host prep
      (the pipeline-fill bubble: all of batch 0's prep, then any
      steady-state stalls of a CPU-bound pipeline).
    * ``drain_ns`` — schedule tail past this batch's last CPU-lane stage
      if the stream stopped here (the GPU/PEER lanes draining); the
      stream-level drain is the last batch's value.
    """

    update_ns: float = 0.0
    estimate_ns: float = 0.0
    pack_ns: float = 0.0
    match_ns: float = 0.0
    reorg_ns: float = 0.0
    comm_ns: float = 0.0
    prefilter_ns: float = 0.0
    repartition_ns: float = 0.0
    critical_path_ns: float = 0.0
    fill_ns: float = 0.0
    drain_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """Sum of the stage times — the *serial* execution time."""
        return (
            self.update_ns
            + self.estimate_ns
            + self.pack_ns
            + self.match_ns
            + self.reorg_ns
            + self.comm_ns
            + self.prefilter_ns
            + self.repartition_ns
        )

    @property
    def pipelined_ns(self) -> float:
        """Schedule time of this batch: the critical path when a pipeline
        clock annotated it, the serial total otherwise."""
        return self.critical_path_ns if self.critical_path_ns else self.total_ns

    @property
    def overlap_ns(self) -> float:
        """Stage time hidden under other stages by the pipelined schedule
        (0 when the batch ran serially)."""
        if not self.critical_path_ns:
            return 0.0
        return max(0.0, self.total_ns - self.critical_path_ns)

    @property
    def fe_fraction(self) -> float:
        """Frequency-estimation share of total time (Table II's "FE")."""
        return self.estimate_ns / self.total_ns if self.total_ns else 0.0

    @property
    def dc_fraction(self) -> float:
        """Data-copy share of total time (Table II's "DC")."""
        return self.pack_ns / self.total_ns if self.total_ns else 0.0

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            self.update_ns + other.update_ns,
            self.estimate_ns + other.estimate_ns,
            self.pack_ns + other.pack_ns,
            self.match_ns + other.match_ns,
            self.reorg_ns + other.reorg_ns,
            self.comm_ns + other.comm_ns,
            self.prefilter_ns + other.prefilter_ns,
            self.repartition_ns + other.repartition_ns,
            self.critical_path_ns + other.critical_path_ns,
            self.fill_ns + other.fill_ns,
            self.drain_ns + other.drain_ns,
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            self.update_ns * factor,
            self.estimate_ns * factor,
            self.pack_ns * factor,
            self.match_ns * factor,
            self.reorg_ns * factor,
            self.comm_ns * factor,
            self.prefilter_ns * factor,
            self.repartition_ns * factor,
            self.critical_path_ns * factor,
            self.fill_ns * factor,
            self.drain_ns * factor,
        )


# ----------------------------------------------------------------------
# Pipelined stage scheduling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage and the resource class that executes it.

    ``resource`` is one of ``"cpu"`` (the host), ``"gpu"`` (the device
    kernel lane), or ``"peer"`` (the cross-device collective lane).  Each
    resource executes at most one stage at a time, in batch order (FIFO
    lanes) — the model behind :class:`PipelineClock`.
    """

    name: str
    resource: str


#: The five paper steps plus the multi-GPU collective, with their resource
#: classes.  ``reorganize`` is declared *independent of the kernel*: the
#: pipelined engine gives the reorganizer a shadow copy of the touched lists
#: (copy-on-write store freeze) so the host can re-sort while the device is
#: still matching the same batch — see ``docs/service.md``.
PIPELINE_STAGES = (
    StageSpec("update", "cpu"),
    StageSpec("prefilter", "cpu"),
    StageSpec("estimate", "cpu"),
    StageSpec("repartition", "cpu"),
    StageSpec("pack", "cpu"),
    StageSpec("match", "gpu"),
    StageSpec("reorganize", "cpu"),
    StageSpec("comm", "peer"),
)

#: resource class by stage name (convenience for reporting)
STAGE_RESOURCES = {spec.name: spec.resource for spec in PIPELINE_STAGES}


@dataclass(frozen=True)
class BatchSchedule:
    """Where one batch's stages landed on the pipelined timeline."""

    index: int
    start_ns: dict[str, float]
    end_ns: dict[str, float]
    #: makespan contribution: finish(k) - finish(k-1) (sums to the makespan)
    critical_path_ns: float
    #: device idle time waiting on this batch's host prep (fill bubble)
    fill_ns: float
    #: schedule tail past this batch's reorganize if the stream stopped here
    drain_ns: float

    @property
    def finish_ns(self) -> float:
        return max(self.end_ns.values())


class PipelineClock:
    """Incremental scheduler for the staged per-batch pipeline.

    Models the overlapped execution the real engine performs: batch *k+1*'s
    CPU stages (update → estimate → pack) run while batch *k* is still
    matching on the device.  Dependencies:

    * CPU lane, FIFO: ``update(k) → prefilter(k) → estimate(k) →
      repartition(k) → pack(k) → reorganize(k)`` then ``update(k+1)`` —
      the host store is serial.
    * ``match(k)`` starts after ``pack(k)`` (its cache must be shipped) and
      after ``match(k-1)`` (one in-order kernel lane per device fleet).
    * ``comm(k)`` (ΔM all-reduce) follows ``match(k)`` on the PEER lane.
    * ``reorganize(k)`` does **not** wait for ``match(k)``: the store
      freeze hands the kernel an immutable view, so the host re-sorts
      immediately after packing (the same order the threaded engine
      executes for real).

    Feed each batch's serial stage durations to :meth:`advance`; it returns
    the batch's placement and mutates nothing outside the clock.  All times
    are simulated nanoseconds.
    """

    def __init__(self) -> None:
        self.cpu_ns = 0.0
        self.gpu_ns = 0.0
        self.peer_ns = 0.0
        self.num_batches = 0
        self.serial_ns = 0.0  # Σ stage durations (the no-overlap execution)
        self.makespan_ns = 0.0
        self.fill_ns = 0.0
        self.drain_ns = 0.0

    def advance(self, breakdown: TimeBreakdown) -> BatchSchedule:
        """Place one batch's stages on the lanes; returns its schedule."""
        prev_finish = self.makespan_ns
        start: dict[str, float] = {}
        end: dict[str, float] = {}

        # CPU lane: update → estimate → pack → reorganize, contiguous FIFO
        t = self.cpu_ns
        for name, dur in (
            ("update", breakdown.update_ns),
            ("prefilter", breakdown.prefilter_ns),
            ("estimate", breakdown.estimate_ns),
            ("repartition", breakdown.repartition_ns),
            ("pack", breakdown.pack_ns),
        ):
            start[name] = t
            t += dur
            end[name] = t
        # GPU lane: after this batch's pack and the previous match
        start["match"] = max(self.gpu_ns, end["pack"])
        fill = max(0.0, start["match"] - self.gpu_ns)  # device waited on prep
        end["match"] = start["match"] + breakdown.match_ns
        self.gpu_ns = end["match"]
        # reorganize continues on the CPU lane right after pack (shadow-copy
        # isolation lets it overlap this batch's own match)
        start["reorganize"] = t
        t += breakdown.reorg_ns
        end["reorganize"] = t
        self.cpu_ns = t
        # PEER lane: collective after the kernel drains
        start["comm"] = max(self.peer_ns, end["match"])
        end["comm"] = start["comm"] + breakdown.comm_ns
        self.peer_ns = end["comm"]

        finish = max(end.values())
        drain = max(0.0, finish - end["reorganize"])
        self.num_batches += 1
        self.serial_ns += breakdown.total_ns
        self.makespan_ns = max(self.makespan_ns, finish)
        self.fill_ns += fill
        self.drain_ns = drain  # stream drain = the last batch's tail
        return BatchSchedule(
            index=self.num_batches - 1,
            start_ns=start,
            end_ns=end,
            critical_path_ns=max(0.0, self.makespan_ns - prev_finish),
            fill_ns=fill,
            drain_ns=drain,
        )

    def annotate(self, breakdown: TimeBreakdown) -> BatchSchedule:
        """:meth:`advance` + write the pipeline fields into ``breakdown``."""
        sched = self.advance(breakdown)
        breakdown.critical_path_ns = sched.critical_path_ns
        breakdown.fill_ns = sched.fill_ns
        breakdown.drain_ns = sched.drain_ns
        return sched

    def report(self) -> "ScheduleReport":
        return ScheduleReport(
            num_batches=self.num_batches,
            serial_ns=self.serial_ns,
            makespan_ns=self.makespan_ns,
            fill_ns=self.fill_ns,
            drain_ns=self.drain_ns,
            lane_ns={"cpu": self.cpu_ns, "gpu": self.gpu_ns, "peer": self.peer_ns},
        )


@dataclass
class ScheduleReport:
    """Stream-level summary of a pipelined schedule."""

    num_batches: int
    serial_ns: float
    makespan_ns: float
    fill_ns: float
    drain_ns: float
    lane_ns: dict[str, float] = field(default_factory=dict)

    @property
    def overlap_ns(self) -> float:
        """Total stage time hidden by the schedule (serial - makespan)."""
        return max(0.0, self.serial_ns - self.makespan_ns)

    @property
    def speedup(self) -> float:
        """Serial-over-pipelined time ratio (>= 1 by construction)."""
        return self.serial_ns / self.makespan_ns if self.makespan_ns else 1.0

    def to_dict(self) -> dict:
        return {
            "num_batches": self.num_batches,
            "serial_ns": self.serial_ns,
            "makespan_ns": self.makespan_ns,
            "overlap_ns": self.overlap_ns,
            "fill_ns": self.fill_ns,
            "drain_ns": self.drain_ns,
            "speedup": self.speedup,
            "lane_ns": dict(self.lane_ns),
        }
