"""Simulated-time accounting.

All experiment timings in the reproduction are *simulated*: deterministic
functions of the traffic and work counted during a real run of the matching
algorithm, priced with the :class:`~repro.gpu.device.DeviceConfig` channel
model.  This keeps the figures machine-independent and reproducible, and is
the substitution for the paper's wall-clock measurements on an RTX3090 (see
DESIGN.md §2).  Wall-clock performance of the harness itself is measured
separately by pytest-benchmark.

The kernel model: a GPU (or parallel CPU) matching kernel overlaps compute
with memory traffic across tens of thousands of threads, so its duration is
the **maximum** of the compute time and each memory stream — except
zero-copy and UM-fault stalls, which serialize with execution (paper
Sec. II-C: "zero-copy access stalls the GPU kernel"), so they *add*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import DeviceConfig

__all__ = ["simulated_time_ns", "TimeBreakdown"]


def simulated_time_ns(
    counters: AccessCounters,
    device: DeviceConfig,
    *,
    platform: str = "gpu",
) -> float:
    """Price one kernel's counted work as nanoseconds.

    ``platform`` selects the executing processor: ``"gpu"`` (82x1024-thread
    kernel), ``"cpu"`` (32-thread host baseline) or ``"cpu_scalar"``
    (single-threaded host-side steps such as frequency estimation).
    """
    if platform == "gpu":
        compute = counters.compute_ops / device.gpu_compute_ops_per_ns
        overlap = max(
            compute,
            device.gpu_read_time_ns(counters.bytes_by_channel[Channel.GPU_GLOBAL]),
        )
        stalls = (
            device.zero_copy_time_ns(
                counters.transactions_by_channel[Channel.ZERO_COPY]
            )
            + device.um_fault_time_ns(counters.um_faults)
            # remote (peer) reads are as fine-grained as zero-copy ones and
            # stall the requesting kernel the same way — only the link is
            # faster (NVLink) or comparable (PCIe P2P)
            + device.peer_time_ns(counters.transactions_by_channel[Channel.PEER])
        )
        dma = device.dma_time_ns(counters.dma_bytes, counters.dma_requests) \
            if counters.dma_requests else 0.0
        return overlap + stalls + dma
    if platform == "cpu":
        compute = counters.compute_ops / device.cpu_compute_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    if platform == "cpu_scalar":
        compute = counters.compute_ops / device.cpu_scalar_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    if platform == "cpu_estimator":
        compute = counters.compute_ops / device.cpu_estimator_ops_per_ns
        mem = device.cpu_read_time_ns(counters.bytes_by_channel[Channel.CPU_DRAM])
        return max(compute, mem)
    raise ValueError(f"unknown platform {platform!r}")


@dataclass
class TimeBreakdown:
    """Per-batch phase timings (the Fig. 13 / Table II decomposition).

    * ``update_ns``   — step 1, folding ΔE into the CPU store
    * ``estimate_ns`` — step 2, random-walk frequency estimation ("FE")
    * ``pack_ns``     — step 3, DCSR packing + DMA to the GPU ("DC")
    * ``match_ns``    — step 4, the incremental matching kernel
    * ``reorg_ns``    — step 5, CPU graph reorganization
    * ``comm_ns``     — multi-GPU only: cross-device collectives (ΔM
      all-reduce); always 0 on a single device
    """

    update_ns: float = 0.0
    estimate_ns: float = 0.0
    pack_ns: float = 0.0
    match_ns: float = 0.0
    reorg_ns: float = 0.0
    comm_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        return (
            self.update_ns
            + self.estimate_ns
            + self.pack_ns
            + self.match_ns
            + self.reorg_ns
            + self.comm_ns
        )

    @property
    def fe_fraction(self) -> float:
        """Frequency-estimation share of total time (Table II's "FE")."""
        return self.estimate_ns / self.total_ns if self.total_ns else 0.0

    @property
    def dc_fraction(self) -> float:
        """Data-copy share of total time (Table II's "DC")."""
        return self.pack_ns / self.total_ns if self.total_ns else 0.0

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            self.update_ns + other.update_ns,
            self.estimate_ns + other.estimate_ns,
            self.pack_ns + other.pack_ns,
            self.match_ns + other.match_ns,
            self.reorg_ns + other.reorg_ns,
            self.comm_ns + other.comm_ns,
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            self.update_ns * factor,
            self.estimate_ns * factor,
            self.pack_ns * factor,
            self.match_ns * factor,
            self.reorg_ns * factor,
            self.comm_ns * factor,
        )
