"""Device graph views: where the matching kernel's reads are served from.

The executor (:mod:`repro.core.matching`) is backend-agnostic: every
neighbor-list access goes through a :class:`GraphView`, which returns the
requested runs *and* records the traffic on the channel that system would
use.  The four views here model the paper's baselines:

* :class:`HostCPUView`   — CPU baselines: everything is a host DRAM read.
* :class:`ZeroCopyView`  — the ZC baseline: every access crosses PCIe in
  128 B cache lines.
* :class:`UnifiedMemoryView` — the UM baseline: page-granular migration
  through an LRU page cache; cold pages fault.
* :class:`FullDeviceView` — the VSGM baseline: data was bulk-copied to the
  GPU beforehand, so accesses are global-memory reads (the upload itself is
  charged by the caller through :class:`~repro.gpu.transfer.DmaEngine`).

GCSM's cached view (DCSR cache + zero-copy fallback) lives with the cache
logic in :mod:`repro.core.cache`.

The returned arrays follow the Fig. 2 version semantics of
:class:`~repro.query.plan.EdgeVersion`: ``OLD`` yields the single sorted
pre-batch run, ``NEW``/``CURRENT`` yield the (base-kept, delta) pair of
sorted runs whose union is the post-batch list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.gpu.memory import HostMemoryLayout, UnifiedMemoryPager
from repro.query.plan import EdgeVersion

__all__ = [
    "GraphView",
    "HostCPUView",
    "ZeroCopyView",
    "UnifiedMemoryView",
    "FullDeviceView",
]

_EMPTY = np.empty(0, dtype=np.int64)


class GraphView(ABC):
    """Backend-routing wrapper around the dynamic graph.

    ``fetch(v, version)`` returns a tuple of sorted runs whose union is the
    requested adjacency version of ``v``, recording the access.
    """

    #: which platform prices this view's counters (see clock.simulated_time_ns)
    platform: str = "gpu"

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters) -> None:
        self.graph = graph
        self.device = device
        self.counters = counters

    # -- data plumbing ---------------------------------------------------
    def _runs(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        if version is EdgeVersion.OLD:
            return (self.graph.neighbors_old(v),)
        base, delta = self.graph.neighbors_new_parts(v)
        if delta.size:
            return (base, delta)
        return (base,)

    @staticmethod
    def _nbytes(runs: tuple[np.ndarray, ...]) -> int:
        return sum(r.size for r in runs) * BYTES_PER_NEIGHBOR

    # -- public API --------------------------------------------------------
    def fetch(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        runs = self._runs(v, version)
        self._record(v, self._nbytes(runs))
        return runs

    def degree_bound(self, v: int, version: EdgeVersion) -> int:
        """Length of the versioned list *without* charging an access (the
        kernel knows list lengths from its offset arrays)."""
        if version is EdgeVersion.OLD:
            return self.graph.degree_old(v)
        return self.graph.degree_new(v)

    @abstractmethod
    def _record(self, v: int, nbytes: int) -> None:
        """Charge ``nbytes`` of neighbor-list traffic for vertex ``v``."""


class HostCPUView(GraphView):
    """CPU execution: neighbor lists stream from host DRAM."""

    platform = "cpu"

    def _record(self, v: int, nbytes: int) -> None:
        self.counters.record_access(Channel.CPU_DRAM, v, nbytes)


class ZeroCopyView(GraphView):
    """The ZC baseline: all lists pinned on the host, read over PCIe."""

    def _record(self, v: int, nbytes: int) -> None:
        lines = self.device.zero_copy_lines(nbytes)
        self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)


class UnifiedMemoryView(GraphView):
    """The UM baseline: managed memory with demand paging.

    The pager persists across fetches within a batch (pages stay resident
    between kernel accesses) and is reset per batch by default, matching a
    fresh kernel launch with cold device caches.
    """

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters) -> None:
        super().__init__(graph, device, counters)
        lengths = np.array(
            [graph.degree_old(v) + graph.delta_neighbors(v).size
             for v in range(graph.num_vertices)],
            dtype=np.int64,
        )
        self.layout = HostMemoryLayout(lengths)
        self.pager = UnifiedMemoryPager(device)

    def _record(self, v: int, nbytes: int) -> None:
        pages = self.layout.pages_for(v, nbytes, self.device.um_page_bytes)
        hits, faults = self.pager.access(pages)
        self.counters.record_um_hit(hits)
        self.counters.record_um_fault(faults)
        # resident-page reads still cost global-memory bandwidth
        self.counters.record_access(Channel.UM, v, nbytes, transactions=len(pages))
        self.counters.bytes_by_channel[Channel.GPU_GLOBAL] += nbytes


class FullDeviceView(GraphView):
    """The VSGM baseline: the k-hop neighborhood was bulk-uploaded first.

    ``resident`` is the set of vertices whose lists were copied; VSGM's
    construction guarantees every matched vertex is within the query
    diameter of an updated edge, so fallthrough zero-copy reads indicate a
    modeling hole — they are still served (and charged) rather than crashing.
    """

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters, resident: set[int]) -> None:
        super().__init__(graph, device, counters)
        self.resident = resident
        self.fallthrough_accesses = 0

    def _record(self, v: int, nbytes: int) -> None:
        if v in self.resident:
            self.counters.record_access(Channel.GPU_GLOBAL, v, nbytes)
        else:  # pragma: no cover - guarded by VSGM's k-hop construction
            self.fallthrough_accesses += 1
            lines = self.device.zero_copy_lines(nbytes)
            self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)
