"""Device graph views: where the matching kernel's reads are served from.

The executor (:mod:`repro.core.matching`) is backend-agnostic: every
neighbor-list access goes through a :class:`GraphView`, which returns the
requested runs *and* records the traffic on the channel that system would
use.  The four views here model the paper's baselines:

* :class:`HostCPUView`   — CPU baselines: everything is a host DRAM read.
* :class:`ZeroCopyView`  — the ZC baseline: every access crosses PCIe in
  128 B cache lines.
* :class:`UnifiedMemoryView` — the UM baseline: page-granular migration
  through an LRU page cache; cold pages fault.
* :class:`FullDeviceView` — the VSGM baseline: data was bulk-copied to the
  GPU beforehand, so accesses are global-memory reads (the upload itself is
  charged by the caller through :class:`~repro.gpu.transfer.DmaEngine`).

GCSM's cached view (DCSR cache + zero-copy fallback) lives with the cache
logic in :mod:`repro.core.cache`.

The returned arrays follow the Fig. 2 version semantics of
:class:`~repro.query.plan.EdgeVersion`: ``OLD`` yields the single sorted
pre-batch run, ``NEW``/``CURRENT`` yield the (base-kept, delta) pair of
sorted runs whose union is the post-batch list.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.gpu.memory import HostMemoryLayout, UnifiedMemoryPager
from repro.query.plan import EdgeVersion

__all__ = [
    "GraphView",
    "HostCPUView",
    "ZeroCopyView",
    "UnifiedMemoryView",
    "FullDeviceView",
]

_EMPTY = np.empty(0, dtype=np.int64)


class GraphView(ABC):
    """Backend-routing wrapper around the dynamic graph.

    ``fetch(v, version)`` returns a tuple of sorted runs whose union is the
    requested adjacency version of ``v``, recording the access.
    """

    #: which platform prices this view's counters (see clock.simulated_time_ns)
    platform: str = "gpu"

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters) -> None:
        self.graph = graph
        self.device = device
        self.counters = counters

    # -- data plumbing ---------------------------------------------------
    def _runs(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        if version is EdgeVersion.OLD:
            return (self.graph.neighbors_old(v),)
        base, delta = self.graph.neighbors_new_parts(v)
        if delta.size:
            return (base, delta)
        return (base,)

    @staticmethod
    def _nbytes(runs: tuple[np.ndarray, ...]) -> int:
        return sum(r.size for r in runs) * BYTES_PER_NEIGHBOR

    # -- public API --------------------------------------------------------
    def fetch(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        runs = self._runs(v, version)
        self._record(v, self._nbytes(runs))
        return runs

    def peek_runs(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        """Data-only run access for batched executors — no traffic recorded.

        The frontier executor gathers list *contents* once per distinct
        vertex through this hook while charging every individual access
        through :meth:`fetch_block`; together the two reproduce exactly what
        per-access :meth:`fetch` calls would record.
        """
        return self._runs(v, version)

    def degree_bound(self, v: int, version: EdgeVersion) -> int:
        """Length of the versioned list *without* charging an access (the
        kernel knows list lengths from its offset arrays)."""
        if version is EdgeVersion.OLD:
            return self.graph.degree_old(v)
        return self.graph.degree_new(v)

    def degree_bounds_block(self, vertices: np.ndarray, version: EdgeVersion) -> np.ndarray:
        """Vectorized :meth:`degree_bound` over a vertex array (uncharged)."""
        return self._degree_table(version)[vertices]

    def _degree_table(self, version: EdgeVersion) -> np.ndarray:
        """Cached per-vertex versioned degrees.

        Safe to cache per view: a view lives within one batch, during which
        the store's adjacency is frozen (``apply_batch`` done, ``reorganize``
        not yet).
        """
        if version is EdgeVersion.OLD:
            table = getattr(self, "_deg_old", None)
            if table is None:
                table = self.graph.degrees_old()
                self._deg_old = table
            return table
        table = getattr(self, "_deg_new", None)
        if table is None:
            table = self.graph.degrees_new()
            self._deg_new = table
        return table

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        """Record one neighbor-list access per element of ``vertices``.

        Counter-equivalent to calling :meth:`fetch` once per element (the
        returned runs discarded); subclasses override with vectorized
        recording where their channel model is order-insensitive.  The base
        implementation simply loops, so any stateful view (e.g. the UM
        pager) inherits exact per-access semantics.
        """
        for v in vertices.tolist():
            self.fetch(int(v), version)

    def _block_nbytes(self, vertices: np.ndarray, version: EdgeVersion) -> np.ndarray:
        """Per-access byte costs for a block: versioned degree × entry size."""
        return self.degree_bounds_block(vertices, version) * BYTES_PER_NEIGHBOR

    @abstractmethod
    def _record(self, v: int, nbytes: int) -> None:
        """Charge ``nbytes`` of neighbor-list traffic for vertex ``v``."""


class HostCPUView(GraphView):
    """CPU execution: neighbor lists stream from host DRAM."""

    platform = "cpu"

    def _record(self, v: int, nbytes: int) -> None:
        self.counters.record_access(Channel.CPU_DRAM, v, nbytes)

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        if vertices.size == 0:
            return
        self.counters.record_access_block(
            Channel.CPU_DRAM, vertices, self._block_nbytes(vertices, version)
        )


class ZeroCopyView(GraphView):
    """The ZC baseline: all lists pinned on the host, read over PCIe."""

    def _record(self, v: int, nbytes: int) -> None:
        lines = self.device.zero_copy_lines(nbytes)
        self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        if vertices.size == 0:
            return
        nbytes = self._block_nbytes(vertices, version)
        # elementwise analog of device.zero_copy_lines (ceil division, 0 for 0)
        lines = -(-nbytes // self.device.zero_copy_line_bytes)
        self.counters.record_access_block(
            Channel.ZERO_COPY, vertices, nbytes, transactions=lines
        )


class UnifiedMemoryView(GraphView):
    """The UM baseline: managed memory with demand paging.

    The pager persists across fetches within a batch (pages stay resident
    between kernel accesses) and is reset per batch by default, matching a
    fresh kernel launch with cold device caches.

    This view keeps the base class's loop-based :meth:`fetch_block`: the LRU
    pager is access-order sensitive, so batched recording must replay the
    accesses one by one.  (Absent eviction pressure the fault/hit totals are
    order-independent — see ``docs/kernel.md``.)
    """

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters) -> None:
        super().__init__(graph, device, counters)
        lengths = np.array(
            [graph.degree_old(v) + graph.delta_neighbors(v).size
             for v in range(graph.num_vertices)],
            dtype=np.int64,
        )
        self.layout = HostMemoryLayout(lengths)
        self.pager = UnifiedMemoryPager(device)

    def _record(self, v: int, nbytes: int) -> None:
        pages = self.layout.pages_for(v, nbytes, self.device.um_page_bytes)
        hits, faults = self.pager.access(pages)
        self.counters.record_um_hit(hits)
        self.counters.record_um_fault(faults)
        # resident-page reads still cost global-memory bandwidth
        self.counters.record_access(Channel.UM, v, nbytes, transactions=len(pages))
        self.counters.bytes_by_channel[Channel.GPU_GLOBAL] += nbytes


class FullDeviceView(GraphView):
    """The VSGM baseline: the k-hop neighborhood was bulk-uploaded first.

    ``resident`` is the set of vertices whose lists were copied; VSGM's
    construction guarantees every matched vertex is within the query
    diameter of an updated edge, so fallthrough zero-copy reads indicate a
    modeling hole — they are still served (and charged) rather than crashing.
    """

    def __init__(self, graph: DynamicGraph, device: DeviceConfig,
                 counters: AccessCounters, resident: set[int]) -> None:
        super().__init__(graph, device, counters)
        self.resident = resident
        self.fallthrough_accesses = 0
        self._resident_sorted: np.ndarray | None = None

    def _record(self, v: int, nbytes: int) -> None:
        if v in self.resident:
            self.counters.record_access(Channel.GPU_GLOBAL, v, nbytes)
        else:  # pragma: no cover - guarded by VSGM's k-hop construction
            self.fallthrough_accesses += 1
            lines = self.device.zero_copy_lines(nbytes)
            self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        if vertices.size == 0:
            return
        if self._resident_sorted is None:
            self._resident_sorted = np.sort(
                np.fromiter(self.resident, dtype=np.int64, count=len(self.resident))
            )
        res = self._resident_sorted
        pos = np.searchsorted(res, vertices)
        hit = np.zeros(vertices.size, dtype=bool)
        in_range = pos < res.size
        hit[in_range] = res[pos[in_range]] == vertices[in_range]
        nbytes = self._block_nbytes(vertices, version)
        self.counters.record_access_block(
            Channel.GPU_GLOBAL, vertices[hit], nbytes[hit]
        )
        miss = ~hit
        if miss.any():  # pragma: no cover - guarded by VSGM's k-hop construction
            self.fallthrough_accesses += int(miss.sum())
            miss_bytes = nbytes[miss]
            lines = -(-miss_bytes // self.device.zero_copy_line_bytes)
            self.counters.record_access_block(
                Channel.ZERO_COPY, vertices[miss], miss_bytes, transactions=lines
            )
