"""Thread-pool helpers for wall-clock parallelism of the harness.

The *simulated* platform parallelism (82x1024 GPU threads, 32 CPU threads)
lives entirely in the :class:`~repro.gpu.device.DeviceConfig` cost model —
it prices counted work and is deterministic.  This module is about the wall
clock of the *reproduction itself*: independent experiment legs (systems x
queries x graphs) are embarrassingly parallel, and NumPy releases the GIL
inside the set-intersection kernels, so a thread pool gives a useful
speedup without any pickling of multi-megabyte graphs (which rules out
process pools here).

Mirrors the paper's own parallelization boundary: "our CPU code is
parallelized at the outermost loop that iterates over the updated edges" —
:func:`parallel_root_partition` splits a root list into per-worker chunks
the same way.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Generic, Iterable, Sequence, TypeVar

import numpy as np

from repro.utils import require

__all__ = [
    "default_workers",
    "parallel_map",
    "parallel_root_partition",
    "chunked",
    "TaskHandle",
    "submit",
]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count: CPU count capped at 8 (experiment legs are coarse).

    The ``REPRO_WORKERS`` environment variable overrides the probe — the
    service harness records the effective value in its results JSON so a
    run's parallelism is reproducible from the artifact alone.  Invalid or
    non-positive values are ignored (the probe wins), so a stray setting
    can never wedge the harness.
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            forced = int(env)
        except ValueError:
            forced = 0
        if forced >= 1:
            return forced
    return max(1, min(8, os.cpu_count() or 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    ordered: bool = True,
) -> list[R]:
    """Apply ``fn`` to ``items`` on a thread pool, preserving order.

    Falls back to a plain loop for one worker or one item — keeping
    stack traces simple where parallelism buys nothing.  The pool is never
    wider than the item count.  Accepts any iterable (generators are
    materialized once up front).
    """
    n = workers if workers is not None else default_workers()
    require(n >= 1, "workers must be >= 1")
    if not isinstance(items, Sequence):
        items = list(items)
    if n == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n = min(n, len(items))
    with ThreadPoolExecutor(max_workers=n) as pool:
        if ordered:
            return list(pool.map(fn, items))
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


def chunked(
    items: Sequence[T], num_chunks: int, *, pad: bool = False
) -> list[Sequence[T]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, balanced runs.

    With ``pad=True`` the result always has exactly ``num_chunks`` entries,
    the tail padded with empty slices — what fixed-width pipeline stages
    need when ``num_chunks > len(items)`` or the stage receives zero items
    (every lane still gets a well-formed, possibly empty, work list).
    """
    require(num_chunks >= 1, "num_chunks must be >= 1")
    n = len(items)
    if n == 0:
        return [items[0:0] for _ in range(num_chunks)] if pad else []
    effective = min(num_chunks, n)
    bounds = np.linspace(0, n, effective + 1).astype(int)
    chunks = [items[bounds[i] : bounds[i + 1]] for i in range(effective)
              if bounds[i] < bounds[i + 1]]
    if pad and len(chunks) < num_chunks:
        chunks.extend(items[0:0] for _ in range(num_chunks - len(chunks)))
    return chunks


class TaskHandle(Generic[R]):
    """One background task on its own (daemon) worker thread.

    The pipelined engine uses this as its device lane: the GPU match of
    batch *k* runs here while the host thread reorganizes and prepares
    batch *k+1*.  Unlike a pooled future, the thread ends with the task, so
    engines created in bulk (property tests spawn hundreds) never
    accumulate idle workers.  :meth:`result` joins and re-raises any
    exception the task raised.
    """

    def __init__(self, fn: Callable[..., R], /, *args, **kwargs) -> None:
        self._value: R | None = None
        self._error: BaseException | None = None

        def run() -> None:
            try:
                self._value = fn(*args, **kwargs)
            except BaseException as exc:  # re-raised on join
                self._error = exc

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def done(self) -> bool:
        return not self._thread.is_alive()

    def result(self) -> R:
        """Join the worker and return the task's value (or re-raise)."""
        self._thread.join()
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]


def submit(fn: Callable[..., R], /, *args, **kwargs) -> TaskHandle[R]:
    """Run ``fn(*args, **kwargs)`` on a fresh worker thread; returns its
    :class:`TaskHandle`."""
    return TaskHandle(fn, *args, **kwargs)


def parallel_root_partition(
    roots: np.ndarray, signs: np.ndarray, workers: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Partition a root-edge list across workers (the paper's outer-loop
    parallelization).  Returns per-worker ``(roots, signs)`` slices covering
    the input exactly once."""
    require(workers >= 1, "workers must be >= 1")
    require(roots.shape[0] == signs.shape[0], "roots/signs length mismatch")
    if roots.shape[0] == 0:
        return []
    parts = chunked(np.arange(roots.shape[0]), workers)
    return [(roots[idx], signs[idx]) for idx in parts]
