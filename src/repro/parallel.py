"""Thread-pool helpers for wall-clock parallelism of the harness.

The *simulated* platform parallelism (82x1024 GPU threads, 32 CPU threads)
lives entirely in the :class:`~repro.gpu.device.DeviceConfig` cost model —
it prices counted work and is deterministic.  This module is about the wall
clock of the *reproduction itself*: independent experiment legs (systems x
queries x graphs) are embarrassingly parallel, and NumPy releases the GIL
inside the set-intersection kernels, so a thread pool gives a useful
speedup without any pickling of multi-megabyte graphs (which rules out
process pools here).

Mirrors the paper's own parallelization boundary: "our CPU code is
parallelized at the outermost loop that iterates over the updated edges" —
:func:`parallel_root_partition` splits a root list into per-worker chunks
the same way.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.utils import require

__all__ = ["default_workers", "parallel_map", "parallel_root_partition", "chunked"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count: CPU count capped at 8 (experiment legs are coarse)."""
    return max(1, min(8, os.cpu_count() or 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    workers: int | None = None,
    ordered: bool = True,
) -> list[R]:
    """Apply ``fn`` to ``items`` on a thread pool, preserving order.

    Falls back to a plain loop for one worker or one item — keeping
    stack traces simple where parallelism buys nothing.  The pool is never
    wider than the item count.  Accepts any iterable (generators are
    materialized once up front).
    """
    n = workers if workers is not None else default_workers()
    require(n >= 1, "workers must be >= 1")
    if not isinstance(items, Sequence):
        items = list(items)
    if n == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    n = min(n, len(items))
    with ThreadPoolExecutor(max_workers=n) as pool:
        if ordered:
            return list(pool.map(fn, items))
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]


def chunked(items: Sequence[T], num_chunks: int) -> list[Sequence[T]]:
    """Split ``items`` into at most ``num_chunks`` contiguous, balanced runs."""
    require(num_chunks >= 1, "num_chunks must be >= 1")
    n = len(items)
    if n == 0:
        return []
    num_chunks = min(num_chunks, n)
    bounds = np.linspace(0, n, num_chunks + 1).astype(int)
    return [items[bounds[i] : bounds[i + 1]] for i in range(num_chunks)
            if bounds[i] < bounds[i + 1]]


def parallel_root_partition(
    roots: np.ndarray, signs: np.ndarray, workers: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Partition a root-edge list across workers (the paper's outer-loop
    parallelization).  Returns per-worker ``(roots, signs)`` slices covering
    the input exactly once."""
    require(workers >= 1, "workers must be >= 1")
    require(roots.shape[0] == signs.shape[0], "roots/signs length mismatch")
    if roots.shape[0] == 0:
        return []
    parts = chunked(np.arange(roots.shape[0]), workers)
    return [(roots[idx], signs[idx]) for idx in parts]
