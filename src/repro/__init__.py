"""GCSM reproduction: GPU-accelerated continuous subgraph matching.

Reproduces "GCSM: GPU-Accelerated Continuous Subgraph Matching for Large
Graphs" (Wei & Jiang, IPDPS 2024) as a pure-Python library over a simulated
CPU-GPU memory hierarchy.  See README.md for a tour, DESIGN.md for the
system inventory, EXPERIMENTS.md for paper-vs-measured results.

Top-level convenience re-exports cover the primary user workflow::

    from repro import GCSMEngine, QueryGraph, derive_stream, powerlaw_graph

    graph = powerlaw_graph(5_000, 10.0, num_labels=4, seed=7)
    q = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels=[0, 1, 1])
    g0, batches = derive_stream(graph, update_fraction=0.1, batch_size=128, seed=7)
    engine = GCSMEngine(g0, q, seed=7)
    results = engine.process_stream(batches)
"""

from repro.core.engine import BatchResult, GCSMEngine
from repro.core.multiquery import MultiQueryEngine
from repro.graphs.generators import erdos_renyi, powerlaw_graph, road_network
from repro.graphs.static_graph import StaticGraph
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.stream import UpdateBatch, derive_stream
from repro.gpu.device import DeviceConfig, default_device
from repro.query.pattern import QueryGraph, WILDCARD_LABEL
from repro.query.catalog import QUERIES, QUERY_ORDER, motifs, query_by_name

__version__ = "0.1.0"

__all__ = [
    "GCSMEngine",
    "BatchResult",
    "MultiQueryEngine",
    "StaticGraph",
    "DynamicGraph",
    "UpdateBatch",
    "derive_stream",
    "powerlaw_graph",
    "road_network",
    "erdos_renyi",
    "DeviceConfig",
    "default_device",
    "QueryGraph",
    "WILDCARD_LABEL",
    "QUERIES",
    "QUERY_ORDER",
    "motifs",
    "query_by_name",
    "__version__",
]
