"""Edge weights/attributes for predicate-filtered matching.

The weighted-matching axis attaches a scalar attribute ``w(u, v) ∈ [0, 1)``
to every undirected edge.  Queries constrain edges through closed-interval
predicates (:attr:`repro.query.pattern.QueryGraph.edge_predicates`), and the
executors push those predicates into candidate generation.

Two sources provide the weight of an edge:

* **Deterministic hash weights** (the default): ``w`` is a splitmix64-style
  hash of the canonical ``(min(u, v), max(u, v))`` pair, mapped to
  ``[0, 1)``.  Every component — both executors, the shared trie, the
  brute-force oracle — recomputes the identical value from the endpoints
  alone, so weighted streams need no side-channel state and the
  differential fuzzer can validate predicate exactness end to end.
* **Explicit overrides** (:class:`EdgeAttributeStore`): a sparse overlay of
  per-edge weights recorded on insert.  Lookups fall through to the hash
  for every edge without an override, so an empty store is behaviorally
  identical to the default.

Orientation never matters: ``weight(u, v) == weight(v, u)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_weight", "edge_weights", "EdgeAttributeStore"]

# splitmix64 finalizer constants (Steele et al.) — applied over the packed
# canonical pair so close-by vertex ids still give avalanche-mixed weights
_C0 = np.uint64(0x9E3779B97F4A7C15)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_S30 = np.uint64(30)
_S27 = np.uint64(27)
_S31 = np.uint64(31)
_S32 = np.uint64(32)
_S11 = np.uint64(11)
_INV_2_53 = float(2.0 ** -53)


def _mix(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer, vectorized over uint64 (wrapping arithmetic)."""
    with np.errstate(over="ignore"):  # uint64 wraparound is the algorithm
        z = x + _C0
        z = (z ^ (z >> _S30)) * _C1
        z = (z ^ (z >> _S27)) * _C2
        return z ^ (z >> _S31)


def edge_weights(us, vs) -> np.ndarray:
    """Deterministic hash weight of each ``(us[i], vs[i])`` pair in [0, 1).

    Broadcasts its inputs (a scalar anchor against a candidate array is the
    common executor call shape).  Orientation-insensitive: the pair is
    canonicalized to ``(min, max)`` before hashing.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    lo = np.minimum(us, vs).astype(np.uint64)
    hi = np.maximum(us, vs).astype(np.uint64)
    h = _mix((lo << _S32) ^ hi ^ (hi << _S11))
    return (h >> _S11).astype(np.float64) * _INV_2_53


def edge_weight(u: int, v: int) -> float:
    """Scalar convenience wrapper over :func:`edge_weights`."""
    return float(edge_weights(np.int64(u), np.int64(v)))


class EdgeAttributeStore:
    """Sparse explicit-weight overlay over the deterministic hash default.

    ``set_weight`` records an explicit per-edge weight; every other edge
    reads its hash weight, so the empty store is a behavioral no-op and
    engines can thread one through unconditionally.  ``apply_batch`` /
    ``close_batch`` mirror the dynamic store's batch lifecycle: an insert
    carrying an explicit weight records it immediately (new edges have no
    OLD reads to preserve), while a deleted edge's override is only removed
    at ``close_batch`` — OLD-adjacency reads during the open batch must
    still see the pre-batch weight.
    """

    def __init__(self, overrides: dict[tuple[int, int], float] | None = None) -> None:
        self._overrides: dict[tuple[int, int], float] = {}
        for (u, v), w in (overrides or {}).items():
            self.set_weight(u, v, w)
        self._pending_removals: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        u, v = int(u), int(v)
        return (u, v) if u < v else (v, u)

    @property
    def num_overrides(self) -> int:
        return len(self._overrides)

    def set_weight(self, u: int, v: int, w: float) -> None:
        self._overrides[self._key(u, v)] = float(w)

    def clear_weight(self, u: int, v: int) -> None:
        self._overrides.pop(self._key(u, v), None)

    # ------------------------------------------------------------------
    def weight(self, u: int, v: int) -> float:
        w = self._overrides.get(self._key(u, v))
        return w if w is not None else edge_weight(u, v)

    def pair_weights(self, us, vs) -> np.ndarray:
        """Vectorized :meth:`weight` (broadcasts like :func:`edge_weights`)."""
        out = edge_weights(us, vs)
        if self._overrides:
            us_b, vs_b = np.broadcast_arrays(
                np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
            )
            lo = np.minimum(us_b, vs_b).ravel()
            hi = np.maximum(us_b, vs_b).ravel()
            flat = out.ravel()
            get = self._overrides.get
            for i in range(flat.size):
                w = get((int(lo[i]), int(hi[i])))
                if w is not None:
                    flat[i] = w
            out = flat.reshape(out.shape)
        return out

    # ------------------------------------------------------------------
    def apply_batch(self, batch, weights: np.ndarray | None = None) -> None:
        """Fold one (effective) update batch into the overlay.

        ``weights`` optionally supplies an explicit weight per batch row
        (aligned with ``batch.edges``); rows without one keep the hash
        default.  Deleted edges' overrides are queued for removal at
        :meth:`close_batch`, matching the store's OLD/NEW epoch split.
        """
        edges = batch.edges
        signs = batch.signs
        for i in range(edges.shape[0]):
            key = self._key(edges[i, 0], edges[i, 1])
            if signs[i] > 0:
                if weights is not None:
                    self._overrides[key] = float(weights[i])
                self._pending_removals.discard(key)
            elif key in self._overrides:
                self._pending_removals.add(key)

    def close_batch(self) -> None:
        """Drop overrides of edges deleted by the just-settled batch."""
        for key in self._pending_removals:
            self._overrides.pop(key, None)
        self._pending_removals.clear()

    def __repr__(self) -> str:
        return (
            f"EdgeAttributeStore(overrides={len(self._overrides)}, "
            f"pending_removals={len(self._pending_removals)})"
        )
