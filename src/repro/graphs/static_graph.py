"""Immutable CSR graph with vertex labels.

``StaticGraph`` is the exchange format of the library: generators produce it,
the stream deriver consumes it to build the initial snapshot ``G_0`` plus the
update sequence, and the reference matcher runs directly on it.  The dynamic
store (:mod:`repro.graphs.dynamic_graph`) is initialized from a
``StaticGraph`` and can be converted back for oracle comparisons.

Graphs are simple (no self loops, no parallel edges), undirected, and carry an
integer label per vertex — matching the paper's ``G = (V, E, L)`` definition
(Sec. II-A).  Adjacency is stored CSR-style with each neighbor run sorted
ascending, which is what both the WCOJ set intersections and the binary-search
deletion marking rely on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils import VERTEX_DTYPE, is_sorted, require

__all__ = ["StaticGraph"]


class StaticGraph:
    """Compressed-sparse-row undirected labeled graph.

    Parameters
    ----------
    indptr:
        ``int64[n+1]`` CSR row pointer.
    indices:
        ``int64[2m]`` concatenated sorted neighbor lists.
    labels:
        ``int64[n]`` vertex labels.  Defaults to all-zero labels.
    """

    __slots__ = ("indptr", "indices", "labels", "_num_edges")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: np.ndarray | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=VERTEX_DTYPE)
        n = self.indptr.shape[0] - 1
        if labels is None:
            labels = np.zeros(n, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=np.int64)
        self._num_edges = int(self.indices.shape[0]) // 2
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray | Sequence[tuple[int, int]],
        labels: np.ndarray | None = None,
    ) -> "StaticGraph":
        """Build from an ``(m, 2)`` edge array; duplicates/self-loops dropped.

        Each undirected edge is stored in both adjacency directions.
        """
        edge_arr = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
        if edge_arr.size:
            lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
            hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
            keep = lo != hi
            lo, hi = lo[keep], hi[keep]
            require(
                bool(lo.size == 0 or (lo.min() >= 0 and hi.max() < num_vertices)),
                "edge endpoint out of range",
            )
            canon = np.unique(np.stack([lo, hi], axis=1), axis=0)
        else:
            canon = np.empty((0, 2), dtype=VERTEX_DTYPE)
        # symmetrize
        src = np.concatenate([canon[:, 0], canon[:, 1]])
        dst = np.concatenate([canon[:, 1], canon[:, 0]])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.bincount(src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, labels)

    @classmethod
    def empty(cls, num_vertices: int, labels: np.ndarray | None = None) -> "StaticGraph":
        """Graph with ``num_vertices`` isolated vertices."""
        return cls(
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=VERTEX_DTYPE),
            labels,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """``int64[n]`` degree vector."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor view (no copy) of vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        pos = np.searchsorted(nbrs, v)
        return bool(pos < nbrs.size and nbrs[pos] == v)

    def label(self, v: int) -> int:
        return int(self.labels[v])

    def edge_array(self) -> np.ndarray:
        """Return the ``(m, 2)`` canonical (u < v) edge array."""
        src = np.repeat(np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees())
        mask = src < self.indices
        return np.stack([src[mask], self.indices[mask]], axis=1)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        for u, v in self.edge_array():
            yield int(u), int(v)

    def size_bytes(self) -> int:
        """Approximate in-memory footprint of the adjacency structure.

        Used for the Table I "Size" column analog: 4 bytes per stored
        directed neighbor entry plus the row-pointer array — the same
        accounting the paper's C++/CUDA implementation would report for its
        ``int32`` neighbor lists.
        """
        return int(self.indices.shape[0]) * 4 + (self.num_vertices + 1) * 8

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def without_edges(self, edges: np.ndarray) -> "StaticGraph":
        """Copy of the graph with the given undirected edges removed."""
        edge_arr = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
        if edge_arr.size == 0:
            return StaticGraph(self.indptr.copy(), self.indices.copy(), self.labels.copy())
        lo = np.minimum(edge_arr[:, 0], edge_arr[:, 1])
        hi = np.maximum(edge_arr[:, 0], edge_arr[:, 1])
        remove = set(zip(lo.tolist(), hi.tolist()))
        kept = [
            (u, v)
            for u, v in self.edge_array().tolist()
            if (u, v) not in remove
        ]
        return StaticGraph.from_edges(self.num_vertices, kept, self.labels.copy())

    def with_edges(self, edges: np.ndarray) -> "StaticGraph":
        """Copy of the graph with the given undirected edges added."""
        edge_arr = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
        if edge_arr.size == 0:
            return StaticGraph(self.indptr.copy(), self.indices.copy(), self.labels.copy())
        combined = np.concatenate([self.edge_array(), edge_arr], axis=0)
        return StaticGraph.from_edges(self.num_vertices, combined, self.labels.copy())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        require(self.indptr.ndim == 1 and self.indptr.size >= 1, "bad indptr")
        require(bool(self.indptr[0] == 0), "indptr must start at 0")
        require(bool(np.all(np.diff(self.indptr) >= 0)), "indptr must be monotone")
        require(int(self.indptr[-1]) == int(self.indices.shape[0]), "indptr/indices mismatch")
        require(self.labels.shape[0] == self.num_vertices, "labels length mismatch")
        n = self.num_vertices
        if self.indices.size:
            require(bool(self.indices.min() >= 0 and self.indices.max() < n), "neighbor out of range")
        for v in range(n):
            run = self.neighbors(v)
            require(is_sorted(run), f"neighbors of {v} not sorted")
            if run.size > 1:
                require(bool(np.all(run[1:] != run[:-1])), f"duplicate neighbor at {v}")
            pos = np.searchsorted(run, v)
            require(not (pos < run.size and run[pos] == v), f"self loop at {v}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StaticGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.labels, other.labels)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"StaticGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"max_deg={self.max_degree()}, labels={int(self.labels.max(initial=0)) + 1})"
        )
