"""Synthetic graph generators.

The paper evaluates on SNAP graphs (Amazon, RoadNet-PA/CA, LiveJournal,
Friendster) and LDBC Graphalytics social-network graphs (SF3K, SF10K), up to
151 GB — neither available offline nor tractable at full scale in pure
Python.  These generators produce *structural analogs*: what matters for
every effect the paper measures is (a) the degree-skew of the graph (power
law for the social/co-purchase graphs, near-uniform small degree for the
road networks) and (b) the labeled-subgraph density, both of which are
controlled here.  :mod:`repro.graphs.datasets` instantiates the seven Table I
analogs at scaled-down sizes.

All generators return :class:`repro.graphs.static_graph.StaticGraph` and are
deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.utils import VERTEX_DTYPE, as_generator, require

__all__ = [
    "powerlaw_graph",
    "road_network",
    "erdos_renyi",
    "assign_labels",
]


def _powerlaw_weights(n: int, exponent: float, max_degree: int, avg_degree: float) -> np.ndarray:
    """Chung–Lu expected-degree sequence: ``w_i ∝ (i + 1)^(-1/(exponent-1))``.

    Scaled so the mean matches ``avg_degree``; the cap-and-rescale loop pins
    the heaviest ranks at ``max_degree`` while restoring the mean, producing
    the hub-dominated skew of the paper's social graphs (max/avg degree
    ratios of ~30-50x).
    """
    require(exponent > 2.0, "power-law exponent must exceed 2 for finite mean")
    ranks = np.arange(n, dtype=np.float64) + 1.0
    w = ranks ** (-1.0 / (exponent - 1.0))
    w *= avg_degree * n / w.sum()
    for _ in range(6):
        np.minimum(w, max_degree, out=w)
        w *= avg_degree * n / w.sum()
    np.minimum(w, max_degree, out=w)
    return w


def powerlaw_graph(
    num_vertices: int,
    avg_degree: float,
    *,
    exponent: float = 2.5,
    max_degree: int | None = None,
    num_labels: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> StaticGraph:
    """Chung–Lu style power-law graph (social-network analog).

    Endpoints of ``~ n * avg_degree / 2`` candidate edges are sampled
    proportionally to a truncated power-law weight sequence and deduplicated.
    Vertex ids are then shuffled so vertex id carries no degree information
    (the degree-based Naive cache baseline must not get an accidental
    advantage from id ordering).
    """
    rng = as_generator(seed)
    require(num_vertices >= 2, "need at least two vertices")
    if max_degree is None:
        max_degree = max(8, int(num_vertices ** 0.6))
    w = _powerlaw_weights(num_vertices, exponent, max_degree, avg_degree)
    p = w / w.sum()
    target_edges = int(num_vertices * avg_degree / 2)
    # oversample to compensate for duplicate / self-loop rejection
    draws = int(target_edges * 1.35) + 16
    src = rng.choice(num_vertices, size=draws, p=p)
    dst = rng.choice(num_vertices, size=draws, p=p)
    mask = src != dst
    edges = np.stack([src[mask], dst[mask]], axis=1)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    edges = np.unique(np.stack([lo, hi], axis=1), axis=0)
    if edges.shape[0] > target_edges:
        keep = rng.choice(edges.shape[0], size=target_edges, replace=False)
        edges = edges[keep]
    perm = rng.permutation(num_vertices).astype(VERTEX_DTYPE)
    edges = perm[edges]
    labels = assign_labels(num_vertices, num_labels, rng=rng)
    return StaticGraph.from_edges(num_vertices, edges, labels)


def road_network(
    rows: int,
    cols: int,
    *,
    diagonal_fraction: float = 0.3,
    extra_edge_fraction: float = 0.02,
    num_labels: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> StaticGraph:
    """Bounded-degree planar-ish lattice (RoadNet-PA/CA analog).

    A ``rows x cols`` grid (degree ≤ 4) plus a random subset of diagonals
    (up to degree 8) and a few extra short-range links — reproducing the
    small max degree (9–12) of the SNAP road networks.  Road networks are
    the paper's stress test for the claim that CSM locality comes from small
    update batches, not only from degree skew (Fig. 11 discussion).
    """
    rng = as_generator(seed)
    require(rows >= 2 and cols >= 2, "lattice needs at least 2x2")
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_fraction:
                edges.append((vid(r, c), vid(r + 1, c + 1)))
            if r + 1 < rows and c - 1 >= 0 and rng.random() < diagonal_fraction:
                edges.append((vid(r, c), vid(r + 1, c - 1)))
    # extra short-range links create the occasional degree-9..12 junction
    extra = int(n * extra_edge_fraction)
    for _ in range(extra):
        r = int(rng.integers(0, rows))
        c = int(rng.integers(0, cols))
        dr = int(rng.integers(-2, 3))
        dc = int(rng.integers(-2, 3))
        r2, c2 = r + dr, c + dc
        if 0 <= r2 < rows and 0 <= c2 < cols and (dr, dc) != (0, 0):
            edges.append((vid(r, c), vid(r2, c2)))
    labels = assign_labels(n, num_labels, rng=rng)
    return StaticGraph.from_edges(n, edges, labels)


def erdos_renyi(
    num_vertices: int,
    avg_degree: float,
    *,
    num_labels: int = 4,
    seed: int | np.random.Generator | None = 0,
) -> StaticGraph:
    """G(n, m) uniform random graph (used by tests and property checks)."""
    rng = as_generator(seed)
    target_edges = int(num_vertices * avg_degree / 2)
    max_possible = num_vertices * (num_vertices - 1) // 2
    require(target_edges <= max_possible, "too many edges requested")
    draws = int(target_edges * 1.4) + 16
    src = rng.integers(0, num_vertices, size=draws)
    dst = rng.integers(0, num_vertices, size=draws)
    mask = src != dst
    lo = np.minimum(src[mask], dst[mask])
    hi = np.maximum(src[mask], dst[mask])
    edges = np.unique(np.stack([lo, hi], axis=1), axis=0)
    if edges.shape[0] > target_edges:
        keep = rng.choice(edges.shape[0], size=target_edges, replace=False)
        edges = edges[keep]
    labels = assign_labels(num_vertices, num_labels, rng=rng)
    return StaticGraph.from_edges(num_vertices, edges, labels)


def assign_labels(
    num_vertices: int,
    num_labels: int,
    *,
    skew: float = 1.0,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Random vertex labels with an optional Zipf-like frequency skew.

    ``skew == 1.0`` gives a mildly skewed distribution (label k drawn with
    probability ∝ 1/(k+1)); ``skew == 0`` gives uniform labels.
    """
    generator = as_generator(rng)
    require(num_labels >= 1, "need at least one label")
    if num_labels == 1:
        return np.zeros(num_vertices, dtype=np.int64)
    weights = (np.arange(num_labels, dtype=np.float64) + 1.0) ** (-skew)
    weights /= weights.sum()
    return generator.choice(num_labels, size=num_vertices, p=weights).astype(np.int64)
