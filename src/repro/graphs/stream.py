"""Dynamic-stream derivation (paper Sec. VI-A).

The paper generates dynamic graphs from static ones: a set of edges is
sampled from the data graph, each is marked insertion or deletion with equal
probability, edges marked for insertion are removed from the initial graph
``G_0``, and the marked edges are then replayed in batches against ``G_0``.
(A vertex whose incident edges are all removed simply starts isolated.)

:func:`derive_stream` reproduces that methodology and returns the initial
snapshot plus a list of :class:`UpdateBatch` objects.  Batches are the unit
the whole pipeline operates on (``ΔE_k`` in paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.utils import VERTEX_DTYPE, as_generator, require

__all__ = [
    "EdgeUpdate",
    "UpdateBatch",
    "derive_stream",
    "derive_localized_stream",
    "insert_only_stream",
]

#: sign conventions for update operations
INSERT = 1
DELETE = -1


@dataclass(frozen=True)
class EdgeUpdate:
    """A single signed edge update ``(e, ⊕)`` from the paper's stream model."""

    u: int
    v: int
    sign: int  # INSERT (+1) or DELETE (-1)

    def canonical(self) -> tuple[int, int]:
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class UpdateBatch:
    """A batch ``ΔE`` of signed edge updates.

    Parameters
    ----------
    edges:
        ``(b, 2)`` array of undirected endpoints.
    signs:
        ``int64[b]`` of ``+1`` (insert) / ``-1`` (delete).
    new_vertex_labels:
        labels for vertices first introduced by this batch (insertions may
        carry new vertices, per the paper's problem definition).
    """

    __slots__ = ("edges", "signs", "new_vertex_labels")

    def __init__(
        self,
        edges: np.ndarray | Sequence[tuple[int, int]],
        signs: np.ndarray | Sequence[int],
        new_vertex_labels: dict[int, int] | None = None,
    ) -> None:
        self.edges = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
        self.signs = np.asarray(signs, dtype=np.int64).reshape(-1)
        require(self.edges.shape[0] == self.signs.shape[0], "edges/signs length mismatch")
        require(bool(np.all(np.abs(self.signs) == 1)) if self.signs.size else True,
                "signs must be +-1")
        require(bool(np.all(self.edges[:, 0] != self.edges[:, 1])) if self.edges.size else True,
                "self-loop in batch")
        self.new_vertex_labels = dict(new_vertex_labels or {})

    def __len__(self) -> int:
        return int(self.edges.shape[0])

    def insert_edges(self) -> np.ndarray:
        return self.edges[self.signs > 0]

    def delete_edges(self) -> np.ndarray:
        return self.edges[self.signs < 0]

    def max_vertex(self, default: int = -1) -> int:
        if self.edges.size == 0:
            return default
        return int(self.edges.max())

    def directed_updates(self) -> tuple[np.ndarray, np.ndarray]:
        """Both orientations of every update: ``(edges[2b, 2], signs[2b])``.

        The incremental nested loops of paper Fig. 2 iterate ``ΔE`` in both
        directions (the figure omits reverse edges only "for simplicity of
        illustration").
        """
        if len(self) == 0:
            return np.empty((0, 2), dtype=VERTEX_DTYPE), np.empty(0, dtype=np.int64)
        fwd = self.edges
        rev = self.edges[:, ::-1]
        edges = np.concatenate([fwd, rev], axis=0)
        signs = np.concatenate([self.signs, self.signs])
        return edges, signs

    def __repr__(self) -> str:
        n_ins = int(np.count_nonzero(self.signs > 0))
        return f"UpdateBatch(size={len(self)}, inserts={n_ins}, deletes={len(self) - n_ins})"


def derive_stream(
    graph: StaticGraph,
    *,
    num_updates: int | None = None,
    update_fraction: float | None = None,
    batch_size: int = 4096,
    insert_probability: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Derive ``(G_0, [ΔE_0, ΔE_1, ...])`` from a static graph.

    Exactly one of ``num_updates`` (paper: ``12 x 8192`` for the large
    graphs) or ``update_fraction`` (paper: 10 % for AZ/LJ/PA/CA) selects the
    update set.  Each selected edge becomes an insertion with probability
    ``insert_probability`` (paper: 0.5), otherwise a deletion.  Insertion
    edges are removed from the returned initial snapshot so replaying the
    stream reconstructs — and then partially dismantles — the original graph.
    """
    rng = as_generator(seed)
    all_edges = graph.edge_array()
    m = all_edges.shape[0]
    require((num_updates is None) != (update_fraction is None),
            "specify exactly one of num_updates / update_fraction")
    if update_fraction is not None:
        require(0.0 < update_fraction <= 1.0, "update_fraction out of (0, 1]")
        count = max(1, int(round(m * update_fraction)))
    else:
        assert num_updates is not None
        count = int(num_updates)
    require(count <= m, f"cannot select {count} updates from {m} edges")

    chosen = rng.choice(m, size=count, replace=False)
    chosen_edges = all_edges[chosen]
    signs = np.where(rng.random(count) < insert_probability, INSERT, DELETE).astype(np.int64)

    initial = graph.without_edges(chosen_edges[signs > 0])

    # Shuffle the update order, then cut into batches.  A deletion must not
    # precede an insertion of the same edge (each edge is selected once, so
    # deletions always refer to edges present in G_0 — matching the paper).
    order = rng.permutation(count)
    chosen_edges = chosen_edges[order]
    signs = signs[order]

    batches: list[UpdateBatch] = []
    for start in range(0, count, batch_size):
        stop = min(start + batch_size, count)
        batches.append(UpdateBatch(chosen_edges[start:stop], signs[start:stop]))
    return initial, batches


def derive_localized_stream(
    graph: StaticGraph,
    *,
    num_updates: int,
    batch_size: int,
    hotspot_fraction: float = 0.05,
    hotspot_weight: float = 10.0,
    hotspot_bias: str = "uniform",
    insert_probability: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Stream with *spatial locality*: updates cluster around hot vertices.

    Extension beyond the paper's uniform selection: real update streams
    (social activity, transactions) concentrate on hot regions.  A
    ``hotspot_fraction`` of vertices is designated hot and edges incident to
    them are ``hotspot_weight``-times likelier to be selected.
    ``hotspot_bias`` controls who gets hot: ``"uniform"`` picks random
    vertices (geographic locality), ``"degree"`` picks
    popularity-proportionally (activity concentrates on already-popular
    accounts, the common case for social/transaction streams).  Locality
    concentrates the matcher's accesses — quantified by the locality
    ablation bench.
    """
    rng = as_generator(seed)
    require(0 < hotspot_fraction <= 1.0, "hotspot_fraction out of (0, 1]")
    require(hotspot_weight >= 1.0, "hotspot_weight must be >= 1")
    require(hotspot_bias in ("uniform", "degree"), "bias must be uniform|degree")
    all_edges = graph.edge_array()
    m = all_edges.shape[0]
    require(num_updates <= m, f"cannot select {num_updates} updates from {m} edges")

    n = graph.num_vertices
    num_hot = max(1, int(n * hotspot_fraction))
    if hotspot_bias == "degree":
        degs = graph.degrees().astype(np.float64)
        p = degs / degs.sum() if degs.sum() > 0 else None
        hot = rng.choice(n, size=num_hot, replace=False, p=p)
    else:
        hot = rng.choice(n, size=num_hot, replace=False)
    is_hot = np.zeros(n, dtype=bool)
    is_hot[hot] = True
    weights = np.where(is_hot[all_edges[:, 0]] | is_hot[all_edges[:, 1]],
                       hotspot_weight, 1.0)
    weights /= weights.sum()
    chosen = rng.choice(m, size=num_updates, replace=False, p=weights)
    chosen_edges = all_edges[chosen]
    signs = np.where(rng.random(num_updates) < insert_probability,
                     INSERT, DELETE).astype(np.int64)
    initial = graph.without_edges(chosen_edges[signs > 0])
    order = rng.permutation(num_updates)
    chosen_edges, signs = chosen_edges[order], signs[order]
    batches = [
        UpdateBatch(chosen_edges[s : s + batch_size], signs[s : s + batch_size])
        for s in range(0, num_updates, batch_size)
    ]
    return initial, batches


def insert_only_stream(
    graph: StaticGraph,
    *,
    num_updates: int,
    batch_size: int,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Insert-only variant (useful for micro-benchmarks and examples)."""
    rng = as_generator(seed)
    all_edges = graph.edge_array()
    require(num_updates <= all_edges.shape[0], "not enough edges")
    chosen = rng.choice(all_edges.shape[0], size=num_updates, replace=False)
    chosen_edges = all_edges[chosen]
    initial = graph.without_edges(chosen_edges)
    signs = np.full(num_updates, INSERT, dtype=np.int64)
    batches = [
        UpdateBatch(chosen_edges[s : min(s + batch_size, num_updates)],
                    signs[s : min(s + batch_size, num_updates)])
        for s in range(0, num_updates, batch_size)
    ]
    return initial, batches
