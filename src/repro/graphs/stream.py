"""Dynamic-stream derivation (paper Sec. VI-A).

The paper generates dynamic graphs from static ones: a set of edges is
sampled from the data graph, each is marked insertion or deletion with equal
probability, edges marked for insertion are removed from the initial graph
``G_0``, and the marked edges are then replayed in batches against ``G_0``.
(A vertex whose incident edges are all removed simply starts isolated.)

:func:`derive_stream` reproduces that methodology and returns the initial
snapshot plus a list of :class:`UpdateBatch` objects.  Batches are the unit
the whole pipeline operates on (``ΔE_k`` in paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.utils import VERTEX_DTYPE, as_generator, require

__all__ = [
    "EdgeUpdate",
    "UpdateBatch",
    "CanonicalReport",
    "BatchConflictError",
    "CONFLICT_MODES",
    "DEFAULT_CONFLICT_MODE",
    "derive_stream",
    "derive_localized_stream",
    "insert_only_stream",
    "churn_stream",
]

#: sign conventions for update operations
INSERT = 1
DELETE = -1

#: recognized intra-batch conflict-handling modes (see ``docs/streams.md``):
#: ``strict`` rejects any anomalous batch with a diagnostic before the store
#: is touched; ``coalesce`` nets same-edge updates (last occurrence wins) and
#: drops store-level no-ops; ``ignore`` keeps only the first update of each
#: edge and drops store-level no-ops.
CONFLICT_MODES = ("strict", "coalesce", "ignore")

#: default conflict mode for the engines/baselines (the store itself defaults
#: to ``strict`` — see :meth:`repro.graphs.DynamicGraph.apply_batch`).
DEFAULT_CONFLICT_MODE = "coalesce"


class BatchConflictError(ValueError):
    """A batch violates the ``strict`` update-conflict contract.

    Raised *before* any store mutation, with a batch-level diagnostic naming
    each conflict class and example edges — the real-traffic replacement for
    the mid-mutation crashes and silent corruption the raw protocol exhibits
    on duplicate inserts, phantom deletes, and same-batch churn pairs.
    """

    def __init__(self, message: str, report: "CanonicalReport") -> None:
        super().__init__(message)
        self.report = report


@dataclass
class CanonicalReport:
    """Classification of one batch against the current store.

    ``input_size``/``output_size`` are the raw and effective update counts;
    the per-class counters partition the raw updates (after within-batch
    netting) into the four classes of the update-conflict semantics table:
    new insert / duplicate insert / valid delete / phantom delete.
    ``intra_batch_dropped`` counts updates removed because another update of
    the same edge won the within-batch netting.
    """

    mode: str
    input_size: int = 0
    output_size: int = 0
    new_inserts: int = 0
    duplicate_inserts: int = 0
    valid_deletes: int = 0
    phantom_deletes: int = 0
    intra_batch_dropped: int = 0

    @property
    def anomalies(self) -> int:
        """Updates a conflict-free stream would never contain."""
        return self.duplicate_inserts + self.phantom_deletes + self.intra_batch_dropped

    @property
    def dropped(self) -> int:
        return self.input_size - self.output_size

    def merge(self, other: "CanonicalReport") -> None:
        self.input_size += other.input_size
        self.output_size += other.output_size
        self.new_inserts += other.new_inserts
        self.duplicate_inserts += other.duplicate_inserts
        self.valid_deletes += other.valid_deletes
        self.phantom_deletes += other.phantom_deletes
        self.intra_batch_dropped += other.intra_batch_dropped

    def describe(self) -> str:
        return (
            f"canonicalize[{self.mode}]: {self.input_size} -> {self.output_size} "
            f"updates (+{self.new_inserts} insert / -{self.valid_deletes} delete; "
            f"dropped {self.duplicate_inserts} dup-insert, "
            f"{self.phantom_deletes} phantom-delete, "
            f"{self.intra_batch_dropped} intra-batch)"
        )


@dataclass(frozen=True)
class EdgeUpdate:
    """A single signed edge update ``(e, ⊕)`` from the paper's stream model."""

    u: int
    v: int
    sign: int  # INSERT (+1) or DELETE (-1)

    def canonical(self) -> tuple[int, int]:
        return (self.u, self.v) if self.u < self.v else (self.v, self.u)


class UpdateBatch:
    """A batch ``ΔE`` of signed edge updates.

    Parameters
    ----------
    edges:
        ``(b, 2)`` array of undirected endpoints.
    signs:
        ``int64[b]`` of ``+1`` (insert) / ``-1`` (delete).
    new_vertex_labels:
        labels for vertices first introduced by this batch (insertions may
        carry new vertices, per the paper's problem definition).
    """

    __slots__ = ("edges", "signs", "new_vertex_labels")

    def __init__(
        self,
        edges: np.ndarray | Sequence[tuple[int, int]],
        signs: np.ndarray | Sequence[int],
        new_vertex_labels: dict[int, int] | None = None,
    ) -> None:
        self.edges = np.asarray(edges, dtype=VERTEX_DTYPE).reshape(-1, 2)
        self.signs = np.asarray(signs, dtype=np.int64).reshape(-1)
        require(self.edges.shape[0] == self.signs.shape[0], "edges/signs length mismatch")
        require(bool(np.all(np.abs(self.signs) == 1)) if self.signs.size else True,
                "signs must be +-1")
        require(bool(np.all(self.edges[:, 0] != self.edges[:, 1])) if self.edges.size else True,
                "self-loop in batch")
        self.new_vertex_labels = dict(new_vertex_labels or {})

    def __len__(self) -> int:
        return int(self.edges.shape[0])

    def insert_edges(self) -> np.ndarray:
        return self.edges[self.signs > 0]

    def delete_edges(self) -> np.ndarray:
        return self.edges[self.signs < 0]

    def max_vertex(self, default: int = -1) -> int:
        if self.edges.size == 0:
            return default
        return int(self.edges.max())

    def directed_updates(self) -> tuple[np.ndarray, np.ndarray]:
        """Both orientations of every update: ``(edges[2b, 2], signs[2b])``.

        The incremental nested loops of paper Fig. 2 iterate ``ΔE`` in both
        directions (the figure omits reverse edges only "for simplicity of
        illustration").
        """
        if len(self) == 0:
            return np.empty((0, 2), dtype=VERTEX_DTYPE), np.empty(0, dtype=np.int64)
        fwd = self.edges
        rev = self.edges[:, ::-1]
        edges = np.concatenate([fwd, rev], axis=0)
        signs = np.concatenate([self.signs, self.signs])
        return edges, signs

    def canonicalize(
        self, graph, mode: str = "strict"
    ) -> tuple["UpdateBatch", CanonicalReport]:
        """Resolve intra-batch conflicts and classify against ``graph``.

        ``graph`` is the *pre-batch* store — anything exposing
        ``num_vertices`` and ``has_edge_new`` (:class:`~repro.graphs.DynamicGraph`)
        or ``has_edge`` (:class:`~repro.graphs.StaticGraph`).  Updates are
        grouped by undirected edge (orientation-insensitive), netted within
        the batch, and classified as new insert / duplicate insert / valid
        delete / phantom delete:

        * ``strict`` — any same-edge repetition, duplicate insert, or
          phantom delete raises :class:`BatchConflictError` (nothing is
          applied); a clean batch is returned unchanged (same object).
        * ``coalesce`` — the **last** update of each edge wins (the final
          state a sequential replay would reach), then store-level no-ops
          are dropped.  The effective batch is exactly the symmetric
          difference between the pre- and post-batch edge sets.
        * ``ignore`` — the **first** update of each edge wins (later
          conflicting updates are ignored), then store-level no-ops are
          dropped.

        Edge orientation and relative order of the surviving updates are
        preserved, so conflict-free streams pass through bit-identically.
        """
        require(mode in CONFLICT_MODES,
                f"unknown conflict mode {mode!r}; expected one of {CONFLICT_MODES}")
        report = CanonicalReport(mode=mode, input_size=len(self))
        if len(self) == 0:
            report.output_size = 0
            return self, report
        has_edge = getattr(graph, "has_edge_new", None) or graph.has_edge
        n = graph.num_vertices
        lo = np.minimum(self.edges[:, 0], self.edges[:, 1])
        hi = np.maximum(self.edges[:, 0], self.edges[:, 1])
        uniq, inverse = np.unique(
            np.stack([lo, hi], axis=1), axis=0, return_inverse=True
        )
        inverse = inverse.reshape(-1)  # numpy >= 2.0 keeps the (b, 1) shape
        num_groups = uniq.shape[0]
        present = np.fromiter(
            (v < n and has_edge(int(u), int(v)) for u, v in uniq.tolist()),
            count=num_groups, dtype=bool,
        )
        positions = np.arange(len(self), dtype=np.int64)
        if mode == "ignore":
            winner = np.full(num_groups, len(self), dtype=np.int64)
            np.minimum.at(winner, inverse, positions)
        else:  # strict validates, coalesce nets — both look at the last op
            winner = np.full(num_groups, -1, dtype=np.int64)
            np.maximum.at(winner, inverse, positions)
        winner_sign = self.signs[winner]
        keep = np.where(winner_sign > 0, ~present, present)
        group_sizes = np.bincount(inverse, minlength=num_groups)

        report.intra_batch_dropped = int(len(self) - num_groups)
        report.new_inserts = int(np.count_nonzero((winner_sign > 0) & keep))
        report.duplicate_inserts = int(np.count_nonzero((winner_sign > 0) & ~keep))
        report.valid_deletes = int(np.count_nonzero((winner_sign < 0) & keep))
        report.phantom_deletes = int(np.count_nonzero((winner_sign < 0) & ~keep))
        report.output_size = report.new_inserts + report.valid_deletes

        if mode == "strict" and report.anomalies:
            raise BatchConflictError(self._conflict_diagnostic(
                uniq, group_sizes, winner_sign, present, report), report)

        if report.output_size == len(self):
            return self, report  # clean batch: pass through untouched
        order = np.sort(winner[keep])
        return UpdateBatch(
            self.edges[order], self.signs[order], self.new_vertex_labels
        ), report

    @staticmethod
    def _conflict_diagnostic(
        uniq: np.ndarray,
        group_sizes: np.ndarray,
        winner_sign: np.ndarray,
        present: np.ndarray,
        report: CanonicalReport,
        max_examples: int = 4,
    ) -> str:
        """Batch-level ``strict``-mode diagnostic with example edges."""

        def sample(mask: np.ndarray) -> str:
            edges = uniq[mask][:max_examples]
            text = ", ".join(f"({u}, {v})" for u, v in edges.tolist())
            extra = int(np.count_nonzero(mask)) - edges.shape[0]
            return text + (f", ... +{extra} more" if extra > 0 else "")

        parts = []
        repeated = group_sizes > 1
        if repeated.any():
            parts.append(f"{int(np.count_nonzero(repeated))} edge(s) updated "
                         f"more than once in the batch: {sample(repeated)}")
        dup = (winner_sign > 0) & present
        if dup.any():
            parts.append(f"{int(np.count_nonzero(dup))} insert(s) of existing "
                         f"edges: {sample(dup)}")
        phantom = (winner_sign < 0) & ~present
        if phantom.any():
            parts.append(f"{int(np.count_nonzero(phantom))} delete(s) of "
                         f"non-existent edges: {sample(phantom)}")
        return ("strict conflict mode rejected the batch: " + "; ".join(parts)
                + " (use conflict mode 'coalesce' or 'ignore' to net these out)")

    def __repr__(self) -> str:
        n_ins = int(np.count_nonzero(self.signs > 0))
        return f"UpdateBatch(size={len(self)}, inserts={n_ins}, deletes={len(self) - n_ins})"


def derive_stream(
    graph: StaticGraph,
    *,
    num_updates: int | None = None,
    update_fraction: float | None = None,
    batch_size: int = 4096,
    insert_probability: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Derive ``(G_0, [ΔE_0, ΔE_1, ...])`` from a static graph.

    Exactly one of ``num_updates`` (paper: ``12 x 8192`` for the large
    graphs) or ``update_fraction`` (paper: 10 % for AZ/LJ/PA/CA) selects the
    update set.  Each selected edge becomes an insertion with probability
    ``insert_probability`` (paper: 0.5), otherwise a deletion.  Insertion
    edges are removed from the returned initial snapshot so replaying the
    stream reconstructs — and then partially dismantles — the original graph.
    """
    rng = as_generator(seed)
    all_edges = graph.edge_array()
    m = all_edges.shape[0]
    require((num_updates is None) != (update_fraction is None),
            "specify exactly one of num_updates / update_fraction")
    if update_fraction is not None:
        require(0.0 < update_fraction <= 1.0, "update_fraction out of (0, 1]")
        count = max(1, int(round(m * update_fraction)))
    else:
        assert num_updates is not None
        count = int(num_updates)
    require(count <= m, f"cannot select {count} updates from {m} edges")

    chosen = rng.choice(m, size=count, replace=False)
    chosen_edges = all_edges[chosen]
    signs = np.where(rng.random(count) < insert_probability, INSERT, DELETE).astype(np.int64)

    initial = graph.without_edges(chosen_edges[signs > 0])

    # Shuffle the update order, then cut into batches.  A deletion must not
    # precede an insertion of the same edge (each edge is selected once, so
    # deletions always refer to edges present in G_0 — matching the paper).
    order = rng.permutation(count)
    chosen_edges = chosen_edges[order]
    signs = signs[order]

    batches: list[UpdateBatch] = []
    for start in range(0, count, batch_size):
        stop = min(start + batch_size, count)
        batches.append(UpdateBatch(chosen_edges[start:stop], signs[start:stop]))
    return initial, batches


def derive_localized_stream(
    graph: StaticGraph,
    *,
    num_updates: int,
    batch_size: int,
    hotspot_fraction: float = 0.05,
    hotspot_weight: float = 10.0,
    hotspot_bias: str = "uniform",
    insert_probability: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Stream with *spatial locality*: updates cluster around hot vertices.

    Extension beyond the paper's uniform selection: real update streams
    (social activity, transactions) concentrate on hot regions.  A
    ``hotspot_fraction`` of vertices is designated hot and edges incident to
    them are ``hotspot_weight``-times likelier to be selected.
    ``hotspot_bias`` controls who gets hot: ``"uniform"`` picks random
    vertices (geographic locality), ``"degree"`` picks
    popularity-proportionally (activity concentrates on already-popular
    accounts, the common case for social/transaction streams).  Locality
    concentrates the matcher's accesses — quantified by the locality
    ablation bench.
    """
    rng = as_generator(seed)
    require(0 < hotspot_fraction <= 1.0, "hotspot_fraction out of (0, 1]")
    require(hotspot_weight >= 1.0, "hotspot_weight must be >= 1")
    require(hotspot_bias in ("uniform", "degree"), "bias must be uniform|degree")
    all_edges = graph.edge_array()
    m = all_edges.shape[0]
    require(num_updates <= m, f"cannot select {num_updates} updates from {m} edges")

    n = graph.num_vertices
    num_hot = max(1, int(n * hotspot_fraction))
    if hotspot_bias == "degree":
        degs = graph.degrees().astype(np.float64)
        p = degs / degs.sum() if degs.sum() > 0 else None
        hot = rng.choice(n, size=num_hot, replace=False, p=p)
    else:
        hot = rng.choice(n, size=num_hot, replace=False)
    is_hot = np.zeros(n, dtype=bool)
    is_hot[hot] = True
    weights = np.where(is_hot[all_edges[:, 0]] | is_hot[all_edges[:, 1]],
                       hotspot_weight, 1.0)
    weights /= weights.sum()
    chosen = rng.choice(m, size=num_updates, replace=False, p=weights)
    chosen_edges = all_edges[chosen]
    signs = np.where(rng.random(num_updates) < insert_probability,
                     INSERT, DELETE).astype(np.int64)
    initial = graph.without_edges(chosen_edges[signs > 0])
    order = rng.permutation(num_updates)
    chosen_edges, signs = chosen_edges[order], signs[order]
    batches = [
        UpdateBatch(chosen_edges[s : s + batch_size], signs[s : s + batch_size])
        for s in range(0, num_updates, batch_size)
    ]
    return initial, batches


def insert_only_stream(
    graph: StaticGraph,
    *,
    num_updates: int,
    batch_size: int,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Insert-only variant (useful for micro-benchmarks and examples)."""
    rng = as_generator(seed)
    all_edges = graph.edge_array()
    require(num_updates <= all_edges.shape[0], "not enough edges")
    chosen = rng.choice(all_edges.shape[0], size=num_updates, replace=False)
    chosen_edges = all_edges[chosen]
    initial = graph.without_edges(chosen_edges)
    signs = np.full(num_updates, INSERT, dtype=np.int64)
    batches = [
        UpdateBatch(chosen_edges[s : min(s + batch_size, num_updates)],
                    signs[s : min(s + batch_size, num_updates)])
        for s in range(0, num_updates, batch_size)
    ]
    return initial, batches


def churn_stream(
    graph: StaticGraph,
    *,
    num_updates: int,
    batch_size: int,
    seed: int | np.random.Generator | None = 0,
) -> tuple[StaticGraph, list[UpdateBatch]]:
    """Flapping stream: every batch deletes the previous batch's inserts.

    Models short-lived edges (session links, retractions): batch 0 inserts a
    chunk of fresh edges; each later batch first deletes the previous
    chunk's inserts and then inserts the next chunk, so the live delta set
    stays bounded while update volume keeps flowing.  Total updates come to
    roughly ``num_updates`` (``2·chunks − 1`` chunk-sized half-batches).
    Every delete targets a present edge and no edge repeats within a batch,
    so the stream is conflict-free under every mode, ``strict`` included.
    """
    rng = as_generator(seed)
    all_edges = graph.edge_array()
    m = all_edges.shape[0]
    require(num_updates >= 1, "need at least one update")
    chunk = max(1, batch_size // 2)
    # f fresh edges produce f + (f - last_chunk) ≈ 2f - chunk total updates
    fresh = min(m, max(chunk, (int(num_updates) + chunk) // 2))
    chosen = rng.choice(m, size=fresh, replace=False)
    chosen_edges = all_edges[chosen]
    initial = graph.without_edges(chosen_edges)

    batches: list[UpdateBatch] = []
    prev: np.ndarray | None = None
    for start in range(0, fresh, chunk):
        cur = chosen_edges[start : min(start + chunk, fresh)]
        if prev is None:
            edges = cur
            signs = np.full(cur.shape[0], INSERT, dtype=np.int64)
        else:
            edges = np.concatenate([prev, cur], axis=0)
            signs = np.concatenate([
                np.full(prev.shape[0], DELETE, dtype=np.int64),
                np.full(cur.shape[0], INSERT, dtype=np.int64),
            ])
        batches.append(UpdateBatch(edges, signs))
        prev = cur
    return initial, batches
