"""Dynamic CPU-side graph store (paper Sec. V-A, Fig. 5).

The paper maintains the evolving data graph on the CPU as per-vertex
neighbor arrays with four update rules:

1. **Insertions append.**  New neighbors are appended to the end of the
   (pinned) per-vertex array; arrays are pre-allocated at 2x and doubled when
   full, giving O(1) amortized insertion.
2. **New vertices** get an array sized to the average degree, and their
   host/device addresses are appended to ``pHost`` / ``pDevice`` (also with
   doubling headroom).
3. **Deletions mark in place.**  A deleted neighbor ``v`` is found by binary
   search in the sorted base run and overwritten with a negative sentinel.
   We encode it as ``-(v + 1)`` so vertex 0 is representable; the encoding is
   order-preserving under decode, so the base run stays logically sorted.
4. **Reorganization** (step 5 of the pipeline, run *after* matching) removes
   the deletion marks and merge-sorts the appended run back into the base run
   so every list is sorted again for the next batch.

Between steps 1 and 4 — i.e. exactly while the incremental matching kernel
runs — the store exposes the two adjacency versions of paper Fig. 2:

* ``N(v)``  — the *pre-batch* list: the base run with deletion marks decoded
  back to their original values (deleted edges existed before the batch).
* ``N'(v)`` — the *post-batch* list as two sorted runs: the base run with
  deletion marks skipped, plus the sorted appended run ``ΔN(v)``.  Keeping
  the two runs separate is what lets the matching kernel perform the
  ``N' = N ∪ ΔN`` split intersections described in Sec. V-C.

``host_address`` / ``device_address`` mirror the paper's ``pHost`` /
``pDevice`` indirection tables: synthetic addresses that the simulated GPU
zero-copy channel dereferences, so the reproduction exercises the same
data-path shape even without real pinned memory.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import CanonicalReport, UpdateBatch
from repro.utils import VERTEX_DTYPE, merge_sorted, require

__all__ = [
    "DynamicGraph",
    "FrozenDynamicGraph",
    "ReorganizeStats",
    "merge_runs_reference",
]

_EMPTY = np.empty(0, dtype=VERTEX_DTYPE)


def _encode_deleted(v: int) -> int:
    return -(v + 1)


def _decode(values: np.ndarray) -> np.ndarray:
    """Decode a base run: deletion marks ``-(v+1)`` back to ``v``."""
    out = values.copy()
    neg = out < 0
    if neg.any():
        out[neg] = -out[neg] - 1
    return out


def merge_runs_reference(kept: np.ndarray, delta: np.ndarray) -> np.ndarray:
    """Scalar two-pointer merge of the kept base run and the ΔN run.

    The literal per-element loop of paper Sec. V-A step 4, retained as the
    parity oracle for the vectorized merge :meth:`DynamicGraph.reorganize`
    uses in production (``benchmarks/test_table3_reorg.py`` checks both the
    output arrays and the wall-clock win).
    """
    merged = np.empty(kept.size + delta.size, dtype=VERTEX_DTYPE)
    i = j = k = 0
    while i < kept.size and j < delta.size:
        if kept[i] <= delta[j]:
            merged[k] = kept[i]
            i += 1
        else:
            merged[k] = delta[j]
            j += 1
        k += 1
    if i < kept.size:
        merged[k:] = kept[i:]
    elif j < delta.size:
        merged[k:] = delta[j:]
    return merged


@dataclass
class ReorganizeStats:
    """Work accounting for one :meth:`DynamicGraph.reorganize` call.

    ``merged_elements`` is the total number of elements the linear-time merge
    touched; the bench harness prices it with the CPU cost model to reproduce
    Table III.
    """

    lists_touched: int = 0
    merged_elements: int = 0
    deletions_dropped: int = 0
    insertions_merged: int = 0


class DynamicGraph:
    """Mutable adjacency-list graph with the paper's update protocol."""

    def __init__(self, initial: StaticGraph) -> None:
        n = initial.num_vertices
        self._labels: np.ndarray = initial.labels.copy()
        self._arrays: list[np.ndarray] = []
        self._base_len: list[int] = []
        self._total_len: list[int] = []
        self._realloc_count = 0
        degs = initial.degrees()
        self._avg_degree = max(1, int(round(float(degs.mean())) if n else 1))
        for v in range(n):
            nbrs = initial.neighbors(v)
            cap = max(2, 2 * nbrs.size)
            arr = np.empty(cap, dtype=VERTEX_DTYPE)
            arr[: nbrs.size] = nbrs
            self._arrays.append(arr)
            self._base_len.append(int(nbrs.size))
            self._total_len.append(int(nbrs.size))
        # pHost / pDevice analogs: synthetic addresses into a flat pinned space.
        self.host_address = np.arange(n, dtype=np.int64)
        self.device_address = np.arange(n, dtype=np.int64)
        self._touched: set[int] = set()
        self._batch_open = False
        self._num_edges = initial.num_edges
        #: classification of the most recent :meth:`apply_batch` input
        self.last_canonical_report: CanonicalReport | None = None
        # copy-on-write freeze support (see :meth:`freeze`): while any
        # frozen view is live, the first in-place mutation of a vertex's
        # array since the latest freeze replaces it with a private copy so
        # frozen readers keep seeing the epoch they captured.
        self._active_freezes = 0
        self._freeze_serial = 0
        self._owner_serial: list[int] = [0] * n

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._arrays)

    @property
    def num_edges(self) -> int:
        """Undirected edge count of the *current* (post-batch) state."""
        return self._num_edges

    @property
    def labels(self) -> np.ndarray:
        return self._labels

    @property
    def realloc_count(self) -> int:
        """Number of capacity-doubling reallocations performed so far."""
        return self._realloc_count

    @property
    def batch_open(self) -> bool:
        """True between :meth:`apply_batch` and :meth:`reorganize`."""
        return self._batch_open

    @property
    def touched_vertices(self) -> set[int]:
        """Vertices whose lists were modified by the open batch."""
        return self._touched

    def label(self, v: int) -> int:
        return int(self._labels[v])

    def degree_new(self, v: int) -> int:
        """Post-batch degree of ``v`` (deletions excluded, insertions included)."""
        arr = self._arrays[v]
        base = arr[: self._base_len[v]]
        deleted = int(np.count_nonzero(base < 0))
        return self._total_len[v] - deleted

    def degree_old(self, v: int) -> int:
        """Pre-batch degree of ``v`` (the base-run length)."""
        return self._base_len[v]

    def degrees_new(self) -> np.ndarray:
        """Post-batch degrees of every vertex (vectorized).

        Untouched vertices carry no deletion marks or deltas, so their
        post-batch degree is just the stored length; only the (few) lists the
        open batch touched need a mark recount.
        """
        degs = np.asarray(self._total_len, dtype=np.int64)
        for v in self._touched:
            base = self._arrays[v][: self._base_len[v]]
            degs[v] -= int(np.count_nonzero(base < 0))
        return degs

    def degrees_old(self) -> np.ndarray:
        """Pre-batch degrees of every vertex (the base-run lengths)."""
        return np.asarray(self._base_len, dtype=np.int64)

    def max_degree(self) -> int:
        if self.num_vertices == 0:
            return 0
        return int(self.degrees_new().max())

    # ------------------------------------------------------------------
    # Fig. 2 adjacency versions
    # ------------------------------------------------------------------
    def neighbors_old(self, v: int) -> np.ndarray:
        """``N(v)``: the sorted pre-batch neighbor list.

        Deletion marks are decoded back to their original vertex ids because
        the deleted edges were present before the batch; appended insertions
        are excluded.
        """
        base = self._arrays[v][: self._base_len[v]]
        if base.size and base.min() < 0:
            return _decode(base)
        return base

    def neighbors_new_parts(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """``N'(v)`` as its two sorted runs ``(base_kept, delta)``.

        ``base_kept`` is the base run with deletion marks skipped;
        ``delta`` is the sorted appended run ``ΔN(v)``.  The union of the two
        runs is exactly the post-batch adjacency of ``v``.
        """
        arr = self._arrays[v]
        base = arr[: self._base_len[v]]
        if base.size and base.min() < 0:
            base = base[base >= 0]
        delta = arr[self._base_len[v] : self._total_len[v]]
        return base, delta

    def neighbors_new(self, v: int) -> np.ndarray:
        """``N'(v)`` materialized as one sorted array (convenience/oracle)."""
        base, delta = self.neighbors_new_parts(v)
        if delta.size == 0:
            return base
        merged = np.empty(base.size + delta.size, dtype=VERTEX_DTYPE)
        merged[: base.size] = base
        merged[base.size :] = delta
        merged.sort()
        return merged

    def delta_neighbors(self, v: int) -> np.ndarray:
        """``ΔN(v)``: the sorted neighbors appended by the open batch."""
        return self._arrays[v][self._base_len[v] : self._total_len[v]]

    def base_run_raw(self, v: int) -> np.ndarray:
        """The base run *with* deletion marks (``-(w+1)`` entries) intact.

        This is exactly the byte layout the paper copies into the DCSR
        ``colidx`` array for an updated list ("the deleted neighbors are
        marked, and the new neighbors are appended", Sec. V-B).
        """
        return self._arrays[v][: self._base_len[v]]

    def packed_run_raw(self, v: int) -> np.ndarray:
        """Both stored runs of ``v`` as one contiguous view.

        The base run (marks intact) and the appended delta run are adjacent
        in the backing array, so the full DCSR payload of a vertex is a
        single zero-copy slice — what bulk cache packing copies per vertex.
        """
        return self._arrays[v][: self._total_len[v]]

    def run_lengths(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(base_len, total_len)`` of the stored runs of ``vertices``.

        Reads only the selected entries of the per-vertex length lists (an
        ``np.asarray`` over all *n* lists would dwarf the packing cost when
        few vertices are cached).  ``itemgetter`` does the fancy-indexing of
        the Python lists in C.
        """
        vlist = vertices.tolist()
        if not vlist:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        if len(vlist) == 1:
            return (
                np.array([self._base_len[vlist[0]]], dtype=np.int64),
                np.array([self._total_len[vlist[0]]], dtype=np.int64),
            )
        pick = operator.itemgetter(*vlist)
        base = np.array(pick(self._base_len), dtype=np.int64)
        total = np.array(pick(self._total_len), dtype=np.int64)
        return base, total

    def packed_runs(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray, list]:
        """``(base_len, total_len, views)`` for bulk packing of ``vertices``.

        ``views`` are zero-copy :meth:`packed_run_raw` slices; the loop binds
        the stores to locals so per-vertex cost is one list index and one
        slice — the Python-side floor for a list-of-arrays store.
        """
        base_len, total_len = self.run_lengths(vertices)
        arrays = self._arrays
        views = [
            arrays[v][:t] for v, t in zip(vertices.tolist(), total_len.tolist())
        ]
        return base_len, total_len, views

    def has_edge_new(self, u: int, v: int) -> bool:
        base, delta = self.neighbors_new_parts(u)
        for run in (base, delta):
            pos = np.searchsorted(run, v)
            if pos < run.size and run[pos] == v:
                return True
        return False

    # ------------------------------------------------------------------
    # copy-on-write freeze (pipelined execution support)
    # ------------------------------------------------------------------
    def freeze(self) -> "FrozenDynamicGraph":
        """Capture an immutable logical view of the current store state.

        The frozen view shares the per-vertex arrays with the live store;
        any later in-place mutation (deletion marks, ΔN appends/sorts,
        reorganize merges) first replaces the affected array with a private
        copy, so the view keeps reading the exact epoch it captured — at the
        cost of copying only the lists the subsequent batches actually
        touch.  This is what lets the pipelined engine run the matching
        kernel of batch *k* on a worker thread while the host reorganizes
        batch *k* and applies batch *k+1* (the software analog of the
        double-buffered pinned arrays a real host-device pipeline uses).

        Call :meth:`FrozenDynamicGraph.release` (or use the view as a
        context manager) once the reader is done, so the store can drop the
        copy-on-write guard and return to zero-overhead mutation.
        """
        self._freeze_serial += 1
        self._active_freezes += 1
        return FrozenDynamicGraph(self)

    def _release_freeze(self) -> None:
        require(self._active_freezes > 0, "no active freeze to release")
        self._active_freezes -= 1

    def _cow(self, v: int) -> np.ndarray:
        """Make ``v``'s array private to the live store if a freeze holds a
        reference to it; returns the (possibly replaced) array."""
        if self._active_freezes and self._owner_serial[v] < self._freeze_serial:
            self._arrays[v] = self._arrays[v].copy()
            self._owner_serial[v] = self._freeze_serial
        return self._arrays[v]

    # ------------------------------------------------------------------
    # update protocol
    # ------------------------------------------------------------------
    def apply_batch(self, batch: UpdateBatch, mode: str = "strict") -> UpdateBatch:
        """Step 1 of the pipeline: fold ``ΔE`` into the store.

        The batch is first canonicalized against the current store
        (:meth:`~repro.graphs.stream.UpdateBatch.canonicalize`), so arbitrary
        real-world streams — duplicate inserts, phantom deletes, same-batch
        churn pairs — are either rejected up front with a batch-level
        diagnostic (``mode="strict"``, the default for the raw store) or
        netted to their exact effect (``"coalesce"`` / ``"ignore"``) before
        any mutation.  Returns the *effective* batch, which callers running
        the incremental matcher must use for root generation so ΔM equals
        the true state difference.

        Insertions are appended per endpoint (and the appended runs sorted,
        as the split intersections require sorted ``ΔN``); deletions are
        binary-searched in the base run and marked negative.  The batch stays
        "open" — :meth:`reorganize` must be called after matching.
        """
        require(not self._batch_open, "previous batch not reorganized yet")
        effective, report = batch.canonicalize(self, mode=mode)
        self.last_canonical_report = report
        self._batch_open = True
        self._touched = set()
        max_vertex = int(effective.max_vertex(default=-1))
        if max_vertex >= self.num_vertices:
            self._grow_vertices(max_vertex + 1, effective.new_vertex_labels)
        ins = effective.insert_edges()
        dels = effective.delete_edges()
        for u, v in ins.tolist():
            self._append_neighbor(u, v)
            self._append_neighbor(v, u)
        for u, v in dels.tolist():
            self._mark_deleted(u, v)
            self._mark_deleted(v, u)
        # Sort each appended run once so ΔN participates in merge intersections.
        for v in self._touched:
            lo, hi = self._base_len[v], self._total_len[v]
            if hi - lo > 1:
                self._arrays[v][lo:hi] = np.sort(self._arrays[v][lo:hi])
        self._num_edges += int(ins.shape[0]) - int(dels.shape[0])
        return effective

    def reorganize(self) -> ReorganizeStats:
        """Step 5 of the pipeline: restore the sorted invariant.

        For each touched list, drop deletion marks and merge the sorted
        appended run into the base run with the vectorized linear merge
        (:func:`~repro.utils.merge_sorted`; :func:`merge_runs_reference` is
        the retained scalar oracle), then close the batch.
        """
        require(self._batch_open, "no open batch to reorganize")
        stats = ReorganizeStats()
        for v in sorted(self._touched):
            arr = self._arrays[v]
            base = arr[: self._base_len[v]]
            delta = arr[self._base_len[v] : self._total_len[v]]
            kept = base[base >= 0] if (base.size and base.min() < 0) else base
            dropped = base.size - kept.size
            stats.lists_touched += 1
            stats.merged_elements += int(kept.size + delta.size)
            stats.deletions_dropped += int(dropped)
            stats.insertions_merged += int(delta.size)
            if dropped == 0 and delta.size == 0:
                continue  # list already settled (e.g. a cancelled ΔN delete)
            merged = merge_sorted(kept, delta) if delta.size else kept
            new_len = merged.size
            arr = self._cow(v)  # frozen kernels keep reading the old layout
            if new_len > arr.size:  # pragma: no cover - capacity always suffices
                arr = self._reallocate(v, new_len)
            arr[:new_len] = merged
            self._base_len[v] = new_len
            self._total_len[v] = new_len
        self._touched = set()
        self._batch_open = False
        return stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _grow_vertices(self, new_count: int, new_labels: dict[int, int] | None) -> None:
        old = self.num_vertices
        for v in range(old, new_count):
            cap = max(2, self._avg_degree)
            self._arrays.append(np.empty(cap, dtype=VERTEX_DTYPE))
            self._base_len.append(0)
            self._total_len.append(0)
            # fresh arrays are private: no frozen view references them
            self._owner_serial.append(self._freeze_serial)
        grown_labels = np.zeros(new_count, dtype=np.int64)
        grown_labels[:old] = self._labels
        if new_labels:
            for v, lab in new_labels.items():
                if old <= v < new_count:
                    grown_labels[v] = lab
        self._labels = grown_labels
        addr = np.arange(new_count, dtype=np.int64)
        addr[:old] = self.host_address
        self.host_address = addr
        self.device_address = addr.copy()

    def _append_neighbor(self, u: int, v: int) -> None:
        arr = self._cow(u)
        pos = self._total_len[u]
        if pos >= arr.size:
            arr = self._reallocate(u, 2 * max(1, arr.size))
        arr[pos] = v
        self._total_len[u] = pos + 1
        self._touched.add(u)

    def _reallocate(self, v: int, new_cap: int) -> np.ndarray:
        old = self._arrays[v]
        arr = np.empty(max(new_cap, old.size), dtype=VERTEX_DTYPE)
        arr[: self._total_len[v]] = old[: self._total_len[v]]
        self._arrays[v] = arr
        self._owner_serial[v] = self._freeze_serial  # replacement is private
        self._realloc_count += 1
        return arr

    def _mark_deleted(self, u: int, v: int) -> None:
        arr = self._cow(u)
        base = arr[: self._base_len[u]]
        decoded = _decode(base) if (base.size and base.min() < 0) else base
        pos = int(np.searchsorted(decoded, v))
        if pos < decoded.size and decoded[pos] == v:
            require(base[pos] >= 0, f"double deletion of edge ({u}, {v})")
            arr[pos] = _encode_deleted(v)
            self._touched.add(u)
            return
        # Not in the base run: the neighbor may live in the ΔN run appended
        # by this very batch (same-batch insert-then-delete).  Canonicalized
        # batches cancel such pairs up front, but the store stays total for
        # raw callers: drop the appended entry in place.  ΔN is still
        # unsorted at this point, so scan it linearly.
        lo, hi = self._base_len[u], self._total_len[u]
        for i in range(lo, hi):
            if arr[i] == v:
                arr[i:hi - 1] = arr[i + 1:hi].copy()
                self._total_len[u] = hi - 1
                self._touched.add(u)
                return
        require(False, f"deletion of non-existent edge ({u}, {v})")

    # ------------------------------------------------------------------
    # conversions / oracles
    # ------------------------------------------------------------------
    def csr_new(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR export of the *current* (post-batch) adjacency.

        Returns ``(indptr, flat)``: ``flat[indptr[v]:indptr[v+1]]`` is the
        sorted post-batch neighbor list of ``v``.  Untouched vertices
        contribute zero-copy views of their stored base run, so the export
        costs one concatenation rather than a Python loop per edge.
        """
        n = self.num_vertices
        chunks = [self.neighbors_new(v) for v in range(n)]
        lengths = np.fromiter(
            (c.size for c in chunks), count=n, dtype=np.int64
        ) if n else np.empty(0, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        flat = np.concatenate(chunks) if n else _EMPTY.copy()
        return indptr, flat

    def edges_new_array(self) -> np.ndarray:
        """Undirected post-batch edge list as an ``(m, 2)`` array.

        Each edge appears once with ``v < w``, enumerated source-major with
        ascending neighbors — the exact order of a per-vertex adjacency scan.
        """
        indptr, flat = self.csr_new()
        src = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), np.diff(indptr)
        )
        keep = src < flat
        return np.stack([src[keep], flat[keep]], axis=1).astype(VERTEX_DTYPE, copy=False)

    def edges_old_array(self) -> np.ndarray:
        """Undirected pre-batch edge list (``v < w``), requires an open batch."""
        require(self._batch_open, "edges_old_array requires an open batch")
        n = self.num_vertices
        chunks = [self.neighbors_old(v) for v in range(n)]
        lengths = np.fromiter(
            (c.size for c in chunks), count=n, dtype=np.int64
        ) if n else np.empty(0, dtype=np.int64)
        flat = np.concatenate(chunks) if n else _EMPTY.copy()
        src = np.repeat(np.arange(n, dtype=VERTEX_DTYPE), lengths)
        keep = src < flat
        return np.stack([src[keep], flat[keep]], axis=1).astype(VERTEX_DTYPE, copy=False)

    def snapshot(self) -> StaticGraph:
        """Materialize the *current* state as a :class:`StaticGraph`.

        With an open batch this is ``G_{k+1}`` (post-update); after
        :meth:`reorganize` (or before :meth:`apply_batch`) it is the settled
        snapshot.
        """
        return StaticGraph.from_edges(
            self.num_vertices, self.edges_new_array(), self._labels.copy()
        )

    def snapshot_old(self) -> StaticGraph:
        """Materialize the pre-batch state ``G_k`` (requires an open batch)."""
        return StaticGraph.from_edges(
            self.num_vertices, self.edges_old_array(), self._labels.copy()
        )

    def check_invariants(self) -> None:
        """Validate store invariants (used by property tests and the fuzzer).

        Beyond the original sorted-run checks this validates that every ΔN
        run is strictly sorted and disjoint from the surviving base run (a
        duplicate-insert corruption shows up here as a repeated neighbor),
        and that ``num_edges`` is exact: half the sum of post-batch degrees.
        """
        degree_sum = 0
        for v in range(self.num_vertices):
            require(self._base_len[v] <= self._total_len[v] <= self._arrays[v].size,
                    f"run lengths of {v} out of bounds")
            base = self._arrays[v][: self._base_len[v]]
            decoded = _decode(base)
            require(bool(np.all(decoded[1:] > decoded[:-1])) if decoded.size > 1 else True,
                    f"base run of {v} not strictly sorted")
            delta = self._arrays[v][self._base_len[v] : self._total_len[v]]
            kept = base[base >= 0]
            degree_sum += int(kept.size + delta.size)
            if not self._batch_open:
                require(delta.size == 0, f"closed batch but delta at {v}")
                require(bool(base.size == 0 or base.min() >= 0),
                        f"closed batch but deletion mark at {v}")
            else:
                require(bool(np.all(delta[1:] > delta[:-1])) if delta.size > 1 else True,
                        f"delta run of {v} not strictly sorted (duplicate insert?)")
                if delta.size and kept.size:
                    pos = np.searchsorted(kept, delta)
                    dup = (pos < kept.size) & (kept[np.minimum(pos, kept.size - 1)] == delta)
                    require(not bool(dup.any()),
                            f"delta run of {v} duplicates base neighbors")
        require(degree_sum == 2 * self._num_edges,
                f"num_edges={self._num_edges} inconsistent with adjacency "
                f"(degree sum {degree_sum})")

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"open_batch={self._batch_open}, touched={len(self._touched)})"
        )


class FrozenDynamicGraph(DynamicGraph):
    """Immutable logical snapshot of a :class:`DynamicGraph` epoch.

    Created by :meth:`DynamicGraph.freeze`.  Shares the parent's per-vertex
    arrays (zero copies at capture time) and relies on the parent's
    copy-on-write guard to keep every shared array byte-stable: the parent
    replaces an array with a private copy before its first post-freeze
    mutation, so reads through this view always see the captured epoch.

    Every read-side accessor of :class:`DynamicGraph` (``neighbors_old`` /
    ``neighbors_new_parts`` / ``packed_runs`` / ``snapshot`` / ...) works
    unchanged because the view carries its own copies of the length tables
    and batch bookkeeping.  Mutators (:meth:`apply_batch`,
    :meth:`reorganize`, :meth:`freeze`) are blocked.
    """

    def __init__(self, parent: DynamicGraph) -> None:
        # Deliberately does NOT chain to DynamicGraph.__init__: the view
        # aliases the parent's arrays instead of building fresh ones.
        self._parent = parent
        self._released = False
        self._labels = parent._labels
        self._arrays = list(parent._arrays)  # shallow: shares the ndarrays
        self._base_len = list(parent._base_len)
        self._total_len = list(parent._total_len)
        self._realloc_count = parent._realloc_count
        self._avg_degree = parent._avg_degree
        self.host_address = parent.host_address
        self.device_address = parent.device_address
        self._touched = set(parent._touched)
        self._batch_open = parent._batch_open
        self._num_edges = parent._num_edges
        self.last_canonical_report = parent.last_canonical_report
        # the view itself never mutates, so its own COW machinery is inert
        self._active_freezes = 0
        self._freeze_serial = 0
        self._owner_serial = []

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the parent's copy-on-write guard for this view (idempotent)."""
        if not self._released:
            self._released = True
            self._parent._release_freeze()

    def __enter__(self) -> "FrozenDynamicGraph":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- mutators are blocked ------------------------------------------
    def apply_batch(self, batch: UpdateBatch, mode: str = "strict") -> UpdateBatch:
        require(False, "frozen view is immutable (apply_batch)")
        raise AssertionError  # pragma: no cover - require always raises

    def reorganize(self) -> ReorganizeStats:
        require(False, "frozen view is immutable (reorganize)")
        raise AssertionError  # pragma: no cover - require always raises

    def freeze(self) -> "FrozenDynamicGraph":
        require(False, "cannot freeze a frozen view; freeze the live store")
        raise AssertionError  # pragma: no cover - require always raises

    def __repr__(self) -> str:
        return (
            f"FrozenDynamicGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"open_batch={self._batch_open}, released={self._released})"
        )
