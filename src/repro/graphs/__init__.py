"""Graph substrate: static CSR graphs, the dynamic CPU-side store, generators,
and dynamic-stream derivation (paper Sec. V-A and Sec. VI-A)."""

from repro.graphs.static_graph import StaticGraph
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.stream import (
    CONFLICT_MODES,
    DEFAULT_CONFLICT_MODE,
    BatchConflictError,
    CanonicalReport,
    EdgeUpdate,
    UpdateBatch,
    churn_stream,
    derive_stream,
)
from repro.graphs.attributes import EdgeAttributeStore, edge_weight, edge_weights
from repro.graphs.window import WindowReport, apply_window
from repro.graphs import generators, datasets

__all__ = [
    "StaticGraph",
    "DynamicGraph",
    "EdgeUpdate",
    "UpdateBatch",
    "CanonicalReport",
    "BatchConflictError",
    "CONFLICT_MODES",
    "DEFAULT_CONFLICT_MODE",
    "derive_stream",
    "churn_stream",
    "EdgeAttributeStore",
    "edge_weight",
    "edge_weights",
    "apply_window",
    "WindowReport",
    "generators",
    "datasets",
]
