"""Temporal/windowed matching: edges expire ``window`` batches after insert.

Sliding-window (TTL) semantics layered over the plain update stream: an
edge inserted by batch ``k`` expires — is deleted again — at batch
``k + window``, unless a later insert refreshes its TTL or an explicit
delete retires it first.  The layer is a pure stream-to-stream transform:
:func:`apply_window` rewrites the batch list so each batch carries its due
expiry deletes *prepended* to the raw updates, and downstream machinery
(store, engines, fuzzer, oracle) runs unchanged.  Exactness therefore
follows from the existing differential validation: a windowed stream is
just another stream.

Semantics (mirroring the store's ``coalesce`` last-occurrence-wins netting):

* the **final** operation a batch applies to an edge decides its fate —
  a final insert (re)arms the TTL at ``k + window``, a final delete
  cancels it;
* expiry deletes are emitted only for edges still present (an explicitly
  deleted edge never double-expires);
* raw updates win over same-batch expiries (they come later in the batch),
  so re-inserting an edge in the batch where it would expire keeps it
  alive — coalesce nets the pair to the correct store state;
* initial-snapshot edges carry no TTL: only streamed inserts are windowed
  (expiring ``G_0`` wholesale would dismantle the workload, not window it).

Because expiry deletes can collide with raw updates of the same edge inside
one batch, windowed streams are only meaningful under the ``coalesce`` /
``ignore`` conflict modes — ``strict`` correctly rejects such batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DELETE, UpdateBatch
from repro.utils import require

__all__ = ["apply_window", "WindowReport"]


@dataclass
class WindowReport:
    """What the window transform did to one stream."""

    window: int
    num_batches_in: int
    num_batches_out: int
    expiry_deletes: int  # TTL deletes emitted across all batches
    refreshed: int  # inserts that re-armed an already-live TTL
    cancelled: int  # TTLs retired early by explicit deletes
    live_at_end: int  # edges still armed when the stream ended


def _canonical(edges: np.ndarray) -> list[tuple[int, int]]:
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return list(zip(lo.tolist(), hi.tolist()))


def apply_window(
    initial: StaticGraph,
    batches: list[UpdateBatch],
    *,
    window: int,
    drain: bool = False,
) -> tuple[list[UpdateBatch], WindowReport]:
    """Rewrite ``batches`` so streamed inserts expire after ``window`` batches.

    Returns ``(windowed_batches, report)``.  ``drain=True`` appends trailing
    expiry-only batches until every armed TTL has fired (the stream ends on
    an empty window); otherwise still-armed edges simply remain in the final
    graph and are counted in ``report.live_at_end``.
    """
    require(window >= 1, "window must be >= 1 batch")
    present: set[tuple[int, int]] = {
        (int(u), int(v)) for u, v in _canonical(initial.edge_array())
    }
    expiry: dict[tuple[int, int], int] = {}
    out: list[UpdateBatch] = []
    expired_total = refreshed = cancelled = 0

    def due_deletes(k: int) -> list[tuple[int, int]]:
        due = sorted(e for e, t in expiry.items() if t <= k)
        for e in due:
            del expiry[e]
        return [e for e in due if e in present]

    def settle(edges: np.ndarray, signs: np.ndarray, k: int) -> None:
        """Advance presence/TTL state by last-occurrence-wins netting."""
        nonlocal refreshed, cancelled
        final: dict[tuple[int, int], int] = {}
        for e, s in zip(_canonical(edges), signs.tolist()):
            final[e] = s  # later rows overwrite: last op wins
        for e, s in final.items():
            if s > 0:
                if e in expiry:
                    refreshed += 1
                present.add(e)
                expiry[e] = k + window
            else:
                if expiry.pop(e, None) is not None:
                    cancelled += 1
                present.discard(e)

    for k, batch in enumerate(batches):
        dead = due_deletes(k)
        expired_total += len(dead)
        for e in dead:
            present.discard(e)
        if dead:
            dead_arr = np.asarray(dead, dtype=batch.edges.dtype).reshape(-1, 2)
            edges = np.concatenate([dead_arr, batch.edges], axis=0)
            signs = np.concatenate([
                np.full(len(dead), DELETE, dtype=np.int64), batch.signs
            ])
        else:
            edges, signs = batch.edges, batch.signs
        settle(batch.edges, batch.signs, k)
        out.append(UpdateBatch(edges, signs, batch.new_vertex_labels))

    k = len(batches)
    if drain:
        while expiry:
            dead = due_deletes(k)
            if dead:
                expired_total += len(dead)
                for e in dead:
                    present.discard(e)
                out.append(UpdateBatch(
                    np.asarray(dead, dtype=np.int64).reshape(-1, 2),
                    np.full(len(dead), DELETE, dtype=np.int64),
                ))
            k += 1

    report = WindowReport(
        window=window,
        num_batches_in=len(batches),
        num_batches_out=len(out),
        expiry_deletes=expired_total,
        refreshed=refreshed,
        cancelled=cancelled,
        live_at_end=len(expiry),
    )
    return out, report
