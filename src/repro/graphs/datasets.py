"""Scaled analogs of the paper's seven data graphs (Table I).

Paper Table I:

    =============== ========= ========= ======== =========
    Graph           #Vertices #Edges    Max deg. Size (GB)
    =============== ========= ========= ======== =========
    Amazon (AZ)     0.4M      2.4M      1367     0.019
    RoadNetPA (PA)  1.08M     1.5M      9        0.022
    RoadNetCA (CA)  1.96M     2.7M      12       0.037
    LiveJournal(LJ) 3.1M      77.1M     18311    0.308
    Friendster (FR) 65.6M     3612M     5214     28.9
    SF3K-fb         33.4M     5824M     4328     46.4
    SF10K-fb        100.2M    18809M    4485     151.1
    =============== ========= ========= ======== =========

We reproduce the *relationships* that drive the evaluation rather than the
absolute sizes: AZ/PA/CA/LJ fit in the (scaled) GPU memory, FR/SF3K/SF10K
exceed the (scaled) cache buffer by roughly the paper's ratios (FR ≈ 2x,
SF3K ≈ 3x, SF10K ≈ 6-10x the buffer), the road networks have uniformly tiny
degrees, and the social graphs have heavy power-law skew.  The module-level
``DEVICE_BUFFER_BYTES`` / ``DEVICE_TOTAL_BYTES`` constants are the matching
scaled analog of the paper's 14 GB cache buffer inside 24 GB of GPU global
memory (Sec. VI-A "Settings").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.generators import powerlaw_graph, road_network
from repro.graphs.static_graph import StaticGraph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "TABLE1_ORDER",
    "build",
    "table1_rows",
    "DEVICE_BUFFER_BYTES",
    "DEVICE_TOTAL_BYTES",
    "DEVICE_KERNEL_RESERVE_BYTES",
]

#: Scaled GPU memory analog: the paper gives the matching kernel ~10 GB and
#: the cache buffer the remaining 14 GB of the RTX3090's 24 GB.  We scale by
#: ~1e4 so the big-graph analogs overflow the buffer at similar ratios.
DEVICE_KERNEL_RESERVE_BYTES = 1_000_000
DEVICE_BUFFER_BYTES = 1_400_000
DEVICE_TOTAL_BYTES = DEVICE_KERNEL_RESERVE_BYTES + DEVICE_BUFFER_BYTES


@dataclass(frozen=True)
class DatasetSpec:
    """One Table I row: the scaled builder plus the paper's reference stats."""

    name: str
    kind: str  # "powerlaw" | "road"
    builder: Callable[[int | np.random.Generator | None], StaticGraph]
    paper_vertices: float  # millions
    paper_edges: float  # millions
    paper_max_degree: int
    paper_size_gb: float
    default_batch_size: int
    #: paper Sec. VI-A update selection: fraction of edges (small graphs) or
    #: an absolute count (large graphs, paper: 12 x 8192).
    update_fraction: float | None
    num_update_batches: int

    def build(self, seed: int | np.random.Generator | None = 0) -> StaticGraph:
        return self.builder(seed)

    def num_updates(self, graph: StaticGraph, batch_size: int | None = None) -> int:
        bs = batch_size or self.default_batch_size
        if self.update_fraction is not None:
            return max(bs, int(graph.num_edges * self.update_fraction))
        return bs * self.num_update_batches

    def fits_on_device(self, graph: StaticGraph) -> bool:
        return graph.size_bytes() <= DEVICE_BUFFER_BYTES


def _az(seed):  # Amazon co-purchase analog: mild power law, modest max degree
    return powerlaw_graph(4_000, 6.0, exponent=2.6, max_degree=60, num_labels=4, seed=seed)


def _pa(seed):  # RoadNet-PA analog
    return road_network(100, 120, diagonal_fraction=0.25, extra_edge_fraction=0.015,
                        num_labels=3, seed=seed)


def _ca(seed):  # RoadNet-CA analog (bigger, slightly denser junctions)
    return road_network(130, 160, diagonal_fraction=0.35, extra_edge_fraction=0.08,
                        num_labels=3, seed=seed)


def _lj(seed):  # LiveJournal analog: heavy skew, still fits the buffer
    return powerlaw_graph(12_000, 12.0, exponent=2.15, max_degree=150, num_labels=4, seed=seed)


def _fr(seed):  # Friendster analog: exceeds the scaled cache buffer ~2x
    return powerlaw_graph(48_000, 14.0, exponent=2.25, max_degree=180, num_labels=5, seed=seed)


def _sf3k(seed):  # LDBC SF3K analog: ~3x the buffer
    return powerlaw_graph(44_000, 22.0, exponent=2.2, max_degree=240, num_labels=5, seed=seed)


def _sf10k(seed):  # LDBC SF10K analog: ~6x the buffer
    return powerlaw_graph(80_000, 26.0, exponent=2.2, max_degree=300, num_labels=5, seed=seed)


TABLE1_ORDER = ["AZ", "PA", "CA", "LJ", "FR", "SF3K", "SF10K"]

DATASETS: dict[str, DatasetSpec] = {
    "AZ": DatasetSpec("AZ", "powerlaw", _az, 0.4, 2.4, 1367, 0.019,
                      default_batch_size=512, update_fraction=0.10, num_update_batches=4),
    "PA": DatasetSpec("PA", "road", _pa, 1.08, 1.5, 9, 0.022,
                      default_batch_size=512, update_fraction=0.10, num_update_batches=4),
    "CA": DatasetSpec("CA", "road", _ca, 1.96, 2.7, 12, 0.037,
                      default_batch_size=512, update_fraction=0.10, num_update_batches=4),
    "LJ": DatasetSpec("LJ", "powerlaw", _lj, 3.1, 77.1, 18311, 0.308,
                      default_batch_size=512, update_fraction=0.10, num_update_batches=4),
    "FR": DatasetSpec("FR", "powerlaw", _fr, 65.6, 3612.0, 5214, 28.9,
                      default_batch_size=512, update_fraction=None, num_update_batches=6),
    "SF3K": DatasetSpec("SF3K", "powerlaw", _sf3k, 33.4, 5824.0, 4328, 46.4,
                        default_batch_size=512, update_fraction=None, num_update_batches=6),
    "SF10K": DatasetSpec("SF10K", "powerlaw", _sf10k, 100.2, 18809.0, 4485, 151.1,
                         default_batch_size=1024, update_fraction=None, num_update_batches=6),
}


def build(name: str, seed: int | np.random.Generator | None = 0) -> StaticGraph:
    """Build the scaled analog of Table I graph ``name``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; choose from {TABLE1_ORDER}") from None
    return spec.build(seed)


def table1_rows(seed: int = 0) -> list[dict[str, object]]:
    """Materialize every analog and report the Table I columns side by side.

    Used by the Table I bench target; each row holds both the paper's value
    and the scaled analog's measured value.
    """
    rows: list[dict[str, object]] = []
    for name in TABLE1_ORDER:
        spec = DATASETS[name]
        g = spec.build(seed)
        rows.append(
            {
                "graph": name,
                "vertices": g.num_vertices,
                "edges": g.num_edges,
                "max_degree": g.max_degree(),
                "size_bytes": g.size_bytes(),
                "fits_buffer": spec.fits_on_device(g),
                "paper_vertices_M": spec.paper_vertices,
                "paper_edges_M": spec.paper_edges,
                "paper_max_degree": spec.paper_max_degree,
                "paper_size_gb": spec.paper_size_gb,
            }
        )
    return rows
