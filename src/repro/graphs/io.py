"""Edge-list I/O.

Supports the plain whitespace edge-list format of SNAP datasets (one
``u v`` pair per line, ``#`` comments) plus an optional sidecar label file,
so a user with the real Table I graphs can drop them in directly.  A compact
``.npz`` round-trip format is provided for fast reloads of generated analogs.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graphs.static_graph import StaticGraph
from repro.utils import VERTEX_DTYPE, require

__all__ = ["load_edge_list", "save_edge_list", "save_npz", "load_npz"]


def load_edge_list(
    path: str | os.PathLike[str],
    *,
    labels_path: str | os.PathLike[str] | None = None,
    comments: str = "#",
) -> StaticGraph:
    """Load a SNAP-style whitespace edge list as an undirected labeled graph.

    Vertex ids are compacted to ``0..n-1`` preserving order of first
    appearance in sorted id order.  ``labels_path`` (optional) holds one
    integer label per line indexed by *original* vertex id.
    """
    raw = np.loadtxt(path, comments=comments, dtype=np.int64, ndmin=2)
    require(raw.ndim == 2 and raw.shape[1] >= 2, "edge list must have two columns")
    edges = raw[:, :2]
    ids = np.unique(edges)
    remap = {int(orig): new for new, orig in enumerate(ids.tolist())}
    compact = np.empty_like(edges)
    lookup = np.searchsorted(ids, edges)
    compact = lookup.astype(VERTEX_DTYPE)
    labels = None
    if labels_path is not None:
        raw_labels = np.loadtxt(labels_path, dtype=np.int64, ndmin=1)
        labels = np.zeros(ids.size, dtype=np.int64)
        for orig, new in remap.items():
            if orig < raw_labels.size:
                labels[new] = raw_labels[orig]
    return StaticGraph.from_edges(int(ids.size), compact, labels)


def save_edge_list(graph: StaticGraph, path: str | os.PathLike[str]) -> None:
    """Write the canonical (u < v) edge list in SNAP format."""
    edges = graph.edge_array()
    header = f"Undirected graph: n={graph.num_vertices} m={graph.num_edges}"
    np.savetxt(path, edges, fmt="%d", header=header)


def save_npz(graph: StaticGraph, path: str | os.PathLike[str]) -> None:
    """Save CSR arrays + labels to a compressed ``.npz``."""
    np.savez_compressed(
        Path(path),
        indptr=graph.indptr,
        indices=graph.indices,
        labels=graph.labels,
    )


def load_npz(path: str | os.PathLike[str]) -> StaticGraph:
    """Load a graph previously saved with :func:`save_npz`."""
    with np.load(Path(path)) as data:
        return StaticGraph(data["indptr"], data["indices"], data["labels"])
