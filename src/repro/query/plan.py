"""WCOJ matching-plan compilation (paper Fig. 2).

Subgraph matching is executed vertex-at-a-time: a *matching order* fixes a
sequence of query vertices; levels 0 and 1 are bound by iterating a root
edge relation, and every later level binds one query vertex by intersecting
the neighbor lists of its already-bound query neighbors.  That is exactly
the nested-loop shape of paper Fig. 2 (and of STMatch, whose kernel the
paper adapts).

Two plan families are compiled here:

* :func:`compile_static_plan` — one plan matching ``Q`` on a single graph
  snapshot (Fig. 2a).  All constraints read the ``CURRENT`` adjacency.
* :func:`compile_delta_plans` — ``m`` plans, one ΔM_i per query edge
  (Fig. 2b–f).  Plan ``i`` roots at query edge ``e_i`` (iterated over the
  signed batch ΔE), and every other query edge ``e_j`` reads the **old**
  adjacency ``N`` when ``j < i`` and the **updated** adjacency ``N'`` when
  ``j > i``.  This old/new split is the incremental-view-maintenance
  decomposition of paper Eq. (1): it is what makes the union of the m plans
  produce each delta embedding exactly once, including under mixed
  insert/delete batches.

The compiler is deliberately independent of the execution backend: the same
``MatchPlan`` drives the simulated-GPU executor, the CPU baseline, and the
reference oracle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.query.pattern import QueryGraph
from repro.utils import require

__all__ = [
    "EdgeVersion",
    "Constraint",
    "LevelPlan",
    "MatchPlan",
    "compile_static_plan",
    "compile_delta_plans",
    "greedy_matching_order",
    "level_signature",
    "root_signature",
    "plan_signature",
]


class EdgeVersion(enum.Enum):
    """Which adjacency snapshot a constraint reads (paper Fig. 2's N vs N')."""

    CURRENT = "current"  # static matching on one snapshot
    OLD = "old"  # N  — pre-batch lists (R_j, j < i)
    NEW = "new"  # N' — post-batch lists (R'_j, j > i)


@dataclass(frozen=True)
class Constraint:
    """One backward edge check at a level.

    ``position`` indexes the matching order: the candidate for this level
    must appear in the (versioned) neighbor list of the data vertex bound at
    that position.  ``edge_index`` records which query edge this constraint
    realizes (provenance for the old/new versioning and for tests).
    ``predicate`` carries the query edge's weight interval, if any: the
    executors keep only candidates whose edge weight to the anchor falls in
    the closed ``(lo, hi)`` interval (predicate pushdown).
    """

    position: int
    version: EdgeVersion
    edge_index: int
    predicate: tuple[float, float] | None = None


@dataclass(frozen=True)
class LevelPlan:
    """Binding step for one query vertex beyond the root edge."""

    query_vertex: int
    label: int
    constraints: tuple[Constraint, ...]

    def __post_init__(self) -> None:
        require(len(self.constraints) >= 1, "level must have at least one constraint")


@dataclass(frozen=True)
class MatchPlan:
    """A complete vertex-at-a-time plan.

    ``order`` is the matching order over query vertices; ``order[0]`` and
    ``order[1]`` are the endpoints of the root edge.  ``delta_index`` is the
    query-edge index ``i`` for a ΔM_i plan and ``None`` for a static plan.
    ``levels[k]`` describes the binding of ``order[k + 2]``.
    """

    query: QueryGraph
    order: tuple[int, ...]
    root_edge: tuple[int, int]
    root_edge_index: int
    levels: tuple[LevelPlan, ...]
    delta_index: int | None = None
    #: weight interval the root data edge must satisfy (predicate pushdown
    #: into root generation); None when the root query edge is unconstrained
    root_predicate: tuple[float, float] | None = None

    @property
    def is_delta(self) -> bool:
        return self.delta_index is not None

    @property
    def depth(self) -> int:
        return len(self.order)

    def root_labels(self) -> tuple[int, int]:
        """Labels required of the two root-edge endpoints (order[0], order[1])."""
        return self.query.label(self.order[0]), self.query.label(self.order[1])

    def describe(self) -> str:
        """Human-readable plan dump (mirrors the loop nests of paper Fig. 2)."""
        lines = []
        tag = f"ΔM_{self.delta_index + 1}" if self.is_delta else "static"
        root_src = "ΔE" if self.is_delta else "E"
        lines.append(
            f"{tag}: for (x{self.order[0]}, x{self.order[1]}) in {root_src} "
            f"matching (u{self.order[0]}, u{self.order[1]}):"
        )
        indent = "  "
        for lvl in self.levels:
            parts = []
            for c in lvl.constraints:
                n = {"current": "N", "old": "N", "new": "N'"}[c.version.value]
                parts.append(f"{n}(x{self.order[c.position]})")
            lines.append(f"{indent}for x{lvl.query_vertex} in " + " ∩ ".join(parts) + ":")
            indent += "  "
        lines.append(f"{indent}emit embedding")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Prefix-alignable execution signatures.
#
# Plan execution is *structural*: given the same frontier rows, a level's
# expansion depends only on its required label and on which already-bound
# positions constrain it through which adjacency version — never on the
# query's private vertex numbering or on the constraints' edge-index
# provenance.  The signatures below capture exactly that structure, so two
# plans (from different queries) whose signature sequences share a prefix
# produce bit-identical frontiers, candidate sets, and access charges over
# that prefix.  The multi-query execution trie groups the rulebook's plans
# by these prefixes and expands each shared level once.
# ----------------------------------------------------------------------
def level_signature(level: LevelPlan) -> tuple:
    """Execution identity of one binding level.

    ``(label, ((position, version), ...))`` — everything the frontier
    executor's candidate expansion reads.  ``query_vertex`` and constraint
    ``edge_index`` are deliberately excluded: they are provenance, not
    behavior.  Weight predicates *are* behavior, so a level carrying any
    appends its per-constraint intervals; predicate-free levels keep the
    historical two-tuple shape (signature stability across releases).
    """
    sig = (
        level.label,
        tuple((c.position, c.version.value) for c in level.constraints),
    )
    if any(c.predicate is not None for c in level.constraints):
        sig = sig + (tuple(c.predicate for c in level.constraints),)
    return sig


def root_signature(plan: MatchPlan) -> tuple:
    """Execution identity of a plan's root-edge iteration.

    Delta roots are the directed batch updates filtered by the two root
    endpoint labels (and the root edge's weight predicate, when present),
    so plans with equal root signatures iterate identical ``(roots,
    signs)`` arrays for any batch.  Predicate-free plans keep the
    historical label-pair shape.
    """
    if plan.root_predicate is not None:
        return plan.root_labels() + (plan.root_predicate,)
    return plan.root_labels()


def plan_signature(plan: MatchPlan) -> tuple:
    """Full structural identity: root signature plus every level's."""
    return (root_signature(plan), tuple(level_signature(l) for l in plan.levels))


def greedy_matching_order(
    query: QueryGraph, first: int, second: int
) -> tuple[int, ...]:
    """Connectivity-greedy matching order starting from a root edge.

    After binding the root endpoints, repeatedly picks the unbound query
    vertex with the most bound neighbors (maximizing intersection pruning),
    breaking ties by larger query degree then smaller vertex id — the same
    heuristic family STMatch/GraphPi use.  Every chosen vertex has at least
    one bound neighbor (patterns are connected), so every level of the
    resulting plan has at least one constraint.
    """
    require(query.has_edge(first, second), "root vertices must share a query edge")
    order = [first, second]
    bound = {first, second}
    while len(order) < query.num_vertices:
        best = None
        best_key = None
        for u in range(query.num_vertices):
            if u in bound:
                continue
            connectivity = len(query.neighbors(u) & bound)
            if connectivity == 0:
                continue
            key = (connectivity, query.degree(u), -u)
            if best_key is None or key > best_key:
                best, best_key = u, key
        assert best is not None, "pattern connectivity violated"
        order.append(best)
        bound.add(best)
    return tuple(order)


def _build_levels(
    query: QueryGraph,
    order: Sequence[int],
    version_of_edge,
) -> tuple[LevelPlan, ...]:
    position = {u: p for p, u in enumerate(order)}
    levels: list[LevelPlan] = []
    for p in range(2, len(order)):
        u = order[p]
        constraints = []
        for w in sorted(query.neighbors(u), key=lambda w: position[w]):
            if position[w] < p:
                j = query.edge_index(u, w)
                constraints.append(Constraint(
                    position[w], version_of_edge(j), j,
                    query.predicate_for_index(j),
                ))
        levels.append(LevelPlan(u, query.label(u), tuple(constraints)))
    return tuple(levels)


def _root_edge_choice(query: QueryGraph) -> tuple[int, int]:
    """Root-edge heuristic for static plans: the edge maximizing the degree
    sum of its endpoints (densest anchor, strongest early pruning)."""
    best = max(
        query.edges,
        key=lambda e: (query.degree(e[0]) + query.degree(e[1]),
                       -(e[0] + e[1])),
    )
    return best


def compile_static_plan(query: QueryGraph, root_edge: tuple[int, int] | None = None) -> MatchPlan:
    """Compile the Fig. 2a plan: match ``Q`` against one graph snapshot.

    The root edge is iterated over all directed data edges; every level
    constraint reads the ``CURRENT`` adjacency.  Each embedding is found
    exactly once because the root edge binds to exactly one directed data
    edge per embedding.
    """
    if root_edge is None:
        root_edge = _root_edge_choice(query)
    u_a, u_b = root_edge
    order = greedy_matching_order(query, u_a, u_b)
    levels = _build_levels(query, order, lambda j: EdgeVersion.CURRENT)
    return MatchPlan(
        query=query,
        order=order,
        root_edge=(u_a, u_b),
        root_edge_index=query.edge_index(u_a, u_b),
        levels=levels,
        delta_index=None,
        root_predicate=query.predicate_for_index(query.edge_index(u_a, u_b)),
    )


def compile_delta_plans(query: QueryGraph) -> list[MatchPlan]:
    """Compile the m incremental plans ΔM_1..ΔM_m (paper Fig. 2b–f).

    Plan ``i`` (0-based ``delta_index``) roots at query edge ``e_i``; other
    query edges read OLD when their global index is below ``i`` and NEW when
    above.  Executing all plans against a signed batch and summing the
    per-embedding signs yields exactly ``ΔM = M(G_{k+1}) − M(G_k)``.
    """
    plans: list[MatchPlan] = []
    for i, (u_a, u_b) in enumerate(query.edges):
        order = greedy_matching_order(query, u_a, u_b)

        def version(j: int, i: int = i) -> EdgeVersion:
            require(j != i, "root edge must not appear as a constraint")
            return EdgeVersion.OLD if j < i else EdgeVersion.NEW

        levels = _build_levels(query, order, version)
        plans.append(
            MatchPlan(
                query=query,
                order=order,
                root_edge=(u_a, u_b),
                root_edge_index=i,
                levels=levels,
                delta_index=i,
                root_predicate=query.predicate_for_index(i),
            )
        )
    return plans
