"""Query catalog: the six Fig. 7 evaluation queries plus motif sets.

The paper evaluates six query graphs of sizes 5–7 (Fig. 7) on the social
graphs, and *all* size-3/4/5 motifs on the road networks (Fig. 11, because
the specific Q1–Q6 patterns "rarely exist in the road nets").  Fig. 7 is an
image we cannot read, so Q1–Q6 here are representative CSM-benchmark
patterns spanning the same size range with increasing density — from sparse
(tree-plus-triangle) to chorded cycles — with vertex labels drawn from the
frequent end of the generators' label alphabet so the patterns occur in the
data-graph analogs.  The motif sets are exact: every connected unlabeled
graph of the given size, enumerated from the networkx graph atlas.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx

from repro.query.pattern import QueryGraph
from repro.utils import require

__all__ = [
    "QUERIES",
    "QUERY_ORDER",
    "query_by_name",
    "motifs",
    "all_motifs_3_4_5",
    "load_rulebook",
]


def _q1() -> QueryGraph:
    """Size 5, 6 edges: 'house' — a 4-cycle with a triangle roof."""
    return QueryGraph(
        5,
        [(0, 1), (1, 2), (2, 3), (0, 3), (0, 4), (1, 4)],
        labels=[0, 1, 0, 1, 2],
        name="Q1",
    )


def _q2() -> QueryGraph:
    """Size 5, 6 edges: 5-cycle with one chord."""
    return QueryGraph(
        5,
        [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        labels=[0, 0, 1, 0, 2],
        name="Q2",
    )


def _q3() -> QueryGraph:
    """Size 6, 7 edges: two triangles joined by a bridge edge."""
    return QueryGraph(
        6,
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)],
        labels=[0, 1, 2, 0, 1, 2],
        name="Q3",
    )


def _q4() -> QueryGraph:
    """Size 6, 8 edges: 6-cycle with two long chords."""
    return QueryGraph(
        6,
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (0, 3), (1, 4)],
        labels=[0, 1, 0, 1, 0, 1],
        name="Q4",
    )


def _q5() -> QueryGraph:
    """Size 7, 9 edges: three triangles chained through shared vertices."""
    return QueryGraph(
        7,
        [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (4, 6), (5, 6)],
        labels=[0, 1, 1, 0, 2, 0, 1],
        name="Q5",
    )


def _q6() -> QueryGraph:
    """Size 7, 9 edges: square with an apex plus a triangle tail."""
    return QueryGraph(
        7,
        [(0, 1), (1, 2), (2, 3), (0, 3), (2, 4), (3, 4), (4, 5), (5, 6), (4, 6)],
        labels=[0, 1, 0, 1, 2, 0, 1],
        name="Q6",
    )


QUERY_ORDER = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]

QUERIES: dict[str, QueryGraph] = {
    "Q1": _q1(),
    "Q2": _q2(),
    "Q3": _q3(),
    "Q4": _q4(),
    "Q5": _q5(),
    "Q6": _q6(),
}


def query_by_name(name: str) -> QueryGraph:
    """Look up a catalog query (``Q1``..``Q6``) by name."""
    try:
        return QUERIES[name]
    except KeyError:
        raise KeyError(f"unknown query {name!r}; choose from {QUERY_ORDER}") from None


@lru_cache(maxsize=8)
def motifs(size: int) -> tuple[QueryGraph, ...]:
    """All connected unlabeled graphs with ``size`` vertices.

    Enumerated from the networkx graph atlas (exact: 2 motifs of size 3,
    6 of size 4, 21 of size 5).  Returned patterns carry wildcard labels so
    they match any data-vertex labeling — the configuration of the paper's
    road-network motif-counting experiments.
    """
    require(2 <= size <= 7, "motif size must be in 2..7")
    out: list[QueryGraph] = []
    for g in nx.graph_atlas_g():
        if g.number_of_nodes() != size:
            continue
        if g.number_of_edges() == 0 or not nx.is_connected(g):
            continue
        q = QueryGraph.from_networkx(g, name=f"motif{size}_{len(out)}")
        out.append(q)
    return tuple(out)


def all_motifs_3_4_5() -> list[QueryGraph]:
    """The full Fig. 11 workload: every connected motif of sizes 3, 4, 5."""
    return [q for size in (3, 4, 5) for q in motifs(size)]


# ----------------------------------------------------------------------
# rulebooks: named query sets for multi-query (shared) execution
# ----------------------------------------------------------------------
def _resolve_entry(entry: str) -> list[QueryGraph]:
    """Resolve one rulebook entry to queries.

    ``Q1``..``Q6`` name catalog queries; ``motifs:K`` expands to every
    connected size-``K`` motif; ``motifs:A-B`` expands a size range.
    """
    entry = entry.strip()
    if entry in QUERIES:
        return [QUERIES[entry]]
    if entry.startswith("motifs:"):
        spec = entry.split(":", 1)[1]
        if "-" in spec:
            lo, hi = (int(x) for x in spec.split("-", 1))
        else:
            lo = hi = int(spec)
        return [q for size in range(lo, hi + 1) for q in motifs(size)]
    raise KeyError(
        f"unknown rulebook entry {entry!r}; expected a catalog name "
        f"({QUERY_ORDER}), 'motifs:K', or 'motifs:A-B'"
    )


def _query_from_dict(spec: dict, index: int) -> QueryGraph:
    require("edges" in spec, f"rulebook entry {index}: missing 'edges'")
    edges = [tuple(e) for e in spec["edges"]]
    num_vertices = spec.get(
        "num_vertices", max((max(e) for e in edges), default=-1) + 1
    )
    return QueryGraph(
        num_vertices,
        edges,
        spec.get("labels"),
        spec.get("name", f"rulebook{index}"),
    )


def load_rulebook(spec: str) -> list[QueryGraph]:
    """Load a named-query rulebook for multi-query execution.

    ``spec`` is either a file path or an inline comma-separated entry list.
    Files may be JSON — a list (or ``{"queries": [...]}``) whose items are
    entry strings or inline pattern objects
    (``{"name", "edges", "labels"?, "num_vertices"?}``) — or plain text
    with one entry per line (``#`` comments allowed).  Entry strings
    resolve through the catalog: ``Q1``..``Q6`` or ``motifs:K`` /
    ``motifs:A-B``.  Query names must be unique; the engine lexsorts them,
    so execution is independent of rulebook file order.
    """
    import json
    import os

    queries: list[QueryGraph] = []
    if os.path.exists(spec):
        with open(spec) as fh:
            text = fh.read()
        stripped = text.lstrip()
        if spec.endswith(".json") or stripped[:1] in "[{":
            data = json.loads(text)
            if isinstance(data, dict):
                data = data.get("queries", [])
            for i, item in enumerate(data):
                if isinstance(item, str):
                    queries.extend(_resolve_entry(item))
                else:
                    queries.append(_query_from_dict(item, i))
        else:
            for line in text.splitlines():
                line = line.split("#", 1)[0].strip()
                if line:
                    queries.extend(_resolve_entry(line))
    else:
        for entry in spec.split(","):
            if entry.strip():
                queries.extend(_resolve_entry(entry))
    require(len(queries) >= 1, f"rulebook {spec!r} resolved to no queries")
    names = [q.name for q in queries]
    require(len(set(names)) == len(names),
            f"rulebook {spec!r} has duplicate query names")
    return queries
