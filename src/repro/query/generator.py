"""Random query-pattern generation.

Stress tests and ablations need patterns beyond the fixed Fig. 7 catalog:
random connected labeled graphs with controllable size and density.  The
generator guarantees connectivity (spanning-tree skeleton first, extra
edges after) and can draw labels from a data graph's alphabet so generated
queries have non-trivial match counts.
"""

from __future__ import annotations

import numpy as np

from repro.query.pattern import WILDCARD_LABEL, QueryGraph
from repro.utils import as_generator, require

__all__ = ["random_query", "random_query_suite", "rulebook_suite"]


def random_query(
    num_vertices: int,
    num_edges: int | None = None,
    *,
    num_labels: int | None = None,
    density: float = 0.3,
    seed: int | np.random.Generator | None = 0,
    name: str | None = None,
) -> QueryGraph:
    """Random connected pattern with ``num_vertices`` vertices.

    ``num_edges`` defaults to the spanning tree plus ``density`` of the
    remaining vertex pairs.  ``num_labels=None`` yields a wildcard pattern;
    otherwise labels are drawn uniformly from ``0..num_labels-1``.
    """
    rng = as_generator(seed)
    require(num_vertices >= 2, "pattern needs at least 2 vertices")
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges is None:
        extra = int(round(density * (max_edges - (num_vertices - 1))))
        num_edges = (num_vertices - 1) + extra
    require(num_vertices - 1 <= num_edges <= max_edges,
            f"num_edges must be in [{num_vertices - 1}, {max_edges}]")

    # spanning-tree skeleton: attach each vertex to a random earlier one
    edges: set[tuple[int, int]] = set()
    order = rng.permutation(num_vertices)
    for i in range(1, num_vertices):
        u = int(order[i])
        v = int(order[rng.integers(0, i)])
        edges.add((min(u, v), max(u, v)))
    # densify with uniformly random non-edges
    candidates = [
        (u, v)
        for u in range(num_vertices)
        for v in range(u + 1, num_vertices)
        if (u, v) not in edges
    ]
    rng.shuffle(candidates)
    for u, v in candidates:
        if len(edges) >= num_edges:
            break
        edges.add((u, v))

    labels = None
    if num_labels is not None:
        require(num_labels >= 1, "num_labels must be >= 1")
        labels = rng.integers(0, num_labels, size=num_vertices).tolist()
    return QueryGraph(
        num_vertices,
        sorted(edges),
        labels,
        name or f"rand{num_vertices}v{num_edges}e",
    )


def random_query_suite(
    count: int,
    *,
    min_vertices: int = 3,
    max_vertices: int = 6,
    num_labels: int | None = 3,
    seed: int | np.random.Generator | None = 0,
) -> list[QueryGraph]:
    """A batch of random patterns spanning a size range (for stress tests)."""
    rng = as_generator(seed)
    require(count >= 1, "count must be >= 1")
    require(2 <= min_vertices <= max_vertices, "bad size range")
    suite = []
    for i in range(count):
        n = int(rng.integers(min_vertices, max_vertices + 1))
        suite.append(
            random_query(
                n,
                num_labels=num_labels,
                density=float(rng.uniform(0.0, 0.6)),
                seed=rng,
                name=f"rand{i}_{n}v",
            )
        )
    return suite


def rulebook_suite(
    count: int,
    *,
    num_families: int | None = None,
    min_vertices: int = 4,
    max_vertices: int = 6,
    num_labels: int = 3,
    max_perturbations: int = 1,
    seed: int | np.random.Generator | None = 0,
) -> list[QueryGraph]:
    """Rulebook-style workload: many standing patterns from few families.

    Production rulebooks (fraud rings, rumor motifs) are not ``count``
    unrelated patterns — they are variations on a handful of templates:
    the same ring shape with a different account type at one position.
    This generator mirrors that: it draws ``num_families`` random connected
    skeletons, gives each a base labeling, then emits ``count`` queries by
    resampling the labels of ``0..max_perturbations`` vertices of a random
    family.  Matching orders depend only on structure, so family members
    compile plans whose execution signatures agree up to the first
    perturbed vertex — long shared prefixes for the execution trie — and
    zero-perturbation draws yield outright isomorphic duplicates for the
    symmetry dedupe.  Names are zero-padded (``R000`` …) so lexsorted order
    equals generation order.
    """
    rng = as_generator(seed)
    require(count >= 1, "count must be >= 1")
    require(num_labels >= 1, "num_labels must be >= 1")
    require(max_perturbations >= 0, "max_perturbations must be >= 0")
    if num_families is None:
        num_families = max(2, min(6, count // 8))
    families = []
    for _ in range(num_families):
        skeleton = random_query(
            int(rng.integers(min_vertices, max_vertices + 1)),
            density=float(rng.uniform(0.1, 0.5)),
            seed=rng,
        )
        base_labels = rng.integers(0, num_labels, size=skeleton.num_vertices)
        families.append((skeleton, base_labels))
    width = max(3, len(str(count - 1)))
    suite = []
    for i in range(count):
        skeleton, base_labels = families[int(rng.integers(num_families))]
        labels = base_labels.copy()
        for _ in range(int(rng.integers(0, max_perturbations + 1))):
            labels[int(rng.integers(skeleton.num_vertices))] = int(
                rng.integers(num_labels)
            )
        suite.append(
            QueryGraph(
                skeleton.num_vertices,
                list(skeleton.edges),
                labels.tolist(),
                name=f"R{i:0{width}d}",
            )
        )
    return suite
