"""Pattern automorphisms and duplicate-subgraph handling.

The matching engine counts *embeddings* (injective label-preserving
homomorphisms).  Every distinct matched subgraph is discovered once per
automorphism of the pattern, so ``embeddings / |Aut(Q)|`` gives the count of
distinct subgraphs — the quantity the paper's motif-counting experiments
(Fig. 11) report.  Patterns are tiny (n ≤ 7), so plain permutation search is
both simple and fast; results are memoized per pattern.

For workloads that must *materialize* each subgraph once,
:func:`is_canonical_embedding` keeps exactly the lexicographically-minimal
member of each automorphism orbit — an exact (if brute-force) analog of the
symmetry-breaking restrictions used by AutoMine/GraphZero and RapidFlow's
dual-matching deduplication.

The same permutation machinery also yields **cross-pattern** canonical
forms: :func:`canonical_form` maps every pattern to the lexicographically
minimal relabeling of its ``(labels, edges)`` pair, so two patterns are
label-preserving isomorphic iff their canonical forms are equal.  The
multi-query engine uses this to dedupe rulebooks — isomorphic standing
patterns have identical ΔM on every batch (embedding counts are
isomorphism invariants), so only one representative per class needs to be
matched.  :func:`find_isomorphism` recovers an explicit vertex mapping for
remapping the representative's embeddings back to each alias.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Sequence

from repro.query.pattern import QueryGraph

__all__ = [
    "automorphisms",
    "automorphism_count",
    "is_canonical_embedding",
    "canonical_form",
    "find_isomorphism",
]


@lru_cache(maxsize=256)
def _automorphisms_cached(key: tuple) -> tuple[tuple[int, ...], ...]:
    num_vertices, edges, labels = key
    edge_set = set(edges)
    degs = [0] * num_vertices
    for u, v in edges:
        degs[u] += 1
        degs[v] += 1
    autos: list[tuple[int, ...]] = []
    for perm in permutations(range(num_vertices)):
        ok = True
        for u in range(num_vertices):
            if degs[perm[u]] != degs[u] or labels[perm[u]] != labels[u]:
                ok = False
                break
        if not ok:
            continue
        for u, v in edges:
            a, b = perm[u], perm[v]
            if ((a, b) if a < b else (b, a)) not in edge_set:
                ok = False
                break
        if ok:
            autos.append(perm)
    return tuple(autos)


def automorphisms(query: QueryGraph) -> tuple[tuple[int, ...], ...]:
    """All label-preserving automorphisms of ``query`` (identity included)."""
    return _automorphisms_cached((query.num_vertices, query.edges, query.labels))


def automorphism_count(query: QueryGraph) -> int:
    """``|Aut(Q)|`` — divide embedding counts by this for subgraph counts."""
    return len(automorphisms(query))


def _graph_key(query: QueryGraph) -> tuple:
    return (query.num_vertices, query.edges, query.labels)


@lru_cache(maxsize=512)
def _canonical_form_cached(key: tuple) -> tuple:
    num_vertices, edges, labels = key
    best: tuple | None = None
    for perm in permutations(range(num_vertices)):
        new_labels = tuple(labels[u] for u in _inverse(perm))
        new_edges = tuple(sorted(
            (perm[u], perm[v]) if perm[u] < perm[v] else (perm[v], perm[u])
            for u, v in edges
        ))
        candidate = (new_labels, new_edges)
        if best is None or candidate < best:
            best = candidate
    assert best is not None
    return (num_vertices, *best)


def _inverse(perm: tuple[int, ...]) -> tuple[int, ...]:
    inv = [0] * len(perm)
    for u, p in enumerate(perm):
        inv[p] = u
    return tuple(inv)


def canonical_form(query: QueryGraph) -> tuple:
    """Hashable canonical key, equal iff patterns are label-isomorphic.

    The key is ``(n, labels, edges)`` minimized lexicographically over all
    vertex relabelings (brute force over ``n!`` permutations — patterns are
    tiny, and results are memoized per pattern).  Vertex names and edge
    insertion order are quotiented out; labels are respected, so a
    label-permuted copy of a pattern with *different* vertex labels is not
    conflated with the original.
    """
    return _canonical_form_cached(_graph_key(query))


def find_isomorphism(
    source: QueryGraph, target: QueryGraph
) -> tuple[int, ...] | None:
    """A label-preserving isomorphism ``σ`` with ``σ[u]`` = target vertex for
    source vertex ``u``, or ``None`` if the patterns are not isomorphic.

    Deterministic: returns the lexicographically smallest such mapping, so
    alias→representative remappings are stable across runs.
    """
    if (
        source.num_vertices != target.num_vertices
        or source.num_edges != target.num_edges
        or sorted(source.labels) != sorted(target.labels)
    ):
        return None
    target_edges = set(target.edges)
    for perm in permutations(range(source.num_vertices)):
        ok = all(
            target.labels[perm[u]] == source.labels[u]
            for u in range(source.num_vertices)
        )
        if not ok:
            continue
        for u, v in source.edges:
            a, b = perm[u], perm[v]
            if ((a, b) if a < b else (b, a)) not in target_edges:
                ok = False
                break
        if ok:
            return perm
    return None


def is_canonical_embedding(query: QueryGraph, embedding: Sequence[int]) -> bool:
    """True iff ``embedding`` is the lexicographically smallest tuple in its
    automorphism orbit.

    ``embedding[u]`` is the data vertex mapped to query vertex ``u``.  Each
    distinct matched subgraph has exactly one canonical embedding, so
    filtering with this predicate converts embedding enumeration into
    distinct-subgraph enumeration.
    """
    emb = tuple(embedding)
    for auto in automorphisms(query):
        permuted = tuple(emb[auto[u]] for u in range(len(emb)))
        if permuted < emb:
            return False
    return True
