"""Pattern automorphisms and duplicate-subgraph handling.

The matching engine counts *embeddings* (injective label-preserving
homomorphisms).  Every distinct matched subgraph is discovered once per
automorphism of the pattern, so ``embeddings / |Aut(Q)|`` gives the count of
distinct subgraphs — the quantity the paper's motif-counting experiments
(Fig. 11) report.  Patterns are tiny (n ≤ 7), so plain permutation search is
both simple and fast; results are memoized per pattern.

For workloads that must *materialize* each subgraph once,
:func:`is_canonical_embedding` keeps exactly the lexicographically-minimal
member of each automorphism orbit — an exact (if brute-force) analog of the
symmetry-breaking restrictions used by AutoMine/GraphZero and RapidFlow's
dual-matching deduplication.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import Sequence

from repro.query.pattern import QueryGraph

__all__ = ["automorphisms", "automorphism_count", "is_canonical_embedding"]


@lru_cache(maxsize=256)
def _automorphisms_cached(key: tuple) -> tuple[tuple[int, ...], ...]:
    num_vertices, edges, labels = key
    edge_set = set(edges)
    degs = [0] * num_vertices
    for u, v in edges:
        degs[u] += 1
        degs[v] += 1
    autos: list[tuple[int, ...]] = []
    for perm in permutations(range(num_vertices)):
        ok = True
        for u in range(num_vertices):
            if degs[perm[u]] != degs[u] or labels[perm[u]] != labels[u]:
                ok = False
                break
        if not ok:
            continue
        for u, v in edges:
            a, b = perm[u], perm[v]
            if ((a, b) if a < b else (b, a)) not in edge_set:
                ok = False
                break
        if ok:
            autos.append(perm)
    return tuple(autos)


def automorphisms(query: QueryGraph) -> tuple[tuple[int, ...], ...]:
    """All label-preserving automorphisms of ``query`` (identity included)."""
    return _automorphisms_cached((query.num_vertices, query.edges, query.labels))


def automorphism_count(query: QueryGraph) -> int:
    """``|Aut(Q)|`` — divide embedding counts by this for subgraph counts."""
    return len(automorphisms(query))


def is_canonical_embedding(query: QueryGraph, embedding: Sequence[int]) -> bool:
    """True iff ``embedding`` is the lexicographically smallest tuple in its
    automorphism orbit.

    ``embedding[u]`` is the data vertex mapped to query vertex ``u``.  Each
    distinct matched subgraph has exactly one canonical embedding, so
    filtering with this predicate converts embedding enumeration into
    distinct-subgraph enumeration.
    """
    emb = tuple(embedding)
    for auto in automorphisms(query):
        permuted = tuple(emb[auto[u]] for u in range(len(emb)))
        if permuted < emb:
            return False
    return True
