"""Query pattern graphs.

A :class:`QueryGraph` is a small connected undirected labeled graph
``Q = (V, E, L)`` (paper Sec. II-A).  Vertex labels constrain which data
vertices a query vertex may map to; the sentinel :data:`WILDCARD_LABEL`
(``-1``) matches any data label, which is how the unlabeled *motifs* of the
Fig. 11 road-network experiments are expressed.

Query edges carry a stable global index ``0..m-1`` (their position in
:attr:`QueryGraph.edges`).  That ordering is load-bearing: the incremental
view maintenance decomposition (paper Eq. 1) assigns each query edge ``e_j``
the *old* relation in ΔM_i when ``j < i`` and the *updated* relation when
``j > i``, so every component that touches ΔM plans must agree on edge
indices.  The plan compiler (:mod:`repro.query.plan`) consumes them directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.utils import require

__all__ = ["QueryGraph", "WILDCARD_LABEL"]

#: Label value matching any data-vertex label.
WILDCARD_LABEL = -1


class QueryGraph:
    """Connected undirected labeled pattern with indexed edges.

    Parameters
    ----------
    num_vertices:
        Pattern size ``n`` (the paper evaluates ``n`` in 3..7).
    edges:
        Iterable of ``(u, v)`` pairs; stored canonically as ``u < v`` in
        first-given order, which fixes the global edge indices.
    labels:
        Per-vertex labels; ``None`` means all-wildcard (an unlabeled motif).
    name:
        Optional display name (``"Q1"``, ``"triangle"``, ...).
    edge_predicates:
        Optional mapping ``(u, v) -> (lo, hi)`` constraining the data-edge
        weight (:mod:`repro.graphs.attributes`) an edge may bind to, as a
        closed interval.  Edges without a predicate are unconstrained.
    """

    __slots__ = ("num_vertices", "edges", "labels", "name", "_adj", "_edge_index",
                 "edge_predicates", "_pred_by_index")

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        labels: Sequence[int] | None = None,
        name: str = "query",
        edge_predicates: "dict[tuple[int, int], tuple[float, float]] | None" = None,
    ) -> None:
        require(num_vertices >= 2, "pattern needs at least 2 vertices")
        canon: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for u, v in edges:
            require(0 <= u < num_vertices and 0 <= v < num_vertices, "edge out of range")
            require(u != v, "self loop in pattern")
            e = (u, v) if u < v else (v, u)
            require(e not in seen, f"duplicate pattern edge {e}")
            seen.add(e)
            canon.append(e)
        self.num_vertices = int(num_vertices)
        self.edges: tuple[tuple[int, int], ...] = tuple(canon)
        if labels is None:
            labels = [WILDCARD_LABEL] * num_vertices
        require(len(labels) == num_vertices, "labels length mismatch")
        self.labels: tuple[int, ...] = tuple(int(l) for l in labels)
        self.name = name
        self._adj: list[set[int]] = [set() for _ in range(num_vertices)]
        for u, v in self.edges:
            self._adj[u].add(v)
            self._adj[v].add(u)
        self._edge_index = {e: i for i, e in enumerate(self.edges)}
        require(self._is_connected(), "pattern must be connected")
        preds: dict[int, tuple[float, float]] = {}
        for (u, v), bounds in (edge_predicates or {}).items():
            lo_w, hi_w = float(bounds[0]), float(bounds[1])
            require(lo_w <= hi_w, f"empty predicate interval on edge ({u}, {v})")
            preds[self.edge_index(u, v)] = (lo_w, hi_w)
        #: sorted ``(edge_index, (lo, hi))`` pairs — hashable identity
        self.edge_predicates: tuple[tuple[int, tuple[float, float]], ...] = tuple(
            sorted(preds.items())
        )
        self._pred_by_index = preds

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, u: int) -> set[int]:
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def max_degree(self) -> int:
        return max(self.degree(u) for u in range(self.num_vertices))

    def label(self, u: int) -> int:
        return self.labels[u]

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u]

    def edge_index(self, u: int, v: int) -> int:
        """Global index of undirected edge ``(u, v)`` (paper's relation index)."""
        e = (u, v) if u < v else (v, u)
        try:
            return self._edge_index[e]
        except KeyError:
            raise KeyError(f"pattern has no edge {e}") from None

    def diameter(self) -> int:
        """Graph diameter ``k`` — the hop radius VSGM copies (paper Sec. I)."""
        return int(nx.diameter(self.to_networkx()))

    def is_labeled(self) -> bool:
        return any(l != WILDCARD_LABEL for l in self.labels)

    def has_predicates(self) -> bool:
        """True if any query edge carries a weight predicate."""
        return bool(self.edge_predicates)

    def edge_predicate(self, u: int, v: int) -> tuple[float, float] | None:
        """Weight interval of undirected edge ``(u, v)``, or None."""
        return self._pred_by_index.get(self.edge_index(u, v))

    def predicate_for_index(self, j: int) -> tuple[float, float] | None:
        """Weight interval of the query edge with global index ``j``."""
        return self._pred_by_index.get(j)

    def relabeled(self, labels: Sequence[int], name: str | None = None) -> "QueryGraph":
        """Copy with new vertex labels (used to specialize motifs)."""
        return QueryGraph(self.num_vertices, self.edges, labels, name or self.name,
                          edge_predicates=self._predicates_by_edge())

    def with_edge_predicates(
        self,
        edge_predicates: "dict[tuple[int, int], tuple[float, float]] | None",
        name: str | None = None,
    ) -> "QueryGraph":
        """Copy with the given edge-weight predicates (replacing any)."""
        return QueryGraph(self.num_vertices, self.edges, self.labels,
                          name or self.name, edge_predicates=edge_predicates)

    def _predicates_by_edge(self) -> dict[tuple[int, int], tuple[float, float]]:
        return {self.edges[j]: bounds for j, bounds in self.edge_predicates}

    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.Graph:
        """Convert to a :mod:`networkx` graph with a ``label`` node attribute."""
        g = nx.Graph()
        for u in range(self.num_vertices):
            g.add_node(u, label=self.labels[u])
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph, name: str = "query") -> "QueryGraph":
        """Build from a networkx graph (nodes relabeled to 0..n-1; a ``label``
        node attribute is honored, otherwise wildcard)."""
        nodes = sorted(g.nodes())
        remap = {v: i for i, v in enumerate(nodes)}
        edges = [(remap[u], remap[v]) for u, v in g.edges()]
        labels = [int(g.nodes[v].get("label", WILDCARD_LABEL)) for v in nodes]
        return cls(len(nodes), edges, labels, name)

    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_vertices

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self.edges == other.edges
            and self.labels == other.labels
            and self.edge_predicates == other.edge_predicates
        )

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.edges, self.labels, self.edge_predicates))

    def __repr__(self) -> str:
        lab = "labeled" if self.is_labeled() else "wildcard"
        pred = ", predicated" if self.has_predicates() else ""
        return (f"QueryGraph({self.name}, n={self.num_vertices}, "
                f"m={self.num_edges}, {lab}{pred})")
