"""Query substrate: pattern graphs, the Fig. 7 query catalog, WCOJ plan
compilation (static and incremental ΔM_i plans of paper Fig. 2), and
automorphism handling."""

from repro.query.pattern import QueryGraph, WILDCARD_LABEL
from repro.query.catalog import QUERIES, QUERY_ORDER, query_by_name, motifs, all_motifs_3_4_5
from repro.query.plan import (
    EdgeVersion,
    LevelPlan,
    MatchPlan,
    compile_static_plan,
    compile_delta_plans,
)
from repro.query.symmetry import automorphisms, automorphism_count

__all__ = [
    "QueryGraph",
    "WILDCARD_LABEL",
    "QUERIES",
    "QUERY_ORDER",
    "all_motifs_3_4_5",
    "query_by_name",
    "motifs",
    "EdgeVersion",
    "LevelPlan",
    "MatchPlan",
    "compile_static_plan",
    "compile_delta_plans",
    "automorphisms",
    "automorphism_count",
]
