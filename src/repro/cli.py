"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Table I analogs with live statistics.
``list-queries``
    The Fig. 7 catalog.
``run``
    Run one system on one (dataset, query) workload; optionally export the
    record as JSON.
``compare``
    Run several systems on the same workload and print a speedup summary.
``figure``
    Regenerate one of the paper's tables/figures (or ``all``).
``matrix``
    Expand and run a declarative scenario matrix (``repro.bench.matrix``),
    persist its trajectory, and optionally gate it against a baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench import figures
from repro.bench.harness import build_workload, print_table, run_stream
from repro.core.baselines import SYSTEM_NAMES
from repro.core.frequency import DEFAULT_ESTIMATOR, ESTIMATORS
from repro.core.matching import DEFAULT_EXECUTOR, EXECUTORS
from repro.core.results import ExperimentRecord, save_records, summarize
from repro.gpu.device import INTERCONNECTS, ClusterConfig
from repro.graphs import datasets
from repro.graphs.stream import CONFLICT_MODES
from repro.multigpu.partition import PARTITIONER_NAMES
from repro.query import QUERIES, QUERY_ORDER, query_by_name
from repro.utils import format_bytes, format_time_ns

__all__ = ["main", "build_parser"]

FIGURE_RUNNERS = {
    "table1": lambda: figures.table1_datasets(),
    "fig7": lambda: figures.fig7_queries(),
    "fig8": lambda: figures.fig8_to_10_exec_time("FR"),
    "fig9": lambda: figures.fig8_to_10_exec_time("SF3K"),
    "fig10": lambda: figures.fig8_to_10_exec_time("SF10K"),
    "fig11": lambda: figures.fig11_roadnet_motifs(),
    "fig12": lambda: figures.fig12_batch_size_sweep(),
    "fig13": lambda: figures.fig13_vsgm_breakdown(),
    "fig14": lambda: figures.fig14_rapidflow(),
    "fig15": lambda: figures.fig15_locality(),
    "table2": lambda: figures.table2_overhead(),
    "table3": lambda: figures.table3_reorg_time(),
    "um": lambda: figures.um_slowdown(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCSM reproduction: continuous subgraph matching on a "
        "simulated CPU-GPU system (IPDPS 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="Table I analogs with statistics")
    sub.add_parser("list-queries", help="the Fig. 7 query catalog")

    run_p = sub.add_parser("run", help="run one system on one workload")
    run_p.add_argument("--system", default="GCSM",
                       choices=list(SYSTEM_NAMES) + ["RapidFlow"])
    run_p.add_argument("--dataset", default="FR", choices=datasets.TABLE1_ORDER)
    run_p.add_argument("--query", default="Q1", choices=QUERY_ORDER)
    run_p.add_argument("--rulebook", default=None, metavar="SPEC",
                       help="match a whole rulebook instead of --query: a "
                            "file (JSON or one entry per line) or an inline "
                            "comma list of catalog entries (Q1..Q6, "
                            "motifs:K, motifs:A-B); runs the multi-query "
                            "engine with shared trie execution")
    run_p.add_argument("--no-shared", dest="shared", action="store_false",
                       help="with --rulebook: per-query independent "
                            "execution instead of the shared trie (the "
                            "parity/ablation baseline)")
    run_p.add_argument("--batch-size", type=int, default=None)
    run_p.add_argument("--batches", type=int, default=1)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--devices", type=int, default=None, metavar="N",
                       help="simulate an N-GPU fleet (GCSM only; routes to the "
                            "sharded MultiGpuEngine, N=1 matches single-GPU "
                            "bit-for-bit)")
    run_p.add_argument("--partitioner", default="hash",
                       choices=list(PARTITIONER_NAMES),
                       help="vertex-ownership strategy for --devices (default: hash)")
    run_p.add_argument("--partitioner-opt", action="append", default=[],
                       metavar="KEY=VALUE", dest="partitioner_opts",
                       help="tuning knob for --partitioner (repeatable), e.g. "
                            "--partitioner-opt balance_slack=0.15")
    run_p.add_argument("--repartition-every", type=int, default=None, metavar="N",
                       help="enable sticky ownership + online repartitioning, "
                            "evaluating drift every N batches (GCSM with "
                            "--devices > 1 only)")
    run_p.add_argument("--repartition-threshold", type=float, default=None,
                       metavar="R",
                       help="heat-weighted cut-rate that triggers a replan "
                            "(default 0.25; implies --repartition-every 4 "
                            "when set alone)")
    run_p.add_argument("--interconnect", default="nvlink",
                       choices=sorted(INTERCONNECTS),
                       help="peer-link cost preset for --devices (default: nvlink)")
    run_p.add_argument("--workers", type=int, default=None, metavar="W",
                       help="host thread-pool width for per-shard work "
                            "(default: repro.parallel.default_workers() — "
                            "min(cpu_count, 8)); simulated time is unaffected")
    run_p.add_argument("--executor", default=DEFAULT_EXECUTOR, choices=EXECUTORS,
                       help="matching executor: the batched frontier kernel "
                            "(default) or the recursive reference; both are "
                            "counter-identical, only wall-clock differs")
    run_p.add_argument("--estimator", default=DEFAULT_ESTIMATOR, choices=ESTIMATORS,
                       help="frequency-estimation sampler: the level-"
                            "synchronous merged-frontier walker (default) or "
                            "the recursive reference; identical in the "
                            "deterministic regime, only wall-clock differs")
    run_p.add_argument("--conflict-mode", default=None, choices=CONFLICT_MODES,
                       help="update-conflict policy for duplicate inserts / "
                            "phantom deletes / same-batch churn: strict "
                            "(raise), coalesce (last-occurrence-wins netting; "
                            "engine default), ignore (first-occurrence wins)")
    run_p.add_argument("--prefilter", default=None, choices=["on", "off"],
                       help="aggregate-invariant pre-filter: certify ΔM = 0 "
                            "batches/roots and skip estimation, packing, and "
                            "the kernel before they run (default: off)")
    run_p.add_argument("--json", metavar="PATH", default=None,
                       help="export the record as JSON")

    cmp_p = sub.add_parser("compare", help="run several systems, summarize speedups")
    cmp_p.add_argument("--systems", default="GCSM,ZC,CPU",
                       help="comma-separated system names")
    cmp_p.add_argument("--dataset", default="FR", choices=datasets.TABLE1_ORDER)
    cmp_p.add_argument("--query", default="Q1", choices=QUERY_ORDER)
    cmp_p.add_argument("--batch-size", type=int, default=None)
    cmp_p.add_argument("--batches", type=int, default=1)
    cmp_p.add_argument("--seed", type=int, default=0)

    fig_p = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=list(FIGURE_RUNNERS) + ["all"])

    srv_p = sub.add_parser(
        "serve",
        help="multi-tenant continuous-ingest service run with SLO report",
    )
    srv_p.add_argument("--tenants", type=int, default=3, metavar="N",
                       help="number of tenant streams (default: 3)")
    srv_p.add_argument("--batches", type=int, default=8,
                       help="batches per tenant stream (default: 8)")
    srv_p.add_argument("--batch-size", type=int, default=16)
    srv_p.add_argument("--rate", type=float, default=50.0, metavar="R",
                       help="per-tenant arrival rate in batches/simulated-sec")
    srv_p.add_argument("--arrival", default="poisson",
                       choices=["poisson", "bursty", "closed"],
                       help="arrival process: open-loop poisson/bursty or "
                            "closed-loop (next batch after completion + think)")
    srv_p.add_argument("--burst", type=int, default=4,
                       help="burst size for --arrival bursty (default: 4)")
    srv_p.add_argument("--devices", type=int, default=1,
                       help="device fleet size (default: 1)")
    srv_p.add_argument("--queue-capacity", type=int, default=8,
                       help="per-tenant ingest queue bound (default: 8)")
    srv_p.add_argument("--scheduler", default="fair",
                       choices=["fair", "priority"],
                       help="device scheduler across ready tenants")
    srv_p.add_argument("--admission", default="reject",
                       choices=["reject", "shed-oldest", "backpressure"],
                       help="policy when a tenant queue is full")
    srv_p.add_argument("--no-pipeline", dest="pipeline", action="store_false",
                       help="serial per-batch engines instead of the "
                            "pipelined (overlapped) engine")
    srv_p.add_argument("--prefilter", default=None, choices=["on", "off"],
                       help="enable the aggregate-invariant pre-filter on "
                            "every tenant engine (default: off)")
    srv_p.add_argument("--seed", type=int, default=0)
    srv_p.add_argument("--json", metavar="PATH", default=None,
                       help="persist the machine-readable service report")
    srv_p.add_argument("--report", action="store_true",
                       help="pretty-print the per-tenant SLO table")
    srv_p.add_argument("--max-shed", type=float, default=None, metavar="F",
                       help="exit non-zero if any tenant's shed rate exceeds "
                            "F (scriptable SLO gate for CI)")

    mtx_p = sub.add_parser(
        "matrix",
        help="run a declarative scenario matrix and gate it against a baseline",
    )
    mtx_p.add_argument("--spec", required=True, metavar="PATH",
                       help="JSON scenario spec (see docs/experiments.md)")
    mtx_p.add_argument("--filter", action="append", default=[],
                       metavar="FACTOR=VALUE", dest="filters",
                       help="restrict the run table to cells whose factor "
                            "matches (repeatable); '-' matches unset, e.g. "
                            "--filter devices=-")
    mtx_p.add_argument("--sample", type=float, default=None, metavar="F",
                       help="override the spec's deterministic sampling "
                            "fraction (0 < F <= 1)")
    mtx_p.add_argument("--list", action="store_true", dest="list_cells",
                       help="print the expanded run table (and pruned cells) "
                            "without executing")
    mtx_p.add_argument("--out", metavar="PATH", default=None,
                       help="persist the trajectory JSON (BENCH_matrix.json)")
    mtx_p.add_argument("--baseline", metavar="PATH", default=None,
                       help="diff the fresh trajectory against this committed "
                            "baseline and exit non-zero on regression")
    mtx_p.add_argument("--max-regress", type=float, default=20.0, metavar="PCT",
                       help="tolerated relative growth of gated metrics "
                            "(default: 20)")

    ver_p = sub.add_parser(
        "verify",
        help="cross-check that all systems agree on ΔM (optionally vs the oracle)",
    )
    ver_p.add_argument("--systems", default="GCSM,ZC,UM,Naive,CPU")
    ver_p.add_argument("--dataset", default="AZ", choices=datasets.TABLE1_ORDER)
    ver_p.add_argument("--query", default="Q1", choices=QUERY_ORDER)
    ver_p.add_argument("--batch-size", type=int, default=64)
    ver_p.add_argument("--batches", type=int, default=2)
    ver_p.add_argument("--oracle", action="store_true",
                       help="also recount from scratch (small graphs only)")
    ver_p.add_argument("--seed", type=int, default=0)
    ver_p.add_argument("--fuzz", type=int, default=None, metavar="N",
                       help="differential stream fuzzing: replay N adversarial "
                            "update streams (duplicates, phantom deletes, "
                            "churn, double deletes, new-vertex bursts, "
                            "flapping) through every system with the oracle "
                            "and store-invariant checks enabled")
    ver_p.add_argument("--conflict-mode", default=None, choices=CONFLICT_MODES,
                       help="update-conflict policy to force on every system "
                            "(fuzz default: coalesce)")
    return parser


def _cmd_list_datasets() -> int:
    rows = []
    for r in datasets.table1_rows():
        rows.append([
            r["graph"], r["vertices"], r["edges"], r["max_degree"],
            format_bytes(int(r["size_bytes"])),
            "yes" if r["fits_buffer"] else "no",
        ])
    print_table("datasets (Table I analogs)",
                ["graph", "vertices", "edges", "max deg", "size", "fits buffer"],
                rows)
    return 0


def _cmd_list_queries() -> int:
    rows = []
    for name in QUERY_ORDER:
        q = QUERIES[name]
        rows.append([name, q.num_vertices, q.num_edges, q.diameter(),
                     " ".join(map(str, q.labels))])
    print_table("queries (Fig. 7 catalog)",
                ["query", "vertices", "edges", "diameter", "labels"], rows)
    return 0


def _cmd_run_rulebook(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_rulebook_stream
    from repro.query.catalog import load_rulebook

    if args.system != "GCSM":
        print(f"--rulebook only applies to GCSM, not {args.system}", file=sys.stderr)
        return 2
    if args.devices is not None:
        print("--rulebook and --devices are mutually exclusive", file=sys.stderr)
        return 2
    extra: dict = {}
    if args.executor != DEFAULT_EXECUTOR:
        extra["executor"] = args.executor
    if args.estimator != DEFAULT_ESTIMATOR:
        extra["estimator"] = args.estimator
    if args.conflict_mode is not None:
        extra["conflict_mode"] = args.conflict_mode
    if args.prefilter is not None:
        extra["prefilter"] = args.prefilter
    try:
        queries = load_rulebook(args.rulebook)
        result = run_rulebook_stream(
            args.dataset, queries, shared=args.shared,
            batch_size=args.batch_size, num_batches=args.batches, seed=args.seed,
            **extra,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    bd = result.breakdown
    print(result.describe())
    print(f"  rulebook          : {result.rulebook_size} queries, "
          f"shared={result.shared}")
    print(f"  ΔM total          : {result.delta_total:+d}")
    print(f"  embeddings emitted: {result.embeddings_total}")
    print(f"  per-batch phases  : update {format_time_ns(bd.update_ns)}, "
          f"FE {format_time_ns(bd.estimate_ns)}, DC {format_time_ns(bd.pack_ns)}, "
          f"match {format_time_ns(bd.match_ns)}, reorg {format_time_ns(bd.reorg_ns)}")
    if result.cache_hit_rate is not None:
        print(f"  cache hit rate    : {result.cache_hit_rate:.2f} "
              f"({format_bytes(result.cache_bytes)} cached)")
    _print_prefilter(result)
    if args.json:
        save_records([ExperimentRecord.from_run(result)], args.json)
        print(f"  record written to {args.json}")
    return 0


def _print_prefilter(result) -> None:
    """Skip-rate summary line for prefiltered runs (run + rulebook)."""
    if result.prefilter is None:
        return
    line = (f"  prefilter         : {result.batches_skipped}/"
            f"{result.num_batches} batches skipped "
            f"({result.batch_skip_rate:.0%}), "
            f"{result.roots_skipped} roots masked")
    if result.rulebook_size:
        line += f", {result.queries_skipped} query-batches skipped"
    print(line)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.rulebook is not None:
        return _cmd_run_rulebook(args)
    extra: dict = {}
    if args.executor != DEFAULT_EXECUTOR:
        extra["executor"] = args.executor
    if args.estimator != DEFAULT_ESTIMATOR:
        extra["estimator"] = args.estimator
    if args.devices is not None:
        if args.system != "GCSM":
            print(f"--devices only applies to GCSM, not {args.system}",
                  file=sys.stderr)
            return 2
        try:
            extra["devices"] = ClusterConfig(
                num_devices=args.devices, interconnect=args.interconnect
            )
        except ValueError as exc:
            print(f"repro run: error: {exc}", file=sys.stderr)
            return 2
        extra["partitioner"] = args.partitioner
        extra["workers"] = args.workers
        if args.partitioner_opts:
            opts: dict = {}
            for item in args.partitioner_opts:
                key, sep, value = item.partition("=")
                if not sep or not key:
                    print(f"bad --partitioner-opt {item!r}: expected KEY=VALUE",
                          file=sys.stderr)
                    return 2
                try:
                    opts[key] = int(value)
                except ValueError:
                    try:
                        opts[key] = float(value)
                    except ValueError:
                        opts[key] = value
            extra["partitioner_opts"] = opts
        if args.repartition_every is not None or args.repartition_threshold is not None:
            rep: dict = {}
            if args.repartition_every is not None:
                rep["every"] = args.repartition_every
            if args.repartition_threshold is not None:
                rep["threshold"] = args.repartition_threshold
            extra["repartition"] = rep
    elif args.partitioner_opts or args.repartition_every is not None \
            or args.repartition_threshold is not None:
        print("--partitioner-opt/--repartition-* require --devices",
              file=sys.stderr)
        return 2
    if args.conflict_mode is not None:
        extra["conflict_mode"] = args.conflict_mode
    if args.prefilter is not None:
        extra["prefilter"] = args.prefilter
    try:
        result = run_stream(
            args.system, args.dataset, query_by_name(args.query),
            batch_size=args.batch_size, num_batches=args.batches, seed=args.seed,
            **extra,
        )
    except ValueError as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    bd = result.breakdown
    print(result.describe())
    print(f"  ΔM total          : {result.delta_total:+d}")
    print(f"  embeddings emitted: {result.embeddings_total}")
    print(f"  per-batch phases  : update {format_time_ns(bd.update_ns)}, "
          f"FE {format_time_ns(bd.estimate_ns)}, DC {format_time_ns(bd.pack_ns)}, "
          f"match {format_time_ns(bd.match_ns)}, reorg {format_time_ns(bd.reorg_ns)}")
    if result.cache_hit_rate is not None:
        print(f"  cache hit rate    : {result.cache_hit_rate:.2f} "
              f"({format_bytes(result.cache_bytes)} cached)")
    _print_prefilter(result)
    if result.num_devices > 1:
        last = result.load_balance[-1] if result.load_balance else {}
        print(f"  fleet             : {result.num_devices} devices "
              f"({args.interconnect}), partitioner={result.partitioner}")
        print(f"  comm              : peer {format_bytes(result.peer_bytes)}, "
              f"all-reduce {format_time_ns(result.allreduce_ns)}")
        if result.imbalance is not None:
            straggler = last.get("straggler")
            tail = (f"(last batch straggler: shard {straggler})"
                    if straggler is not None else "(idle fleet: no straggler)")
            print(f"  load balance      : mean imbalance {result.imbalance:.2f} "
                  f"{tail}")
        if result.repartition is not None:
            rep = result.repartition
            print(f"  repartition       : {rep['triggered']}/{rep['evaluated']} "
                  f"replans, {rep['moved']} vertices moved "
                  f"({format_bytes(rep['migration_bytes'])} migrated, "
                  f"{format_time_ns(rep['repartition_ns'])})")
    if args.json:
        save_records([ExperimentRecord.from_run(result)], args.json)
        print(f"  record written to {args.json}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    records = []
    rows = []
    for system in systems:
        result = run_stream(
            system, args.dataset, query_by_name(args.query),
            batch_size=args.batch_size, num_batches=args.batches, seed=args.seed,
        )
        records.append(ExperimentRecord.from_run(result))
        rows.append([system, result.total_ms, result.match_ms,
                     result.cpu_access_bytes, result.delta_total])
    print_table(
        f"compare on {args.dataset}/{args.query}",
        ["system", "total ms", "match ms", "CPU access B", "ΔM"], rows,
    )
    baseline = systems[-1]
    for system in systems[:-1]:
        print(summarize(records, system, baseline).describe())
    return 0


def _cmd_figure(name: str) -> int:
    if name == "all":
        for key, runner in FIGURE_RUNNERS.items():
            print(f"\n### {key}")
            runner()
        return 0
    FIGURE_RUNNERS[name]()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.bench.harness import run_service

    engine_kwargs = (
        {"prefilter": args.prefilter} if args.prefilter is not None else None
    )
    try:
        report = run_service(
            args.tenants,
            num_batches=args.batches, batch_size=args.batch_size,
            rate_per_sec=args.rate, arrival=args.arrival, burst=args.burst,
            num_devices=args.devices, queue_capacity=args.queue_capacity,
            scheduler=args.scheduler, admission=args.admission,
            pipeline=args.pipeline, seed=args.seed, json_path=args.json,
            engine_kwargs=engine_kwargs,
        )
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"service: {args.tenants} tenants x {args.batches} batches on "
        f"{report.num_devices} device(s), scheduler={report.scheduler}, "
        f"admission={report.admission}, pipeline={report.pipeline}"
    )
    print(f"  completed         : {report.completed} batches "
          f"({report.total_edges} edge updates)")
    print(f"  makespan          : {format_time_ns(report.makespan_ns)} simulated "
          f"({report.wall_clock_s:.3f} s wall)")
    print(f"  sustained         : {report.sustained_edges_per_sec:,.0f} edges/sec")
    if report.schedule:
        print(f"  pipeline overlap  : {format_time_ns(report.schedule['overlap_ns'])} "
              f"hidden, schedule speedup {report.schedule['speedup']:.2f}x")
    if args.json:
        print(f"  report written to {args.json}")
    if args.report:
        from repro.service.metrics import ServiceReport

        print_table("per-tenant SLOs", ServiceReport.SLO_HEADER, report.slo_rows())
    if args.max_shed is not None and report.max_shed_rate > args.max_shed:
        offenders = [
            f"{t['name']} ({t['shed_rate']:.3f})"
            for t in report.tenants if t["shed_rate"] > args.max_shed
        ]
        print(f"SLO VIOLATION: shed rate above {args.max_shed}: "
              f"{', '.join(offenders)}", file=sys.stderr)
        return 1
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.bench import matrix

    try:
        spec = matrix.ScenarioSpec.from_json(args.spec)
    except (OSError, KeyError, ValueError) as exc:
        print(f"repro matrix: bad spec {args.spec!r}: {exc}", file=sys.stderr)
        return 2
    filters: dict[str, str] = {}
    for item in args.filters:
        key, sep, value = item.partition("=")
        if not sep or not key:
            print(f"bad --filter {item!r}: expected FACTOR=VALUE", file=sys.stderr)
            return 2
        filters[key] = value
    try:
        if args.list_cells:
            cells, pruned = matrix.expand_cells(spec, sample=args.sample)
            cells = matrix.filter_cells(cells, filters)
            for cell in cells:
                print(matrix.cell_id(cell))
            for svc in spec.service:
                if not filters:
                    print(f"service: {svc}")
            print(f"{len(cells)} cells to run, {len(pruned)} pruned:")
            for cell, reason in pruned:
                print(f"  pruned ({reason}): {matrix.cell_id(cell)}")
            return 0
        trajectory = matrix.run_matrix(
            spec, filters=filters, sample=args.sample, progress=print
        )
    except ValueError as exc:
        print(f"repro matrix: error: {exc}", file=sys.stderr)
        return 2
    print(f"matrix {spec.name!r}: {trajectory['cells_run']} cells run, "
          f"{len(trajectory['cells_pruned'])} pruned "
          f"(git {trajectory['git_sha'] or 'unknown'})")
    if args.out:
        matrix.save_trajectory(trajectory, args.out)
        print(f"trajectory written to {args.out}")
    if args.baseline:
        try:
            baseline = matrix.load_trajectory(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro matrix: bad baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        report = matrix.compare_trajectories(
            trajectory, baseline, max_regress_pct=args.max_regress
        )
        print(report.describe())
        if not report.ok:
            return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.validation import ConsistencyError, fuzz_verify, verify_stream
    from repro.graphs.stream import DEFAULT_CONFLICT_MODE

    if args.fuzz is not None:
        try:
            report = fuzz_verify(
                args.fuzz, seed=args.seed,
                conflict_mode=args.conflict_mode or DEFAULT_CONFLICT_MODE,
                verbose=True,
            )
        except ConsistencyError as exc:
            print(f"FAILED: {exc}")
            return 1
        print(report.describe())
        return 0

    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    g0, batches = build_workload(
        args.dataset, batch_size=args.batch_size, num_batches=args.batches,
        seed=args.seed,
    )
    try:
        report = verify_stream(
            systems, g0, query_by_name(args.query), batches[: args.batches],
            against_oracle=args.oracle, seed=args.seed,
            conflict_mode=args.conflict_mode,
        )
    except ConsistencyError as exc:
        print(f"FAILED: {exc}")
        return 1
    print(report.describe())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "list-queries":
        return _cmd_list_queries()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args.name)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "matrix":
        return _cmd_matrix(args)
    if args.command == "verify":
        return _cmd_verify(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
