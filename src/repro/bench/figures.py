"""Per-figure/table experiment runners (paper Sec. VI).

Every public function reproduces one table or figure: it runs the relevant
systems on the scaled workloads, prints a paper-style table, and returns the
structured rows so the ``benchmarks/`` targets can assert the expected
shape (who wins, by roughly what factor).  Results are memoized per
parameter set within the process, so e.g. Table II reuses the Fig. 8-10
runs instead of recomputing them.

Scaling: batch sizes are 1/16 of the paper's (4096 -> 256, 8192 -> 512),
matching the ~1e4 size scaling of graphs and device memory; Fig. 12 sweeps
the same 8 points scaled by the same factor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import RunResult, build_workload, print_table, run_stream
from repro.core.baselines import VsgmCapacityError, make_system
from repro.core.rapidflow import IndexMemoryError, RapidFlowSystem
from repro.graphs import DynamicGraph, datasets
from repro.gpu.clock import simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, default_device
from repro.query import QUERIES, QUERY_ORDER, motifs, query_by_name

__all__ = [
    "table1_datasets",
    "fig7_queries",
    "fig8_to_10_exec_time",
    "fig11_roadnet_motifs",
    "fig12_batch_size_sweep",
    "fig13_vsgm_breakdown",
    "fig14_rapidflow",
    "fig15_locality",
    "table2_overhead",
    "table3_reorg_time",
    "um_slowdown",
]

#: paper batch 4096 / 8192 scaled by the dataset scale factor
SCALED_BATCH_4096 = 256
SCALED_BATCH_8192 = 512

_RUN_CACHE: dict[tuple, RunResult] = {}


def _run(system: str, dataset: str, query_name: str, *, batch_size: int,
         num_batches: int = 1, seed: int = 0, **kwargs) -> RunResult:
    key = (system, dataset, query_name, batch_size, num_batches, seed,
           tuple(sorted(kwargs.items())))
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run_stream(
            system, dataset, query_by_name(query_name),
            batch_size=batch_size, num_batches=num_batches, seed=seed, **kwargs,
        )
    return _RUN_CACHE[key]


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1_datasets(seed: int = 0) -> list[dict[str, object]]:
    """Table I: the seven data graphs (scaled analogs vs paper stats)."""
    rows = datasets.table1_rows(seed)
    print_table(
        "Table I: data graphs (scaled analog | paper)",
        ["graph", "n", "m", "maxdeg", "size(B)", "fits buf",
         "paper n(M)", "paper m(M)", "paper maxdeg", "paper GB"],
        [[r["graph"], r["vertices"], r["edges"], r["max_degree"], r["size_bytes"],
          r["fits_buffer"], r["paper_vertices_M"], r["paper_edges_M"],
          r["paper_max_degree"], r["paper_size_gb"]] for r in rows],
    )
    return rows


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------
def fig7_queries() -> list[dict[str, object]]:
    """Fig. 7: the query catalog (sizes 5-7, increasing density)."""
    rows = []
    for name in QUERY_ORDER:
        q = QUERIES[name]
        rows.append({
            "query": name, "vertices": q.num_vertices, "edges": q.num_edges,
            "diameter": q.diameter(), "labels": list(q.labels),
        })
    print_table(
        "Fig. 7: query graphs",
        ["query", "n", "m", "diam", "labels"],
        [[r["query"], r["vertices"], r["edges"], r["diameter"], r["labels"]]
         for r in rows],
    )
    return rows


# ----------------------------------------------------------------------
# Fig. 8 / 9 / 10
# ----------------------------------------------------------------------
def fig8_to_10_exec_time(
    dataset: str,
    *,
    batch_size: int | None = None,
    queries: Sequence[str] = tuple(QUERY_ORDER),
    systems: Sequence[str] = ("GCSM", "ZC", "Naive", "CPU"),
    num_batches: int = 1,
    seed: int = 0,
) -> dict[str, dict[str, RunResult]]:
    """Figs. 8-10: per-query execution time of GCSM vs the baselines.

    Returns ``{query: {system: RunResult}}``.  The printed table carries the
    per-bar CPU-access-size labels of the paper's figures.
    """
    if batch_size is None:
        batch_size = SCALED_BATCH_8192 if dataset == "SF10K" else SCALED_BATCH_4096
    out: dict[str, dict[str, RunResult]] = {}
    rows = []
    for qname in queries:
        out[qname] = {}
        for system in systems:
            r = _run(system, dataset, qname, batch_size=batch_size,
                     num_batches=num_batches, seed=seed)
            out[qname][system] = r
        zc = out[qname].get("ZC")
        for system in systems:
            r = out[qname][system]
            speedup = (zc.breakdown.total_ns / r.breakdown.total_ns) if zc else float("nan")
            rows.append([qname, system, r.total_ms, r.match_ms,
                         r.cpu_access_bytes, speedup])
    fig = {"FR": "Fig. 8", "SF3K": "Fig. 9", "SF10K": "Fig. 10"}.get(dataset, "Fig. 8-10")
    print_table(
        f"{fig}: execution time per batch ({dataset}, |ΔE|={batch_size})",
        ["query", "system", "total ms", "match ms", "CPU access B", "vs ZC"],
        rows,
    )
    return out


# ----------------------------------------------------------------------
# Fig. 11
# ----------------------------------------------------------------------
def fig11_roadnet_motifs(
    *,
    graphs: Sequence[str] = ("PA", "CA"),
    sizes: Sequence[int] = (3, 4, 5),
    systems: Sequence[str] = ("GCSM", "ZC", "Naive"),
    batch_size: int = SCALED_BATCH_4096,
    seed: int = 0,
) -> dict[tuple[str, int], dict[str, float]]:
    """Fig. 11: counting all size-3/4/5 motifs on the road networks.

    Per (graph, motif size): total simulated time per batch summed over all
    motifs of that size, per system.  Returns ``{(graph, size): {system: ns}}``.
    """
    out: dict[tuple[str, int], dict[str, float]] = {}
    rows = []
    for dataset in graphs:
        g0, batches = build_workload(dataset, batch_size=batch_size, seed=seed)
        batch = batches[0]
        for size in sizes:
            totals = {s: 0.0 for s in systems}
            for motif in motifs(size):
                for system in systems:
                    sys_obj = make_system(system, g0, motif, seed=seed)
                    result = sys_obj.process_batch(batch)
                    totals[system] += result.breakdown.total_ns
            out[(dataset, size)] = totals
            zc = totals.get("ZC")
            for system in systems:
                rows.append([dataset, size, system, totals[system] / 1e6,
                             (zc / totals[system]) if zc else float("nan")])
    print_table(
        f"Fig. 11: size-3/4/5 motif counting on road networks (|ΔE|={batch_size})",
        ["graph", "motif size", "system", "total ms", "vs ZC"],
        rows,
    )
    return out


# ----------------------------------------------------------------------
# Fig. 12
# ----------------------------------------------------------------------
def fig12_batch_size_sweep(
    *,
    cases: Sequence[tuple[str, str]] = (("SF3K", "Q6"), ("SF10K", "Q5")),
    batch_sizes: Sequence[int] = (16, 32, 64, 128, 256, 512),
    total_updates: int = 512,
    seed: int = 0,
) -> dict[tuple[str, str, int], dict[str, RunResult]]:
    """Fig. 12: execution time vs batch size (paper: 64..8192, scaled /16).

    The *same* ``total_updates``-edge update set is replayed at every batch
    size (derive_stream's selection depends only on the update count and
    seed), so the sweep isolates batching granularity exactly as the paper
    does; reported times are means per batch.  The paper's headline: time is
    nearly proportional to batch size and GCSM's speedup holds across sizes.
    """
    out: dict[tuple[str, str, int], dict[str, RunResult]] = {}
    rows = []
    for dataset, qname in cases:
        for bs in batch_sizes:
            num_batches = max(1, total_updates // bs)
            res = {
                system: _run(system, dataset, qname, batch_size=bs,
                             num_batches=num_batches, seed=seed)
                for system in ("GCSM", "ZC", "Naive")
            }
            out[(dataset, qname, bs)] = res
            rows.append([
                dataset, qname, bs,
                res["GCSM"].total_ms, res["ZC"].total_ms,
                res["ZC"].breakdown.total_ns / res["GCSM"].breakdown.total_ns,
                res["Naive"].breakdown.total_ns / res["GCSM"].breakdown.total_ns,
            ])
    print_table(
        "Fig. 12: batch-size sweep (mean time per batch over one 512-update stream)",
        ["graph", "query", "|ΔE|", "GCSM ms", "ZC ms", "ZC/GCSM", "Naive/GCSM"],
        rows,
    )
    return out


# ----------------------------------------------------------------------
# Fig. 13
# ----------------------------------------------------------------------
def fig13_vsgm_breakdown(
    *,
    cases: Sequence[tuple[str, str, int]] = (("SF3K", "Q1", 8), ("SF10K", "Q1", 4)),
    seed: int = 0,
) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 13: DC-vs-Match breakdown of VSGM and GCSM.

    The paper had to shrink VSGM's batches to 128 (SF3K) / 64 (SF10K) to fit
    the k-hop working set in GPU memory; we use the same sizes scaled (/16).
    At our *vertex* scale the k-hop neighborhood saturates to a large graph
    fraction even for tiny batches (44k vertices vs the real graph's 33M),
    so VSGM runs with ``strict_capacity=False`` and the table reports how
    far its working set overflows the buffer — the very pathology that
    limits VSGM.  The headline shape is unaffected: both systems' matching
    kernels cost about the same, while VSGM's data-copy phase dominates.
    Returns ``{dataset: {system: {"dc_ms", "match_ms", "batch",
    "copy_bytes"}}}``.
    """
    out: dict[str, dict[str, dict[str, float]]] = {}
    rows = []
    device = default_device()
    for dataset, qname, bs in cases:
        g0, batches = build_workload(dataset, batch_size=bs, seed=seed)
        vsgm = make_system("VSGM", g0, query_by_name(qname), seed=seed,
                           strict_capacity=False)
        vsgm_result = vsgm.process_batch(batches[0])
        gcsm = _run("GCSM", dataset, qname, batch_size=bs, seed=seed)
        vsgm_dc = vsgm_result.breakdown.pack_ns / 1e6
        vsgm_match = vsgm_result.breakdown.match_ns / 1e6
        overflow = vsgm_result.cache_bytes / device.cache_buffer_bytes
        out[dataset] = {
            "VSGM": {"dc_ms": vsgm_dc, "match_ms": vsgm_match, "batch": bs,
                     "copy_bytes": float(vsgm_result.cache_bytes),
                     "buffer_overflow_x": overflow},
            "GCSM": {"dc_ms": gcsm.dc_ms, "match_ms": gcsm.match_ms, "batch": bs,
                     "copy_bytes": float(gcsm.cache_bytes)},
        }
        rows.append([dataset, qname, bs, "VSGM", vsgm_dc, vsgm_match,
                     int(vsgm_result.cache_bytes), f"{overflow:.1f}x"])
        rows.append([dataset, qname, bs, "GCSM", gcsm.dc_ms, gcsm.match_ms,
                     int(gcsm.cache_bytes), "fits"])
    print_table(
        "Fig. 13: VSGM vs GCSM breakdown (paper batches 128/64, scaled /16)",
        ["graph", "query", "|ΔE|", "system", "DC ms", "match ms",
         "copied B", "vs buffer"],
        rows,
    )
    return out


# ----------------------------------------------------------------------
# Fig. 14
# ----------------------------------------------------------------------
def fig14_rapidflow(
    *,
    graphs: Sequence[str] = ("AZ", "LJ"),
    queries: Sequence[str] = tuple(QUERY_ORDER),
    batch_size: int = SCALED_BATCH_4096,
    seed: int = 0,
) -> dict[str, dict[str, dict[str, RunResult]]]:
    """Fig. 14: RapidFlow vs the CPU baseline vs GCSM on the small graphs.

    Also demonstrates the Sec. VI-C crash: constructing RapidFlow on the FR
    analog raises :class:`IndexMemoryError` (reported in the table footer).
    """
    out: dict[str, dict[str, dict[str, RunResult]]] = {}
    rows = []
    for dataset in graphs:
        out[dataset] = {}
        for qname in queries:
            res = {
                system: _run(system, dataset, qname, batch_size=batch_size, seed=seed)
                for system in ("GCSM", "CPU", "RapidFlow")
            }
            out[dataset][qname] = res
            rows.append([
                dataset, qname,
                res["GCSM"].total_ms, res["CPU"].total_ms, res["RapidFlow"].total_ms,
                res["RapidFlow"].breakdown.total_ns / res["GCSM"].breakdown.total_ns,
                res["CPU"].breakdown.total_ns / res["RapidFlow"].breakdown.total_ns,
            ])
    print_table(
        f"Fig. 14: RapidFlow comparison (|ΔE|={batch_size})",
        ["graph", "query", "GCSM ms", "CPU ms", "RF ms", "RF/GCSM", "CPU/RF"],
        rows,
    )
    # the large-graph OOM that keeps RapidFlow out of Figs. 8-10
    g0, _ = build_workload("FR", batch_size=batch_size, seed=seed)
    try:
        RapidFlowSystem(g0, QUERIES["Q1"])
        oom = False
    except IndexMemoryError as exc:
        oom = True
        print(f"RapidFlow on FR analog: {exc}")
    out["FR_oom"] = oom  # type: ignore[assignment]
    return out


# ----------------------------------------------------------------------
# Fig. 15
# ----------------------------------------------------------------------
def fig15_locality(
    *,
    graphs: Sequence[str] = ("FR", "SF3K", "SF10K"),
    queries: Sequence[str] = ("Q1", "Q2", "Q4"),
    batch_size: int = SCALED_BATCH_4096,
    fractions: Sequence[float] = (0.01, 0.02, 0.03, 0.04, 0.05, 0.10, 0.20),
    seed: int = 0,
) -> dict[str, dict[str, object]]:
    """Fig. 15a: memory-access distribution (share of accesses/bytes served
    by the top-x% most accessed vertices) and Fig. 15b: GPU-cache coverage
    of the top-1..5% exact-frequency vertices."""
    out: dict[str, dict[str, object]] = {}
    cdf_rows = []
    cov_rows = []
    for dataset in graphs:
        counts_cdf = np.zeros(len(fractions))
        bytes_cdf = np.zeros(len(fractions))
        cov1 = []
        cov5 = []
        for qname in queries:
            r = _run("GCSM", dataset, qname, batch_size=batch_size, seed=seed)
            counts_cdf += np.array(r.counters.access_cdf(list(fractions)))
            bytes_cdf += np.array(r.counters.access_cdf(list(fractions), weight="bytes"))
            if r.coverage_top1 is not None:
                cov1.append(r.coverage_top1)
                cov5.append(r.coverage_top5)
        counts_cdf /= len(queries)
        bytes_cdf /= len(queries)
        out[dataset] = {
            "fractions": list(fractions),
            "access_share": counts_cdf.tolist(),
            "byte_share": bytes_cdf.tolist(),
            "coverage_top1": float(np.mean(cov1)) if cov1 else None,
            "coverage_top5": float(np.mean(cov5)) if cov5 else None,
        }
        for f, cs, bs_ in zip(fractions, counts_cdf, bytes_cdf):
            cdf_rows.append([dataset, f"{f:.0%}", cs, bs_])
        cov_rows.append([dataset, out[dataset]["coverage_top1"],
                         out[dataset]["coverage_top5"]])
    print_table(
        "Fig. 15a: memory-access distribution (share to top-x% accessed vertices)",
        ["graph", "top-x%", "access share", "byte share"], cdf_rows,
    )
    print_table(
        "Fig. 15b: cache coverage of most-frequent vertices",
        ["graph", "coverage top-1%", "coverage top-5%"], cov_rows,
    )
    return out


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------
def table2_overhead(
    *,
    graphs: Sequence[str] = ("FR", "SF3K", "SF10K"),
    queries: Sequence[str] = tuple(QUERY_ORDER),
    seed: int = 0,
) -> dict[tuple[str, str], tuple[float, float]]:
    """Table II: FE (frequency estimation) and DC (data copy) overheads as a
    percentage of GCSM's total time per batch."""
    out: dict[tuple[str, str], tuple[float, float]] = {}
    rows = []
    for qname in queries:
        row: list[object] = [qname]
        for dataset in graphs:
            bs = SCALED_BATCH_8192 if dataset == "SF10K" else SCALED_BATCH_4096
            r = _run("GCSM", dataset, qname, batch_size=bs, seed=seed)
            fe = 100.0 * r.breakdown.fe_fraction
            dc = 100.0 * r.breakdown.dc_fraction
            out[(dataset, qname)] = (fe, dc)
            row.extend([fe, dc])
        rows.append(row)
    header = ["query"]
    for dataset in graphs:
        header.extend([f"{dataset} FE%", f"{dataset} DC%"])
    print_table("Table II: FE / DC overhead (% of total)", header, rows)
    return out


# ----------------------------------------------------------------------
# Table III
# ----------------------------------------------------------------------
def table3_reorg_time(
    *,
    graphs: Sequence[str] = tuple(datasets.TABLE1_ORDER),
    batch_sizes: Sequence[int] = (SCALED_BATCH_4096, SCALED_BATCH_8192),
    seed: int = 0,
) -> dict[tuple[str, int], float]:
    """Table III: CPU graph-reorganization time per batch (simulated ms).

    Pure dynamic-store exercise (no matching): apply a batch, reorganize,
    price the merge work with the CPU model."""
    out: dict[tuple[str, int], float] = {}
    rows = []
    for dataset in graphs:
        row: list[object] = [dataset]
        for bs in batch_sizes:
            g0, batches = build_workload(dataset, batch_size=bs, seed=seed)
            dg = DynamicGraph(g0)
            dg.apply_batch(batches[0])
            stats = dg.reorganize()
            counters = AccessCounters()
            counters.record_compute(stats.merged_elements + stats.lists_touched)
            counters.record_access(
                Channel.CPU_DRAM, 0, stats.merged_elements * BYTES_PER_NEIGHBOR
            )
            ms = simulated_time_ns(counters, default_device(), platform="cpu") / 1e6
            out[(dataset, bs)] = ms
            row.append(ms)
        rows.append(row)
    print_table(
        "Table III: graph reorganization time (ms)",
        ["graph"] + [f"|ΔE|={bs}" for bs in batch_sizes],
        rows,
    )
    return out


# ----------------------------------------------------------------------
# UM slowdown (text claim, Sec. VI-B)
# ----------------------------------------------------------------------
def um_slowdown(
    *,
    cases: Sequence[tuple[str, str]] = (("FR", "Q1"), ("LJ", "Q1")),
    batch_size: int = 64,
    seed: int = 0,
) -> dict[str, float]:
    """Sec. VI-B text: UM is 69-210x slower than zero-copy."""
    out: dict[str, float] = {}
    rows = []
    for dataset, qname in cases:
        um = _run("UM", dataset, qname, batch_size=batch_size, seed=seed)
        zc = _run("ZC", dataset, qname, batch_size=batch_size, seed=seed)
        ratio = um.breakdown.total_ns / zc.breakdown.total_ns
        out[dataset] = ratio
        rows.append([dataset, qname, um.total_ms, zc.total_ms, ratio])
    print_table(
        "UM vs ZC (Sec. VI-B: paper reports 69-210x)",
        ["graph", "query", "UM ms", "ZC ms", "UM/ZC"], rows,
    )
    return out
