"""Declarative factorial scenario-matrix runner with regression gates.

A :class:`ScenarioSpec` declares *factors* — graph family, update mix,
batch size, executor, estimator, conflict mode, device-fleet size,
partitioner, pre-filter, edge predicate, TTL window — each with one or
more levels.  :func:`expand_cells` takes the full cartesian product,
prunes combinations that are invalid by construction (e.g. ``devices``
with a non-GCSM system, ``window`` under ``strict`` conflict handling),
and optionally draws a deterministic fractional sample.  Each surviving
*cell* is executed through the existing harness entry points
(:func:`~repro.bench.harness.run_stream`,
:func:`~repro.bench.harness.run_rulebook_stream`, and — for spec-level
service scenarios — :func:`~repro.bench.harness.run_service`) with
memoized workloads, producing one record per cell.

The records plus provenance (seed, git SHA, spec, factor values) form a
*trajectory* (``BENCH_matrix.json``).  :func:`compare_trajectories` diffs
a fresh trajectory against a committed baseline: simulated-time and
counter metrics are gated by a relative tolerance, while determinism
metrics (ΔM, embeddings) must match exactly.  Wall-clock is recorded for
context but never gated — it is machine noise.

CLI: ``python -m repro matrix --spec SPEC [--filter F=V ...]
[--baseline PATH --max-regress PCT]`` (exit 1 on regression).
"""

from __future__ import annotations

import itertools
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.core.baselines import SYSTEM_NAMES
from repro.core.frequency import ESTIMATORS
from repro.core.matching import EXECUTORS
from repro.graphs import datasets
from repro.graphs.stream import CONFLICT_MODES
from repro.multigpu.partition import PARTITIONER_NAMES
from repro.query import QUERY_ORDER, query_by_name

__all__ = [
    "SCHEMA_VERSION",
    "FACTOR_DEFAULTS",
    "FACTOR_NAMES",
    "GATED_METRICS",
    "EXACT_METRICS",
    "ScenarioSpec",
    "parse_predicate",
    "expand_cells",
    "cell_id",
    "filter_cells",
    "run_cell",
    "run_matrix",
    "save_trajectory",
    "load_trajectory",
    "RegressionReport",
    "compare_trajectories",
]

SCHEMA_VERSION = 1

#: every factor with its single-level default; a spec only lists the factors
#: it varies, everything else stays pinned at these values
FACTOR_DEFAULTS: dict[str, object] = {
    "system": "GCSM",
    "dataset": "AZ",
    "query": "Q1",
    "update_mix": "mixed",
    "batch_size": None,  # dataset default
    "num_batches": 2,
    "executor": "frontier",
    "estimator": "frontier",
    "conflict_mode": "coalesce",
    "devices": None,  # single-GPU engine
    "partitioner": "hash",
    "prefilter": "off",
    "predicate": None,  # weight predicate applied to every query edge
    "window": None,  # TTL expiry in batches
}
FACTOR_NAMES: tuple[str, ...] = tuple(FACTOR_DEFAULTS)

#: per-cell metrics gated by the relative ``--max-regress`` tolerance
GATED_METRICS: tuple[str, ...] = (
    "total_ns",
    "match_ns",
    "estimate_ns",
    "pack_ns",
    "update_ns",
    "reorg_ns",
    "compute_ops",
    "cpu_access_bytes",
)
#: determinism metrics that must be *identical* run-to-run
EXACT_METRICS: tuple[str, ...] = ("delta_total", "embeddings_total")

_UPDATE_MIXES = ("mixed", "insert-heavy", "delete-heavy", "churn", "adversarial")


def parse_predicate(text: str) -> tuple[float, float]:
    """Parse a weight-predicate factor value into ``(lo, hi)`` bounds.

    Grammar: ``w>=X`` (lower bound), ``w<=X`` (upper bound), or
    ``X<=w<=Y`` (closed interval); weights live in ``[0, 1)``.
    """
    s = text.replace(" ", "")
    try:
        if s.startswith("w>="):
            return (float(s[3:]), 1.0)
        if s.startswith("w<="):
            return (0.0, float(s[3:]))
        lo_part, sep, rest = s.partition("<=w<=")
        if sep:
            lo, hi = float(lo_part), float(rest)
            if lo > hi:
                raise ValueError(f"empty predicate interval in {text!r}")
            return (lo, hi)
    except ValueError as exc:
        raise ValueError(f"bad predicate {text!r}: {exc}") from None
    raise ValueError(
        f"bad predicate {text!r}: expected 'w>=X', 'w<=X', or 'X<=w<=Y'"
    )


def _check_level(factor: str, value: object) -> None:
    """Validate one factor level eagerly (spec-load time, not run time)."""
    checks: dict[str, Callable[[object], bool]] = {
        "system": lambda v: v in tuple(SYSTEM_NAMES) + ("RapidFlow",),
        "dataset": lambda v: v in datasets.DATASETS,
        "query": lambda v: (
            isinstance(v, str)
            and (v in QUERY_ORDER
                 or (v.startswith("rulebook:")
                     and all(n in QUERY_ORDER for n in v[9:].split("+"))))
        ),
        "update_mix": lambda v: v in _UPDATE_MIXES,
        "batch_size": lambda v: v is None or (isinstance(v, int) and v > 0),
        "num_batches": lambda v: isinstance(v, int) and v > 0,
        "executor": lambda v: v in EXECUTORS,
        "estimator": lambda v: v in ESTIMATORS,
        "conflict_mode": lambda v: v in CONFLICT_MODES,
        "devices": lambda v: v is None or (isinstance(v, int) and v >= 1),
        "partitioner": lambda v: v in PARTITIONER_NAMES,
        "prefilter": lambda v: v in ("on", "off", "invariant"),
        "predicate": lambda v: v is None or bool(parse_predicate(v)),
        "window": lambda v: v is None or (isinstance(v, int) and v > 0),
    }
    if not checks[factor](value):
        raise ValueError(f"invalid level {value!r} for factor {factor!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative scenario matrix: factors, levels, sampling, seed."""

    name: str
    factors: dict[str, tuple] = field(default_factory=dict)
    seed: int = 0
    sample: float = 1.0
    description: str = ""
    #: spec-level service scenarios: each entry is a kwargs dict for
    #: :func:`~repro.bench.harness.run_service` (not part of the factorial)
    service: tuple = ()

    def __post_init__(self) -> None:
        unknown = set(self.factors) - set(FACTOR_NAMES)
        if unknown:
            raise ValueError(
                f"unknown factors {sorted(unknown)}; expected {FACTOR_NAMES}"
            )
        norm = {}
        for factor, levels in self.factors.items():
            levels = tuple(levels)
            if not levels:
                raise ValueError(f"factor {factor!r} has no levels")
            for value in levels:
                _check_level(factor, value)
            norm[factor] = levels
        object.__setattr__(self, "factors", norm)
        object.__setattr__(self, "service", tuple(dict(s) for s in self.service))
        if not (0.0 < self.sample <= 1.0):
            raise ValueError(f"sample must be in (0, 1], got {self.sample}")

    def levels(self, factor: str) -> tuple:
        return self.factors.get(factor, (FACTOR_DEFAULTS[factor],))

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            factors={k: tuple(v) for k, v in data.get("factors", {}).items()},
            seed=int(data.get("seed", 0)),
            sample=float(data.get("sample", 1.0)),
            description=data.get("description", ""),
            service=tuple(data.get("service", ())),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "sample": self.sample,
            "factors": {k: list(v) for k, v in self.factors.items()},
            "service": [dict(s) for s in self.service],
        }


def _cell_invalid_reason(cell: Mapping) -> str | None:
    """Why this factor combination cannot run, or None if it can.

    These prune rules drop combinations that are contradictory or
    degenerate *by construction* — they would either raise downstream or
    silently duplicate another cell (e.g. a partitioner choice with no
    fleet to partition).
    """
    rulebook = str(cell["query"]).startswith("rulebook:")
    if cell["devices"] is not None and cell["system"] != "GCSM":
        return "devices requires the GCSM engine"
    if cell["devices"] is None and cell["partitioner"] != "hash":
        return "partitioner choice is meaningless without a device fleet"
    if rulebook and cell["system"] != "GCSM":
        return "rulebook cells run the GCSM multi-query engine"
    if rulebook and cell["devices"] is not None:
        return "rulebook and devices are mutually exclusive"
    if cell["update_mix"] == "adversarial" and cell["conflict_mode"] == "strict":
        return "adversarial streams violate strict conflict handling"
    if cell["window"] is not None and cell["conflict_mode"] == "strict":
        return "windowed expiry deletes conflict with strict mode"
    return None


def expand_cells(
    spec: ScenarioSpec, *, sample: float | None = None
) -> tuple[list[dict], list[tuple[dict, str]]]:
    """Full factorial expansion → (runnable cells, pruned (cell, reason)).

    ``sample`` (or ``spec.sample``) < 1 draws a deterministic fraction of
    the runnable cells, seeded by ``spec.seed`` — the same spec always
    yields the same run table.
    """
    cells: list[dict] = []
    pruned: list[tuple[dict, str]] = []
    for combo in itertools.product(*(spec.levels(f) for f in FACTOR_NAMES)):
        cell = dict(zip(FACTOR_NAMES, combo))
        reason = _cell_invalid_reason(cell)
        if reason is None:
            cells.append(cell)
        else:
            pruned.append((cell, reason))
    frac = spec.sample if sample is None else float(sample)
    if not (0.0 < frac <= 1.0):
        raise ValueError(f"sample must be in (0, 1], got {frac}")
    if frac < 1.0 and len(cells) > 1:
        rng = np.random.default_rng(spec.seed)
        keep = max(1, int(round(frac * len(cells))))
        idx = sorted(rng.choice(len(cells), size=keep, replace=False).tolist())
        cells = [cells[i] for i in idx]
    return cells, pruned


def _fmt_level(value: object) -> str:
    return "-" if value is None else str(value)


def cell_id(cell: Mapping) -> str:
    """Stable identity string, e.g. ``system=GCSM|dataset=AZ|...``."""
    return "|".join(f"{f}={_fmt_level(cell[f])}" for f in FACTOR_NAMES)


def filter_cells(cells: Iterable[dict], filters: Mapping[str, str]) -> list[dict]:
    """Keep cells whose factor levels match every ``FACTOR=VALUE`` filter.

    Values compare as strings after :func:`cell_id` formatting, so
    ``devices=2`` and ``window=-`` (None) both work from the CLI.
    """
    for factor in filters:
        if factor not in FACTOR_NAMES:
            raise ValueError(
                f"unknown filter factor {factor!r}; expected one of {FACTOR_NAMES}"
            )
    return [
        cell for cell in cells
        if all(_fmt_level(cell[f]) == str(v) for f, v in filters.items())
    ]


def _cell_queries(cell: Mapping) -> list:
    """Resolve the cell's query factor into concrete QueryGraph objects."""
    spec = str(cell["query"])
    names = spec[9:].split("+") if spec.startswith("rulebook:") else [spec]
    queries = [query_by_name(n) for n in names]
    if cell["predicate"] is not None:
        bounds = parse_predicate(cell["predicate"])
        queries = [
            q.with_edge_predicates(
                {e: bounds for e in q.edges}, name=f"{q.name}~w"
            )
            for q in queries
        ]
    return queries


def run_cell(cell: Mapping, *, seed: int = 0) -> dict:
    """Execute one cell through the harness; return its trajectory record."""
    from repro.bench.harness import run_rulebook_stream, run_stream
    from repro.gpu.counters import Channel
    from repro.gpu.device import ClusterConfig

    kwargs: dict = dict(
        batch_size=cell["batch_size"],
        num_batches=cell["num_batches"],
        seed=seed,
        update_mix=cell["update_mix"],
        window=cell["window"],
        executor=cell["executor"],
        estimator=cell["estimator"],
        conflict_mode=cell["conflict_mode"],
        prefilter=cell["prefilter"],
    )
    if cell["devices"] is not None:
        kwargs["devices"] = ClusterConfig(num_devices=cell["devices"])
        kwargs["partitioner"] = cell["partitioner"]
    queries = _cell_queries(cell)
    start = time.perf_counter()
    if str(cell["query"]).startswith("rulebook:"):
        result = run_rulebook_stream(cell["dataset"], queries, **kwargs)
    else:
        result = run_stream(cell["system"], cell["dataset"], queries[0], **kwargs)
    wall = time.perf_counter() - start

    bd = result.breakdown
    counters = result.counters
    return {
        "cell_id": cell_id(cell),
        "factors": dict(cell),
        "metrics": {
            "wall_clock_s": wall,  # recorded, never gated
            "total_ns": bd.total_ns,
            "match_ns": bd.match_ns,
            "estimate_ns": bd.estimate_ns,
            "pack_ns": bd.pack_ns,
            "update_ns": bd.update_ns,
            "reorg_ns": bd.reorg_ns,
            "compute_ops": int(counters.compute_ops),
            "cpu_access_bytes": int(result.cpu_access_bytes),
            "zero_copy_bytes": int(counters.bytes_by_channel[Channel.ZERO_COPY]),
            "gpu_global_bytes": int(counters.bytes_by_channel[Channel.GPU_GLOBAL]),
            "delta_total": int(result.delta_total),
            "embeddings_total": int(result.embeddings_total),
            "batch_size": result.batch_size,
            "batch_size_requested": result.batch_size_requested,
            "num_batches": result.num_batches,
            "batches_skipped": result.batches_skipped,
            "roots_skipped": result.roots_skipped,
        },
    }


def _run_service_cell(svc: Mapping, *, seed: int) -> dict:
    """Execute one spec-level service scenario into a trajectory record."""
    from repro.bench.harness import run_service

    kwargs = dict(svc)
    num_tenants = int(kwargs.pop("num_tenants", 2))
    kwargs.setdefault("seed", seed)
    start = time.perf_counter()
    report = run_service(num_tenants, **kwargs)
    wall = time.perf_counter() - start
    ident = "service|" + "|".join(
        f"{k}={_fmt_level(v)}" for k, v in sorted(svc.items())
    )
    return {
        "cell_id": ident,
        "factors": {"service": dict(svc)},
        "metrics": {
            "wall_clock_s": wall,
            "total_ns": float(report.makespan_ns),
            "delta_total": int(report.completed),
            "embeddings_total": int(report.total_edges),
        },
    }


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_matrix(
    spec: ScenarioSpec,
    *,
    filters: Mapping[str, str] | None = None,
    sample: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Expand ``spec``, execute every cell, return the trajectory dict."""
    cells, pruned = expand_cells(spec, sample=sample)
    if filters:
        cells = filter_cells(cells, filters)
    records = []
    for i, cell in enumerate(cells):
        if progress is not None:
            progress(f"[{i + 1}/{len(cells)}] {cell_id(cell)}")
        records.append(run_cell(cell, seed=spec.seed))
    for j, svc in enumerate(spec.service):
        if filters:  # factor filters select stream cells only
            break
        if progress is not None:
            progress(f"[service {j + 1}/{len(spec.service)}]")
        records.append(_run_service_cell(svc, seed=spec.seed))
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "seed": spec.seed,
        "git_sha": _git_sha(),
        "generated_unix": time.time(),
        "sample": spec.sample if sample is None else float(sample),
        "filters": dict(filters or {}),
        "cells_run": len(records),
        "cells_pruned": [
            {"cell_id": cell_id(c), "reason": r} for c, r in pruned
        ],
        "records": records,
    }


def save_trajectory(trajectory: Mapping, path: str | Path) -> None:
    Path(path).write_text(json.dumps(trajectory, indent=2) + "\n")


def load_trajectory(path: str | Path) -> dict:
    data = json.loads(Path(path).read_text())
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"trajectory schema {data.get('schema_version')!r} from {path} "
            f"does not match expected {SCHEMA_VERSION}"
        )
    return data


@dataclass
class RegressionReport:
    """Outcome of diffing a fresh trajectory against a baseline."""

    max_regress_pct: float
    compared: int = 0
    #: gated-metric excesses: (cell_id, metric, baseline, current, pct_change)
    regressions: list[tuple[str, str, float, float, float]] = field(
        default_factory=list
    )
    #: exact-metric breaks: (cell_id, metric, baseline, current)
    mismatches: list[tuple[str, str, float, float]] = field(default_factory=list)
    missing_cells: list[str] = field(default_factory=list)
    new_cells: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatches

    def describe(self) -> str:
        lines = [
            f"matrix diff: {self.compared} cells compared "
            f"(tolerance {self.max_regress_pct:.0f}%), "
            f"{len(self.missing_cells)} missing, {len(self.new_cells)} new"
        ]
        for cid, metric, base, cur, pct in self.regressions:
            lines.append(
                f"  REGRESSION {metric} +{pct:.1f}% "
                f"({base:,.0f} -> {cur:,.0f})\n    in {cid}"
            )
        for cid, metric, base, cur in self.mismatches:
            lines.append(
                f"  MISMATCH {metric} {base:,.0f} -> {cur:,.0f} "
                f"(must be exact)\n    in {cid}"
            )
        if self.ok:
            lines.append("  OK: no regressions beyond tolerance")
        return "\n".join(lines)


def compare_trajectories(
    current: Mapping, baseline: Mapping, *, max_regress_pct: float = 20.0
) -> RegressionReport:
    """Gate ``current`` against ``baseline`` over their shared cells.

    Simulated-time and counter metrics (:data:`GATED_METRICS`) may grow by
    at most ``max_regress_pct`` percent; determinism metrics
    (:data:`EXACT_METRICS`) must be bit-identical.  Improvements and
    wall-clock changes never fail the gate.
    """
    if max_regress_pct < 0:
        raise ValueError("max_regress_pct must be >= 0")
    cur_by_id = {r["cell_id"]: r["metrics"] for r in current["records"]}
    base_by_id = {r["cell_id"]: r["metrics"] for r in baseline["records"]}
    report = RegressionReport(max_regress_pct=max_regress_pct)
    report.missing_cells = sorted(set(base_by_id) - set(cur_by_id))
    report.new_cells = sorted(set(cur_by_id) - set(base_by_id))
    for cid in sorted(set(cur_by_id) & set(base_by_id)):
        cur, base = cur_by_id[cid], base_by_id[cid]
        report.compared += 1
        for metric in GATED_METRICS:
            if metric not in cur or metric not in base:
                continue
            b, c = float(base[metric]), float(cur[metric])
            if b <= 0:
                continue  # nothing measured to regress against
            pct = (c - b) / b * 100.0
            if pct > max_regress_pct:
                report.regressions.append((cid, metric, b, c, pct))
        for metric in EXACT_METRICS:
            if metric not in cur or metric not in base:
                continue
            if cur[metric] != base[metric]:
                report.mismatches.append(
                    (cid, metric, float(base[metric]), float(cur[metric]))
                )
    return report
