"""Experiment harness: per-figure/table runners reproducing the paper's
evaluation (Sec. VI).  Each function in :mod:`repro.bench.figures` returns
structured rows and prints a paper-style table; the ``benchmarks/`` pytest
targets wrap them with wall-clock measurement and shape assertions.
:mod:`repro.bench.matrix` generalizes the runners into a declarative
factorial scenario matrix with trajectory regression gates."""

from repro.bench.harness import (
    RunResult,
    Workload,
    UPDATE_MIXES,
    run_stream,
    run_rulebook_stream,
    run_service,
    build_workload,
    resolve_partitioner_opts,
    clear_caches,
)
from repro.bench import figures, matrix

__all__ = [
    "RunResult",
    "Workload",
    "UPDATE_MIXES",
    "run_stream",
    "run_rulebook_stream",
    "run_service",
    "build_workload",
    "resolve_partitioner_opts",
    "clear_caches",
    "figures",
    "matrix",
]
