"""Experiment harness: per-figure/table runners reproducing the paper's
evaluation (Sec. VI).  Each function in :mod:`repro.bench.figures` returns
structured rows and prints a paper-style table; the ``benchmarks/`` pytest
targets wrap them with wall-clock measurement and shape assertions."""

from repro.bench.harness import (
    RunResult,
    run_stream,
    build_workload,
    clear_caches,
)
from repro.bench import figures

__all__ = ["RunResult", "run_stream", "build_workload", "clear_caches", "figures"]
