"""Shared experiment machinery.

``build_workload`` materializes a Table I analog and its update stream
(cached at module level — the bench suite reuses graphs across queries and
systems, as the paper does).  ``run_stream`` drives one system over one or
more batches and aggregates simulated timings, traffic, and GCSM-specific
artifacts into a :class:`RunResult`.

Workloads span several *update mixes* (the axis batch-dynamic systems are
regime-sensitive to): the paper's balanced ``mixed`` stream, skewed
``insert-heavy`` / ``delete-heavy`` variants, a ``churn`` stream whose
batches delete the previous batch's inserts, and the fuzzer's
``adversarial`` anomaly stream.  A ``window`` overlays TTL expiry
(:mod:`repro.graphs.window`) on any mix.  Requests larger than the dataset
can serve are *explicitly* truncated: the returned :class:`Workload`
records requested vs delivered sizes and a ``RuntimeWarning`` is emitted.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import make_system
from repro.core.engine import BatchResult
from repro.graphs import datasets
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import UpdateBatch, churn_stream, derive_stream
from repro.gpu.clock import TimeBreakdown
from repro.gpu.counters import AccessCounters
from repro.gpu.device import DeviceConfig
from repro.query.pattern import QueryGraph
from repro.utils import format_time_ns

__all__ = [
    "RunResult",
    "Workload",
    "UPDATE_MIXES",
    "run_stream",
    "run_rulebook_stream",
    "run_service",
    "build_workload",
    "resolve_partitioner_opts",
    "clear_caches",
    "print_table",
]

#: recognized ``update_mix`` values for :func:`build_workload`
UPDATE_MIXES = ("mixed", "insert-heavy", "delete-heavy", "churn", "adversarial")

_GRAPH_CACHE: dict[tuple, StaticGraph] = {}
_STREAM_CACHE: dict[tuple, "Workload"] = {}


def clear_caches() -> None:
    """Drop memoized graphs/streams (tests use this for isolation)."""
    _GRAPH_CACHE.clear()
    _STREAM_CACHE.clear()


@dataclass(frozen=True)
class Workload:
    """One memoized (initial graph, update stream) pair plus its audit trail.

    Iterable as ``(graph, batches)`` for drop-in compatibility with the
    historical tuple return of :func:`build_workload`; the extra fields make
    request-vs-delivery explicit (the dataset caps the derivable update
    count at ``num_edges // 2``, so a large request can come back smaller).
    """

    graph: StaticGraph
    batches: list[UpdateBatch]
    batch_size_requested: int
    num_batches_requested: int
    updates_requested: int
    update_mix: str = "mixed"
    window: int | None = None

    def __iter__(self):
        # yields the *same* objects on every call, preserving the memoized
        # identity semantics of the historical tuple return
        yield self.graph
        yield self.batches

    @property
    def updates_delivered(self) -> int:
        return int(sum(len(b) for b in self.batches))

    @property
    def num_batches_delivered(self) -> int:
        return len(self.batches)

    @property
    def batch_sizes(self) -> list[int]:
        return [len(b) for b in self.batches]

    @property
    def truncated(self) -> bool:
        """True when the dataset could not satisfy the requested volume."""
        return (self.num_batches_delivered < self.num_batches_requested
                or self.updates_delivered < self.updates_requested)

    def describe(self) -> str:
        state = "truncated" if self.truncated else "full"
        return (
            f"Workload({self.update_mix}, {state}: "
            f"{self.num_batches_delivered}/{self.num_batches_requested} batches, "
            f"{self.updates_delivered}/{self.updates_requested} updates)"
        )


def _validate_size(name: str, value: int) -> int:
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def build_workload(
    dataset: str,
    *,
    batch_size: int | None = None,
    num_batches: int = 1,
    seed: int = 0,
    update_mix: str = "mixed",
    window: int | None = None,
) -> Workload:
    """Dataset analog + derived update stream (paper Sec. VI-A methodology).

    ``batch_size=None`` uses the dataset's default (the scaled analog of the
    paper's 4096/8192); explicit sizes must be positive (``0`` is an error,
    not "use the default").  Streams are derived with enough updates to fill
    ``num_batches`` batches and memoized per parameter set.  The derivable
    update count is capped at ``graph.num_edges // 2``; when the cap bites,
    the returned :class:`Workload` reports it and a ``RuntimeWarning`` is
    emitted (on cache hits too).

    ``update_mix`` picks the stream regime (:data:`UPDATE_MIXES`);
    ``window`` overlays TTL expiry of that many batches
    (:func:`repro.graphs.window.apply_window` — windowed streams need a
    non-``strict`` conflict mode downstream).
    """
    spec = datasets.DATASETS[dataset]
    if batch_size is None:
        bs = spec.default_batch_size
    else:
        bs = _validate_size("batch_size", batch_size)
    nb = _validate_size("num_batches", num_batches)
    if update_mix not in UPDATE_MIXES:
        raise ValueError(
            f"unknown update_mix {update_mix!r}; expected one of {UPDATE_MIXES}"
        )
    if window is not None:
        window = _validate_size("window", window)
    gkey = (dataset, seed)
    if gkey not in _GRAPH_CACHE:
        _GRAPH_CACHE[gkey] = spec.build(seed)
    graph = _GRAPH_CACHE[gkey]
    skey = (dataset, seed, bs, nb, update_mix, window)
    if skey not in _STREAM_CACHE:
        _STREAM_CACHE[skey] = _derive_workload(graph, bs, nb, seed, update_mix, window)
    workload = _STREAM_CACHE[skey]
    if workload.truncated:
        # warn on every call (memoized hits included): the caller asking is
        # the one whose run shrinks
        warnings.warn(
            f"workload truncated for {dataset!r}: requested "
            f"{workload.num_batches_requested} x {workload.batch_size_requested} "
            f"updates but the dataset caps at {graph.num_edges // 2} "
            f"({workload.num_batches_delivered} batches / "
            f"{workload.updates_delivered} updates delivered)",
            RuntimeWarning,
            stacklevel=2,
        )
    return workload


def _derive_workload(
    graph: StaticGraph,
    bs: int,
    nb: int,
    seed: int,
    update_mix: str,
    window: int | None,
) -> Workload:
    requested = bs * nb
    capped = min(requested, graph.num_edges // 2)
    if update_mix == "adversarial":
        from repro.core.validation import generate_adversarial_stream

        # synthesized anomalies (duplicates, phantom deletes, flapping)
        # don't consume distinct dataset edges, so no cap applies
        g0, batches = graph, generate_adversarial_stream(
            graph, num_batches=nb, batch_size=max(4, bs), seed=seed + 1
        )
        requested = max(4, bs) * nb
    elif update_mix == "churn":
        g0, batches = churn_stream(
            graph, num_updates=capped, batch_size=bs, seed=seed + 1
        )
    else:
        p_insert = {"mixed": 0.5, "insert-heavy": 0.9, "delete-heavy": 0.1}[update_mix]
        g0, batches = derive_stream(
            graph, num_updates=capped, batch_size=bs, seed=seed + 1,
            insert_probability=p_insert,
        )
    if window is not None:
        from repro.graphs.window import apply_window

        batches, _report = apply_window(g0, batches, window=window)
    return Workload(
        graph=g0,
        batches=list(batches),
        batch_size_requested=bs,
        num_batches_requested=nb,
        updates_requested=requested,
        update_mix=update_mix,
        window=window,
    )


def resolve_partitioner_opts(system) -> dict | None:
    """Resolved tuning knobs of ``system``'s partitioner, if any.

    Normalizes the two legitimate shapes a partitioner may expose —
    ``options`` as a zero-arg callable or as a plain mapping attribute —
    and preserves the distinction between ``{}`` (configured with no
    overrides) and ``None`` (no partitioner / no options surface).
    """
    partitioner = getattr(system, "partitioner", None)
    if partitioner is None:
        return None
    opts = getattr(partitioner, "options", None)
    if callable(opts):
        opts = opts()
    if opts is None:
        return None
    return dict(opts)


@dataclass
class RunResult:
    """Aggregated outcome of one system over a stream prefix.

    Times are simulated nanoseconds *per batch* (mean), matching how the
    paper reports "average execution time for one batch of edge updates".
    """

    system: str
    dataset: str
    query: str
    batch_size: float  # actual mean updates per driven batch
    num_batches: int  # batches actually driven
    breakdown: TimeBreakdown  # mean per batch
    counters: AccessCounters  # summed over batches
    delta_total: int
    embeddings_total: int
    cpu_access_bytes: int  # mean per batch
    #: requested sizing (None for legacy records): diverges from the actual
    #: ``batch_size`` / ``num_batches`` when the dataset truncates the
    #: derivable update stream (``build_workload`` caps at num_edges // 2)
    batch_size_requested: int | None = None
    num_batches_requested: int | None = None
    #: workload axes the stream was built with (``build_workload``)
    update_mix: str | None = None
    window: int | None = None
    coverage_top1: float | None = None
    coverage_top5: float | None = None
    cache_hit_rate: float | None = None
    cache_bytes: int = 0  # mean per batch
    estimator: str | None = None  # FE sampler the system was configured with
    conflict_mode: str | None = None  # update-conflict policy (Sec. V-A hardening)
    # -- multi-GPU extras (left at defaults for single-device systems) -----
    num_devices: int = 1
    partitioner: str | None = None
    partitioner_opts: dict | None = None  # resolved tuning knobs
    peer_bytes: int = 0  # summed over batches
    allreduce_ns: float = 0.0  # summed over batches
    imbalance: float | None = None  # mean per-batch max/mean shard time
    load_balance: list[dict] = field(default_factory=list)  # per-batch reports
    #: online-repartitioning summary: resolved config + trigger/migration
    #: totals over the stream (None when sticky ownership is off)
    repartition: dict | None = None
    # -- multi-query (rulebook) extras -------------------------------------
    shared: bool | None = None  # shared trie execution vs per-query loop
    rulebook_size: int | None = None  # number of standing queries
    # -- aggregate-invariant pre-filter extras (None/0 when disabled) ------
    prefilter: str | None = None  # "invariant" when the certified skip ran
    batches_skipped: int = 0  # batches certified ΔM = 0 (summed)
    roots_skipped: int = 0  # roots dropped by dominance masks (summed)
    queries_skipped: int = 0  # rulebook entries certified ΔM = 0 (summed)

    @property
    def batch_skip_rate(self) -> float:
        """Fraction of batches the pre-filter certified away entirely."""
        return self.batches_skipped / max(1, self.num_batches)

    @property
    def total_ms(self) -> float:
        return self.breakdown.total_ns / 1e6

    @property
    def match_ms(self) -> float:
        return self.breakdown.match_ns / 1e6

    @property
    def dc_ms(self) -> float:
        """Data-preparation time: FE + packing/DMA (Fig. 13's 'DC')."""
        return (self.breakdown.estimate_ns + self.breakdown.pack_ns) / 1e6

    def describe(self) -> str:
        return (
            f"{self.system:>9} {self.dataset:>6} {self.query:>10} "
            f"total={format_time_ns(self.breakdown.total_ns):>10} "
            f"match={format_time_ns(self.breakdown.match_ns):>10} "
            f"cpu_access={self.cpu_access_bytes:>12,d} B"
        )


def run_stream(
    system_name: str,
    dataset: str,
    query: QueryGraph,
    *,
    batch_size: int | None = None,
    num_batches: int = 1,
    seed: int = 0,
    device: DeviceConfig | None = None,
    update_mix: str = "mixed",
    window: int | None = None,
    **system_kwargs,
) -> RunResult:
    """Build the workload, drive ``system_name`` over it, aggregate."""
    workload = build_workload(
        dataset, batch_size=batch_size, num_batches=num_batches, seed=seed,
        update_mix=update_mix, window=window,
    )
    g0 = workload.graph
    batches = workload.batches[:num_batches]
    system = make_system(system_name, g0, query, device=device, seed=seed, **system_kwargs)

    agg_breakdown = TimeBreakdown()
    agg_counters = AccessCounters()
    delta_total = 0
    embeddings_total = 0
    cpu_bytes = 0
    cache_bytes = 0
    cov1: list[float] = []
    cov5: list[float] = []
    hits = misses = 0
    peer_bytes = 0
    allreduce_ns = 0.0
    imbalances: list[float] = []
    lb_reports: list[dict] = []
    pf_batches = pf_roots = pf_queries = 0
    rep_evaluated = rep_triggered = rep_moved = rep_bytes = 0
    rep_ns = 0.0
    rep_last: dict | None = None
    for batch in batches:
        result: BatchResult = system.process_batch(batch)
        agg_breakdown = agg_breakdown + result.breakdown
        agg_counters.merge(result.match_counters)
        delta_total += result.delta_count
        embeddings_total += result.match_stats.embeddings_found
        cpu_bytes += result.cpu_access_bytes
        cache_bytes += result.cache_bytes
        if result.cached_vertices.size and result.estimation is not None:
            cov1.append(result.coverage(0.01))
            cov5.append(result.coverage(0.05))
        hits += result.cache_hits
        misses += result.cache_misses
        # multi-GPU extras, duck-typed so single-device BatchResults pass through
        balance = getattr(result, "load_balance", None)
        if balance is not None:
            imbalances.append(balance.imbalance)
            lb_reports.append(balance.to_dict())
        comm = getattr(result, "comm", None)
        if comm is not None:
            peer_bytes += comm.peer_bytes
            allreduce_ns += comm.allreduce_ns
        pf = getattr(result, "prefilter", None)
        if pf is not None:
            pf_batches += pf.batches_skipped
            pf_roots += pf.roots_skipped
            pf_queries += pf.queries_skipped
        rep = getattr(result, "repartition", None)
        if rep is not None:
            rep_evaluated += int(rep.evaluated)
            rep_triggered += int(rep.triggered)
            rep_moved += rep.moved
            rep_bytes += rep.migration_bytes
            rep_ns += rep.repartition_ns
            if rep.evaluated or rep_last is None:
                rep_last = rep.to_dict()  # last *drift evaluation*, not no-op

    n = max(1, len(batches))
    return RunResult(
        system=system_name,
        dataset=dataset,
        query=query.name,
        batch_size=float(np.mean([len(b) for b in batches])) if batches else 0.0,
        num_batches=len(batches),
        batch_size_requested=workload.batch_size_requested,
        num_batches_requested=num_batches,
        update_mix=update_mix,
        window=window,
        breakdown=agg_breakdown.scaled(1.0 / n),
        counters=agg_counters,
        delta_total=delta_total,
        embeddings_total=embeddings_total,
        cpu_access_bytes=cpu_bytes // n,
        coverage_top1=float(np.mean(cov1)) if cov1 else None,
        coverage_top5=float(np.mean(cov5)) if cov5 else None,
        cache_hit_rate=hits / (hits + misses) if (hits + misses) else None,
        cache_bytes=cache_bytes // n,
        estimator=getattr(system, "estimator_name", None),
        conflict_mode=getattr(system, "conflict_mode", None),
        num_devices=getattr(system, "num_devices", 1),
        partitioner=getattr(getattr(system, "partitioner", None), "name", None),
        partitioner_opts=resolve_partitioner_opts(system),
        peer_bytes=peer_bytes,
        allreduce_ns=allreduce_ns,
        imbalance=float(np.mean(imbalances)) if imbalances else None,
        load_balance=lb_reports,
        repartition=(
            {
                "config": cfg.to_dict(),
                "evaluated": rep_evaluated,
                "triggered": rep_triggered,
                "moved": rep_moved,
                "migration_bytes": rep_bytes,
                "repartition_ns": rep_ns,
                "last": rep_last,
            }
            if (cfg := getattr(system, "repartition_config", None)) is not None
            else None
        ),
        prefilter=(
            name
            if (name := getattr(system, "prefilter_name", "off")) != "off"
            else None
        ),
        batches_skipped=pf_batches,
        roots_skipped=pf_roots,
        queries_skipped=pf_queries,
    )


def run_rulebook_stream(
    dataset: str,
    queries: list[QueryGraph],
    *,
    shared: bool = True,
    batch_size: int | None = None,
    num_batches: int = 1,
    seed: int = 0,
    device: DeviceConfig | None = None,
    update_mix: str = "mixed",
    window: int | None = None,
    **engine_kwargs,
) -> RunResult:
    """Drive a :class:`~repro.core.multiquery.MultiQueryEngine` rulebook.

    The rulebook analog of :func:`run_stream`: one engine matches every
    named query per batch, with ``shared`` selecting trie execution or the
    per-query independent baseline.  ``delta_total`` / ``embeddings_total``
    sum over all queries; ``query`` is labelled with the rulebook size.
    """
    from repro.core.multiquery import MultiBatchResult, MultiQueryEngine
    from repro.gpu.counters import Channel

    workload = build_workload(
        dataset, batch_size=batch_size, num_batches=num_batches, seed=seed,
        update_mix=update_mix, window=window,
    )
    g0 = workload.graph
    batches = workload.batches[:num_batches]
    engine = MultiQueryEngine(
        g0, queries, device=device, seed=seed, shared=shared, **engine_kwargs
    )

    agg_breakdown = TimeBreakdown()
    agg_counters = AccessCounters()
    delta_total = 0
    embeddings_total = 0
    cpu_bytes = 0
    cache_bytes = 0
    hits = misses = 0
    pf_batches = pf_roots = pf_queries = 0
    for batch in batches:
        result: MultiBatchResult = engine.process_batch(batch)
        agg_breakdown = agg_breakdown + result.breakdown
        agg_counters.merge(result.match_counters)
        delta_total += result.total_delta
        embeddings_total += sum(
            st.embeddings_found for st in result.match_stats.values()
        )
        cpu_bytes += result.match_counters.bytes_by_channel[Channel.ZERO_COPY]
        cache_bytes += result.cache_bytes
        hits += result.cache_hits
        misses += result.cache_misses
        if result.prefilter is not None:
            pf_batches += result.prefilter.batches_skipped
            pf_roots += result.prefilter.roots_skipped
            pf_queries += result.prefilter.queries_skipped

    n = max(1, len(batches))
    return RunResult(
        system="GCSM-multi",
        dataset=dataset,
        query=f"rulebook[{len(queries)}]",
        batch_size=float(np.mean([len(b) for b in batches])) if batches else 0.0,
        num_batches=len(batches),
        batch_size_requested=workload.batch_size_requested,
        num_batches_requested=num_batches,
        update_mix=update_mix,
        window=window,
        breakdown=agg_breakdown.scaled(1.0 / n),
        counters=agg_counters,
        delta_total=delta_total,
        embeddings_total=embeddings_total,
        cpu_access_bytes=cpu_bytes // n,
        cache_hit_rate=hits / (hits + misses) if (hits + misses) else None,
        cache_bytes=cache_bytes // n,
        estimator=engine.estimator_name,
        conflict_mode=engine.conflict_mode,
        shared=shared,
        rulebook_size=len(queries),
        prefilter=engine.prefilter_name if engine.prefilter_name != "off" else None,
        batches_skipped=pf_batches,
        roots_skipped=pf_roots,
        queries_skipped=pf_queries,
    )


def run_service(
    num_tenants: int = 2,
    *,
    num_batches: int = 8,
    batch_size: int = 16,
    rate_per_sec: float = 50.0,
    arrival: str = "poisson",
    burst: int = 4,
    think_ns: float = 0.0,
    num_devices: int = 1,
    queue_capacity: int = 8,
    scheduler: str = "fair",
    admission: str = "reject",
    pipeline: bool = True,
    threaded: bool = True,
    seed: int = 0,
    device: DeviceConfig | None = None,
    json_path: str | None = None,
    engine_kwargs: dict | None = None,
    workload_kwargs: dict | None = None,
):
    """One multi-tenant service run; optionally persist the report as JSON.

    Builds ``num_tenants`` adversarial-stream tenants
    (:func:`repro.service.load.make_tenant_workloads`), drives them through
    a :class:`repro.service.server.MatchService`, and returns the
    :class:`repro.service.metrics.ServiceReport` — the machine-readable
    per-run artifact (per-tenant p50/p95/p99 latency, sustained edges/sec,
    queue depth, shed rate, counter totals, wall clock + simulated time).
    """
    from repro.service import MatchService, make_tenant_workloads

    workloads = make_tenant_workloads(
        num_tenants,
        num_batches=num_batches, batch_size=batch_size,
        rate_per_sec=rate_per_sec, arrival=arrival, burst=burst,
        think_ns=think_ns, seed=seed, **(workload_kwargs or {}),
    )
    service = MatchService(
        workloads,
        num_devices=num_devices, queue_capacity=queue_capacity,
        scheduler=scheduler, admission=admission,
        pipeline=pipeline, threaded=threaded,
        device=device, seed=seed, engine_kwargs=engine_kwargs,
    )
    report = service.run()
    if json_path:
        report.save(json_path)
    return report


def print_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Minimal fixed-width table printer for the figure runners."""
    widths = [len(h) for h in header]
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.rjust(w) for h, w in zip(header, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
