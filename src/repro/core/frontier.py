"""Frontier-based batched WCOJ executor (the warp-centric kernel analog).

The recursive executor in :mod:`repro.core.matching` expands one root at a
time, descending per candidate in Python — faithful, but the per-node
interpreter overhead dominates wall-clock.  Real GPU matchers (GSI's
Prealloc-Combine joins, Gunrock's subgraph-matching advance/filter
operators) instead run *level-synchronous*: every partial embedding of one
depth is a row of a frontier, and one kernel launch extends the whole
frontier by one query vertex.  This module is that execution shape in
NumPy:

* The frontier is an ``(n, depth)`` array of bound data vertices plus a
  sign vector; extending a level gathers the constraint lists for **all**
  rows, intersects them with vectorized sorted-set kernels (a segmented
  binary search replaces per-node ``np.intersect1d``), applies
  label/injectivity filters as flat masks, and emits the next frontier with
  ``np.repeat`` — no Python recursion.
* **Counter parity is exact.**  Every neighbor-list access is charged
  through :meth:`~repro.gpu.views.GraphView.fetch_block` (the batched
  equivalent of per-access ``fetch``), every ``record_compute`` /
  ``record_output`` charge of the recursive executor is reproduced as a
  vectorized sum over rows, and per-row constraint ordering replicates the
  smallest-list-first heuristic with a stable argsort.  ``MatchStats``,
  per-channel byte/transaction counters, and the per-vertex access
  histogram are bit-identical to the recursive executor, so every
  simulated time in the reproduction is unchanged.
* Embeddings reach the sink in the **same order** as the recursive
  executor: the frontier preserves lexicographic (root, candidate…) order,
  which is exactly depth-first emission order.

The one modeled divergence is access *order*: the frontier issues all of a
level's reads before the next level's, while recursion interleaves levels
per root.  Only the (stateful, LRU) unified-memory pager can observe this,
and only under eviction pressure — see ``docs/kernel.md``.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import MatchStats, _merge_runs
from repro.graphs.attributes import edge_weights
from repro.gpu.views import GraphView
from repro.query.pattern import WILDCARD_LABEL
from repro.query.plan import EdgeVersion, LevelPlan, MatchPlan

__all__ = ["FrontierKernel", "FrontierExecutor", "segmented_contains"]

_EMPTY = np.empty(0, dtype=np.int64)


def segmented_contains(
    flat: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    queries: np.ndarray,
) -> np.ndarray:
    """Vectorized membership of each query in its own sorted segment.

    ``queries[i]`` is looked up in ``flat[starts[i] : starts[i]+lengths[i]]``
    (each segment sorted ascending) with a *simultaneous* binary search: all
    lanes halve their ``[lo, hi)`` range per iteration, so the whole batch
    costs ``O(len(queries) · log(max segment))`` NumPy ops — the batched
    analog of one GPU thread per (candidate, list) probe.
    """
    out = np.zeros(queries.size, dtype=bool)
    if queries.size == 0 or flat.size == 0:
        return out
    lo = starts.astype(np.int64, copy=True)
    hi = lo + lengths
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        vals = flat[np.where(active, mid, 0)]
        go_right = active & (vals < queries)
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
    # lo is now the lower bound; a hit iff it is in range and matches
    in_range = lo < starts + lengths
    idx = np.where(in_range, lo, 0)
    out = in_range & (flat[idx] == queries)
    return out


class FrontierKernel:
    """Plan-agnostic level-expansion context: view + labels + merge pool.

    One kernel instance can expand levels of *any* plan against the same
    frozen adjacency — :class:`FrontierExecutor` binds one to a single plan,
    while the multi-query execution trie
    (:mod:`repro.core.querytrie`) drives one kernel across the whole
    rulebook so a level shared by many plans is expanded exactly once.
    """

    def __init__(
        self,
        view: GraphView,
        labels: np.ndarray,
        filters: dict[int, np.ndarray] | None = None,
        pool: dict[tuple[int, bool], np.ndarray] | None = None,
        attributes=None,
    ) -> None:
        self.view = view
        self.labels = labels
        self.filters = filters or {}
        #: optional edge-weight provider for predicate pushdown; None falls
        #: back to the deterministic hash weights
        self.attributes = attributes
        # merged-array memo: one merged object per (vertex, version family).
        # ``pool`` may be shared across the plans of one batch — the graph is
        # frozen between apply_batch and reorganize, so merged contents are
        # plan-independent; the memo only skips Python-side merge work, every
        # *access* is still charged per plan through fetch_block.
        self._pool: dict[tuple[int, bool], np.ndarray] = (
            pool if pool is not None else {}
        )

    # ------------------------------------------------------------------
    def _gather(
        self, verts: np.ndarray, version: EdgeVersion
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialize the merged lists of ``verts`` as one flat buffer.

        Returns per-vertex ``(starts, lengths)`` into the concatenated
        ``flat``; each distinct vertex's list is stored (and merged) once.
        """
        uniq, inv = np.unique(verts, return_inverse=True)
        pool = self._pool
        old = version is EdgeVersion.OLD
        peek = self.view.peek_runs
        arrays = []
        for v in uniq.tolist():
            arr = pool.get((v, old))
            if arr is None:
                arr = _merge_runs(peek(v, version))
                pool[(v, old)] = arr
            arrays.append(arr)
        lens_u = np.fromiter((a.size for a in arrays), count=len(arrays), dtype=np.int64)
        starts_u = np.zeros(lens_u.size, dtype=np.int64)
        np.cumsum(lens_u[:-1], out=starts_u[1:])
        flat = np.concatenate(arrays) if arrays else _EMPTY
        return starts_u[inv], lens_u[inv], flat

    # ------------------------------------------------------------------
    def level_candidates(
        self,
        lvl: LevelPlan,
        rows: np.ndarray,
        active: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidates for one level across the whole frontier.

        Returns ``(cand_flat, cand_cnt)``: row ``r``'s candidate set is the
        sorted slice of ``cand_flat`` after ``cand_cnt[:r]`` elements.
        Reproduces the recursive ``_candidates`` charges row by row:
        smallest-list-first constraint order, first-list materialization,
        per-intersection ``len(a)+len(b)`` ops, filter/label/injectivity
        masks, and the final per-candidate charge for surviving rows.

        ``active`` is the mask hook for shared multi-query execution: a
        boolean row mask restricting expansion (and every recorded charge)
        to the rows whose query-set bitmask covers this level's branch.
        Inactive rows contribute zero candidates and zero charges — exactly
        as if they had been filtered out of ``rows`` beforehand.
        """
        if active is not None and not bool(active.all()):
            sub_flat, sub_cnt = self.level_candidates(lvl, rows[active])
            cand_cnt = np.zeros(rows.shape[0], dtype=np.int64)
            cand_cnt[active] = sub_cnt
            return sub_flat, cand_cnt
        cons = lvl.constraints
        view = self.view
        counters = view.counters
        n = rows.shape[0]
        k = len(cons)

        # per-row stable constraint order by versioned degree bound
        if k == 1:
            order = np.zeros((n, 1), dtype=np.int64)
        else:
            keys = np.empty((n, k), dtype=np.int64)
            for j, c in enumerate(cons):
                keys[:, j] = view.degree_bounds_block(rows[:, c.position], c.version)
            order = np.argsort(keys, axis=1, kind="stable")

        cand_flat = _EMPTY
        cand_cnt = np.zeros(n, dtype=np.int64)
        for s in range(k):
            cidx = order[:, s]
            active = np.ones(n, dtype=bool) if s == 0 else cand_cnt > 0
            # group rows by which constraint fills this slot; fetch (and
            # charge) each group's lists, assemble one flat segment buffer
            starts = np.zeros(n, dtype=np.int64)
            lens = np.zeros(n, dtype=np.int64)
            flats: list[np.ndarray] = []
            offset = 0
            for j, c in enumerate(cons):
                sel = active & (cidx == j)
                if not sel.any():
                    continue
                verts = rows[sel, c.position]
                view.fetch_block(verts, c.version)  # records every access
                g_starts, g_lens, g_flat = self._gather(verts, c.version)
                starts[sel] = g_starts + offset
                lens[sel] = g_lens
                flats.append(g_flat)
                offset += int(g_flat.size)
            flat = np.concatenate(flats) if flats else _EMPTY
            if s == 0:
                # first constraint: the list *is* the candidate set
                counters.record_compute(int(lens.sum()))
                cand_cnt = lens.copy()
                total = int(lens.sum())
                row_off = np.zeros(n, dtype=np.int64)
                np.cumsum(lens[:-1], out=row_off[1:])
                idx = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(row_off, lens)
                    + np.repeat(starts, lens)
                )
                cand_flat = flat[idx]
            else:
                # merge-intersection charge: len(cand) + len(other), active rows
                counters.record_compute(int(cand_cnt.sum() + lens.sum()))
                qstart = np.repeat(starts, cand_cnt)
                qlen = np.repeat(lens, cand_cnt)
                found = segmented_contains(flat, qstart, qlen, cand_flat)
                qrow = np.repeat(np.arange(n, dtype=np.int64), cand_cnt)
                cand_flat = cand_flat[found]
                cand_cnt = np.bincount(qrow[found], minlength=n)

        # rows that survived every intersection reach the filtering stage
        # (zero-size rows contribute zero to every charge below, exactly
        # like the recursive early return)
        qv_filter = self.filters.get(lvl.query_vertex)
        if qv_filter is not None:
            counters.record_compute(int(cand_cnt.sum()))
            pos = np.searchsorted(qv_filter, cand_flat)
            ok = pos < qv_filter.size
            keep = np.zeros(cand_flat.size, dtype=bool)
            keep[ok] = qv_filter[pos[ok]] == cand_flat[ok]
        elif lvl.label != WILDCARD_LABEL:
            keep = self.labels[cand_flat] == lvl.label
        else:
            keep = np.ones(cand_flat.size, dtype=bool)
        qrow = np.repeat(np.arange(n, dtype=np.int64), cand_cnt)
        # predicate pushdown: mirrors the recursive executor — predicated
        # constraints in plan order, each charging one weight probe per
        # still-surviving candidate (the per-row sizes sum to exactly the
        # recursive per-root charges)
        for c in (c for c in cons if c.predicate is not None):
            alive = np.flatnonzero(keep)
            counters.record_compute(int(alive.size))
            if alive.size == 0:
                break
            anchors = rows[qrow[alive], c.position]
            if self.attributes is not None:
                w = self.attributes.pair_weights(anchors, cand_flat[alive])
            else:
                w = edge_weights(anchors, cand_flat[alive])
            lo, hi = c.predicate
            keep[alive[~((w >= lo) & (w <= hi))]] = False
        # injectivity: a candidate must differ from every bound vertex of
        # its own row (sequential removal in the recursive executor — the
        # same set either way)
        keep &= (cand_flat[:, None] != rows[qrow]).all(axis=1)
        cand_flat = cand_flat[keep]
        cand_cnt = np.bincount(qrow[keep], minlength=n)
        counters.record_compute(int(cand_cnt.sum()))
        return cand_flat, cand_cnt


class FrontierExecutor(FrontierKernel):
    """Level-synchronous execution of one plan over all of its roots.

    Drop-in peer of the recursive ``_PlanExecutor``: same constructor
    signature, same view/counters contract, bit-identical stats.
    """

    def __init__(
        self,
        plan: MatchPlan,
        view: GraphView,
        labels: np.ndarray,
        sink,
        filters: dict[int, np.ndarray] | None = None,
        pool: dict[tuple[int, bool], np.ndarray] | None = None,
        attributes=None,
    ) -> None:
        super().__init__(view, labels, filters, pool, attributes)
        self.plan = plan
        self.sink = sink
        self.stats = MatchStats()

    # ------------------------------------------------------------------
    def _inverse_order(self) -> np.ndarray:
        order = self.plan.order
        inverse = np.empty(len(order), dtype=np.int64)
        for pos, u in enumerate(order):
            inverse[u] = pos
        return inverse

    def run(self, roots: np.ndarray, signs: np.ndarray) -> MatchStats:
        """Execute the plan over all ``(n, 2)`` roots with their signs."""
        stats = self.stats
        counters = self.view.counters
        n = int(roots.shape[0])
        stats.roots_processed += n
        stats.tree_nodes += n
        if n == 0:
            return stats
        depth = self.plan.depth
        signs = signs.astype(np.int64, copy=False)
        if depth == 2:
            stats.signed_count += int(signs.sum())
            stats.embeddings_found += n
            counters.record_output(n)
            counters.record_compute(n * depth)
            if self.sink is not None:
                emb = roots[:, self._inverse_order()]
                for e, s in zip(emb.tolist(), signs.tolist()):
                    self.sink(tuple(e), s)
            return stats

        rows = roots.astype(np.int64, copy=False)
        sign = signs
        last_index = len(self.plan.levels) - 1
        for li in range(len(self.plan.levels)):
            cand_flat, cand_cnt = self.level_candidates(self.plan.levels[li], rows)
            total = int(cand_cnt.sum())
            if li == last_index:
                stats.signed_count += int((sign * cand_cnt).sum())
                stats.embeddings_found += total
                stats.tree_nodes += total
                counters.record_output(total)
                counters.record_compute(total * depth)
                if self.sink is not None and total:
                    full = np.concatenate(
                        [np.repeat(rows, cand_cnt, axis=0), cand_flat[:, None]],
                        axis=1,
                    )[:, self._inverse_order()]
                    for e, s in zip(
                        full.tolist(), np.repeat(sign, cand_cnt).tolist()
                    ):
                        self.sink(tuple(e), s)
            else:
                stats.tree_nodes += total
                if total == 0:
                    break
                rows = np.concatenate(
                    [np.repeat(rows, cand_cnt, axis=0), cand_flat[:, None]], axis=1
                )
                sign = np.repeat(sign, cand_cnt)
        return stats
