"""Shared multi-query execution trie (rulebook-scale matching).

Production CSM evaluates a *rulebook* of standing patterns per batch, and
independent execution repeats the expensive part — frontier expansion —
once per pattern even when patterns overlap heavily.  This module groups
the rulebook's compiled ΔM plans by common prefixes of their **execution
signatures** (:func:`repro.query.plan.plan_signature`) into a trie:

* The root layer groups plans by :func:`~repro.query.plan.root_signature`
  (the root-edge label pair), so plans sharing a root iterate one
  ``delta_roots`` array.
* Each deeper trie node is one :func:`~repro.query.plan.level_signature` —
  a binding step that is *behaviorally identical* across every plan
  passing through the node.  The shared executor expands the node's
  frontier **once** (one gather, one sorted-set intersection pass, one
  ``record_access_block`` charge into the shared counters) and every
  member plan consumes the result.
* Frontier rows carry interned **query-set bitmasks**
  (:class:`QuerySetMasks`) that narrow at branch points: descending into a
  child intersects each row's query set with the child's members, and only
  rows whose mask still covers the branch stay active in
  ``level_candidates`` (the ``active`` row mask).  Under strict structural
  sharing — the only sharing this trie performs — every surviving row
  covers the whole branch, so masks are uniform per node; the machinery is
  what label-relaxed sharing would extend per row.

Exactness contract (validated by ``tests/test_multiquery_shared.py`` and
the adversarial-stream fuzzer):

* **ΔM, MatchStats, and sink order are bit-identical per plan** to
  independent execution, because two plans sharing a prefix produce
  bit-identical frontiers over that prefix (that is what the signatures
  capture), and emissions stay per-plan.
* **Attributed per-query counters are bit-identical**: every node charge
  is additionally replayed into the counters of each member plan's query,
  reproducing exactly what that query's independent ``match_batch`` would
  have recorded.  The *shared* counters — which price the kernel's
  simulated time — receive each node charge once; their gap to the summed
  attributed counters is the modeled saving.

With the aggregate-invariant pre-filter (:mod:`repro.core.prefilter`) the
executor additionally prunes at rulebook granularity: queries in
``skip_queries`` (certified ΔM = 0 for this batch) are removed from every
node's member set, subtrees whose members are *all* skipped are never
descended (no ``delta_roots``, no expansion, no charge), and each root
group's frontier is masked at **group granularity** — a root row is dropped
only when it fails the dominance test for *every* surviving member, so
dropping it cannot remove an embedding of any member.  ΔM and sink order
stay bit-identical; ``roots_processed``/``roots_skipped`` are attributed
per group (every member of a group records the same skip count), which is
coarser than the per-plan masks independent execution applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frontier import FrontierKernel
from repro.core.matching import MatchStats, delta_roots, filter_root_predicate
from repro.gpu.counters import AccessCounters
from repro.query.plan import LevelPlan, MatchPlan, level_signature, root_signature

__all__ = [
    "PlanRef",
    "TrieNode",
    "ExecutionTrie",
    "TrieStats",
    "QuerySetMasks",
    "SharedTrieExecutor",
]


@dataclass(frozen=True)
class PlanRef:
    """One ΔM plan of one named query (the trie's unit of membership)."""

    query_name: str
    plan: MatchPlan


class TrieNode:
    """One shared binding step (or a root-signature group for depth 0)."""

    __slots__ = ("key", "level", "children", "members", "terminal")

    def __init__(self, key: tuple, level: LevelPlan | None) -> None:
        self.key = key
        self.level = level
        #: insertion-ordered — construction iterates queries in lexsorted
        #: name order and plans in delta order, so execution order (and
        #: therefore buffered sink order) is deterministic
        self.children: dict[tuple, TrieNode] = {}
        #: every plan whose path passes through this node (one entry per
        #: plan, so a query contributing two identically-shaped plans is
        #: attributed twice — exactly as independent execution charges it)
        self.members: list[PlanRef] = []
        #: plans whose final level is this node (depth-2 plans terminate at
        #: the root-signature node itself)
        self.terminal: list[PlanRef] = []


@dataclass
class TrieStats:
    """Sharing accounting for reporting and benchmarks."""

    num_queries: int = 0
    num_plans: int = 0
    total_levels: int = 0  # sum of plan depths beyond the root edge
    expanded_levels: int = 0  # trie nodes actually expanded
    root_groups: int = 0  # distinct root signatures

    @property
    def shared_levels(self) -> int:
        """Level expansions independent execution would pay that the trie
        does not."""
        return self.total_levels - self.expanded_levels

    @property
    def sharing_ratio(self) -> float:
        """Fraction of level expansions eliminated by prefix sharing."""
        return self.shared_levels / self.total_levels if self.total_levels else 0.0

    def to_dict(self) -> dict:
        return {
            "num_queries": self.num_queries,
            "num_plans": self.num_plans,
            "total_levels": self.total_levels,
            "expanded_levels": self.expanded_levels,
            "root_groups": self.root_groups,
            "shared_levels": self.shared_levels,
            "sharing_ratio": self.sharing_ratio,
        }


class ExecutionTrie:
    """Prefix trie over the execution signatures of a rulebook's plans.

    ``plans_by_query`` must iterate queries in the rulebook's canonical
    (lexsorted-name) order; the trie preserves that order in its insertion-
    ordered children, which is what makes shared execution deterministic
    across dict-insertion orders of the caller.
    """

    def __init__(self, plans_by_query: dict[str, list[MatchPlan]]) -> None:
        self.roots: dict[tuple, TrieNode] = {}
        num_plans = 0
        total_levels = 0
        for name, plans in plans_by_query.items():
            for plan in plans:
                ref = PlanRef(name, plan)
                num_plans += 1
                total_levels += len(plan.levels)
                rsig = root_signature(plan)
                node = self.roots.get(rsig)
                if node is None:
                    node = self.roots[rsig] = TrieNode(rsig, None)
                node.members.append(ref)
                for lvl in plan.levels:
                    key = level_signature(lvl)
                    child = node.children.get(key)
                    if child is None:
                        child = node.children[key] = TrieNode(key, lvl)
                    child.members.append(ref)
                    node = child
                node.terminal.append(ref)
        self.stats = TrieStats(
            num_queries=len(plans_by_query),
            num_plans=num_plans,
            total_levels=total_levels,
            expanded_levels=self._count_level_nodes(),
            root_groups=len(self.roots),
        )

    def _count_level_nodes(self) -> int:
        count = 0
        stack = [c for root in self.roots.values() for c in root.children.values()]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count


class QuerySetMasks:
    """Interned query-set bitmasks carried by shared-frontier rows.

    A mask is an arbitrary-width Python integer with bit ``i`` set when the
    row still serves query ``i`` (rulebook order), stored per row as an
    index into an intern table so frontier columns stay plain ``int64``
    arrays regardless of rulebook size.
    """

    def __init__(self, query_names: list[str]) -> None:
        self._bit = {name: 1 << i for i, name in enumerate(query_names)}
        self._table: list[int] = []
        self._ids: dict[int, int] = {}

    def bits_of(self, names: list[str]) -> int:
        bits = 0
        for name in names:
            bits |= self._bit[name]
        return bits

    def intern(self, bits: int) -> int:
        mid = self._ids.get(bits)
        if mid is None:
            mid = len(self._table)
            self._table.append(bits)
            self._ids[bits] = mid
        return mid

    def row_active(self, mask_ids: np.ndarray, branch_bits: int) -> np.ndarray:
        """Boolean row mask: which rows' query sets intersect the branch."""
        lut = np.fromiter(
            ((m & branch_bits) != 0 for m in self._table),
            dtype=bool,
            count=len(self._table),
        )
        return lut[mask_ids]

    def narrowed(self, mask_ids: np.ndarray, branch_bits: int) -> np.ndarray:
        """Per-row mask ids after intersecting with the branch's query set."""
        lut = np.fromiter(
            (self.intern(m & branch_bits) for m in list(self._table)),
            dtype=np.int64,
            count=len(self._table),
        )
        return lut[mask_ids]


class SharedTrieExecutor:
    """Execute a rulebook's trie with one shared frontier per path.

    ``shared_counters`` receives every expansion charge exactly once (the
    kernel's actual modeled traffic); ``per_query_counters`` — when
    provided — receives each node's charges once per member plan, which
    reconstructs bit-identically what each query's independent execution
    would record.  Emissions (output charges, stats, sink tuples) are
    always per-plan.

    Sink tuples are buffered per ``(query, delta_index)`` and flushed in
    plan order after the walk, so each query's sink observes exactly the
    emission order of its own independent ``match_batch``.

    ``skip_queries`` names queries certified ΔM = 0 for this batch (the
    pre-filter's rulebook-level skip): they are excluded from every member
    set, and nodes left with no members are pruned without expansion.
    ``prefilter`` optionally maps query names to their
    :class:`~repro.core.prefilter.PrefilterDecision`; when present, each
    root group's frontier is masked by the OR of its surviving members'
    per-plan masks before descent (certified, so exactness is unaffected).
    """

    def __init__(
        self,
        trie: ExecutionTrie,
        kernel: FrontierKernel,
        labels: np.ndarray,
        *,
        shared_counters: AccessCounters,
        per_query_counters: dict[str, AccessCounters] | None = None,
        sinks: dict[str, object] | None = None,
        skip_queries: frozenset[str] = frozenset(),
        prefilter: dict[str, object] | None = None,
    ) -> None:
        self.trie = trie
        self.kernel = kernel
        self.labels = labels
        self.shared_counters = shared_counters
        self.per_query_counters = per_query_counters
        self.sinks = sinks or {}
        self.skip_queries = skip_queries
        self.prefilter = prefilter
        self.stats: dict[str, MatchStats] = {}
        self._buffers: dict[tuple[str, int], list] = {}
        query_names: list[str] = []
        for root in trie.roots.values():
            for ref in root.members:
                if ref.query_name not in self.stats:
                    self.stats[ref.query_name] = MatchStats()
                    query_names.append(ref.query_name)
        self.masks = QuerySetMasks(query_names)

    # ------------------------------------------------------------------
    def _live(self, refs: list[PlanRef]) -> list[PlanRef]:
        if not self.skip_queries:
            return refs
        return [r for r in refs if r.query_name not in self.skip_queries]

    def _member_mask(self, ref: PlanRef, roots: np.ndarray) -> np.ndarray:
        """This member's certified root mask (all-True without a decision)."""
        decision = self.prefilter.get(ref.query_name)
        if decision is None:
            return np.ones(roots.shape[0], dtype=bool)
        return decision.mask(ref.plan.delta_index or 0, ref.plan, roots)

    def run(self, batch) -> dict[str, MatchStats]:
        for node in self.trie.roots.values():
            live = self._live(node.members)
            if not live:
                # every member is certified ΔM = 0 for this batch — the
                # whole subtree is skipped, delta_roots included
                continue
            roots, signs = delta_roots(live[0].plan, batch, self.labels)
            n = int(roots.shape[0])
            dropped = 0
            if self.prefilter is not None and n:
                # group-level certified mask: keep a root iff at least one
                # surviving member's dominance test passes (a row failing
                # for every member provably yields no embedding for any)
                keep = np.zeros(n, dtype=bool)
                for ref in live:
                    keep |= self._member_mask(ref, roots)
                dropped = n - int(np.count_nonzero(keep))
                if dropped:
                    roots, signs = roots[keep], signs[keep]
                    n -= dropped
            # root-predicate pushdown: the root signature includes the
            # predicate, so every member of this group shares it; applied
            # after the prefilter masks (which align with raw delta_roots)
            roots, signs = filter_root_predicate(live[0].plan, roots, signs)
            n = int(roots.shape[0])
            for ref in live:
                st = self.stats[ref.query_name]
                st.roots_processed += n
                st.roots_skipped += dropped
                st.tree_nodes += n
            for ref in self._live(node.terminal):  # depth-2: root edge is all
                self._emit_root(ref, roots, signs)
            if n and node.children:
                rows = roots.astype(np.int64, copy=False)
                sign = signs.astype(np.int64, copy=False)
                bits = self.masks.bits_of([r.query_name for r in live])
                mask_ids = np.full(n, self.masks.intern(bits), dtype=np.int64)
                self._descend(node, rows, sign, mask_ids)
        self._flush_sinks()
        return self.stats

    # ------------------------------------------------------------------
    def _charge(self, refs: list[PlanRef], counters: AccessCounters) -> None:
        """One shared charge, attributed once per member plan."""
        self.shared_counters.merge(counters)
        if self.per_query_counters is not None:
            for ref in refs:
                self.per_query_counters[ref.query_name].merge(counters)

    def _descend(
        self,
        node: TrieNode,
        rows: np.ndarray,
        sign: np.ndarray,
        mask_ids: np.ndarray,
    ) -> None:
        view = self.kernel.view
        for child in node.children.values():
            live = self._live(child.members)
            if not live:
                continue  # all members certified ΔM = 0: prune the subtree
            branch_bits = self.masks.bits_of([r.query_name for r in live])
            active = self.masks.row_active(mask_ids, branch_bits)
            node_counters = AccessCounters()
            saved = view.counters
            view.counters = node_counters
            try:
                cand_flat, cand_cnt = self.kernel.level_candidates(
                    child.level, rows, active
                )
            finally:
                view.counters = saved
            self._charge(live, node_counters)
            total = int(cand_cnt.sum())
            for ref in live:
                self.stats[ref.query_name].tree_nodes += total
            for ref in self._live(child.terminal):
                self._emit(ref, rows, sign, cand_flat, cand_cnt, total)
            if total and child.children:
                next_rows = np.concatenate(
                    [np.repeat(rows, cand_cnt, axis=0), cand_flat[:, None]], axis=1
                )
                next_sign = np.repeat(sign, cand_cnt)
                next_mask = np.repeat(
                    self.masks.narrowed(mask_ids, branch_bits), cand_cnt
                )
                self._descend(child, next_rows, next_sign, next_mask)

    # ------------------------------------------------------------------
    def _output_charges(self, ref: PlanRef, total: int) -> None:
        depth = ref.plan.depth
        self.shared_counters.record_output(total)
        self.shared_counters.record_compute(total * depth)
        if self.per_query_counters is not None:
            pq = self.per_query_counters[ref.query_name]
            pq.record_output(total)
            pq.record_compute(total * depth)

    def _emit_root(self, ref: PlanRef, roots: np.ndarray, signs: np.ndarray) -> None:
        n = int(roots.shape[0])
        st = self.stats[ref.query_name]
        st.signed_count += int(signs.sum())
        st.embeddings_found += n
        self._output_charges(ref, n)
        if ref.query_name in self.sinks and n:
            emb = roots[:, _inverse_order(ref.plan)]
            self._buffer(ref, emb, signs.astype(np.int64, copy=False))

    def _emit(
        self,
        ref: PlanRef,
        rows: np.ndarray,
        sign: np.ndarray,
        cand_flat: np.ndarray,
        cand_cnt: np.ndarray,
        total: int,
    ) -> None:
        st = self.stats[ref.query_name]
        st.signed_count += int((sign * cand_cnt).sum())
        st.embeddings_found += total
        self._output_charges(ref, total)
        if ref.query_name in self.sinks and total:
            full = np.concatenate(
                [np.repeat(rows, cand_cnt, axis=0), cand_flat[:, None]], axis=1
            )[:, _inverse_order(ref.plan)]
            self._buffer(ref, full, np.repeat(sign, cand_cnt))

    def _buffer(self, ref: PlanRef, emb: np.ndarray, signs: np.ndarray) -> None:
        key = (ref.query_name, ref.plan.delta_index or 0)
        self._buffers.setdefault(key, []).append((emb, signs))

    def _flush_sinks(self) -> None:
        """Deliver buffered emissions per query in plan (ΔM index) order."""
        for (name, _), chunks in sorted(
            self._buffers.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            sink = self.sinks[name]
            for emb, signs in chunks:
                for e, s in zip(emb.tolist(), signs.tolist()):
                    sink(tuple(e), int(s))


def _inverse_order(plan: MatchPlan) -> np.ndarray:
    order = plan.order
    inverse = np.empty(len(order), dtype=np.int64)
    for pos, u in enumerate(order):
        inverse[u] = pos
    return inverse
