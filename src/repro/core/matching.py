"""Incremental WCOJ matching executor (the paper's GPU kernel, Sec. V-C).

This is the reproduction's analog of the STMatch-derived CUDA kernel: it
executes the nested-loop plans of :mod:`repro.query.plan` depth-first,
binding one query vertex per level by intersecting the (versioned) neighbor
lists of its bound query neighbors.  Faithful behaviours carried over from
the paper's kernel:

* **Split intersections.**  ``N'`` is handled as ``N ∪ ΔN``: the view
  returns the base and delta runs separately and the executor merges them
  once (both runs are sorted, so the merge is linear) — deleted neighbors
  have already been dropped from the base run by the store, the analog of
  "skip the negative indices".
* **Every access counts.**  Each neighbor-list read goes through the
  :class:`~repro.gpu.views.GraphView`, which records channel traffic and the
  per-vertex access histogram.  Re-reads of the same list are recorded again
  (the real kernel streams lists from memory on every use); the executor
  only memoizes the *merged array object* to keep Python-side costs down.
* **Work accounting.**  Merge-intersections charge ``len(a) + len(b)``
  compute ops (the cost model of merge-based SIMD intersection), candidate
  filtering and output emission charge per element.

The executor is shared verbatim by GCSM and every baseline — exactly the
paper's "all the GPU versions use the same GPU kernel" setup — with only the
view deciding where reads are served from.

Two executors implement this contract:

* ``executor="frontier"`` (default) — the level-synchronous batched
  executor of :mod:`repro.core.frontier`: all roots expand one query-vertex
  level at a time across a partial-embedding frontier, with vectorized
  sorted-set kernels.  Bit-identical counters, ≥3× lower wall-clock.
* ``executor="recursive"`` — the original per-root depth-first reference
  implementation below; kept as the parity oracle and escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graphs.attributes import edge_weights
from repro.graphs.stream import UpdateBatch
from repro.gpu.views import GraphView
from repro.query.pattern import WILDCARD_LABEL
from repro.query.plan import EdgeVersion, MatchPlan
from repro.utils import VERTEX_DTYPE, intersect_sorted, merge_sorted

__all__ = [
    "MatchStats",
    "match_batch",
    "match_static",
    "delta_roots",
    "static_roots",
    "filter_root_predicate",
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
]

EmbeddingSink = Callable[[tuple[int, ...], int], None]

#: recognized ``executor=`` values for :func:`match_batch` / :func:`match_static`
EXECUTORS = ("frontier", "recursive")
DEFAULT_EXECUTOR = "frontier"


@dataclass
class MatchStats:
    """Outcome of executing one or more plans.

    ``signed_count`` is the IVM result: insertions contribute ``+1`` per
    embedding, deletions ``-1``; summed over all ΔM_i plans it equals
    ``count(G_{k+1}) − count(G_k)``.  ``embeddings_found`` counts emitted
    embeddings regardless of sign.

    ``roots_skipped`` counts directed roots removed by a certified
    aggregate-invariant pre-filter (``repro.core.prefilter``) before the
    executor ran; always 0 with ``prefilter="off"``, and by construction
    ``roots_processed(on) + roots_skipped(on) == roots_processed(off)``.
    """

    signed_count: int = 0
    embeddings_found: int = 0
    roots_processed: int = 0
    tree_nodes: int = 0
    roots_skipped: int = 0

    def merge(self, other: "MatchStats") -> None:
        self.signed_count += other.signed_count
        self.embeddings_found += other.embeddings_found
        self.roots_processed += other.roots_processed
        self.tree_nodes += other.tree_nodes
        self.roots_skipped += other.roots_skipped


def _merge_runs(runs: tuple[np.ndarray, ...]) -> np.ndarray:
    """Merge already-sorted runs into one sorted array (linear merge).

    The runs arrive sorted from the store (base run, sorted ΔN), so a
    concatenate-then-full-sort is wasted work — each pair is folded with the
    linear :func:`~repro.utils.merge_sorted` kernel.  The single-run fast
    path returns the stored array untouched (no copy).
    """
    if len(runs) == 1:
        return runs[0]
    merged = runs[0]
    for r in runs[1:]:
        merged = merge_sorted(merged, r)
    return merged


def _intersect(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return intersect_sorted(a, b)


class _PlanExecutor:
    """Depth-first execution of one plan over a set of roots."""

    def __init__(
        self,
        plan: MatchPlan,
        view: GraphView,
        labels: np.ndarray,
        sink: EmbeddingSink | None,
        filters: dict[int, np.ndarray] | None = None,
        attributes=None,
    ) -> None:
        self.plan = plan
        self.view = view
        self.labels = labels
        self.sink = sink
        #: optional per-query-vertex candidate sets (sorted arrays); used by
        #: the RapidFlow baseline's candidate-index pruning
        self.filters = filters or {}
        #: optional edge-weight provider for predicate pushdown (an
        #: ``EdgeAttributeStore``); None falls back to the hash default
        self.attributes = attributes
        #: per-level predicated constraints, in plan constraint order
        self._preds = [
            tuple(c for c in lvl.constraints if c.predicate is not None)
            for lvl in plan.levels
        ]
        self.stats = MatchStats()
        # merged-array memo: the kernel re-reads lists (recorded by the view)
        # but we keep one merged Python object per (vertex, version family)
        self._merged: dict[tuple[int, bool], np.ndarray] = {}
        self._bound = np.empty(plan.depth, dtype=VERTEX_DTYPE)

    def _versioned_list(self, v: int, version: EdgeVersion) -> np.ndarray:
        runs = self.view.fetch(v, version)  # records the access every time
        key = (v, version is EdgeVersion.OLD)
        arr = self._merged.get(key)
        if arr is None:
            arr = _merge_runs(runs)
            self._merged[key] = arr
        return arr

    def run_root(self, x_a: int, x_b: int, sign: int) -> None:
        self.stats.roots_processed += 1
        self.stats.tree_nodes += 1
        self._bound[0] = x_a
        self._bound[1] = x_b
        if self.plan.depth == 2:
            self._emit(2, 1, sign, leaf_candidates=None)
            return
        self._expand(0, sign)

    # ------------------------------------------------------------------
    def _candidates(self, level_index: int, bound_count: int) -> np.ndarray:
        lvl = self.plan.levels[level_index]
        counters = self.view.counters
        # smallest constraint list first: maximal early pruning
        cons = sorted(
            lvl.constraints,
            key=lambda c: self.view.degree_bound(int(self._bound[c.position]), c.version),
        )
        first = cons[0]
        cand = self._versioned_list(int(self._bound[first.position]), first.version)
        counters.record_compute(cand.size)
        for c in cons[1:]:
            if cand.size == 0:
                break
            other = self._versioned_list(int(self._bound[c.position]), c.version)
            counters.record_compute(cand.size + other.size)
            cand = _intersect(cand, other)
        if cand.size == 0:
            return cand
        cand_filter = self.filters.get(lvl.query_vertex)
        if cand_filter is not None:
            # candidate-index pruning (RapidFlow): the index already encodes
            # the label constraint, so it subsumes the label check.  Real
            # implementations keep membership bitmaps, so the probe is O(1)
            # per candidate (charged 1 op each); this simulation uses a
            # sorted-array intersection for the same result.
            counters.record_compute(cand.size)
            cand = _intersect(cand, cand_filter)
        elif lvl.label != WILDCARD_LABEL:
            cand = cand[self.labels[cand] == lvl.label]
        # predicate pushdown: one weight probe per surviving candidate, one
        # predicated constraint at a time (plan constraint order) — the
        # frontier executor reproduces these charges as per-level sums
        for c in self._preds[level_index]:
            if cand.size == 0:
                break
            counters.record_compute(cand.size)
            anchor = int(self._bound[c.position])
            if self.attributes is not None:
                w = self.attributes.pair_weights(anchor, cand)
            else:
                w = edge_weights(anchor, cand)
            lo, hi = c.predicate
            cand = cand[(w >= lo) & (w <= hi)]
        for i in range(bound_count):  # injectivity
            if cand.size == 0:
                break
            cand = cand[cand != self._bound[i]]
        counters.record_compute(cand.size)
        return cand

    def _expand(self, level_index: int, sign: int) -> None:
        bound_count = level_index + 2
        cand = self._candidates(level_index, bound_count)
        if cand.size == 0:
            return
        last = level_index == len(self.plan.levels) - 1
        if last:
            self._emit(bound_count, cand.size, sign, leaf_candidates=cand)
            return
        for v in cand.tolist():
            self.stats.tree_nodes += 1
            self._bound[bound_count] = v
            self._expand(level_index + 1, sign)

    def _emit(self, bound_count: int, count: int, sign: int,
              leaf_candidates: np.ndarray | None) -> None:
        self.stats.signed_count += sign * count
        self.stats.embeddings_found += count
        self.stats.tree_nodes += count if leaf_candidates is not None else 0
        self.view.counters.record_output(count)
        self.view.counters.record_compute(count * self.plan.depth)
        if self.sink is not None:
            order = self.plan.order
            inverse = np.empty(len(order), dtype=np.int64)
            for pos, u in enumerate(order):
                inverse[u] = pos
            if leaf_candidates is None:
                emb = tuple(int(self._bound[inverse[u]]) for u in range(len(order)))
                self.sink(emb, sign)
            else:
                for v in leaf_candidates.tolist():
                    self._bound[bound_count] = v
                    emb = tuple(int(self._bound[inverse[u]]) for u in range(len(order)))
                    self.sink(emb, sign)


# ----------------------------------------------------------------------
# root generation
# ----------------------------------------------------------------------
def delta_roots(
    plan: MatchPlan, batch: UpdateBatch, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Directed signed batch edges matching plan's root query edge labels.

    Both orientations of every update are considered (paper Fig. 2 includes
    the reverse edges); label filtering prunes orientations whose endpoint
    labels cannot map to the root query vertices.
    """
    edges, signs = batch.directed_updates()
    if edges.shape[0] == 0:
        return edges, signs
    la, lb = plan.root_labels()
    mask = np.ones(edges.shape[0], dtype=bool)
    if la != WILDCARD_LABEL:
        mask &= labels[edges[:, 0]] == la
    if lb != WILDCARD_LABEL:
        mask &= labels[edges[:, 1]] == lb
    return edges[mask], signs[mask]


def static_roots(
    plan: MatchPlan, edge_array: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All directed data edges matching the root labels, with sign +1."""
    if edge_array.shape[0] == 0:
        empty = np.empty((0, 2), dtype=VERTEX_DTYPE)
        return empty, np.empty(0, dtype=np.int64)
    directed = np.concatenate([edge_array, edge_array[:, ::-1]], axis=0)
    la, lb = plan.root_labels()
    mask = np.ones(directed.shape[0], dtype=bool)
    if la != WILDCARD_LABEL:
        mask &= labels[directed[:, 0]] == la
    if lb != WILDCARD_LABEL:
        mask &= labels[directed[:, 1]] == lb
    directed = directed[mask]
    return directed, np.ones(directed.shape[0], dtype=np.int64)


def filter_root_predicate(
    plan: MatchPlan,
    roots: np.ndarray,
    signs: np.ndarray,
    attributes=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Drop roots whose data-edge weight violates the plan's root predicate.

    Uncharged, like the label filtering of :func:`delta_roots` (root
    generation is modeled as free stream-side work).  Applied *after* any
    precomputed prefilter masks — those are aligned with the raw
    ``delta_roots`` output and must see it unshrunk.
    """
    if plan.root_predicate is None or roots.shape[0] == 0:
        return roots, signs
    if attributes is not None:
        w = attributes.pair_weights(roots[:, 0], roots[:, 1])
    else:
        w = edge_weights(roots[:, 0], roots[:, 1])
    lo, hi = plan.root_predicate
    keep = (w >= lo) & (w <= hi)
    return roots[keep], signs[keep]


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def _run_plan(
    plan: MatchPlan,
    view: GraphView,
    labels: np.ndarray,
    sink: EmbeddingSink | None,
    filters: dict[int, np.ndarray] | None,
    roots: np.ndarray,
    signs: np.ndarray,
    executor: str,
    pool: dict | None = None,
    attributes=None,
) -> MatchStats:
    """Execute one plan over its roots with the selected executor.

    ``pool`` optionally shares the frontier executor's merged-list memo
    across the plans of one batch (the adjacency is frozen in between, so
    merged contents are plan-independent; accesses are still charged per
    plan).
    """
    if executor == "frontier":
        from repro.core.frontier import FrontierExecutor

        return FrontierExecutor(
            plan, view, labels, sink, filters, pool=pool, attributes=attributes
        ).run(roots, signs)
    if executor == "recursive":
        ex = _PlanExecutor(plan, view, labels, sink, filters, attributes)
        for (x_a, x_b), sign in zip(roots.tolist(), signs.tolist()):
            ex.run_root(int(x_a), int(x_b), int(sign))
        return ex.stats
    raise ValueError(f"unknown executor {executor!r}; expected one of {EXECUTORS}")


def match_batch(
    plans: list[MatchPlan],
    batch: UpdateBatch,
    view: GraphView,
    *,
    sink: EmbeddingSink | None = None,
    filters: dict[int, np.ndarray] | None = None,
    root_mask: Callable[[np.ndarray], np.ndarray] | None = None,
    prefilter=None,
    executor: str = DEFAULT_EXECUTOR,
    attributes=None,
) -> MatchStats:
    """Run all ΔM_i plans against a signed batch (paper Fig. 2b-f).

    The view's graph must hold the *open* batch (``apply_batch`` done,
    ``reorganize`` not yet), so OLD/NEW adjacency versions are available.
    Returns aggregated stats whose ``signed_count`` is the exact ΔM.
    ``filters`` optionally restricts each query vertex to a sorted candidate
    array (RapidFlow's index pruning); root endpoints are filtered too.
    ``root_mask`` optionally selects a subset of the directed roots — given
    the ``(r, 2)`` root array it returns a boolean mask; multi-GPU sharding
    uses it to route each root to the shard owning its first endpoint.
    Per-root work is independent (counters are sums over roots), so any
    disjoint cover of the roots reproduces the unsharded counters exactly.
    ``prefilter`` optionally supplies a certified-skip masker
    (``repro.core.prefilter``): an object whose ``mask(plan_index, plan,
    roots)`` returns a boolean keep-mask; dropped roots are counted in
    ``MatchStats.roots_skipped``.  It is applied *last* — after routing and
    candidate filters — so the skip accounting composes with both, and
    exactness is certified (only provably-ΔM=0 roots are dropped).
    ``executor`` picks the batched frontier executor (default) or the
    recursive reference; both produce bit-identical stats and counters.
    ``attributes`` optionally supplies an edge-weight provider
    (:class:`~repro.graphs.attributes.EdgeAttributeStore`) for plans whose
    query carries weight predicates; without one the deterministic hash
    weights are used.  Root-predicate filtering runs after the prefilter
    (whose precomputed masks are aligned with the raw root array).
    """
    labels = view.graph.labels
    total = MatchStats()
    pool: dict = {}
    for plan_index, plan in enumerate(plans):
        roots, signs = delta_roots(plan, batch, labels)
        if root_mask is not None and roots.shape[0]:
            mask = root_mask(roots)
            roots, signs = roots[mask], signs[mask]
        if filters and roots.shape[0]:
            mask = np.ones(roots.shape[0], dtype=bool)
            for col, u in ((0, plan.order[0]), (1, plan.order[1])):
                cand = filters.get(u)
                if cand is None:
                    continue
                if cand.size == 0:
                    mask[:] = False
                    break
                pos = np.minimum(np.searchsorted(cand, roots[:, col]), cand.size - 1)
                mask &= cand[pos] == roots[:, col]
            roots, signs = roots[mask], signs[mask]
        if prefilter is not None and roots.shape[0]:
            keep = prefilter.mask(plan_index, plan, roots)
            total.roots_skipped += int(roots.shape[0] - np.count_nonzero(keep))
            roots, signs = roots[keep], signs[keep]
        roots, signs = filter_root_predicate(plan, roots, signs, attributes)
        total.merge(
            _run_plan(plan, view, labels, sink, filters, roots, signs, executor,
                      pool, attributes)
        )
    return total


def match_static(
    plan: MatchPlan,
    view: GraphView,
    *,
    sink: EmbeddingSink | None = None,
    executor: str = DEFAULT_EXECUTOR,
    attributes=None,
) -> MatchStats:
    """Match the query on the current snapshot (paper Fig. 2a).

    Uses the post-batch adjacency (``CURRENT`` == ``NEW``), so on a settled
    graph it matches the settled snapshot.  The snapshot's edge relation is
    exported CSR-style from the dynamic store (vectorized v<w dedup), in the
    same source-major/ascending order as a per-vertex adjacency scan.
    """
    labels = view.graph.labels
    edge_array = view.graph.edges_new_array()
    roots, signs = static_roots(plan, edge_array, labels)
    roots, signs = filter_root_predicate(plan, roots, signs, attributes)
    return _run_plan(plan, view, labels, sink, None, roots, signs, executor,
                     attributes=attributes)
