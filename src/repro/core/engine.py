"""The GCSM end-to-end engine: the five-step per-batch pipeline of Fig. 3.

For every update batch ``ΔE_k``:

1. **Update** — ``ΔE_k`` is folded into the CPU adjacency store (insertions
   appended, deletions marked).
2. **Estimate** — merged random walks estimate per-vertex access frequency
   (Sec. IV); runs on the CPU.
3. **Pack** — the most frequent vertices' lists are packed into a DCSR
   buffer and moved to the GPU with a single DMA transfer (Sec. V-B).
4. **Match** — the incremental WCOJ kernel runs on the (simulated) GPU,
   reading cached lists from global memory and everything else via
   zero-copy (Sec. V-C).
5. **Reorganize** — updated CPU lists are re-sorted for the next batch;
   performed after matching so the kernel sees consistent data (Sec. V-A).

Every step's work is counted and priced by the device cost model, giving
the Table II / Fig. 13 phase breakdown per batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cache import (
    CachedDeviceView,
    CachePolicy,
    DegreeCachePolicy,
    FrequencyCachePolicy,
    HybridCachePolicy,
)
from repro.core.dcsr import DcsrCache
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    EstimationResult,
    make_estimator,
)
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    PrefilterDecision,
    PrefilterStats,
    normalize_prefilter,
)
from repro.graphs.attributes import EdgeAttributeStore
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import CanonicalReport, DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig, default_device
from repro.gpu.transfer import DmaEngine
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.utils import VERTEX_DTYPE, as_generator, require, spawn_generator

__all__ = [
    "GCSMEngine",
    "BatchResult",
    "make_policy",
    "update_step",
    "pack_step",
    "reorganize_step",
]


# ----------------------------------------------------------------------
# Shared batch-step internals.  GCSMEngine composes these; the sharded
# engine (repro.multigpu.engine) reuses them per shard instead of forking
# the pipeline — any change here changes both engines identically, which
# is what keeps the N=1 equivalence invariant cheap to maintain.
# ----------------------------------------------------------------------
def make_policy(policy: str | CachePolicy) -> CachePolicy:
    """Resolve a policy name to a CachePolicy instance."""
    if isinstance(policy, CachePolicy):
        return policy
    if policy == "frequency":
        return FrequencyCachePolicy()
    if policy == "degree":
        return DegreeCachePolicy()
    if policy == "hybrid":
        return HybridCachePolicy()
    raise ValueError(f"unknown cache policy {policy!r}")


def update_step(
    graph: DynamicGraph,
    batch: UpdateBatch,
    device: DeviceConfig,
    mode: str = DEFAULT_CONFLICT_MODE,
) -> tuple[UpdateBatch, float]:
    """Step 1: canonicalize ``ΔE`` under ``mode`` and fold it into the CPU
    store; returns ``(effective_batch, simulated_ns)``.

    Every later step — estimation, root generation, matching — must run on
    the returned *effective* batch: its updates are exactly the symmetric
    difference between the pre- and post-batch edge sets, which is what
    makes ΔM equal the true state difference on conflicted streams.  The
    raw batch is still what the CPU scans (and classifies), so the charged
    work covers the full input.
    """
    effective = graph.apply_batch(batch, mode=mode)
    counters = AccessCounters()
    avg_deg = max(2.0, 2.0 * graph.num_edges / max(1, graph.num_vertices))
    per_update_ops = int(2 * (1 + math.log2(avg_deg)))
    counters.record_compute(len(batch) * per_update_ops)
    return effective, simulated_time_ns(counters, device, platform="cpu")


def pack_step(
    graph: DynamicGraph, selected: np.ndarray, device: DeviceConfig
) -> tuple[DcsrCache, float]:
    """Step 3: pack ``selected`` vertices' lists into a DCSR buffer and DMA
    it to the device; returns ``(cache, simulated_ns)``."""
    cache = DcsrCache.build(graph, selected)
    pack_counters = AccessCounters()
    pack_counters.record_compute(int(cache.colidx.shape[0]) + cache.num_cached)
    pack_cpu_ns = simulated_time_ns(pack_counters, device, platform="cpu")
    dma_counters = AccessCounters()
    dma_ns = DmaEngine(device, dma_counters).transfer(cache.total_bytes)
    return cache, pack_cpu_ns + dma_ns


def reorganize_step(graph: DynamicGraph, device: DeviceConfig) -> float:
    """Step 5: re-sort updated CPU lists; returns simulated ns."""
    reorg_stats = graph.reorganize()
    counters = AccessCounters()
    counters.record_compute(reorg_stats.merged_elements + reorg_stats.lists_touched)
    counters.record_access(
        Channel.CPU_DRAM, 0, reorg_stats.merged_elements * BYTES_PER_NEIGHBOR
    )
    return simulated_time_ns(counters, device, platform="cpu")


@dataclass
class BatchResult:
    """Everything one batch produced.

    ``delta_count`` is the signed incremental match count (ΔM).
    ``breakdown`` holds simulated per-phase times; ``match_counters`` the
    kernel's traffic (its per-vertex histogram is the *exact* access
    frequency ``C_v`` of this batch — the ground truth for Fig. 15);
    ``estimation`` the estimator output; ``cached_vertices`` the set shipped
    to the GPU.
    """

    delta_count: int
    match_stats: MatchStats
    breakdown: TimeBreakdown
    match_counters: AccessCounters
    estimation: EstimationResult | None
    cached_vertices: np.ndarray
    cache_bytes: int
    cache_hits: int
    cache_misses: int
    #: classification of the raw batch against the pre-batch store (None for
    #: legacy constructors); ``conflicts.anomalies`` counts updates a clean
    #: stream would never contain
    conflicts: CanonicalReport | None = None
    #: certified-skip accounting when the aggregate-invariant pre-filter is
    #: enabled (None with ``prefilter="off"``)
    prefilter: PrefilterStats | None = None

    @property
    def cpu_access_bytes(self) -> int:
        """Bytes the kernel read from CPU memory (the Fig. 8-10 bar labels)."""
        return self.match_counters.bytes_by_channel[Channel.ZERO_COPY]

    def coverage(self, top_fraction: float) -> float:
        """Fig. 15b metric: fraction of the exact top-``top_fraction``
        most-accessed vertices that were in the GPU cache (``|S∩T|/|S|``)."""
        counts = self.match_counters.vertex_access_counts()
        accessed = np.nonzero(counts > 0)[0]
        if accessed.size == 0:
            return 1.0
        k = max(1, int(round(top_fraction * accessed.size)))
        order = np.argsort(-counts[accessed], kind="stable")
        top = set(accessed[order[:k]].tolist())
        cached = set(self.cached_vertices.tolist())
        return len(top & cached) / len(top)


class GCSMEngine:
    """Continuous subgraph matching with GPU caching (the paper's system).

    Parameters
    ----------
    initial_graph:
        The ``G_0`` snapshot; copied into the dynamic store.
    query:
        The pattern to monitor continuously.
    device:
        Cost/capacity model; defaults to the scaled RTX3090 analog.
    policy:
        Cache-selection policy; the paper's system uses ``"frequency"``,
        the Naive baseline is this same engine with ``"degree"`` (which
        also skips the estimation step — degrees are already known).
    num_walks:
        Estimator budget; ``None`` uses :func:`~repro.core.frequency.default_num_walks`.
    adaptive_walks:
        Enable the Eq. (5) re-sampling loop.
    cache_budget_bytes:
        Device bytes available for cached lists; ``None`` uses the full
        device buffer (GCSM).  The Naive baseline restricts this to the
        scaled analog of the ~2 GB the paper's sampled sets occupy, for a
        like-for-like footprint comparison.
    """

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        device: DeviceConfig | None = None,
        policy: str | CachePolicy = "frequency",
        num_walks: int | None = None,
        adaptive_walks: bool = False,
        cache_budget_bytes: int | None = None,
        survival: float | None = 1.0,
        seed: int | np.random.Generator | None = 0,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        self.device = device or default_device()
        self.cache_budget_bytes = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else self.device.cache_buffer_bytes
        )
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.plans = compile_delta_plans(query)
        #: explicit-weight overlay for predicate pushdown; None when the
        #: query carries no predicates (the common, weightless case).  The
        #: overlay only changes behavior once ``set_weight`` records an
        #: override, so the pipelined engine's stage overlap stays safe on
        #: plain streams (lookups reduce to the pure hash).
        self.attributes = EdgeAttributeStore() if query.has_predicates() else None
        self.num_walks = num_walks
        self.adaptive_walks = adaptive_walks
        rng = as_generator(seed)
        self.estimator = make_estimator(
            estimator, self.graph, self.device,
            seed=spawn_generator(rng), survival=survival,
        )
        self.estimator_name = estimator
        self.policy: CachePolicy = make_policy(policy)
        self.executor = executor
        self.conflict_mode = conflict_mode
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.batches_processed = 0
        self.total_delta = 0

    # ------------------------------------------------------------------
    # pipeline stages
    #
    # Each of the five steps is an explicit stage method whose resource
    # class is declared in :data:`repro.gpu.clock.PIPELINE_STAGES` (CPU for
    # update/estimate/pack/reorganize, GPU for match).  The stages only
    # communicate through arguments and return values, never through
    # hidden instance state, so :class:`repro.service.pipeline.PipelinedEngine`
    # can legally re-sequence them — running the GPU match of batch *k*
    # concurrently with the CPU stages of batch *k+1* — without changing
    # any stage's inputs.
    # ------------------------------------------------------------------
    def _stage_update(self, batch: UpdateBatch) -> tuple[UpdateBatch, float]:
        """CPU stage 1: canonicalize ΔE and fold it into the store."""
        effective, ns = update_step(self.graph, batch, self.device, self.conflict_mode)
        if self.attributes is not None:
            # track override lifecycle against the effective batch (delete
            # removal is deferred to close_batch so OLD reads stay correct)
            self.attributes.apply_batch(effective)
        return effective, ns

    def _stage_prefilter(
        self, batch: UpdateBatch
    ) -> tuple[PrefilterDecision | None, float]:
        """CPU stage 1b: maintain the aggregate-invariant index and certify
        skips for this (effective) batch.

        Runs on the host right after update, while the batch is open.  The
        decision's per-plan root masks are fully materialized here, so the
        (possibly concurrent) match stage never reads the live index — the
        pipelined engine mutates it for batch *k+1* while batch *k* is
        still matching.  Returns ``(None, 0.0)`` with ``prefilter="off"``.
        """
        if self.prefilter_index is None:
            return None, 0.0
        counters = self.prefilter_index.apply_batch(batch)
        decision = self.prefilter_index.evaluate(self.plans, batch)
        counters.merge(decision.counters)
        return decision, simulated_time_ns(counters, self.device, platform="cpu")

    def _stage_estimate(
        self, batch: UpdateBatch
    ) -> tuple[EstimationResult | None, float]:
        """CPU stage 2: merged-random-walk frequency estimation (policy-gated)."""
        if not self.policy.requires_estimation:
            return None, 0.0
        if self.adaptive_walks:
            estimation = self.estimator.estimate_adaptive(
                self.plans, batch, initial_walks=self.num_walks
            )
        else:
            estimation = self.estimator.estimate(
                self.plans, batch, num_walks=self.num_walks
            )
        ns = simulated_time_ns(
            estimation.counters, self.device, platform="cpu_estimator"
        )
        return estimation, ns

    def _stage_pack(
        self, estimation: EstimationResult | None
    ) -> tuple[np.ndarray, DcsrCache, float]:
        """CPU stage 3: select + pack frequent lists, single DMA to device."""
        frequencies = estimation.frequencies if estimation is not None else None
        selected = self.policy.select(self.graph, frequencies, self.cache_budget_bytes)
        cache, ns = pack_step(self.graph, selected, self.device)
        return selected, cache, ns

    def _stage_match(
        self,
        batch: UpdateBatch,
        cache: DcsrCache,
        graph: DynamicGraph | None = None,
        prefilter: PrefilterDecision | None = None,
    ) -> tuple[MatchStats, AccessCounters, CachedDeviceView, float]:
        """GPU stage 4: the incremental WCOJ kernel.

        ``graph`` overrides the store the device view dereferences for
        zero-copy fallthrough — the pipelined engine passes a
        :class:`~repro.graphs.dynamic_graph.FrozenDynamicGraph` epoch so the
        kernel keeps reading batch *k*'s state while the host already
        mutates the live store for batch *k+1*.  ``prefilter`` is the
        host-precomputed certified root-skip decision for this batch (its
        masks are immutable, so this stage stays safe to overlap).
        """
        match_counters = AccessCounters()
        view = CachedDeviceView(
            graph if graph is not None else self.graph,
            self.device, match_counters, cache,
        )
        stats = match_batch(
            self.plans, batch, view, prefilter=prefilter, executor=self.executor,
            attributes=self.attributes,
        )
        ns = simulated_time_ns(match_counters, self.device, platform="gpu")
        return stats, match_counters, view, ns

    def _stage_reorganize(self) -> float:
        """CPU stage 5: re-sort updated lists, close the batch."""
        ns = reorganize_step(self.graph, self.device)
        if self.prefilter_index is not None:
            # the batch is settled: OLD adjacency is gone, drop the overlay
            self.prefilter_index.close_batch()
        if self.attributes is not None:
            self.attributes.close_batch()
        return ns

    # ------------------------------------------------------------------
    def process_batch(self, batch: UpdateBatch) -> BatchResult:
        """Run the full five-step pipeline for one batch."""
        require(len(batch) > 0, "empty batch")
        breakdown = TimeBreakdown()

        # -- step 1: dynamic graph update on the CPU ----------------------
        # every later step runs on the canonicalized *effective* batch
        batch, breakdown.update_ns = self._stage_update(batch)
        conflicts = self.graph.last_canonical_report

        # -- step 1b: invariant maintenance + certified skip decision -----
        decision, breakdown.prefilter_ns = self._stage_prefilter(batch)
        if decision is not None and decision.skip_batch:
            # certified ΔM = 0: skip estimation, packing, and the kernel;
            # the store still reorganizes (the update really happened)
            breakdown.reorg_ns = self._stage_reorganize()
            self.batches_processed += 1
            return BatchResult(
                delta_count=0,
                match_stats=MatchStats(roots_skipped=decision.roots_total),
                breakdown=breakdown,
                match_counters=AccessCounters(),
                estimation=None,
                cached_vertices=np.empty(0, dtype=VERTEX_DTYPE),
                cache_bytes=0,
                cache_hits=0,
                cache_misses=0,
                conflicts=conflicts,
                prefilter=decision.to_stats(breakdown.prefilter_ns),
            )

        # -- step 2: frequency estimation (CPU) ---------------------------
        # root-masked updates shrink the walk budget and the packed cache
        estimate_input = decision.estimate_batch if decision is not None else batch
        estimation, breakdown.estimate_ns = self._stage_estimate(estimate_input)

        # -- step 3: pack frequent lists + single DMA ----------------------
        selected, cache, breakdown.pack_ns = self._stage_pack(estimation)

        # -- step 4: incremental matching on the GPU -----------------------
        stats, match_counters, view, breakdown.match_ns = self._stage_match(
            batch, cache, prefilter=decision
        )

        # -- step 5: reorganize CPU lists ----------------------------------
        breakdown.reorg_ns = self._stage_reorganize()

        self.batches_processed += 1
        self.total_delta += stats.signed_count
        return BatchResult(
            delta_count=stats.signed_count,
            match_stats=stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=estimation,
            cached_vertices=selected,
            cache_bytes=cache.total_bytes,
            cache_hits=view.hits,
            cache_misses=view.misses,
            conflicts=conflicts,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
        )

    def process_stream(self, batches: list[UpdateBatch]) -> list[BatchResult]:
        """Convenience: process a whole stream, returning per-batch results."""
        return [self.process_batch(b) for b in batches]

    def initial_match(self) -> tuple[int, float]:
        """Match the query on the current settled snapshot (paper Fig. 2a).

        CSM deployments bootstrap with one static matching pass before
        switching to incremental maintenance.  Prior GPU work covers this
        case (STMatch et al., paper Sec. III); here the snapshot is matched
        with the same kernel through the zero-copy path (the graph lives on
        the CPU).  Returns ``(embedding_count, simulated_ns)``.
        """
        require(not self.graph.batch_open, "settle the open batch first")
        from repro.core.matching import match_static
        from repro.gpu.views import ZeroCopyView
        from repro.query.plan import compile_static_plan

        counters = AccessCounters()
        view = ZeroCopyView(self.graph, self.device, counters)
        stats = match_static(
            compile_static_plan(self.query), view, executor=self.executor
        )
        return stats.signed_count, simulated_time_ns(counters, self.device, platform="gpu")

    def snapshot(self) -> StaticGraph:
        """Current settled graph snapshot."""
        return self.graph.snapshot()
