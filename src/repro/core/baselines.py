"""Baseline systems (paper Sec. VI-A "Baselines").

Four naive GPU implementations plus the CPU nested-loop baseline, all
sharing the *same* matching kernel as GCSM (``repro.core.matching``) and the
same dynamic-graph maintenance — they differ only in the data path:

* **UM**    — all neighbor lists in unified memory; the kernel faults pages
  across PCIe on demand (69-210x slower than ZC in the paper).
* **ZC**    — all lists pinned on the CPU; every read is a zero-copy PCIe
  access (the strongest naive GPU baseline).
* **VSGM**  — the caching of [20]: copy the k-hop neighborhood of the batch
  (k = query diameter) to the GPU up front, then match entirely from device
  memory.  Correct but copy-dominated (Fig. 13), and limited to small
  batches by device memory.
* **Naive** — GCSM's machinery with a *degree-based* cache policy instead of
  frequency estimation (ends up ≈ ZC in the paper).
* **CPU**   — the same nested loops run by 32 host threads (the paper's own
  CPU baseline, same stack-based implementation and matching order).

Every system implements ``process_batch(batch) -> BatchResult`` so the
harness can drive them interchangeably.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BatchResult, GCSMEngine, reorganize_step, update_step
from repro.core.frequency import DEFAULT_ESTIMATOR
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    normalize_prefilter,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig, default_device
from repro.gpu.transfer import DmaEngine
from repro.gpu.views import (
    FullDeviceView,
    GraphView,
    HostCPUView,
    UnifiedMemoryView,
    ZeroCopyView,
)
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.utils import require

__all__ = [
    "SimpleViewSystem",
    "ZeroCopySystem",
    "UnifiedMemorySystem",
    "CpuLoopSystem",
    "NaiveDegreeCacheSystem",
    "VsgmSystem",
    "VsgmCapacityError",
    "make_system",
    "SYSTEM_NAMES",
]


class SimpleViewSystem:
    """Shared pipeline for the single-view baselines (UM / ZC / CPU).

    Steps: update → match through the system's view → reorganize.  No
    frequency estimation and no data packing.
    """

    name = "abstract"
    platform = "gpu"

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        device: DeviceConfig | None = None,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        self.device = device or default_device()
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.plans = compile_delta_plans(query)
        self.executor = executor
        self.conflict_mode = conflict_mode
        # these systems never estimate; the configured choice is still
        # recorded so harness/results JSON stays uniform across systems
        self.estimator_name = estimator
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.batches_processed = 0
        self.total_delta = 0

    def _make_view(self, counters: AccessCounters) -> GraphView:
        raise NotImplementedError

    def _prefilter_batch(self, batch: UpdateBatch, breakdown: TimeBreakdown):
        """Maintain the invariant index and certify skips (None when off)."""
        if self.prefilter_index is None:
            return None
        counters = self.prefilter_index.apply_batch(batch)
        decision = self.prefilter_index.evaluate(self.plans, batch)
        counters.merge(decision.counters)
        breakdown.prefilter_ns = simulated_time_ns(
            counters, self.device, platform="cpu"
        )
        return decision

    def _close_prefilter(self) -> None:
        if self.prefilter_index is not None:
            self.prefilter_index.close_batch()

    def _skipped_result(self, breakdown, decision, conflicts) -> BatchResult:
        self.batches_processed += 1
        return BatchResult(
            delta_count=0,
            match_stats=MatchStats(roots_skipped=decision.roots_total),
            breakdown=breakdown,
            match_counters=AccessCounters(),
            estimation=None,
            cached_vertices=np.empty(0, dtype=np.int64),
            cache_bytes=0,
            cache_hits=0,
            cache_misses=0,
            conflicts=conflicts,
            prefilter=decision.to_stats(breakdown.prefilter_ns),
        )

    def process_batch(self, batch: UpdateBatch) -> BatchResult:
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        batch, breakdown.update_ns = update_step(
            graph, batch, self.device, self.conflict_mode
        )

        decision = self._prefilter_batch(batch, breakdown)
        if decision is not None and decision.skip_batch:
            breakdown.reorg_ns = reorganize_step(graph, self.device)
            self._close_prefilter()
            return self._skipped_result(
                breakdown, decision, graph.last_canonical_report
            )

        match_counters = AccessCounters()
        view = self._make_view(match_counters)
        stats = match_batch(
            self.plans, batch, view, prefilter=decision, executor=self.executor
        )
        breakdown.match_ns = simulated_time_ns(
            match_counters, self.device, platform=view.platform
        )

        breakdown.reorg_ns = reorganize_step(graph, self.device)
        self._close_prefilter()

        self.batches_processed += 1
        self.total_delta += stats.signed_count
        return BatchResult(
            delta_count=stats.signed_count,
            match_stats=stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=None,
            cached_vertices=np.empty(0, dtype=np.int64),
            cache_bytes=0,
            cache_hits=0,
            cache_misses=stats.roots_processed,
            conflicts=graph.last_canonical_report,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
        )

    def snapshot(self) -> StaticGraph:
        return self.graph.snapshot()


class ZeroCopySystem(SimpleViewSystem):
    """ZC: every neighbor-list read crosses PCIe in 128 B lines."""

    name = "ZC"

    def _make_view(self, counters: AccessCounters) -> GraphView:
        return ZeroCopyView(self.graph, self.device, counters)


class UnifiedMemorySystem(SimpleViewSystem):
    """UM: managed memory, page-fault-driven migration (cold per batch)."""

    name = "UM"

    def _make_view(self, counters: AccessCounters) -> GraphView:
        return UnifiedMemoryView(self.graph, self.device, counters)


class CpuLoopSystem(SimpleViewSystem):
    """The paper's CPU baseline: same loops, 32 host threads, host DRAM."""

    name = "CPU"

    def _make_view(self, counters: AccessCounters) -> GraphView:
        return HostCPUView(self.graph, self.device, counters)


#: Naive's cache budget: the paper notes GCSM's sampled lists occupy < 2 GB
#: of the 14 GB buffer; Naive gets the same footprint so the comparison is
#: policy-vs-policy, not budget-vs-budget.  2 GB / 14 GB of the scaled buffer:
NAIVE_CACHE_BUDGET_BYTES = 200_000


class NaiveDegreeCacheSystem(GCSMEngine):
    """Naive: GCSM's cache machinery with degree ranking, no estimation."""

    name = "Naive"

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        device: DeviceConfig | None = None,
        cache_budget_bytes: int = NAIVE_CACHE_BUDGET_BYTES,
        seed=0,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        super().__init__(
            initial_graph,
            query,
            device=device,
            policy="degree",
            cache_budget_bytes=cache_budget_bytes,
            seed=seed,
            executor=executor,
            estimator=estimator,
            conflict_mode=conflict_mode,
            prefilter=prefilter,
        )


class VsgmCapacityError(RuntimeError):
    """The k-hop working set of the batch exceeds the device buffer.

    This is the failure mode that forces the paper to shrink batches to
    128 (SF3K) / 64 (SF10K) edges when running VSGM (Sec. VI-B)."""


class VsgmSystem:
    """The VSGM-style baseline: bulk-copy the batch's k-hop neighborhood.

    Per batch: BFS from every update endpoint out to ``k = diameter(Q)``
    hops on the CPU, pack all visited vertices' lists, DMA them to the GPU,
    then match entirely from device memory.  The kernel never touches the
    CPU — at the price of copying the (large) k-hop working set.
    """

    name = "VSGM"

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        device: DeviceConfig | None = None,
        strict_capacity: bool = True,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        self.device = device or default_device()
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.plans = compile_delta_plans(query)
        self.hops = query.diameter()
        self.strict_capacity = strict_capacity
        self.executor = executor
        self.estimator_name = estimator
        self.conflict_mode = conflict_mode
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.batches_processed = 0
        self.total_delta = 0

    # -- k-hop gather ------------------------------------------------------
    def _khop_vertices(self, batch: UpdateBatch, counters: AccessCounters) -> set[int]:
        frontier = set(batch.edges.reshape(-1).tolist())
        visited = set(frontier)
        for _ in range(self.hops):
            nxt: set[int] = set()
            for v in frontier:
                nbrs = self.graph.neighbors_new(v)
                counters.record_compute(nbrs.size + 1)
                counters.record_access(
                    Channel.CPU_DRAM, v, nbrs.size * BYTES_PER_NEIGHBOR
                )
                nxt.update(int(w) for w in nbrs.tolist() if w not in visited)
            visited |= nxt
            frontier = nxt
            if not frontier:
                break
        return visited

    def process_batch(self, batch: UpdateBatch) -> BatchResult:
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        batch, breakdown.update_ns = update_step(
            graph, batch, self.device, self.conflict_mode
        )

        decision = SimpleViewSystem._prefilter_batch(self, batch, breakdown)
        if decision is not None and decision.skip_batch:
            # certified ΔM = 0 also saves VSGM's dominant cost: the k-hop
            # gather + bulk copy never happen
            breakdown.reorg_ns = reorganize_step(graph, self.device)
            SimpleViewSystem._close_prefilter(self)
            return SimpleViewSystem._skipped_result(
                self, breakdown, decision, graph.last_canonical_report
            )

        # gather + copy (this is VSGM's "DC" phase of Fig. 13)
        gather_counters = AccessCounters()
        resident = self._khop_vertices(batch, gather_counters)
        copy_bytes = sum(
            (graph.degree_old(v) + graph.delta_neighbors(v).size) * BYTES_PER_NEIGHBOR
            for v in resident
        ) + len(resident) * 3 * BYTES_PER_NEIGHBOR
        if self.strict_capacity and copy_bytes > self.device.cache_buffer_bytes:
            graph.reorganize()  # leave the store consistent
            SimpleViewSystem._close_prefilter(self)
            raise VsgmCapacityError(
                f"k-hop working set ({copy_bytes} B) exceeds device buffer "
                f"({self.device.cache_buffer_bytes} B); use a smaller batch"
            )
        gather_ns = simulated_time_ns(gather_counters, self.device, platform="cpu")
        dma_counters = AccessCounters()
        dma_ns = DmaEngine(self.device, dma_counters).transfer(copy_bytes)
        breakdown.pack_ns = gather_ns + dma_ns

        match_counters = AccessCounters()
        view = FullDeviceView(graph, self.device, match_counters, resident)
        stats = match_batch(
            self.plans, batch, view, prefilter=decision, executor=self.executor
        )
        breakdown.match_ns = simulated_time_ns(match_counters, self.device, platform="gpu")

        breakdown.reorg_ns = reorganize_step(graph, self.device)
        SimpleViewSystem._close_prefilter(self)

        self.batches_processed += 1
        self.total_delta += stats.signed_count
        cached = np.fromiter(resident, dtype=np.int64, count=len(resident))
        return BatchResult(
            delta_count=stats.signed_count,
            match_stats=stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=None,
            cached_vertices=np.sort(cached),
            cache_bytes=copy_bytes,
            cache_hits=stats.roots_processed,
            cache_misses=view.fallthrough_accesses,
            conflicts=graph.last_canonical_report,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
        )

    def snapshot(self) -> StaticGraph:
        return self.graph.snapshot()


SYSTEM_NAMES = ("GCSM", "Pipelined", "ZC", "UM", "Naive", "VSGM", "CPU")


def make_system(
    name: str,
    initial_graph: StaticGraph,
    query: QueryGraph,
    *,
    device: DeviceConfig | None = None,
    seed: int = 0,
    **kwargs,
):
    """Factory over every evaluated system (paper Fig. 8-14).

    For ``GCSM``, passing ``devices`` (an int or a
    :class:`~repro.gpu.device.ClusterConfig`) routes to the sharded
    :class:`~repro.multigpu.engine.MultiGpuEngine` — together with the
    optional ``partitioner`` / ``partitioner_opts`` / ``repartition`` /
    ``workers`` knobs.  ``devices`` omitted (or ``None``) keeps the
    single-GPU engine (which rejects the fleet-only knobs).
    """
    if name == "GCSM":
        devices = kwargs.pop("devices", None)
        partitioner = kwargs.pop("partitioner", "hash")
        partitioner_opts = kwargs.pop("partitioner_opts", None)
        repartition = kwargs.pop("repartition", None)
        workers = kwargs.pop("workers", None)
        if devices is not None:
            from repro.multigpu import MultiGpuEngine

            return MultiGpuEngine(
                initial_graph, query, devices=devices, partitioner=partitioner,
                partitioner_opts=partitioner_opts, repartition=repartition,
                device=device, seed=seed, workers=workers, **kwargs,
            )
        if partitioner_opts or repartition:
            raise ValueError(
                "partitioner_opts/repartition require a multi-device GCSM "
                "(pass devices=N)"
            )
        return GCSMEngine(initial_graph, query, device=device, seed=seed, **kwargs)
    if name == "Pipelined":
        # GCSM under the staged/overlapped schedule: bit-identical results,
        # pipeline-annotated TimeBreakdowns (repro.service.pipeline)
        from repro.service.pipeline import PipelinedEngine

        return PipelinedEngine(initial_graph, query, device=device, seed=seed, **kwargs)
    if name == "ZC":
        return ZeroCopySystem(initial_graph, query, device=device, **kwargs)
    if name == "UM":
        return UnifiedMemorySystem(initial_graph, query, device=device, **kwargs)
    if name == "Naive":
        return NaiveDegreeCacheSystem(
            initial_graph, query, device=device, seed=seed, **kwargs
        )
    if name == "VSGM":
        return VsgmSystem(initial_graph, query, device=device, **kwargs)
    if name == "CPU":
        return CpuLoopSystem(initial_graph, query, device=device, **kwargs)
    if name == "RapidFlow":
        from repro.core.rapidflow import RapidFlowSystem

        return RapidFlowSystem(initial_graph, query, device=device, **kwargs)
    raise ValueError(f"unknown system {name!r}")
