"""Level-synchronous merged-frontier frequency estimator (the GPU analog).

The recursive sampler in :mod:`repro.core.frequency` expands one execution
tree node per Python frame — one ``np.intersect1d``, one scalar binomial
draw, one ``_fetch`` pair of counter updates per node.  That is faithful to
the paper's description but interpreter-bound, exactly like the recursive
matching executor was before PR 3.  GPU samplers (GSI's BFS-style joins,
batch-dynamic matchers) run level-synchronous instead: every surviving walk
node of one tree level is a row of a flat frontier, and one "kernel launch"
expands the whole level.  This module is that execution shape in NumPy:

* The frontier is ``(rows, multiplicity, weight)``: an ``(r, level+2)``
  matrix of bound data vertices, the per-node merged walk multiplicity
  ``B`` (Sec. IV-B), and the per-node inverse sampling probability (the
  Eq. 3 weight — a *column*, because the survival schedule makes the weight
  node-dependent).
* Candidate sets are computed with the PR 3 sorted-set kernels: per-row
  constraint lists are gathered once per distinct vertex
  (:func:`~repro.utils.merge_sorted` replaces concatenate-and-sort) and
  intersected with :func:`~repro.core.frontier.segmented_contains`, a
  simultaneous binary search over all (candidate, list) lanes.
* All surviving children of a level draw their continuation multiplicities
  in **one** vectorized ``rng.binomial`` call; saturated children
  (``p == 1``) skip the RNG entirely, mirroring the recursive reference.
* Frequency charges accumulate via ``np.add.at`` and FE counters are
  charged in bulk via
  :meth:`~repro.gpu.counters.AccessCounters.record_access_block`.

**Parity contract** (enforced by ``tests/test_estimator_parity.py``):

(a) in the deterministic full-expansion regime — ``survival`` large enough
    that every child-continuation probability saturates to 1 — the
    frequencies, FE counters, and ``nodes_visited`` equal the recursive
    reference *exactly* (all charges are order-independent sums of
    integer-valued floats, and only the identical root draws consume RNG);
(b) in the stochastic regimes the estimate has the same distribution (the
    per-node sampling probabilities are identical; only the RNG consumption
    order differs), verified statistically against the recursive reference
    and the exact access counts ``C_v``;
(c) the sampler plugs into ``estimate_adaptive`` unchanged (inherited).

See ``docs/frequency.md`` for the data layout and the derivation.
"""

from __future__ import annotations

import numpy as np

from repro.core.frequency import FrequencyEstimator, EstimationResult, default_num_walks
from repro.core.frontier import segmented_contains
from repro.core.matching import delta_roots
from repro.graphs.stream import UpdateBatch
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR
from repro.query.pattern import WILDCARD_LABEL
from repro.query.plan import EdgeVersion, MatchPlan
from repro.utils import merge_sorted, segment_offsets

__all__ = ["FrontierFrequencyEstimator"]

_EMPTY = np.empty(0, dtype=np.int64)


class FrontierFrequencyEstimator(FrequencyEstimator):
    """Drop-in peer of :class:`~repro.core.frequency.FrequencyEstimator`.

    Same constructor, same ``estimate``/``estimate_adaptive`` signatures and
    statistical contract; the execution shape is level-synchronous instead
    of recursive.
    """

    #: touched-vertex snapshot of the batch being estimated (set per call)
    _touched_now: frozenset = frozenset()

    # ------------------------------------------------------------------
    def estimate(
        self,
        plans: list[MatchPlan],
        batch: UpdateBatch,
        *,
        num_walks: int | None = None,
        max_degree: int | None = None,
    ) -> EstimationResult:
        graph = self.graph
        labels = graph.labels
        n = graph.num_vertices
        # versioned degree vectors for the smallest-list-first ordering; the
        # adjacency is frozen between apply_batch and reorganize, so one
        # snapshot serves every plan.  max_degree reuses the same snapshot
        # (graph.max_degree() is exactly degrees_new().max()).
        deg_old = graph.degrees_old()
        deg_new = graph.degrees_new()
        if max_degree is None:
            max_degree = max(1, int(deg_new.max()) if deg_new.size else 0)
        if num_walks is None:
            num_walks = default_num_walks(
                len(batch), max_degree, plans[0].query.num_vertices
            )
        counters = AccessCounters()
        freq = np.zeros(n, dtype=np.float64)
        nodes_visited = 0
        walks_per_plan = max(1, num_walks // max(1, len(plans)))
        inv_d = 1.0 / max_degree
        # merged-list pool shared across plans (it skips Python-side merges
        # only — every *access* is still charged per plan); lists untouched
        # by the open batch need no mark-decoding or delta merge at all
        self._touched_now = graph.touched_vertices
        pool: dict[tuple[int, bool], np.ndarray] = {}

        for plan in plans:
            roots, _signs = delta_roots(plan, batch, labels)
            num_roots = roots.shape[0]
            if num_roots == 0:
                continue
            # B_root ~ Binomial(M, 1/|ΔR_i|) per root — the identical call
            # the recursive reference makes, so the streams stay aligned
            b_roots = self.rng.binomial(walks_per_plan, 1.0 / num_roots, size=num_roots)
            live = np.nonzero(b_roots > 0)[0]
            rows = roots[live].astype(np.int64, copy=False)
            mult = b_roots[live].astype(np.int64)
            weight = np.full(live.size, float(num_roots))
            nodes_visited += int(live.size)
            for level_index in range(len(plan.levels)):
                if rows.shape[0] == 0:
                    break
                rows, mult, weight = self._expand_level(
                    plan, level_index, rows, mult, weight, inv_d, freq,
                    counters, labels, deg_old, deg_new, pool,
                )
                nodes_visited += int(rows.shape[0])
        if num_walks > 0:
            freq /= walks_per_plan
        return EstimationResult(freq, num_walks, nodes_visited, counters)

    # ------------------------------------------------------------------
    def _merged_list(
        self, v: int, version: EdgeVersion, pool: dict[tuple[int, bool], np.ndarray]
    ) -> np.ndarray:
        """The merged versioned list of ``v`` (memoized; no charges here)."""
        key = (v, version is EdgeVersion.OLD)
        arr = pool.get(key)
        if arr is None:
            if v not in self._touched_now:
                # untouched by the open batch: no deletion marks, no delta —
                # both versions ARE the stored run, no decode/merge needed
                arr = self.graph.base_run_raw(v)
            elif version is EdgeVersion.OLD:
                arr = self.graph.neighbors_old(v)
            else:
                base, delta = self.graph.neighbors_new_parts(v)
                arr = merge_sorted(base, delta) if delta.size else base
            pool[key] = arr
        return arr

    def _gather(
        self,
        verts: np.ndarray,
        version: EdgeVersion,
        pool: dict[tuple[int, bool], np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat segment buffer of the merged lists of ``verts``.

        Returns per-access ``(starts, lengths, flat)``; each distinct vertex's
        list is merged and stored once (the Prealloc part), indexed per row.
        """
        uniq, inv = np.unique(verts, return_inverse=True)
        arrays = [self._merged_list(int(v), version, pool) for v in uniq.tolist()]
        lens_u = np.fromiter((a.size for a in arrays), count=len(arrays), dtype=np.int64)
        starts_u = segment_offsets(lens_u)[:-1]
        flat = np.concatenate(arrays) if arrays else _EMPTY
        return starts_u[inv], lens_u[inv], flat

    # ------------------------------------------------------------------
    def _expand_level(
        self,
        plan: MatchPlan,
        level_index: int,
        rows: np.ndarray,
        mult: np.ndarray,
        weight: np.ndarray,
        inv_d: float,
        freq: np.ndarray,
        counters: AccessCounters,
        labels: np.ndarray,
        deg_old: np.ndarray,
        deg_new: np.ndarray,
        pool: dict[tuple[int, bool], np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand every frontier node by one tree level.

        Returns the next frontier ``(rows, mult, weight)`` — the surviving
        children with their drawn multiplicities and updated Eq. 3 weights.
        Reproduces the recursive ``_walk`` charges node by node: every list
        fetch records its access, charges ``len(list) + 1`` compute ops and
        ``B · weight`` frequency; each merge-intersection charges
        ``len(cand) + len(other)`` for rows still alive; the final
        per-candidate charge covers the injectivity-filtered sets.
        """
        lvl = plan.levels[level_index]
        cons = lvl.constraints
        n = rows.shape[0]
        k = len(cons)

        # per-row stable constraint order by versioned degree (the recursive
        # reference's sorted(key=_len_of); stable argsort == stable sorted)
        if k == 1:
            order = np.zeros((n, 1), dtype=np.int64)
        else:
            keys = np.empty((n, k), dtype=np.int64)
            for j, c in enumerate(cons):
                degs = deg_old if c.version is EdgeVersion.OLD else deg_new
                keys[:, j] = degs[rows[:, c.position]]
            order = np.argsort(keys, axis=1, kind="stable")

        cand_flat = _EMPTY
        cand_cnt = np.zeros(n, dtype=np.int64)
        for s in range(k):
            cidx = order[:, s]
            # rows whose running candidate set emptied stop fetching — the
            # recursive early return
            active = np.ones(n, dtype=bool) if s == 0 else cand_cnt > 0
            starts = np.zeros(n, dtype=np.int64)
            lens = np.zeros(n, dtype=np.int64)
            flats: list[np.ndarray] = []
            offset = 0
            for j, c in enumerate(cons):
                sel = active & (cidx == j)
                if not sel.any():
                    continue
                verts = rows[sel, c.position]
                g_starts, g_lens, g_flat = self._gather(verts, c.version, pool)
                # the batched _fetch: every access recorded at this node's
                # multiplicity × weight (paper Eq. 3)
                counters.record_access_block(
                    Channel.CPU_DRAM, verts, g_lens * BYTES_PER_NEIGHBOR
                )
                counters.record_compute(int(g_lens.sum()) + int(verts.size))
                np.add.at(freq, verts, mult[sel].astype(np.float64) * weight[sel])
                starts[sel] = g_starts + offset
                lens[sel] = g_lens
                flats.append(g_flat)
                offset += int(g_flat.size)
            flat = np.concatenate(flats) if flats else _EMPTY
            if s == 0:
                # first constraint: its list *is* the candidate set
                cand_cnt = lens.copy()
                offsets = segment_offsets(lens)
                row_off, total = offsets[:-1], int(offsets[-1])
                idx = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(row_off, lens)
                    + np.repeat(starts, lens)
                )
                cand_flat = flat[idx]
            else:
                # merge-intersection charge: len(cand) + len(other), alive rows
                counters.record_compute(int(cand_cnt.sum() + lens.sum()))
                qstart = np.repeat(starts, cand_cnt)
                qlen = np.repeat(lens, cand_cnt)
                found = segmented_contains(flat, qstart, qlen, cand_flat)
                qrow = np.repeat(np.arange(n, dtype=np.int64), cand_cnt)
                cand_flat = cand_flat[found]
                cand_cnt = np.bincount(qrow[found], minlength=n)

        # label + injectivity filters (unmetered in the reference, mirrored)
        if lvl.label != WILDCARD_LABEL:
            keep = labels[cand_flat] == lvl.label
        else:
            keep = np.ones(cand_flat.size, dtype=bool)
        qrow = np.repeat(np.arange(n, dtype=np.int64), cand_cnt)
        keep &= (cand_flat[:, None] != rows[qrow]).all(axis=1)
        cand_flat = cand_flat[keep]
        qrow = qrow[keep]
        cand_cnt = np.bincount(qrow, minlength=n)
        counters.record_compute(int(cand_cnt.sum()))
        if cand_flat.size == 0:
            return np.empty((0, rows.shape[1] + 1), dtype=np.int64), _EMPTY, _EMPTY

        # vectorized continuation draws for all children of the level
        child_mult = mult[qrow]
        child_weight_parent = weight[qrow]
        if self.survival is None:
            p_child = np.full(cand_flat.size, inv_d)
        else:
            p_child = np.minimum(1.0, self.survival / cand_cnt[qrow])
        b_children = np.empty(cand_flat.size, dtype=np.int64)
        saturated = p_child >= 1.0
        # saturated children continue deterministically without touching the
        # RNG (same fast path as the recursive reference — in the full-
        # expansion regime neither sampler consumes randomness below the root)
        b_children[saturated] = child_mult[saturated]
        stoch = ~saturated
        if stoch.any():
            b_children[stoch] = self.rng.binomial(child_mult[stoch], p_child[stoch])
        live = b_children > 0
        if not live.any():
            return np.empty((0, rows.shape[1] + 1), dtype=np.int64), _EMPTY, _EMPTY
        next_rows = np.concatenate(
            [rows[qrow[live]], cand_flat[live][:, None]], axis=1
        )
        return next_rows, b_children[live], child_weight_parent[live] / p_child[live]
