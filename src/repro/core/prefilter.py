"""Aggregate-invariant pre-filter index: certify ΔM = 0 before the kernel runs.

Per "Can Aggregate Invariants Accelerate Continuous Subgraph Matching?"
(arXiv:2606.24421, see PAPERS.md), cheap incrementally-maintained aggregate
invariants can *prove* that a batch or a candidate root vertex cannot
produce any match for query Q — before estimation, packing, or the matching
kernel spend a single access.  GCSM's frequency estimate (the source paper's
Sec. IV) is the expensive probabilistic version of the same question; this
module is the certified O(|ΔE|) version.

Invariants maintained (all under :meth:`InvariantIndex.apply_batch`, driven
by the *effective* canonicalized batch so phantom deletes and same-batch
churn can never desynchronize the index from the store):

* **global vertex-label histogram** ``label_counts[ℓ]`` — vertices per label
  (labels are immutable and vertices are never removed, so this only grows
  with new-vertex bursts);
* **global edge label-pair histogram** ``pair_counts[ℓ₁ ≤ ℓ₂]`` — edges per
  unordered endpoint-label pair;
* **per-vertex degree-by-label vectors** ``deg_label[v, ℓ]`` — distinct
  neighbors of ``v`` carrying label ``ℓ`` (plus the total ``deg_total[v]``);
* **k-bit neighborhood label-signature bitmasks** ``sig[v]`` — bit
  ``ℓ mod 64`` set iff ``deg_label[v, ℓ] > 0``; a one-word necessary
  condition tested before the exact count dominance.

The index stores the **post-batch** state (so a from-scratch rebuild on the
settled store reproduces it exactly — the consistency contract tested under
delete-heavy/churn streams), plus a per-open-batch *delete overlay*.  The
overlay matters for exactness: a ΔM_i embedding may mix OLD edges (j < i)
and NEW edges (j > i), so every invariant used for pruning must bound the
**union** adjacency ``N ∪ N'``.  For any vertex, ``union = post-batch +
edges deleted this batch``, which is what the overlay adds back.

Skip levels (all *certified*: a skipped unit provably contributes zero
embeddings to every ΔM_i term, so ΔM, signed counts, and sink order are
bit-identical to ``prefilter="off"``):

(a) **batch-level** — no directed root survives label + dominance filtering
    for any plan, or the query is globally infeasible (its label/pair
    histogram is not dominated by the graph's union histogram): the engine
    skips estimation, packing, and matching for this batch entirely.
(b) **root-level** — a directed root ``(r₀, r₁)`` is masked when the
    invariant vector of either endpoint cannot dominate the query's
    requirement vector at the corresponding root query vertex.  Applied
    before estimation too, so walks and DCSR packing shrink.
(c) **rulebook-level** — in shared trie execution, queries certified
    ΔM = 0 are removed from every trie node's member set for the batch;
    subtrees whose members are all skipped are never descended, and root
    frontiers are masked at group granularity (a root is dropped when it
    fails dominance for *every* member sharing the prefix).

The dominance test is a necessary condition for embedding existence: an
embedding maps root query vertex ``u`` to data vertex ``v`` injectively, so
``v`` must have at least ``adj_need[u][ℓ]`` distinct neighbors of each
required label ``ℓ`` and total union degree ≥ ``deg_Q(u)``.  Skipping
therefore never removes real work — it removes *provably dead* work.  Work
counters (``roots_processed``, ``tree_nodes``, access bytes) legitimately
shrink under the prefilter — that shrinkage *is* the measured saving — while
``MatchStats.roots_skipped`` keeps the audit identity
``roots_processed(on) + roots_skipped(on) == roots_processed(off)``.

Maintenance is charged to the CPU resource class of the cost model
(``TimeBreakdown.prefilter_ns``, overlapped on the host lane by the
pipelined engine); see ``docs/prefilter.md`` for the full exactness
argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.stream import UpdateBatch
from repro.gpu.counters import AccessCounters, Channel
from repro.query.pattern import WILDCARD_LABEL, QueryGraph
from repro.query.plan import MatchPlan

__all__ = [
    "PREFILTERS",
    "DEFAULT_PREFILTER",
    "SIGNATURE_BITS",
    "normalize_prefilter",
    "QueryRequirement",
    "InvariantIndex",
    "PrefilterDecision",
    "PrefilterStats",
]

#: recognized ``prefilter=`` values for the engines and the CLI
PREFILTERS = ("off", "invariant")
#: engines default to no pre-filtering (bit-compatible with pre-PR-8 runs)
DEFAULT_PREFILTER = "off"
#: width of the neighborhood label-signature bitmask (one machine word)
SIGNATURE_BITS = 64
#: cost-model size of one histogram/counter entry touched by maintenance
_BYTES_PER_ENTRY = 8


def normalize_prefilter(name: object) -> str:
    """Map user-facing spellings to a canonical ``PREFILTERS`` entry.

    ``None``/``"off"``/``False`` mean disabled; ``"invariant"``/``"on"``/
    ``True`` select the invariant index (the CLI exposes ``on|off``).
    """
    if name in (None, False, "off"):
        return "off"
    if name in (True, "on", "invariant"):
        return "invariant"
    raise ValueError(f"unknown prefilter {name!r}; expected one of {PREFILTERS} (or 'on')")


# ----------------------------------------------------------------------
# skip accounting
# ----------------------------------------------------------------------
@dataclass
class PrefilterStats:
    """Skip counts and maintenance cost for one batch (or a stream sum).

    ``roots_skipped`` counts *directed* roots removed before the kernel
    (summed over plans, matching :class:`~repro.core.matching.MatchStats`
    root accounting); ``queries_skipped`` counts rulebook queries certified
    ΔM = 0 for the batch (aliases included).  ``maintenance_ns`` is the
    simulated CPU cost of index updates plus the skip decision itself.
    """

    enabled: bool = True
    batches_skipped: int = 0
    roots_skipped: int = 0
    queries_skipped: int = 0
    maintenance_ns: float = 0.0

    def merge(self, other: "PrefilterStats") -> None:
        self.enabled = self.enabled or other.enabled
        self.batches_skipped += other.batches_skipped
        self.roots_skipped += other.roots_skipped
        self.queries_skipped += other.queries_skipped
        self.maintenance_ns += other.maintenance_ns

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "batches_skipped": self.batches_skipped,
            "roots_skipped": self.roots_skipped,
            "queries_skipped": self.queries_skipped,
            "maintenance_ns": self.maintenance_ns,
        }


# ----------------------------------------------------------------------
# query requirement vectors
# ----------------------------------------------------------------------
class QueryRequirement:
    """The dominance requirement a data vertex must meet per query vertex.

    Precomputed once per query: per-vertex neighbor-label count vectors
    (wildcard-labeled neighbors contribute only to the total-degree bound),
    total degree bounds, signature bitmasks, and the query's own global
    label/pair histograms for batch-level feasibility.
    """

    def __init__(self, query: QueryGraph) -> None:
        self.query = query  # strong ref keeps the id()-keyed cache sound
        labels = [query.label(u) for u in range(query.num_vertices)]
        self.vertex_need: dict[int, int] = {}
        for lab in labels:
            if lab != WILDCARD_LABEL:
                self.vertex_need[lab] = self.vertex_need.get(lab, 0) + 1
        self.num_edges = query.num_edges
        self.pair_need: dict[tuple[int, int], int] = {}
        for u, w in query.edges:
            lu, lw = labels[u], labels[w]
            if lu != WILDCARD_LABEL and lw != WILDCARD_LABEL:
                key = (min(lu, lw), max(lu, lw))
                self.pair_need[key] = self.pair_need.get(key, 0) + 1
        self.adj_need: list[dict[int, int]] = []
        self.deg_need: list[int] = []
        self.sig_need: list[np.uint64] = []
        for u in range(query.num_vertices):
            need: dict[int, int] = {}
            for w in query.neighbors(u):
                lw = labels[w]
                if lw != WILDCARD_LABEL:
                    need[lw] = need.get(lw, 0) + 1
            self.adj_need.append(need)
            self.deg_need.append(query.degree(u))
            sig = np.uint64(0)
            for lw in need:
                sig |= np.uint64(1 << (lw % SIGNATURE_BITS))
            self.sig_need.append(sig)


# ----------------------------------------------------------------------
# per-batch decision
# ----------------------------------------------------------------------
@dataclass
class PrefilterDecision:
    """Outcome of one batch-level evaluation for one query's ΔM plans.

    ``masks`` are per-plan boolean arrays aligned with the output of
    :func:`repro.core.matching.delta_roots` for the same (plan, batch) —
    engines that compute the decision on the host thread can hand it to
    ``match_batch(prefilter=...)`` and the (possibly concurrent) match stage
    never reads the live index.  ``estimate_batch`` keeps only updates with
    at least one surviving orientation, shrinking walks and packing.
    """

    skip_batch: bool
    reason: str  # "" | "no-roots" | "infeasible"
    masks: list[np.ndarray] = field(default_factory=list)
    roots_total: int = 0
    roots_passing: int = 0
    estimate_batch: UpdateBatch | None = None
    counters: AccessCounters = field(default_factory=AccessCounters)

    def mask(self, plan_index: int, plan: MatchPlan, roots: np.ndarray) -> np.ndarray:
        """Precomputed root mask for ``plan`` (the masker protocol)."""
        m = self.masks[plan_index]
        if m.shape[0] != roots.shape[0]:
            raise ValueError(
                f"prefilter mask misaligned with roots: {m.shape[0]} != {roots.shape[0]}"
            )
        return m

    def to_stats(self, maintenance_ns: float = 0.0) -> PrefilterStats:
        skipped = self.roots_total - (0 if self.skip_batch else self.roots_passing)
        return PrefilterStats(
            enabled=True,
            batches_skipped=int(self.skip_batch),
            roots_skipped=int(skipped),
            maintenance_ns=maintenance_ns,
        )


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------
class InvariantIndex:
    """Incrementally-maintained aggregate invariants over a dynamic store.

    Construction performs a full build from the store's current (settled)
    adjacency; :meth:`apply_batch` then maintains every invariant from the
    effective batch in O(|ΔE| + touched·L) vectorized work, and
    :meth:`close_batch` drops the delete overlay once the store reorganizes.
    """

    name = "invariant"

    def __init__(self, graph) -> None:
        self.graph = graph
        self._requirements: dict[int, QueryRequirement] = {}
        self.rebuild()

    # -- construction / consistency ------------------------------------
    def rebuild(self) -> None:
        """Full from-scratch build (also the test oracle for maintenance)."""
        g = self.graph
        n = g.num_vertices
        labels = np.asarray(g.labels[:n], dtype=np.int64)
        L = int(labels.max()) + 1 if n else 1
        self.num_labels = L
        self.label_counts = np.bincount(labels, minlength=L).astype(np.int64)
        self.deg_label = np.zeros((n, L), dtype=np.int64)
        self.pair_counts = np.zeros((L, L), dtype=np.int64)
        edges = g.edges_new_array()
        if edges.shape[0]:
            l0 = labels[edges[:, 0]]
            l1 = labels[edges[:, 1]]
            np.add.at(self.deg_label, (edges[:, 0], l1), 1)
            np.add.at(self.deg_label, (edges[:, 1], l0), 1)
            np.add.at(self.pair_counts, (np.minimum(l0, l1), np.maximum(l0, l1)), 1)
        self.deg_total = self.deg_label.sum(axis=1)
        self.num_edges = int(edges.shape[0])
        self.sig = self._signature_rows(np.arange(n, dtype=np.int64))
        self._clear_overlay()

    def assert_consistent(self) -> None:
        """Raise if the maintained state differs from a from-scratch rebuild.

        Call on a *settled* store (after ``reorganize``).  This is the
        contract satellite tests exercise under delete-heavy/churn streams
        across every conflict mode.
        """
        fresh = InvariantIndex(self.graph)
        for name in ("label_counts", "deg_label", "deg_total", "pair_counts", "sig"):
            a, b = getattr(self, name), getattr(fresh, name)
            if a.shape != b.shape or not np.array_equal(a, b):
                raise AssertionError(f"invariant index desync in {name!r}")
        if self.num_edges != fresh.num_edges:
            raise AssertionError(
                f"invariant index desync in num_edges: {self.num_edges} != {fresh.num_edges}"
            )
        if self._del_vids.size:
            raise AssertionError("delete overlay not cleared on settled store")

    # -- incremental maintenance ---------------------------------------
    def _clear_overlay(self) -> None:
        self._del_vids = np.empty(0, dtype=np.int64)
        self._del_rows = np.empty((0, self.num_labels), dtype=np.int64)
        self._del_total = np.empty(0, dtype=np.int64)
        self._del_sig = np.empty(0, dtype=np.uint64)
        self._del_pair_counts: np.ndarray | None = None
        self._del_edges = 0

    def _grow(self, n_new: int, L_new: int) -> None:
        n_old, L_old = self.deg_label.shape
        if L_new > L_old:
            grown = np.zeros((n_old, L_new), dtype=np.int64)
            grown[:, :L_old] = self.deg_label
            self.deg_label = grown
            pc = np.zeros((L_new, L_new), dtype=np.int64)
            pc[:L_old, :L_old] = self.pair_counts
            self.pair_counts = pc
            lc = np.zeros(L_new, dtype=np.int64)
            lc[:L_old] = self.label_counts
            self.label_counts = lc
            self.num_labels = L_new
        if n_new > n_old:
            grown = np.zeros((n_new, self.num_labels), dtype=np.int64)
            grown[:n_old] = self.deg_label
            self.deg_label = grown
            self.deg_total = np.concatenate(
                [self.deg_total, np.zeros(n_new - n_old, dtype=np.int64)]
            )
            self.sig = np.concatenate(
                [self.sig, np.zeros(n_new - n_old, dtype=np.uint64)]
            )

    def apply_batch(self, batch: UpdateBatch) -> AccessCounters:
        """Maintain every invariant from the *effective* batch.

        Must be called right after ``DynamicGraph.apply_batch`` with the
        batch it returned (the exact symmetric difference), while the batch
        is still open.  Builds the delete overlay for union-bound dominance
        and returns the maintenance :class:`AccessCounters` (CPU platform).
        """
        g = self.graph
        c = AccessCounters()
        self._clear_overlay()
        labels = g.labels
        n = g.num_vertices
        n_old = self.deg_label.shape[0]
        if n > n_old:
            new_labels = np.asarray(labels[n_old:n], dtype=np.int64)
            L_new = max(self.num_labels, int(new_labels.max()) + 1 if new_labels.size else 1)
            self._grow(n, L_new)
            self.label_counts += np.bincount(new_labels, minlength=self.num_labels)
            c.record_compute(n - n_old)
        ins = batch.insert_edges()
        dels = batch.delete_edges()
        touched_parts = []
        if ins.shape[0]:
            l0 = labels[ins[:, 0]]
            l1 = labels[ins[:, 1]]
            np.add.at(self.deg_label, (ins[:, 0], l1), 1)
            np.add.at(self.deg_label, (ins[:, 1], l0), 1)
            np.add.at(self.deg_total, ins[:, 0], 1)
            np.add.at(self.deg_total, ins[:, 1], 1)
            np.add.at(self.pair_counts, (np.minimum(l0, l1), np.maximum(l0, l1)), 1)
            touched_parts.append(ins.ravel())
        if dels.shape[0]:
            l0 = labels[dels[:, 0]]
            l1 = labels[dels[:, 1]]
            np.subtract.at(self.deg_label, (dels[:, 0], l1), 1)
            np.subtract.at(self.deg_label, (dels[:, 1], l0), 1)
            np.subtract.at(self.deg_total, dels[:, 0], 1)
            np.subtract.at(self.deg_total, dels[:, 1], 1)
            lo, hi = np.minimum(l0, l1), np.maximum(l0, l1)
            np.subtract.at(self.pair_counts, (lo, hi), 1)
            # delete overlay: union adjacency = post-batch + deleted-this-batch
            vids = np.unique(dels.ravel())
            rows = np.zeros((vids.size, self.num_labels), dtype=np.int64)
            np.add.at(rows, (np.searchsorted(vids, dels[:, 0]), l1), 1)
            np.add.at(rows, (np.searchsorted(vids, dels[:, 1]), l0), 1)
            self._del_vids = vids.astype(np.int64)
            self._del_rows = rows
            self._del_total = rows.sum(axis=1)
            sig = np.zeros(vids.size, dtype=np.uint64)
            present = rows > 0
            for lab in range(self.num_labels):
                sig[present[:, lab]] |= np.uint64(1 << (lab % SIGNATURE_BITS))
            self._del_sig = sig
            dp = np.zeros_like(self.pair_counts)
            np.add.at(dp, (lo, hi), 1)
            self._del_pair_counts = dp
            self._del_edges = int(dels.shape[0])
            touched_parts.append(dels.ravel())
        self.num_edges += int(ins.shape[0]) - int(dels.shape[0])
        touched = 0
        if touched_parts:
            rows = np.unique(np.concatenate(touched_parts))
            self.sig[rows] = self._signature_rows(rows)
            touched = int(rows.size)
        # O(|ΔE|) scatter-adds + O(touched · L) exact signature refresh
        c.record_compute(4 * len(batch) + touched * self.num_labels)
        c.record_access(
            Channel.CPU_DRAM, 0,
            (2 * len(batch) + touched * self.num_labels) * _BYTES_PER_ENTRY,
        )
        return c

    def close_batch(self) -> None:
        """Drop the delete overlay once the store has reorganized."""
        self._clear_overlay()

    # -- invariant lookups (union bounds) ------------------------------
    def _signature_rows(self, rows: np.ndarray) -> np.ndarray:
        present = self.deg_label[rows] > 0
        out = np.zeros(rows.shape[0], dtype=np.uint64)
        for lab in range(self.num_labels):
            out[present[:, lab]] |= np.uint64(1 << (lab % SIGNATURE_BITS))
        return out

    def _overlay_hits(self, verts: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
        if self._del_vids.size == 0:
            return None
        pos = np.minimum(
            np.searchsorted(self._del_vids, verts), self._del_vids.size - 1
        )
        hit = self._del_vids[pos] == verts
        if not hit.any():
            return None
        return hit, pos

    def _union_label_col(self, verts: np.ndarray, label: int) -> np.ndarray:
        if label >= self.num_labels or label < 0:
            return np.zeros(verts.shape[0], dtype=np.int64)
        col = self.deg_label[verts, label]
        ov = self._overlay_hits(verts)
        if ov is not None:
            hit, pos = ov
            col = col + np.where(hit, self._del_rows[pos, label], 0)
        return col

    def _union_total(self, verts: np.ndarray) -> np.ndarray:
        total = self.deg_total[verts]
        ov = self._overlay_hits(verts)
        if ov is not None:
            hit, pos = ov
            total = total + np.where(hit, self._del_total[pos], 0)
        return total

    def _union_sig(self, verts: np.ndarray) -> np.ndarray:
        sig = self.sig[verts]
        ov = self._overlay_hits(verts)
        if ov is not None:
            hit, pos = ov
            sig = sig | np.where(hit, self._del_sig[pos], np.uint64(0))
        return sig

    # -- dominance ------------------------------------------------------
    def requirement(self, query: QueryGraph) -> QueryRequirement:
        req = self._requirements.get(id(query))
        if req is None or req.query is not query:
            req = QueryRequirement(query)
            self._requirements[id(query)] = req
        return req

    def vertex_dominates(
        self, verts: np.ndarray, req: QueryRequirement, u: int
    ) -> np.ndarray:
        """Boolean mask: can each data vertex host query vertex ``u``?

        A necessary condition over the union adjacency: total degree,
        signature superset (the one-word fast path), then exact per-label
        neighbor counts (injectivity makes counts, not just presence, the
        requirement — a simple graph's ``deg_label`` counts are distinct
        neighbors, so the comparison is sound).
        """
        if verts.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        ok = self._union_total(verts) >= req.deg_need[u]
        sig_need = req.sig_need[u]
        if sig_need:
            ok &= (self._union_sig(verts) & sig_need) == sig_need
        for lab, cnt in req.adj_need[u].items():
            if not ok.any():
                break
            ok &= self._union_label_col(verts, lab) >= cnt
        return ok

    def root_mask(self, plan: MatchPlan, roots: np.ndarray) -> np.ndarray:
        """Dominance mask over directed roots ``(r, 2)`` for one ΔM plan."""
        if roots.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        req = self.requirement(plan.query)
        u0, u1 = plan.order[0], plan.order[1]
        return self.vertex_dominates(roots[:, 0], req, u0) & self.vertex_dominates(
            roots[:, 1], req, u1
        )

    def mask(self, plan_index: int, plan: MatchPlan, roots: np.ndarray) -> np.ndarray:
        """Live masker protocol (recomputes; shard-subset safe)."""
        return self.root_mask(plan, roots)

    # -- batch-level feasibility ---------------------------------------
    def query_feasible(self, query: QueryGraph) -> bool:
        """Global dominance: can the union graph host *any* embedding of Q?

        Necessary conditions only: the graph's vertex-label histogram must
        dominate the query's (injectivity), the union edge count must cover
        the query's edge count, and the union label-pair histogram must
        dominate the query's per-pair edge counts.
        """
        req = self.requirement(query)
        for lab, cnt in req.vertex_need.items():
            if lab >= self.num_labels or self.label_counts[lab] < cnt:
                return False
        if self.num_edges + self._del_edges < req.num_edges:
            return False
        for (lo, hi), cnt in req.pair_need.items():
            if hi >= self.num_labels:
                return False
            have = int(self.pair_counts[lo, hi])
            if self._del_pair_counts is not None:
                have += int(self._del_pair_counts[lo, hi])
            if have < cnt:
                return False
        return True

    def evaluate(self, plans: list[MatchPlan], batch: UpdateBatch) -> PrefilterDecision:
        """Certify skips for one query's ΔM plans against one open batch.

        Mirrors :func:`repro.core.matching.delta_roots` exactly (same
        directed order, same label filter) so the per-plan masks align with
        the roots the executor will compute.  Called after
        :meth:`apply_batch` with the same effective batch.
        """
        c = AccessCounters()
        labels = self.graph.labels
        b = len(batch)
        feasible = bool(plans) and self.query_feasible(plans[0].query)
        dir_edges, _dir_signs = batch.directed_updates()
        masks: list[np.ndarray] = []
        total = passing = 0
        keep_edge = np.zeros(b, dtype=bool)
        for plan in plans:
            la, lb = plan.root_labels()
            lmask = np.ones(dir_edges.shape[0], dtype=bool)
            if dir_edges.shape[0]:
                if la != WILDCARD_LABEL:
                    lmask &= labels[dir_edges[:, 0]] == la
                if lb != WILDCARD_LABEL:
                    lmask &= labels[dir_edges[:, 1]] == lb
            rows = np.nonzero(lmask)[0]
            roots = dir_edges[rows]
            if feasible:
                m = self.root_mask(plan, roots)
            else:
                m = np.zeros(rows.size, dtype=bool)
            masks.append(m)
            total += int(rows.size)
            passing += int(m.sum())
            if m.any():
                keep_edge[rows[m] % b] = True
            c.record_compute(int(dir_edges.shape[0]) + 4 * int(rows.size))
        skip = passing == 0
        reason = "" if not skip else ("infeasible" if not feasible else "no-roots")
        estimate_batch: UpdateBatch | None = None
        if not skip:
            if keep_edge.all():
                estimate_batch = batch
            else:
                estimate_batch = UpdateBatch(
                    batch.edges[keep_edge],
                    batch.signs[keep_edge],
                    batch.new_vertex_labels,
                )
                c.record_compute(b)
        return PrefilterDecision(
            skip_batch=skip,
            reason=reason,
            masks=masks,
            roots_total=total,
            roots_passing=passing,
            estimate_batch=estimate_batch,
            counters=c,
        )


def make_prefilter(name: object, graph) -> InvariantIndex | None:
    """Resolve a ``prefilter=`` value to an index over ``graph`` (or None)."""
    return InvariantIndex(graph) if normalize_prefilter(name) == "invariant" else None
