"""Cache-selection policies and the cached device view (paper Sec. V-C).

Two policies reproduce the paper's comparison:

* :class:`FrequencyCachePolicy` — GCSM: rank vertices by the random-walk
  frequency estimate and cache greedily until the device buffer is full.
  In the paper's runs every sampled vertex fits ("the neighbor lists of all
  nodes sampled by the random walk take less than 2 GB"), i.e. effectively
  all vertices with estimated frequency ≥ |ΔE| are cached.
* :class:`DegreeCachePolicy` — the Naive baseline: rank by current degree.
  The paper shows this is nearly useless (Fig. 8-10: Naive ≈ ZC), because
  which lists the kernel reads depends on the query and the updated edges,
  not on degree alone.

:class:`CachedDeviceView` is GCSM's data path: every access binary-searches
the DCSR ``rowidx``; hits read GPU global memory, misses fall back to
zero-copy reads of CPU memory through the ``pDevice`` indirection
(Sec. V-C).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.dcsr import DcsrCache, packed_size_bytes
from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.gpu.views import GraphView
from repro.query.plan import EdgeVersion

__all__ = [
    "CachePolicy",
    "FrequencyCachePolicy",
    "DegreeCachePolicy",
    "CachedDeviceView",
    "select_within_budget",
]


def select_within_budget(
    graph: DynamicGraph,
    ranked_vertices: np.ndarray,
    budget_bytes: int,
) -> np.ndarray:
    """Take a prefix of ``ranked_vertices`` whose packed lists fit the budget.

    Greedy by rank: a vertex whose list alone exceeds the remaining budget
    stops the scan (keeping the selection a rank prefix, as the paper's
    "nodes with the highest estimated frequency are cached" implies).
    """
    chosen: list[int] = []
    used = 0
    for v in ranked_vertices.tolist():
        size = packed_size_bytes(
            graph.degree_old(v) + graph.delta_neighbors(v).size
        )
        if used + size > budget_bytes:
            break
        chosen.append(v)
        used += size
    return np.asarray(chosen, dtype=np.int64)


class CachePolicy(ABC):
    """Strategy object producing the cached vertex set for a batch."""

    name: str = "abstract"
    #: whether the engine must run the random-walk estimator for this policy
    requires_estimation: bool = False

    @abstractmethod
    def rank(self, graph: DynamicGraph, frequencies: np.ndarray | None) -> np.ndarray:
        """Return candidate vertices, best first."""

    def select(
        self,
        graph: DynamicGraph,
        frequencies: np.ndarray | None,
        budget_bytes: int,
    ) -> np.ndarray:
        return select_within_budget(graph, self.rank(graph, frequencies), budget_bytes)


class FrequencyCachePolicy(CachePolicy):
    """GCSM's policy: highest estimated access frequency first.

    Only vertices actually sampled (estimate > 0) are candidates — a vertex
    the walks never touched has estimated frequency below ``|ΔE|`` and is
    not worth buffer space (paper Sec. VI-A Settings).
    """

    name = "frequency"
    requires_estimation = True

    def rank(self, graph: DynamicGraph, frequencies: np.ndarray | None) -> np.ndarray:
        if frequencies is None:
            return np.empty(0, dtype=np.int64)
        nonzero = np.nonzero(frequencies > 0)[0]
        order = np.argsort(-frequencies[nonzero], kind="stable")
        return nonzero[order]


class DegreeCachePolicy(CachePolicy):
    """The Naive baseline: highest post-batch degree first."""

    name = "degree"

    def rank(self, graph: DynamicGraph, frequencies: np.ndarray | None) -> np.ndarray:
        degrees = graph.degrees_new()
        order = np.argsort(-degrees, kind="stable")
        return order[degrees[order] > 0]


class HybridCachePolicy(CachePolicy):
    """Extension (not in the paper): frequency-ranked first, then fill the
    *remaining* buffer with degree-ranked vertices.

    The paper leaves the buffer beyond the sampled set unused; at scaled-down
    graph sizes the degree tail still catches real traffic, so backfilling is
    nearly free bandwidth.  Evaluated by the cache-policy ablation bench.
    """

    name = "hybrid"
    requires_estimation = True

    def rank(self, graph: DynamicGraph, frequencies: np.ndarray | None) -> np.ndarray:
        freq_rank = FrequencyCachePolicy().rank(graph, frequencies)
        degree_rank = DegreeCachePolicy().rank(graph, None)
        backfill = degree_rank[~np.isin(degree_rank, freq_rank, assume_unique=True)]
        return np.concatenate([freq_rank, backfill])


class CachedDeviceView(GraphView):
    """GCSM's kernel data path: DCSR cache hit or zero-copy miss.

    Every fetch pays the rowidx binary-search probe (compute ops).  Hits are
    GPU-global reads of the packed runs; misses dereference ``pDevice`` and
    zero-copy the CPU list.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        device: DeviceConfig,
        counters: AccessCounters,
        cache: DcsrCache,
    ) -> None:
        super().__init__(graph, device, counters)
        self.cache = cache
        self.hits = 0
        self.misses = 0
        self._probe_ops = cache.probe_cost_ops()

    def fetch(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        self.counters.record_compute(self._probe_ops)
        row = self.cache.lookup(v)
        if row >= 0:
            self.hits += 1
            if version is EdgeVersion.OLD:
                runs: tuple[np.ndarray, ...] = (self.cache.neighbors_old(row),)
            else:
                base, delta = self.cache.neighbors_new_parts(row)
                runs = (base, delta) if delta.size else (base,)
            self.counters.record_access(
                Channel.GPU_GLOBAL, v, self._nbytes(runs)
            )
            return runs
        self.misses += 1
        runs = self._runs(v, version)
        nbytes = self._nbytes(runs)
        lines = self.device.zero_copy_lines(nbytes)
        self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)
        return runs

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        """Vectorized per-access recording: one rowidx probe per access, hits
        charged to GPU global memory, misses to zero-copy lines — the exact
        counter state of per-access :meth:`fetch` calls."""
        if vertices.size == 0:
            return
        self.counters.record_compute(self._probe_ops * int(vertices.size))
        hit = self.cache.lookup_block(vertices)
        self.hits += int(np.count_nonzero(hit))
        self.misses += int(vertices.size - np.count_nonzero(hit))
        nbytes = self._block_nbytes(vertices, version)
        self.counters.record_access_block(
            Channel.GPU_GLOBAL, vertices[hit], nbytes[hit]
        )
        miss = ~hit
        if miss.any():
            miss_bytes = nbytes[miss]
            lines = -(-miss_bytes // self.device.zero_copy_line_bytes)
            self.counters.record_access_block(
                Channel.ZERO_COPY, vertices[miss], miss_bytes, transactions=lines
            )

    def _record(self, v: int, nbytes: int) -> None:  # pragma: no cover
        raise AssertionError("CachedDeviceView overrides fetch() directly")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
