"""Experiment result records: serialization and cross-system summaries.

The bench harness produces :class:`~repro.bench.harness.RunResult` objects;
this module turns them into portable records — flat dictionaries that round
trip through JSON — and computes the comparison summaries the paper reports
(per-query speedups, geometric means, access reductions).  Keeping this
logic in the library (rather than inside the pytest targets) lets the CLI,
examples, and downstream notebooks reuse it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.utils import geometric_mean, require

__all__ = ["ExperimentRecord", "ComparisonSummary", "summarize", "save_records", "load_records"]


@dataclass(frozen=True)
class ExperimentRecord:
    """One (system, dataset, query) measurement, flattened for export."""

    system: str
    dataset: str
    query: str
    batch_size: float  # actual mean updates per driven batch
    num_batches: int
    total_ns: float
    match_ns: float
    estimate_ns: float
    pack_ns: float
    reorg_ns: float
    update_ns: float
    cpu_access_bytes: int
    delta_total: int
    embeddings_total: int
    cache_hit_rate: float | None = None
    coverage_top1: float | None = None
    coverage_top5: float | None = None
    #: requested sizing / workload axes (None keeps older JSON loadable);
    #: ``batch_size`` is the *actual* mean once these are present
    batch_size_requested: int | None = None
    num_batches_requested: int | None = None
    update_mix: str | None = None
    window: int | None = None
    #: FE sampler the system was configured with (None for pre-PR-4 JSON)
    estimator: str | None = None
    #: update-conflict policy the system ran with (None for older JSON)
    conflict_mode: str | None = None
    # -- multi-GPU extras (defaults keep old JSON files loadable) ----------
    num_devices: int = 1
    partitioner: str | None = None
    #: resolved partitioner tuning knobs (None for default/hash placements)
    partitioner_opts: dict | None = None
    comm_ns: float = 0.0
    peer_bytes: int = 0
    imbalance: float | None = None
    #: per-batch shard load-balance reports (``LoadBalanceReport.to_dict()``)
    load_balance: list = field(default_factory=list)
    #: online-repartitioning summary (config + migration totals), None = off
    repartition: dict | None = None
    # -- multi-query (rulebook) extras (None for single-query records) -----
    shared: bool | None = None
    rulebook_size: int | None = None
    # -- aggregate-invariant pre-filter extras (defaults keep old JSON) ----
    prefilter: str | None = None
    prefilter_ns: float = 0.0
    batches_skipped: int = 0
    roots_skipped: int = 0
    queries_skipped: int = 0

    @classmethod
    def from_run(cls, run) -> "ExperimentRecord":
        """Build from a :class:`repro.bench.harness.RunResult`."""
        bd = run.breakdown
        return cls(
            system=run.system,
            dataset=run.dataset,
            query=run.query,
            batch_size=run.batch_size,
            num_batches=run.num_batches,
            total_ns=bd.total_ns,
            match_ns=bd.match_ns,
            estimate_ns=bd.estimate_ns,
            pack_ns=bd.pack_ns,
            reorg_ns=bd.reorg_ns,
            update_ns=bd.update_ns,
            cpu_access_bytes=run.cpu_access_bytes,
            delta_total=run.delta_total,
            embeddings_total=run.embeddings_total,
            cache_hit_rate=run.cache_hit_rate,
            coverage_top1=run.coverage_top1,
            coverage_top5=run.coverage_top5,
            batch_size_requested=getattr(run, "batch_size_requested", None),
            num_batches_requested=getattr(run, "num_batches_requested", None),
            update_mix=getattr(run, "update_mix", None),
            window=getattr(run, "window", None),
            estimator=getattr(run, "estimator", None),
            conflict_mode=getattr(run, "conflict_mode", None),
            num_devices=getattr(run, "num_devices", 1),
            partitioner=getattr(run, "partitioner", None),
            partitioner_opts=getattr(run, "partitioner_opts", None),
            comm_ns=getattr(bd, "comm_ns", 0.0),
            peer_bytes=getattr(run, "peer_bytes", 0),
            imbalance=getattr(run, "imbalance", None),
            load_balance=list(getattr(run, "load_balance", []) or []),
            repartition=getattr(run, "repartition", None),
            shared=getattr(run, "shared", None),
            rulebook_size=getattr(run, "rulebook_size", None),
            prefilter=getattr(run, "prefilter", None),
            prefilter_ns=getattr(bd, "prefilter_ns", 0.0),
            batches_skipped=getattr(run, "batches_skipped", 0),
            roots_skipped=getattr(run, "roots_skipped", 0),
            queries_skipped=getattr(run, "queries_skipped", 0),
        )

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "dataset": self.dataset,
            "query": self.query,
            "batch_size": self.batch_size,
            "num_batches": self.num_batches,
            "total_ns": self.total_ns,
            "match_ns": self.match_ns,
            "estimate_ns": self.estimate_ns,
            "pack_ns": self.pack_ns,
            "reorg_ns": self.reorg_ns,
            "update_ns": self.update_ns,
            "cpu_access_bytes": self.cpu_access_bytes,
            "delta_total": self.delta_total,
            "embeddings_total": self.embeddings_total,
            "cache_hit_rate": self.cache_hit_rate,
            "coverage_top1": self.coverage_top1,
            "coverage_top5": self.coverage_top5,
            "batch_size_requested": self.batch_size_requested,
            "num_batches_requested": self.num_batches_requested,
            "update_mix": self.update_mix,
            "window": self.window,
            "estimator": self.estimator,
            "conflict_mode": self.conflict_mode,
            "num_devices": self.num_devices,
            "partitioner": self.partitioner,
            "partitioner_opts": self.partitioner_opts,
            "comm_ns": self.comm_ns,
            "peer_bytes": self.peer_bytes,
            "imbalance": self.imbalance,
            "load_balance": self.load_balance,
            "repartition": self.repartition,
            "shared": self.shared,
            "rulebook_size": self.rulebook_size,
            "prefilter": self.prefilter,
            "prefilter_ns": self.prefilter_ns,
            "batches_skipped": self.batches_skipped,
            "roots_skipped": self.roots_skipped,
            "queries_skipped": self.queries_skipped,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentRecord":
        return cls(**data)


@dataclass
class ComparisonSummary:
    """Speedup statistics of one system against a baseline.

    ``speedups`` maps (dataset, query) to baseline_time / system_time — the
    paper's convention (values > 1 mean the system wins).
    """

    system: str
    baseline: str
    speedups: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def min(self) -> float:
        return min(self.speedups.values())

    @property
    def max(self) -> float:
        return max(self.speedups.values())

    @property
    def geomean(self) -> float:
        return geometric_mean(self.speedups.values())

    @property
    def wins(self) -> int:
        return sum(1 for v in self.speedups.values() if v > 1.0)

    def describe(self) -> str:
        return (
            f"{self.system} vs {self.baseline}: "
            f"{self.min:.2f}x-{self.max:.2f}x "
            f"(geomean {self.geomean:.2f}x, wins {self.wins}/{len(self.speedups)})"
        )


def summarize(
    records: Iterable[ExperimentRecord], system: str, baseline: str
) -> ComparisonSummary:
    """Pairwise speedup summary over matching (dataset, query) legs."""
    by_key: dict[tuple[str, str, str], ExperimentRecord] = {}
    for rec in records:
        by_key[(rec.system, rec.dataset, rec.query)] = rec
    summary = ComparisonSummary(system=system, baseline=baseline)
    for (sys_name, dataset, query), rec in by_key.items():
        if sys_name != system:
            continue
        base = by_key.get((baseline, dataset, query))
        if base is None:
            continue
        require(rec.total_ns > 0, "non-positive system time")
        summary.speedups[(dataset, query)] = base.total_ns / rec.total_ns
    require(bool(summary.speedups), f"no overlapping legs for {system} vs {baseline}")
    return summary


def save_records(records: Iterable[ExperimentRecord], path: str | Path) -> None:
    """Write records as a JSON list."""
    payload = [rec.to_dict() for rec in records]
    Path(path).write_text(json.dumps(payload, indent=2))


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Read records written by :func:`save_records`."""
    payload = json.loads(Path(path).read_text())
    return [ExperimentRecord.from_dict(item) for item in payload]
