"""GCSM core: the paper's contribution.

* :mod:`repro.core.matching`  — the incremental WCOJ executor (the
  STMatch-derived kernel of Sec. V-C, expressed over graph views).
* :mod:`repro.core.frequency` — random-walk access-frequency estimation
  (Sec. IV, Theorem 1, and the merged binomial execution of Sec. IV-B).
* :mod:`repro.core.dcsr`      — the doubly-compressed cache format (Sec. V-B).
* :mod:`repro.core.cache`     — cache-selection policies and the cached
  device view (frequency-based for GCSM, degree-based for Naive).
* :mod:`repro.core.engine`    — the five-step per-batch pipeline (Fig. 3).
* :mod:`repro.core.baselines` — UM / ZC / VSGM / Naive GPU baselines and the
  CPU nested-loop baseline.
* :mod:`repro.core.rapidflow` — the RapidFlow-style CPU comparator.
* :mod:`repro.core.reference` — brute-force oracle for correctness tests.
"""

from repro.core.matching import (
    DEFAULT_EXECUTOR,
    EXECUTORS,
    MatchStats,
    match_batch,
    match_static,
)
from repro.core.frontier import FrontierExecutor
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    ESTIMATORS,
    EstimationResult,
    FrequencyEstimator,
    make_estimator,
    required_walks,
)
from repro.core.frequency_frontier import FrontierFrequencyEstimator
from repro.core.dcsr import DcsrCache
from repro.core.cache import CachePolicy, FrequencyCachePolicy, DegreeCachePolicy, CachedDeviceView
from repro.core.engine import GCSMEngine, BatchResult
from repro.core.reference import count_embeddings, find_embeddings

__all__ = [
    "MatchStats",
    "match_batch",
    "match_static",
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "FrontierExecutor",
    "FrequencyEstimator",
    "FrontierFrequencyEstimator",
    "make_estimator",
    "ESTIMATORS",
    "DEFAULT_ESTIMATOR",
    "EstimationResult",
    "required_walks",
    "DcsrCache",
    "CachePolicy",
    "FrequencyCachePolicy",
    "DegreeCachePolicy",
    "CachedDeviceView",
    "GCSMEngine",
    "BatchResult",
    "count_embeddings",
    "find_embeddings",
]
