"""Multi-query continuous matching (extension beyond the paper).

Real CSM deployments monitor *many* patterns over one stream (the paper's
motivating fraud scenarios watch whole rule books).  Running one
:class:`~repro.core.engine.GCSMEngine` per pattern repeats the per-batch
graph update, frequency estimation, DCSR packing, DMA, and reorganization
once per pattern.  :class:`MultiQueryEngine` shares all of it:

* one dynamic graph, updated and reorganized once per batch;
* one **pooled frequency estimate** — the walk budget is split exactly
  across all queries' delta plans and the per-vertex estimates summed,
  which is the right statistic because the kernel's total access frequency
  over the batch is the sum over queries (each estimate is unbiased for its
  query's accesses, so the pooled estimate is unbiased for the union
  workload);
* one DCSR cache and one DMA, then the rulebook executes against the
  shared cached view.

Beyond the shared pre-kernel phases, the engine shares the **kernel**
itself (``shared=True``, the default):

* queries are lexsorted by name, then deduped by
  :func:`~repro.query.symmetry.canonical_form` — isomorphic standing
  patterns have identical ΔM on every batch, so only the lexicographically
  first member of each class (its *representative*) is matched, and every
  alias receives the representative's ΔM (with sink embeddings remapped
  through :func:`~repro.query.symmetry.find_isomorphism`);
* the representatives' ΔM plans are grouped into an
  :class:`~repro.core.querytrie.ExecutionTrie` by common signature
  prefixes, and one masked frontier expansion per trie node serves every
  plan sharing that prefix — candidate enumeration and its access charges
  are paid once per *distinct* prefix, not once per query.

``shared=False`` runs the classic per-query loop against the same shared
cache — the baseline the trie is validated against.  Either way the result
carries **per-query attributed counters** that are bit-identical between
the two modes for representatives (the sharing contract of
:mod:`repro.core.querytrie`), while the engine-level ``match_counters``
price only the work actually executed — their gap is the modeled saving.

Amortization grows with the number of patterns; the multi-query ablation
bench quantifies it against per-pattern engines and across rulebook sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CachedDeviceView, FrequencyCachePolicy
from repro.core.dcsr import DcsrCache
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    EstimationResult,
    default_num_walks,
    make_estimator,
)
from repro.core.frontier import FrontierKernel
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    PrefilterDecision,
    PrefilterStats,
    normalize_prefilter,
)
from repro.core.querytrie import ExecutionTrie, SharedTrieExecutor, TrieStats
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig, default_device
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.query.symmetry import canonical_form, find_isomorphism
from repro.utils import VERTEX_DTYPE, as_generator, require, spawn_generator

__all__ = ["MultiQueryEngine", "MultiBatchResult", "split_walk_budget"]


def split_walk_budget(total_walks: int, num_queries: int) -> list[int]:
    """Split a walk budget so per-query counts sum *exactly* to the budget.

    The first ``total_walks % num_queries`` queries receive one extra walk,
    so ``sum == total_walks`` always — no rounding drift at large rulebook
    sizes (the old ``total // n`` floor under-spent up to ``n - 1`` walks).
    Degenerate budgets below one walk per query are raised to one each (the
    estimator needs at least one walk to be defined), which is the only
    case where the sum exceeds the request.
    """
    require(num_queries >= 1, "need at least one query")
    total_walks = max(int(total_walks), num_queries)
    base, extra = divmod(total_walks, num_queries)
    return [base + (1 if i < extra else 0) for i in range(num_queries)]


@dataclass
class MultiBatchResult:
    """Per-batch outcome across all monitored queries.

    ``delta_counts[name]`` is each query's signed ΔM; the breakdown's
    update/estimate/pack/reorg phases are *shared* (paid once).  Under
    shared trie execution ``match_counters`` price each shared expansion
    once (that is what ``match_ns`` is computed from), while
    ``match_counters_by_query`` attribute every charge back to each member
    query — bit-identical to what that query's independent execution would
    record.  ``aliases`` maps deduped query names to the isomorphic
    representative that was actually matched on their behalf.
    """

    delta_counts: dict[str, int]
    match_stats: dict[str, MatchStats]
    breakdown: TimeBreakdown
    match_counters: AccessCounters
    estimation: EstimationResult | None
    cached_vertices: np.ndarray
    cache_bytes: int
    cache_hits: int
    cache_misses: int
    shared: bool = True
    match_counters_by_query: dict[str, AccessCounters] | None = None
    aliases: dict[str, str] = field(default_factory=dict)
    trie_stats: TrieStats | None = None
    #: certified-skip accounting when the aggregate-invariant pre-filter is
    #: enabled (None with ``prefilter="off"``); ``queries_skipped`` counts
    #: every rulebook entry certified ΔM = 0 this batch, aliases included
    prefilter: PrefilterStats | None = None

    @property
    def total_delta(self) -> int:
        return sum(self.delta_counts.values())


def _copy_counters(counters: AccessCounters) -> AccessCounters:
    fresh = AccessCounters()
    fresh.merge(counters)
    return fresh


def _copy_stats(stats: MatchStats) -> MatchStats:
    return MatchStats(
        signed_count=stats.signed_count,
        embeddings_found=stats.embeddings_found,
        roots_processed=stats.roots_processed,
        tree_nodes=stats.tree_nodes,
        roots_skipped=stats.roots_skipped,
    )


class MultiQueryEngine:
    """Continuously match a set of patterns with shared per-batch work.

    Queries are lexsorted by name at construction, so trie layout,
    execution order, result-dict order, and sink order are all independent
    of the caller's dict/list insertion order.
    """

    def __init__(
        self,
        initial_graph: StaticGraph,
        queries: list[QueryGraph],
        *,
        device: DeviceConfig | None = None,
        num_walks: int | None = None,
        survival: float | None = 1.0,
        cache_budget_bytes: int | None = None,
        seed: int | np.random.Generator | None = 0,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        shared: bool = True,
        attribute_counters: bool = True,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        require(len(queries) >= 1, "need at least one query")
        names = [q.name for q in queries]
        require(len(set(names)) == len(names), "query names must be unique")
        self.device = device or default_device()
        self.cache_budget_bytes = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else self.device.cache_buffer_bytes
        )
        self.graph = DynamicGraph(initial_graph)
        # deterministic rulebook order: lexsort by query name
        self.queries = sorted(queries, key=lambda q: q.name)
        self.plans = {q.name: compile_delta_plans(q) for q in self.queries}
        self.num_walks = num_walks
        rng = as_generator(seed)
        self.estimator = make_estimator(
            estimator, self.graph, self.device,
            seed=spawn_generator(rng), survival=survival,
        )
        self.estimator_name = estimator
        self.policy = FrequencyCachePolicy()
        self.executor = executor
        self.conflict_mode = conflict_mode
        self.shared = shared
        self.attribute_counters = attribute_counters
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.batches_processed = 0

        # -- symmetry dedupe: one representative per isomorphism class ------
        # (lexsorted order makes the representative the lexicographically
        # first member, deterministically)
        self.canonical_of: dict[str, str] = {}
        #: alias name -> permutation σ with σ[u_rep] = u_alias
        self._alias_iso: dict[str, tuple[int, ...]] = {}
        by_form: dict[tuple, QueryGraph] = {}
        for q in self.queries:
            # predicated queries stay their own representatives: the
            # canonical form (and find_isomorphism) is predicate-blind, so
            # an alias remap could move a predicate onto the wrong edge.
            # Structural trie sharing still applies — plan signatures carry
            # the predicates and only share genuinely identical prefixes.
            form = ("__predicated__", q.name) if q.has_predicates() else canonical_form(q)
            rep = by_form.get(form)
            if rep is None:
                by_form[form] = q
                self.canonical_of[q.name] = q.name
            else:
                self.canonical_of[q.name] = rep.name
                iso = find_isomorphism(rep, q)
                assert iso is not None, "canonical forms equal but no isomorphism"
                self._alias_iso[q.name] = iso
        self.representatives = [
            q for q in self.queries if self.canonical_of[q.name] == q.name
        ]
        self.trie = ExecutionTrie(
            {q.name: self.plans[q.name] for q in self.representatives}
        )

    # ------------------------------------------------------------------
    def _prefilter_batch(
        self, batch: UpdateBatch
    ) -> tuple[dict[str, PrefilterDecision] | None, frozenset[str], float]:
        """Maintain the invariant index and certify per-query skips.

        Returns ``(decisions, skip_queries, prefilter_ns)``.  ``decisions``
        maps each *representative* to its batch decision (per-plan root
        masks, reduced estimate batch); ``skip_queries`` names every
        rulebook entry — aliases included — certified ΔM = 0 for this
        batch.  Aliases inherit their representative's decision: skip
        feasibility and root counts are isomorphism invariants, so the
        inheritance is exact.  ``(None, frozenset(), 0.0)`` when off.
        """
        if self.prefilter_index is None:
            return None, frozenset(), 0.0
        counters = self.prefilter_index.apply_batch(batch)
        decisions: dict[str, PrefilterDecision] = {}
        for query in self.representatives:
            decision = self.prefilter_index.evaluate(self.plans[query.name], batch)
            counters.merge(decision.counters)
            decisions[query.name] = decision
        skip_queries = frozenset(
            q.name
            for q in self.queries
            if decisions[self.canonical_of[q.name]].skip_batch
        )
        ns = simulated_time_ns(counters, self.device, platform="cpu")
        return decisions, skip_queries, ns

    # ------------------------------------------------------------------
    def _pooled_estimate(
        self,
        batch: UpdateBatch,
        decisions: dict[str, PrefilterDecision] | None = None,
        skip_queries: frozenset[str] = frozenset(),
    ) -> EstimationResult:
        """Sum per-query unbiased estimates into one workload estimate.

        Iterates *all* queries (aliases included) in lexsorted order in both
        execution modes, so the pooled frequencies — and therefore the cache
        contents every downstream counter depends on — are bit-identical
        between shared and independent runs.

        Under the pre-filter, queries certified ΔM = 0 are excluded (their
        walks would estimate provably dead work) and the walk budget is
        split across the active queries only, each walking its
        representative's *reduced* estimate batch.  This changes the
        estimate and therefore the cache — never results.
        """
        active = [q for q in self.queries if q.name not in skip_queries]
        require(len(active) >= 1, "estimation needs at least one active query")
        max_degree = max(1, self.graph.max_degree())
        largest = max(q.num_vertices for q in active)
        total_walks = self.num_walks or default_num_walks(
            len(batch), max_degree, largest
        )
        budget = split_walk_budget(total_walks, len(active))
        pooled: np.ndarray | None = None
        counters = AccessCounters()
        nodes = 0
        walks = 0
        for query, query_walks in zip(active, budget):
            est_batch = batch
            if decisions is not None:
                reduced = decisions[self.canonical_of[query.name]].estimate_batch
                if reduced is not None:
                    est_batch = reduced
            result = self.estimator.estimate(
                self.plans[query.name], est_batch,
                num_walks=query_walks, max_degree=max_degree,
            )
            pooled = result.frequencies if pooled is None else pooled + result.frequencies
            counters.merge(result.counters)
            nodes += result.nodes_visited
            walks += result.num_walks
        assert pooled is not None
        return EstimationResult(pooled, walks, nodes, counters)

    # ------------------------------------------------------------------
    def _match_independent(
        self,
        batch: UpdateBatch,
        view: CachedDeviceView,
        match_counters: AccessCounters,
        sinks: dict,
        decisions: dict[str, PrefilterDecision] | None = None,
        skip_queries: frozenset[str] = frozenset(),
    ) -> tuple[dict[str, MatchStats], dict[str, AccessCounters]]:
        """Baseline: every query runs its own full plan execution.

        Each query's charges land in a private counter (swapped into the
        shared view for the duration of its ``match_batch``) and are then
        merged into the engine total — additive, so the totals equal the
        classic single-counter accumulation exactly.  Skipped queries pay
        nothing; active queries apply per-plan root masks straight from the
        live invariant index (this mode is single-threaded, so no frozen
        decision is needed — and aliases run their *own* plans, which the
        representative's precomputed masks would not align with).
        """
        match_stats: dict[str, MatchStats] = {}
        per_query: dict[str, AccessCounters] = {}
        saved = view.counters
        try:
            for query in self.queries:
                pq = AccessCounters()
                if query.name in skip_queries:
                    assert decisions is not None
                    rep = self.canonical_of[query.name]
                    match_stats[query.name] = MatchStats(
                        roots_skipped=decisions[rep].roots_total
                    )
                    per_query[query.name] = pq
                    continue
                view.counters = pq
                match_stats[query.name] = match_batch(
                    self.plans[query.name], batch, view,
                    sink=sinks.get(query.name), executor=self.executor,
                    prefilter=self.prefilter_index,
                )
                per_query[query.name] = pq
                match_counters.merge(pq)
        finally:
            view.counters = saved
        return match_stats, per_query

    def _match_shared(
        self,
        batch: UpdateBatch,
        view: CachedDeviceView,
        match_counters: AccessCounters,
        sinks: dict,
        decisions: dict[str, PrefilterDecision] | None = None,
        skip_queries: frozenset[str] = frozenset(),
    ) -> tuple[dict[str, MatchStats], dict[str, AccessCounters] | None]:
        """One trie walk over the representatives; aliases copy results.

        The trie always drives the frontier kernel — by the executor parity
        contract (PR 3) its per-query attributed counters and stats are
        bit-identical to an independent run under either executor, so the
        ``executor=`` knob only changes how the *independent* baseline runs.
        """
        # aliases receive the representative's embeddings remapped through
        # the stored isomorphism; the representative's own sink (if any)
        # sees its emission order unchanged
        fanout: dict[str, list] = {}
        for name, sink in sinks.items():
            rep = self.canonical_of[name]
            if rep == name:
                fanout.setdefault(rep, []).append((sink, None))
            else:
                iso = self._alias_iso[name]
                inv = [0] * len(iso)
                for u_rep, u_alias in enumerate(iso):
                    inv[u_alias] = u_rep
                fanout.setdefault(rep, []).append((sink, tuple(inv)))
        rep_sinks: dict[str, object] = {}
        for rep, targets in fanout.items():
            def _fan(emb, sign, targets=targets):
                for sink, inv in targets:
                    if inv is None:
                        sink(emb, sign)
                    else:
                        sink(tuple(emb[u] for u in inv), sign)
            rep_sinks[rep] = _fan

        per_query = (
            {q.name: AccessCounters() for q in self.representatives}
            if self.attribute_counters
            else None
        )
        kernel = FrontierKernel(view, self.graph.labels)
        shared_exec = SharedTrieExecutor(
            self.trie, kernel, self.graph.labels,
            shared_counters=match_counters,
            per_query_counters=per_query,
            sinks=rep_sinks,
            skip_queries=skip_queries,
            prefilter=decisions,
        )
        rep_stats = shared_exec.run(batch)

        match_stats: dict[str, MatchStats] = {}
        for query in self.queries:
            rep = self.canonical_of[query.name]
            if query.name in skip_queries:
                # certified ΔM = 0 (aliases inherit — an isomorphism
                # invariant), pruned from the trie before expansion
                assert decisions is not None
                match_stats[query.name] = MatchStats(
                    roots_skipped=decisions[rep].roots_total
                )
                if per_query is not None:
                    per_query[query.name] = AccessCounters()
            elif rep == query.name:
                match_stats[query.name] = rep_stats[query.name]
            else:
                # ΔM and embedding counts are isomorphism invariants;
                # stats/counters mirror the representative's execution
                match_stats[query.name] = _copy_stats(rep_stats[rep])
                if per_query is not None:
                    per_query[query.name] = _copy_counters(per_query[rep])
        return match_stats, per_query

    # ------------------------------------------------------------------
    def process_batch(
        self, batch: UpdateBatch, *, sinks: dict | None = None
    ) -> MultiBatchResult:
        """One shared pipeline pass; every query matched incrementally.

        ``sinks`` optionally maps query names to embedding sinks
        ``(embedding, sign) -> None``; under shared execution an alias sink
        receives the representative's embeddings remapped to the alias's
        vertex numbering.
        """
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()
        sinks = sinks or {}

        # -- shared step 1: update -----------------------------------------
        raw_len = len(batch)  # the CPU scans (and classifies) every raw update
        batch = graph.apply_batch(batch, mode=self.conflict_mode)
        upd = AccessCounters()
        avg_deg = max(2.0, 2.0 * graph.num_edges / max(1, graph.num_vertices))
        upd.record_compute(raw_len * int(2 * (1 + math.log2(avg_deg))))
        breakdown.update_ns = simulated_time_ns(upd, self.device, platform="cpu")

        # -- shared step 1b: invariant maintenance + per-query skips ---------
        decisions, skip_queries, breakdown.prefilter_ns = self._prefilter_batch(batch)
        if decisions is not None and len(skip_queries) == len(self.queries):
            # every rulebook entry certified ΔM = 0: skip estimation,
            # packing, DMA, and the whole trie walk; reorganize only
            return self._finish_skipped(
                batch, breakdown, decisions, skip_queries
            )

        # -- shared step 2: pooled estimation --------------------------------
        estimation = self._pooled_estimate(batch, decisions, skip_queries)
        breakdown.estimate_ns = simulated_time_ns(
            estimation.counters, self.device, platform="cpu_estimator"
        )

        # -- shared step 3: one cache, one DMA --------------------------------
        selected = self.policy.select(
            graph, estimation.frequencies, self.cache_budget_bytes
        )
        cache = DcsrCache.build(graph, selected)
        pack = AccessCounters()
        pack.record_compute(int(cache.colidx.shape[0]) + cache.num_cached)
        from repro.gpu.transfer import DmaEngine

        dma = AccessCounters()
        dma_ns = DmaEngine(self.device, dma).transfer(cache.total_bytes)
        breakdown.pack_ns = simulated_time_ns(pack, self.device, platform="cpu") + dma_ns

        # -- step 4: rulebook matching against the shared cache ---------------
        match_counters = AccessCounters()
        view = CachedDeviceView(graph, self.device, match_counters, cache)
        if self.shared:
            match_stats, per_query = self._match_shared(
                batch, view, match_counters, sinks, decisions, skip_queries
            )
        else:
            match_stats, per_query = self._match_independent(
                batch, view, match_counters, sinks, decisions, skip_queries
            )
        delta_counts = {name: st.signed_count for name, st in match_stats.items()}
        breakdown.match_ns = simulated_time_ns(match_counters, self.device, platform="gpu")

        # -- shared step 5: reorganize ----------------------------------------
        breakdown.reorg_ns = self._reorganize()

        self.batches_processed += 1
        return MultiBatchResult(
            delta_counts=delta_counts,
            match_stats=match_stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=estimation,
            cached_vertices=selected,
            cache_bytes=cache.total_bytes,
            cache_hits=view.hits,
            cache_misses=view.misses,
            shared=self.shared,
            match_counters_by_query=per_query,
            aliases={
                name: rep for name, rep in self.canonical_of.items() if name != rep
            },
            trie_stats=self.trie.stats if self.shared else None,
            prefilter=self._prefilter_stats(breakdown, decisions, match_stats, False),
        )

    # ------------------------------------------------------------------
    def _reorganize(self) -> float:
        reorg = self.graph.reorganize()
        rc = AccessCounters()
        rc.record_compute(reorg.merged_elements + reorg.lists_touched)
        rc.record_access(Channel.CPU_DRAM, 0, reorg.merged_elements * BYTES_PER_NEIGHBOR)
        if self.prefilter_index is not None:
            # the batch is settled: OLD adjacency is gone, drop the overlay
            self.prefilter_index.close_batch()
        return simulated_time_ns(rc, self.device, platform="cpu")

    def _prefilter_stats(
        self,
        breakdown: TimeBreakdown,
        decisions: dict[str, PrefilterDecision] | None,
        match_stats: dict[str, MatchStats],
        batch_skipped: bool,
    ) -> PrefilterStats | None:
        if decisions is None:
            return None
        return PrefilterStats(
            enabled=True,
            batches_skipped=int(batch_skipped),
            roots_skipped=sum(st.roots_skipped for st in match_stats.values()),
            queries_skipped=sum(
                decisions[self.canonical_of[q.name]].skip_batch for q in self.queries
            ),
            maintenance_ns=breakdown.prefilter_ns,
        )

    def _finish_skipped(
        self,
        batch: UpdateBatch,
        breakdown: TimeBreakdown,
        decisions: dict[str, PrefilterDecision],
        skip_queries: frozenset[str],
    ) -> MultiBatchResult:
        """Whole-rulebook certified skip: every query's ΔM is provably zero."""
        breakdown.reorg_ns = self._reorganize()
        match_stats = {
            q.name: MatchStats(
                roots_skipped=decisions[self.canonical_of[q.name]].roots_total
            )
            for q in self.queries
        }
        per_query = (
            {q.name: AccessCounters() for q in self.queries}
            if self.attribute_counters or not self.shared
            else None
        )
        self.batches_processed += 1
        return MultiBatchResult(
            delta_counts={q.name: 0 for q in self.queries},
            match_stats=match_stats,
            breakdown=breakdown,
            match_counters=AccessCounters(),
            estimation=None,
            cached_vertices=np.empty(0, dtype=VERTEX_DTYPE),
            cache_bytes=0,
            cache_hits=0,
            cache_misses=0,
            shared=self.shared,
            match_counters_by_query=per_query,
            aliases={
                name: rep for name, rep in self.canonical_of.items() if name != rep
            },
            trie_stats=self.trie.stats if self.shared else None,
            prefilter=self._prefilter_stats(breakdown, decisions, match_stats, True),
        )

    def snapshot(self) -> StaticGraph:
        return self.graph.snapshot()
