"""Multi-query continuous matching (extension beyond the paper).

Real CSM deployments monitor *many* patterns over one stream (the paper's
motivating fraud scenarios watch whole rule books).  Running one
:class:`~repro.core.engine.GCSMEngine` per pattern repeats the per-batch
graph update, frequency estimation, DCSR packing, DMA, and reorganization
once per pattern.  :class:`MultiQueryEngine` shares all of it:

* one dynamic graph, updated and reorganized once per batch;
* one **pooled frequency estimate** — the walk budget is split across all
  queries' delta plans and the per-vertex estimates summed, which is the
  right statistic because the kernel's total access frequency over the
  batch is the sum over queries (each estimate is unbiased for its query's
  accesses, so the pooled estimate is unbiased for the union workload);
* one DCSR cache and one DMA, then each query's incremental plans execute
  against the shared cached view.

Amortization grows with the number of patterns; the multi-query ablation
bench quantifies it against per-pattern engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.cache import CachedDeviceView, FrequencyCachePolicy
from repro.core.dcsr import DcsrCache
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    EstimationResult,
    default_num_walks,
    make_estimator,
)
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig, default_device
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.utils import as_generator, require, spawn_generator

__all__ = ["MultiQueryEngine", "MultiBatchResult"]


@dataclass
class MultiBatchResult:
    """Per-batch outcome across all monitored queries.

    ``delta_counts[name]`` is each query's signed ΔM; the breakdown's
    update/estimate/pack/reorg phases are *shared* (paid once), while
    ``match_ns`` sums the per-query kernel times.
    """

    delta_counts: dict[str, int]
    match_stats: dict[str, MatchStats]
    breakdown: TimeBreakdown
    match_counters: AccessCounters
    estimation: EstimationResult | None
    cached_vertices: np.ndarray
    cache_bytes: int
    cache_hits: int
    cache_misses: int

    @property
    def total_delta(self) -> int:
        return sum(self.delta_counts.values())


class MultiQueryEngine:
    """Continuously match a set of patterns with shared per-batch work."""

    def __init__(
        self,
        initial_graph: StaticGraph,
        queries: list[QueryGraph],
        *,
        device: DeviceConfig | None = None,
        num_walks: int | None = None,
        survival: float | None = 1.0,
        cache_budget_bytes: int | None = None,
        seed: int | np.random.Generator | None = 0,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
    ) -> None:
        require(len(queries) >= 1, "need at least one query")
        names = [q.name for q in queries]
        require(len(set(names)) == len(names), "query names must be unique")
        self.device = device or default_device()
        self.cache_budget_bytes = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else self.device.cache_buffer_bytes
        )
        self.graph = DynamicGraph(initial_graph)
        self.queries = list(queries)
        self.plans = {q.name: compile_delta_plans(q) for q in queries}
        self.num_walks = num_walks
        rng = as_generator(seed)
        self.estimator = make_estimator(
            estimator, self.graph, self.device,
            seed=spawn_generator(rng), survival=survival,
        )
        self.estimator_name = estimator
        self.policy = FrequencyCachePolicy()
        self.executor = executor
        self.conflict_mode = conflict_mode
        self.batches_processed = 0

    # ------------------------------------------------------------------
    def _pooled_estimate(self, batch: UpdateBatch) -> EstimationResult:
        """Sum per-query unbiased estimates into one workload estimate."""
        max_degree = max(1, self.graph.max_degree())
        largest = max(q.num_vertices for q in self.queries)
        total_walks = self.num_walks or default_num_walks(
            len(batch), max_degree, largest
        )
        per_query = max(64, total_walks // len(self.queries))
        pooled: np.ndarray | None = None
        counters = AccessCounters()
        nodes = 0
        walks = 0
        for query in self.queries:
            result = self.estimator.estimate(
                self.plans[query.name], batch,
                num_walks=per_query, max_degree=max_degree,
            )
            pooled = result.frequencies if pooled is None else pooled + result.frequencies
            counters.merge(result.counters)
            nodes += result.nodes_visited
            walks += result.num_walks
        assert pooled is not None
        return EstimationResult(pooled, walks, nodes, counters)

    def process_batch(self, batch: UpdateBatch) -> MultiBatchResult:
        """One shared pipeline pass; every query matched incrementally."""
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        # -- shared step 1: update -----------------------------------------
        raw_len = len(batch)  # the CPU scans (and classifies) every raw update
        batch = graph.apply_batch(batch, mode=self.conflict_mode)
        upd = AccessCounters()
        avg_deg = max(2.0, 2.0 * graph.num_edges / max(1, graph.num_vertices))
        upd.record_compute(raw_len * int(2 * (1 + math.log2(avg_deg))))
        breakdown.update_ns = simulated_time_ns(upd, self.device, platform="cpu")

        # -- shared step 2: pooled estimation --------------------------------
        estimation = self._pooled_estimate(batch)
        breakdown.estimate_ns = simulated_time_ns(
            estimation.counters, self.device, platform="cpu_estimator"
        )

        # -- shared step 3: one cache, one DMA --------------------------------
        selected = self.policy.select(
            graph, estimation.frequencies, self.cache_budget_bytes
        )
        cache = DcsrCache.build(graph, selected)
        pack = AccessCounters()
        pack.record_compute(int(cache.colidx.shape[0]) + cache.num_cached)
        from repro.gpu.transfer import DmaEngine

        dma = AccessCounters()
        dma_ns = DmaEngine(self.device, dma).transfer(cache.total_bytes)
        breakdown.pack_ns = simulated_time_ns(pack, self.device, platform="cpu") + dma_ns

        # -- step 4: per-query matching against the shared cache --------------
        match_counters = AccessCounters()
        view = CachedDeviceView(graph, self.device, match_counters, cache)
        delta_counts: dict[str, int] = {}
        match_stats: dict[str, MatchStats] = {}
        for query in self.queries:
            stats = match_batch(
                self.plans[query.name], batch, view, executor=self.executor
            )
            delta_counts[query.name] = stats.signed_count
            match_stats[query.name] = stats
        breakdown.match_ns = simulated_time_ns(match_counters, self.device, platform="gpu")

        # -- shared step 5: reorganize ----------------------------------------
        reorg = graph.reorganize()
        rc = AccessCounters()
        rc.record_compute(reorg.merged_elements + reorg.lists_touched)
        rc.record_access(Channel.CPU_DRAM, 0, reorg.merged_elements * BYTES_PER_NEIGHBOR)
        breakdown.reorg_ns = simulated_time_ns(rc, self.device, platform="cpu")

        self.batches_processed += 1
        return MultiBatchResult(
            delta_counts=delta_counts,
            match_stats=match_stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=estimation,
            cached_vertices=selected,
            cache_bytes=cache.total_bytes,
            cache_hits=view.hits,
            cache_misses=view.misses,
        )

    def snapshot(self) -> StaticGraph:
        return self.graph.snapshot()
