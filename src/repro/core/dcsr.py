"""Doubly Compressed Sparse Row cache buffer (paper Sec. V-B, Fig. 6).

The neighbor lists of the selected (frequent) vertices are packed into three
arrays and shipped to the GPU in **one** DMA transaction:

* ``rowidx``  — the selected vertex ids, sorted ascending (the kernel binary
  searches this array on every access to decide cache hit vs. zero-copy).
* ``colidx``  — the lists themselves, copied *as stored on the CPU after
  step 3*: the base run keeps its negative deletion marks and the appended
  (sorted) new neighbors follow it.
* ``rowptr``  — per selected vertex a pair ``(base_start, delta_start)``
  into ``colidx``; ``delta_start == -1`` when the vertex gained no new
  neighbors this batch.  A final sentinel entry carries ``len(colidx)`` so
  run lengths are recoverable (paper: "The last entry of rowptr indicates
  the length of colidx").

Because all three array sizes are known before copying, the buffer is
allocated contiguously and moved with a single DMA request — the design
point the paper calls out against per-list transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.device import BYTES_PER_NEIGHBOR
from repro.utils import VERTEX_DTYPE, require, segment_offsets

__all__ = ["DcsrCache", "packed_size_bytes"]

_EMPTY = np.empty(0, dtype=VERTEX_DTYPE)


def packed_size_bytes(list_length: int) -> int:
    """Buffer bytes one cached vertex costs: its colidx entries plus its
    rowidx entry and rowptr pair (all int32 on the device)."""
    return (list_length + 3) * BYTES_PER_NEIGHBOR


@dataclass(frozen=True)
class DcsrCache:
    """Immutable packed cache, plus lookup helpers used by the cached view."""

    rowidx: np.ndarray  # (k,) sorted selected vertices
    rowptr: np.ndarray  # (k+1, 2) [base_start, delta_start|-1]; sentinel row
    colidx: np.ndarray  # packed neighbor data (marks + deltas preserved)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DynamicGraph, vertices: np.ndarray) -> "DcsrCache":
        """Pack the current (mid-batch) lists of ``vertices`` (vectorized).

        ``vertices`` may arrive in any order; they are sorted and deduplicated
        (rowidx must support binary search).

        The paper's single-DMA packing (Sec. V-B) sizes the buffer first and
        then copies: ``rowptr`` comes from one prefix sum over the stored run
        lengths, and because each vertex's base and delta runs are adjacent
        in the store (:meth:`~repro.graphs.dynamic_graph.DynamicGraph.packed_run_raw`)
        ``colidx`` is a single concatenate of per-vertex views — one bulk
        copy, no per-vertex Python bookkeeping.  Produces arrays bit-identical
        to :meth:`build_reference` (enforced by ``tests/test_dcsr.py``).
        """
        verts = np.sort(np.asarray(vertices, dtype=VERTEX_DTYPE).ravel())
        if verts.size > 1:
            # already sorted, so dedup is one adjacent-difference mask
            # (np.unique would redo the sort / hash the values)
            keep = np.empty(verts.size, dtype=bool)
            keep[0] = True
            np.not_equal(verts[1:], verts[:-1], out=keep[1:])
            verts = verts[keep]
        if verts.size:
            require(
                bool(verts[0] >= 0 and verts[-1] < graph.num_vertices),
                "cache vertex out of range",
            )
        k = verts.size
        base_len, total_len, views = graph.packed_runs(verts)
        offsets = segment_offsets(total_len)
        rowptr = np.empty((k + 1, 2), dtype=np.int64)
        rowptr[:k, 0] = offsets[:k]
        rowptr[:k, 1] = np.where(total_len > base_len, offsets[:k] + base_len, -1)
        rowptr[k, 0] = offsets[k]
        rowptr[k, 1] = -1
        colidx = np.concatenate(views) if k else _EMPTY.copy()
        return cls(verts, rowptr, colidx.astype(VERTEX_DTYPE, copy=False))

    @classmethod
    def build_reference(cls, graph: DynamicGraph, vertices: np.ndarray) -> "DcsrCache":
        """The original per-vertex packing loop, kept as the parity oracle
        for :meth:`build` (and as the honest CPU-side cost baseline)."""
        verts = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
        if verts.size:
            require(
                bool(verts[0] >= 0 and verts[-1] < graph.num_vertices),
                "cache vertex out of range",
            )
        k = verts.size
        rowptr = np.empty((k + 1, 2), dtype=np.int64)
        chunks: list[np.ndarray] = []
        offset = 0
        for i, v in enumerate(verts.tolist()):
            base = graph.base_run_raw(v)
            delta = graph.delta_neighbors(v)
            rowptr[i, 0] = offset
            rowptr[i, 1] = offset + base.size if delta.size else -1
            chunks.append(base)
            if delta.size:
                chunks.append(delta)
            offset += base.size + delta.size
        rowptr[k, 0] = offset
        rowptr[k, 1] = -1
        colidx = np.concatenate(chunks) if chunks else _EMPTY.copy()
        return cls(verts, rowptr, colidx.astype(VERTEX_DTYPE, copy=False))

    # ------------------------------------------------------------------
    @property
    def num_cached(self) -> int:
        return int(self.rowidx.shape[0])

    @property
    def total_bytes(self) -> int:
        """Device-buffer footprint (int32 entries, as in the paper's kernel)."""
        return int(
            self.rowidx.shape[0] * BYTES_PER_NEIGHBOR
            + self.rowptr.size * BYTES_PER_NEIGHBOR
            + self.colidx.shape[0] * BYTES_PER_NEIGHBOR
        )

    def lookup(self, v: int) -> int:
        """Binary-search ``rowidx``; returns the row or ``-1`` on miss.

        This is the per-access probe the paper's kernel performs before every
        neighbor-list read (Sec. V-C).
        """
        pos = int(np.searchsorted(self.rowidx, v))
        if pos < self.rowidx.shape[0] and self.rowidx[pos] == v:
            return pos
        return -1

    def lookup_block(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized hit test: boolean per vertex, True where cached.

        One ``searchsorted`` replaces per-access :meth:`lookup` calls; the
        probe *cost* is still charged per access by the caller.
        """
        pos = np.searchsorted(self.rowidx, vertices)
        hit = np.zeros(vertices.size, dtype=bool)
        ok = pos < self.rowidx.shape[0]
        hit[ok] = self.rowidx[pos[ok]] == vertices[ok]
        return hit

    def probe_cost_ops(self) -> int:
        """Comparison count of one rowidx binary search."""
        k = self.num_cached
        return max(1, int(np.ceil(np.log2(k + 1))))

    # ------------------------------------------------------------------
    def runs(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """The stored ``(base_with_marks, delta)`` runs of cached row ``row``."""
        base_start, delta_start = int(self.rowptr[row, 0]), int(self.rowptr[row, 1])
        end = int(self.rowptr[row + 1, 0])
        if delta_start == -1:
            return self.colidx[base_start:end], _EMPTY
        return self.colidx[base_start:delta_start], self.colidx[delta_start:end]

    def neighbors_old(self, row: int) -> np.ndarray:
        """``N(v)`` from the cache: decode deletion marks, drop the delta run."""
        base, _ = self.runs(row)
        if base.size and base.min() < 0:
            out = base.copy()
            neg = out < 0
            out[neg] = -out[neg] - 1
            return out
        return base

    def neighbors_new_parts(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """``N'(v)`` from the cache: skip negative marks, keep the delta run."""
        base, delta = self.runs(row)
        if base.size and base.min() < 0:
            base = base[base >= 0]
        return base, delta
