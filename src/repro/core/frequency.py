"""Random-walk access-frequency estimation (paper Sec. IV).

GCSM must predict, *before* matching, which vertices' neighbor lists the
matching kernel will read most often.  The paper's technique samples paths
of the matching execution tree:

* a walk starts at a root delta edge (probability ``1/|ΔE|``),
* at each tree node it computes the true candidate set ``V`` (performing the
  same intersections the kernel would), picks one candidate uniformly
  (``1/|V|``) and continues with probability ``|V|/D`` where ``D`` is the
  graph's maximum degree — so every child node is reached with marginal
  probability ``1/D``,
* every neighbor-list access performed along the walk is recorded, and the
  inverse-probability weight ``|ΔE| · D^{level-1}`` makes the accumulated
  count an **unbiased estimator** of the exact access frequency ``C_v``
  (paper Eq. 3 and Theorem 1).

Sec. IV-B's *merged execution* is implemented exactly: instead of running M
independent walks, one traversal carries a multiplicity ``B`` per node —
``B_root ~ Binomial(M, 1/|ΔE|)`` and ``B_child ~ Binomial(B_parent, 1/D)``
— which visits each node at most once and shares all set intersections.

Scale note: the paper sets ``M = |ΔE| · D^{n-2} / 32^n`` on billion-edge
graphs.  At our scaled sizes that expression degenerates (it was tuned to
their D and batch regimes), so :func:`default_num_walks` uses the same
*shape* (linear in ``|ΔE|``, gently increasing with ``D``) re-anchored so
that estimation overhead lands in the paper's Table II range (< 10 % of
total time); Eq. (5)'s sample-size bound is exposed as
:func:`required_walks` and drives the adaptive re-sampling loop of
:meth:`FrequencyEstimator.estimate_adaptive`.

Two samplers implement this contract (mirroring the executor pair of
:mod:`repro.core.matching`):

* ``estimator="frontier"`` (default) — the level-synchronous merged-walk
  sampler of :mod:`repro.core.frequency_frontier`: one flat frontier of
  ``(bound_vertices, multiplicity, weight)`` rows per execution-tree level,
  expanded with vectorized binomial draws and sorted-set kernels.
* ``estimator="recursive"`` — the per-node depth-first reference below,
  kept as the parity oracle (see ``docs/frequency.md`` for the three-layer
  parity contract the two must satisfy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.stream import UpdateBatch
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.query.pattern import WILDCARD_LABEL
from repro.query.plan import EdgeVersion, MatchPlan
from repro.core.matching import delta_roots
from repro.utils import as_generator, merge_sorted, require

__all__ = [
    "EstimationResult",
    "FrequencyEstimator",
    "required_walks",
    "default_num_walks",
    "make_estimator",
    "ESTIMATORS",
    "DEFAULT_ESTIMATOR",
]

#: recognized ``estimator=`` values for :func:`make_estimator` and the engines
ESTIMATORS = ("frontier", "recursive")
DEFAULT_ESTIMATOR = "frontier"


def make_estimator(
    name: str,
    graph: DynamicGraph,
    device: DeviceConfig,
    *,
    seed: int | np.random.Generator | None = 0,
    survival: float | None = None,
) -> "FrequencyEstimator":
    """Resolve an estimator name to an instance (the executor-pair analog).

    ``"frontier"`` returns the level-synchronous merged-frontier sampler
    (:class:`~repro.core.frequency_frontier.FrontierFrequencyEstimator`);
    ``"recursive"`` the depth-first reference.  Both share the paper's
    statistical contract, and in the deterministic full-expansion regime
    they agree exactly (frequencies, counters, nodes visited).
    """
    if name == "frontier":
        from repro.core.frequency_frontier import FrontierFrequencyEstimator

        return FrontierFrequencyEstimator(graph, device, seed=seed, survival=survival)
    if name == "recursive":
        return FrequencyEstimator(graph, device, seed=seed, survival=survival)
    raise ValueError(f"unknown estimator {name!r}; expected one of {ESTIMATORS}")


def required_walks(
    pattern_size: int,
    batch_size: int,
    max_degree: int,
    min_frequency: float,
    *,
    alpha: float = 1.0,
    confidence: float = 0.9,
) -> float:
    """Paper Eq. (5): walks needed to rank a vertex of frequency
    ``(1+alpha) * min_frequency`` above one of frequency ``min_frequency``
    with the given confidence.

    Returned as a float (it can be astronomically large for small
    ``min_frequency`` — callers clamp).
    """
    require(pattern_size >= 2, "pattern size must be >= 2")
    require(alpha > 0, "alpha must be positive")
    require(0 < confidence < 1, "confidence must be in (0,1)")
    require(min_frequency > 0, "min_frequency must be positive")
    n = pattern_size
    numerator = (n - 1) * (2 + alpha) * batch_size * float(max_degree) ** (n - 2)
    return numerator / (alpha**2 * (1 - confidence) * min_frequency)


def default_num_walks(batch_size: int, max_degree: int, pattern_size: int) -> int:
    """Default sampling budget.

    Linear in ``|ΔE|`` with a mild boost for deeper patterns (deeper trees
    dilute per-level multiplicities), floored so tiny batches still estimate
    something.  Keeps FE cost in the paper's Table II band (< 10 % of total
    time) while holding cache coverage near Fig. 15b levels.
    """
    depth_boost = 1.0 + 0.25 * max(0, pattern_size - 5)
    return max(256, int(2 * batch_size * depth_boost))


@dataclass
class EstimationResult:
    """Output of one estimation pass.

    ``frequencies[v]`` is the unbiased estimate of vertex ``v``'s access
    count during exact matching of this batch (average of Eq. (3) over the
    walks).  ``sampled_vertices`` are the vertices with nonzero estimates —
    the candidate cache set.  ``counters`` holds the CPU-side cost of the
    estimation itself (priced as Table II's "FE" column).
    """

    frequencies: np.ndarray
    num_walks: int
    nodes_visited: int
    counters: AccessCounters

    @property
    def sampled_vertices(self) -> np.ndarray:
        return np.nonzero(self.frequencies > 0)[0]

    def top_vertices(self, k: int) -> np.ndarray:
        """The k highest-estimated vertices, ties broken by ascending vertex id.

        ``lexsort`` keys on (vertex id, -frequency): the primary order is
        descending frequency, and equal-frequency runs — including ties that
        straddle the ``k`` boundary — resolve to the smallest vertex ids, so
        the returned prefix is fully deterministic.
        """
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        freq = self.frequencies
        nonzero = np.nonzero(freq > 0)[0]
        k = min(k, int(nonzero.size))
        if k == 0:
            return np.empty(0, dtype=np.int64)
        order = np.lexsort((nonzero, -freq[nonzero]))
        return nonzero[order[:k]]


class FrequencyEstimator:
    """Merged-binomial random-walk estimator over the ΔM_i execution trees."""

    def __init__(
        self,
        graph: DynamicGraph,
        device: DeviceConfig,
        *,
        seed: int | np.random.Generator | None = 0,
        survival: float | None = None,
    ) -> None:
        """``survival`` selects the walk-continuation schedule.

        ``None`` (paper fidelity): every child of a node is continued into
        with probability ``1/D`` — the paper's "pick one of |V| uniformly,
        continue with probability |V|/D".  At the paper's scale (D ≈ 5000,
        M ∝ D^{n-2}) enough walks survive to deep levels; at scaled-down D
        the same schedule starves levels ≥ 3 for deep patterns.

        A float ``c`` switches to survival sampling: each child continues
        with probability ``min(1, c/|V|)`` — an expected ``c`` children per
        node per walk, so walks penetrate every level.  The estimate stays
        **unbiased** (Theorem 1's argument only needs the per-node sampling
        probability to be known, and the inverse-probability weight is
        tracked exactly); only the variance/cost trade-off changes.
        """
        self.graph = graph
        self.device = device
        self.rng = as_generator(seed)
        self.survival = survival

    # ------------------------------------------------------------------
    def estimate(
        self,
        plans: list[MatchPlan],
        batch: UpdateBatch,
        *,
        num_walks: int | None = None,
        max_degree: int | None = None,
    ) -> EstimationResult:
        """Run the merged sampler over all delta plans.

        The walk budget is split evenly across the m plans (each ΔM_i tree
        is sampled independently; their access frequencies add).
        """
        graph = self.graph
        labels = graph.labels
        n = graph.num_vertices
        if max_degree is None:
            max_degree = max(1, graph.max_degree())
        if num_walks is None:
            num_walks = default_num_walks(
                len(batch), max_degree, plans[0].query.num_vertices
            )
        counters = AccessCounters()
        freq = np.zeros(n, dtype=np.float64)
        nodes_visited = 0
        walks_per_plan = max(1, num_walks // max(1, len(plans)))
        inv_d = 1.0 / max_degree

        for plan in plans:
            roots, _signs = delta_roots(plan, batch, labels)
            num_roots = roots.shape[0]
            if num_roots == 0:
                continue
            # B_root ~ Binomial(M, 1/|ΔR_i|) per root (merged execution)
            b_roots = self.rng.binomial(walks_per_plan, 1.0 / num_roots, size=num_roots)
            bound = np.empty(plan.depth, dtype=np.int64)
            for r in np.nonzero(b_roots > 0)[0]:
                bound[0], bound[1] = roots[r]
                nodes_visited += self._walk(
                    plan, bound, level_index=0, multiplicity=int(b_roots[r]),
                    weight=float(num_roots), inv_d=inv_d, freq=freq,
                    counters=counters, labels=labels,
                )
        if num_walks > 0:
            freq /= walks_per_plan
        return EstimationResult(freq, num_walks, nodes_visited, counters)

    def estimate_adaptive(
        self,
        plans: list[MatchPlan],
        batch: UpdateBatch,
        *,
        initial_walks: int | None = None,
        alpha: float = 1.0,
        confidence: float = 0.9,
        max_walks: int = 1 << 20,
        max_rounds: int = 3,
    ) -> EstimationResult:
        """Paper Sec. IV-A closing paragraph: start with a small M, then use
        the smallest estimated frequency as ``C_y`` in Eq. (5) to decide
        whether more walks are needed, and re-sample until M suffices (or a
        hard cap is reached)."""
        query = plans[0].query
        max_degree = max(1, self.graph.max_degree())
        result = self.estimate(
            plans, batch, num_walks=initial_walks, max_degree=max_degree
        )
        for _ in range(max_rounds - 1):
            nonzero = result.frequencies[result.frequencies > 0]
            if nonzero.size == 0:
                break
            needed = required_walks(
                query.num_vertices, len(batch), max_degree,
                float(nonzero.min()), alpha=alpha, confidence=confidence,
            )
            target = min(max_walks, int(min(needed, float(max_walks))))
            if result.num_walks >= target:
                break
            extra = self.estimate(
                plans, batch, num_walks=target, max_degree=max_degree
            )
            # average the two unbiased passes weighted by their walk counts
            w1, w2 = result.num_walks, extra.num_walks
            merged_freq = (result.frequencies * w1 + extra.frequencies * w2) / (w1 + w2)
            extra.counters.merge(result.counters)
            result = EstimationResult(
                merged_freq, w1 + w2, result.nodes_visited + extra.nodes_visited,
                extra.counters,
            )
        return result

    # ------------------------------------------------------------------
    def _fetch(
        self,
        v: int,
        version: EdgeVersion,
        counters: AccessCounters,
        multiplicity: int,
        weight: float,
        freq: np.ndarray,
    ) -> np.ndarray:
        """Read a versioned list on the CPU, recording the access for FE cost
        and charging the frequency estimate for vertex ``v``."""
        if version is EdgeVersion.OLD:
            arr = self.graph.neighbors_old(v)
        else:
            base, delta = self.graph.neighbors_new_parts(v)
            # both runs arrive sorted from the store, so the linear merge
            # kernel replaces the O(n log n) concatenate-then-sort
            arr = merge_sorted(base, delta) if delta.size else base
        counters.record_access(Channel.CPU_DRAM, v, arr.size * BYTES_PER_NEIGHBOR)
        counters.record_compute(arr.size + 1)
        freq[v] += multiplicity * weight
        return arr

    def _walk(
        self,
        plan: MatchPlan,
        bound: np.ndarray,
        level_index: int,
        multiplicity: int,
        weight: float,
        inv_d: float,
        freq: np.ndarray,
        counters: AccessCounters,
        labels: np.ndarray,
    ) -> int:
        """Expand one execution-tree node with merged multiplicity ``B``.

        ``weight`` is the inverse sampling probability of *this* node
        (``|ΔE| · D^{level-1}``); accesses performed here are charged at that
        weight times the node multiplicity (paper Eq. 3).
        """
        if level_index >= len(plan.levels):
            return 1
        lvl = plan.levels[level_index]
        # mirror the executor: visit constraints smallest-list-first so the
        # sampled accesses follow the exact kernel's access pattern
        def _len_of(c):
            v = int(bound[c.position])
            return (self.graph.degree_old(v) if c.version is EdgeVersion.OLD
                    else self.graph.degree_new(v))

        cand: np.ndarray | None = None
        for c in sorted(lvl.constraints, key=_len_of):
            arr = self._fetch(
                int(bound[c.position]), c.version, counters, multiplicity, weight, freq
            )
            if cand is None:
                cand = arr
            else:
                counters.record_compute(cand.size + arr.size)
                cand = np.intersect1d(cand, arr, assume_unique=True)
            if cand.size == 0:
                return 1
        assert cand is not None
        if lvl.label != WILDCARD_LABEL:
            cand = cand[labels[cand] == lvl.label]
        for i in range(level_index + 2):
            cand = cand[cand != bound[i]]
        counters.record_compute(cand.size)
        if cand.size == 0:
            return 1
        nodes = 1
        if self.survival is None:
            child_p = inv_d  # paper schedule: 1/D per child
        else:
            child_p = min(1.0, self.survival / cand.size)
        if child_p >= 1.0:
            # saturated continuation: every child survives with its parent's
            # full multiplicity.  Skipping the (degenerate) binomial draw
            # keeps the RNG stream aligned with the frontier sampler, which
            # is what makes the deterministic-regime parity *exact* across
            # multiple plans (only root draws consume randomness there).
            b_children = np.full(cand.size, multiplicity, dtype=np.int64)
        else:
            b_children = self.rng.binomial(multiplicity, child_p, size=cand.size)
        live = np.nonzero(b_children > 0)[0]
        child_weight = weight / child_p  # inverse sampling probability so far
        for j in live:
            bound[level_index + 2] = cand[j]
            nodes += self._walk(
                plan, bound, level_index + 1, int(b_children[j]), child_weight,
                inv_d, freq, counters, labels,
            )
        return nodes
