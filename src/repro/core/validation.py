"""Cross-system consistency checking.

The strongest correctness property in this codebase is that *every* system —
GCSM, the four GPU baselines, the CPU loop, RapidFlow — computes the exact
same signed ΔM for the same batch: they differ only in data movement.
:func:`verify_stream` drives any set of systems over one stream and checks
that property batch by batch, optionally against the brute-force oracle as
well.  It is used by the integration tests and exposed through
``python -m repro verify`` so a user who modifies the library (or doubts a
result) can re-establish confidence in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import make_system
from repro.core.reference import count_embeddings
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import UpdateBatch
from repro.query.pattern import QueryGraph
from repro.utils import require

__all__ = ["VerificationReport", "ConsistencyError", "verify_stream"]


class ConsistencyError(AssertionError):
    """Two systems (or a system and the oracle) disagreed on ΔM."""


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    systems: list[str]
    query: str
    num_batches: int
    delta_per_batch: list[int] = field(default_factory=list)
    oracle_checked: bool = False

    @property
    def total_delta(self) -> int:
        return sum(self.delta_per_batch)

    def describe(self) -> str:
        oracle = "oracle-checked" if self.oracle_checked else "cross-checked"
        return (
            f"{len(self.systems)} systems agree on {self.query} over "
            f"{self.num_batches} batches ({oracle}); total ΔM = {self.total_delta:+d}"
        )


def verify_stream(
    system_names: list[str],
    initial_graph: StaticGraph,
    query: QueryGraph,
    batches: list[UpdateBatch],
    *,
    against_oracle: bool = False,
    seed: int = 0,
) -> VerificationReport:
    """Run every system over the stream; raise on any ΔM disagreement.

    ``against_oracle=True`` additionally recounts embeddings from scratch
    after every batch (exponential-ish cost — keep the graphs small).
    """
    require(len(system_names) >= 1, "need at least one system")
    require(len(batches) >= 1, "need at least one batch")
    systems = {
        name: make_system(name, initial_graph, query, seed=seed)
        for name in system_names
    }
    report = VerificationReport(
        systems=list(system_names), query=query.name, num_batches=len(batches),
        oracle_checked=against_oracle,
    )
    prev_count = count_embeddings(initial_graph, query) if against_oracle else None
    for k, batch in enumerate(batches):
        deltas = {}
        for name, system in systems.items():
            deltas[name] = system.process_batch(batch).delta_count
        distinct = set(deltas.values())
        if len(distinct) != 1:
            raise ConsistencyError(
                f"batch {k}: systems disagree on ΔM: {deltas}"
            )
        delta = distinct.pop()
        if against_oracle:
            snapshot = systems[system_names[0]].snapshot()
            now = count_embeddings(snapshot, query)
            assert prev_count is not None
            if delta != now - prev_count:
                raise ConsistencyError(
                    f"batch {k}: systems report ΔM={delta} but the oracle "
                    f"recount gives {now - prev_count}"
                )
            prev_count = now
        report.delta_per_batch.append(delta)
    return report
