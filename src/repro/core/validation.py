"""Cross-system consistency checking and differential stream fuzzing.

The strongest correctness property in this codebase is that *every* system —
GCSM (single- or multi-GPU), the four GPU baselines, the CPU loop,
RapidFlow — computes the exact same signed ΔM for the same batch: they
differ only in data movement.  :func:`verify_stream` drives any set of
systems over one stream and checks that property batch by batch, optionally
against the brute-force oracle as well.

On top of it sits a **differential stream fuzzer**:
:func:`generate_adversarial_stream` produces batches exhibiting every
anomaly class real-world streams contain (duplicate inserts, phantom
deletes, same-batch insert+delete churn, double deletes, new-vertex bursts,
hot-edge flapping), and :func:`fuzz_verify` replays many independently
seeded adversarial cases through the full system set with the oracle and
per-batch store-invariant checks enabled.  It is exposed through
``python -m repro verify [--fuzz N]`` so a user who modifies the library
(or doubts a result) can re-establish confidence in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import make_system
from repro.core.reference import count_embeddings
from repro.graphs import generators
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, CanonicalReport, UpdateBatch
from repro.query.pattern import QueryGraph
from repro.utils import as_generator, require

__all__ = [
    "VerificationReport",
    "ConsistencyError",
    "verify_stream",
    "verify_rulebook",
    "RulebookParityReport",
    "generate_adversarial_stream",
    "fuzz_verify",
    "FuzzReport",
    "DEFAULT_FUZZ_SYSTEMS",
]


class ConsistencyError(AssertionError):
    """Two systems (or a system and the oracle) disagreed on ΔM."""


def _parse_system_spec(spec: str) -> tuple[str, dict]:
    """``"GCSM@2"`` → ``("GCSM", {"devices": 2})``; plain names pass through.

    The ``@N`` suffix routes GCSM to the sharded multi-GPU engine so the
    fuzzer exercises the shard-union matching path alongside single-device
    systems; an optional ``@N:partitioner`` picks the placement strategy
    (e.g. ``"GCSM@4:mincut"``), which must never change results.  A
    ``+prefilter`` suffix (before any ``@N``) enables the
    aggregate-invariant pre-filter on the system, e.g. ``"GCSM+prefilter"``
    or ``"GCSM+prefilter@2"`` — the fuzzer's exactness check then covers
    the certified-skip path against every unfiltered system.  A ``+repart``
    suffix (requires ``@N``) turns on sticky ownership with online
    repartitioning, e.g. ``"GCSM+repart@2:mincut"`` — drift-triggered
    migration must also leave ΔM bit-identical.
    """
    kwargs: dict = {}
    if "+prefilter" in spec:
        spec = spec.replace("+prefilter", "", 1)
        kwargs["prefilter"] = "invariant"
    if "+repart" in spec:
        spec = spec.replace("+repart", "", 1)
        require("@" in spec, f"+repart requires an @N device suffix, got {spec!r}")
        kwargs["repartition"] = True
    if "@" in spec:
        name, _, devices = spec.partition("@")
        require(name == "GCSM", f"@N device suffix only applies to GCSM, got {spec!r}")
        devices, _, partitioner = devices.partition(":")
        require(devices.isdigit() and int(devices) >= 1,
                f"bad device count in system spec {spec!r}")
        kwargs["devices"] = int(devices)
        if partitioner:
            kwargs["partitioner"] = partitioner
        return name, kwargs
    return spec, kwargs


def _conflict_key(report: CanonicalReport | None) -> tuple | None:
    if report is None:
        return None
    return (
        report.input_size, report.output_size, report.new_inserts,
        report.duplicate_inserts, report.valid_deletes,
        report.phantom_deletes, report.intra_batch_dropped,
    )


@dataclass
class VerificationReport:
    """Outcome of one verification run."""

    systems: list[str]
    query: str
    num_batches: int
    delta_per_batch: list[int] = field(default_factory=list)
    oracle_checked: bool = False
    conflict_mode: str | None = None
    invariants_checked: bool = False
    anomalies: CanonicalReport | None = None

    @property
    def total_delta(self) -> int:
        return sum(self.delta_per_batch)

    def describe(self) -> str:
        oracle = "oracle-checked" if self.oracle_checked else "cross-checked"
        msg = (
            f"{len(self.systems)} systems agree on {self.query} over "
            f"{self.num_batches} batches ({oracle}); total ΔM = {self.total_delta:+d}"
        )
        if self.anomalies is not None and self.anomalies.anomalies:
            msg += f"; absorbed {self.anomalies.anomalies} anomalous updates"
        return msg


def verify_stream(
    system_names: list[str],
    initial_graph: StaticGraph,
    query: QueryGraph,
    batches: list[UpdateBatch],
    *,
    against_oracle: bool = False,
    seed: int = 0,
    conflict_mode: str | None = None,
    check_invariants: bool = False,
    system_kwargs: dict | None = None,
) -> VerificationReport:
    """Run every system over the stream; raise on any ΔM disagreement.

    ``against_oracle=True`` additionally recounts embeddings from scratch
    after every batch (exponential-ish cost — keep the graphs small).
    ``conflict_mode`` forces one update-conflict policy on every system
    (``None`` keeps each system's default); with a mode set, the per-batch
    :class:`~repro.graphs.stream.CanonicalReport` of every system must also
    agree — all stores classify the same raw batch against the same state.
    ``check_invariants=True`` audits every system's dynamic store after each
    batch (i.e. after its reorganize).  System names accept the ``GCSM@N``
    spec for the N-device sharded engine, and ``system_kwargs`` is forwarded
    to every system constructor (e.g. ``{"executor": "recursive"}``).
    """
    require(len(system_names) >= 1, "need at least one system")
    require(len(batches) >= 1, "need at least one batch")
    systems = {}
    for spec in system_names:
        name, extra = _parse_system_spec(spec)
        kwargs = dict(system_kwargs or {})
        kwargs.update(extra)
        if conflict_mode is not None:
            kwargs["conflict_mode"] = conflict_mode
        systems[spec] = make_system(name, initial_graph, query, seed=seed, **kwargs)
    report = VerificationReport(
        systems=list(system_names), query=query.name, num_batches=len(batches),
        oracle_checked=against_oracle, conflict_mode=conflict_mode,
        invariants_checked=check_invariants,
        anomalies=CanonicalReport(mode=conflict_mode or "default"),
    )
    prev_count = count_embeddings(initial_graph, query) if against_oracle else None
    for k, batch in enumerate(batches):
        deltas = {}
        conflicts = {}
        for name, system in systems.items():
            result = system.process_batch(batch)
            deltas[name] = result.delta_count
            conflicts[name] = getattr(result, "conflicts", None)
            if check_invariants:
                store = getattr(system, "graph", None)
                if store is not None:
                    try:
                        store.check_invariants()
                    except ValueError as exc:
                        raise ConsistencyError(
                            f"batch {k}: {name} store invariant violated: {exc}"
                        ) from exc
        distinct = set(deltas.values())
        if len(distinct) != 1:
            raise ConsistencyError(
                f"batch {k}: systems disagree on ΔM: {deltas}"
            )
        keys = {n: _conflict_key(r) for n, r in conflicts.items() if r is not None}
        if len(set(keys.values())) > 1:
            raise ConsistencyError(
                f"batch {k}: systems disagree on batch classification: "
                f"{ {n: r.describe() for n, r in conflicts.items() if r is not None} }"
            )
        first = next((r for r in conflicts.values() if r is not None), None)
        if first is not None:
            assert report.anomalies is not None
            report.anomalies.merge(first)
        delta = distinct.pop()
        if against_oracle:
            snapshot = systems[system_names[0]].snapshot()
            now = count_embeddings(snapshot, query)
            assert prev_count is not None
            if delta != now - prev_count:
                raise ConsistencyError(
                    f"batch {k}: systems report ΔM={delta} but the oracle "
                    f"recount gives {now - prev_count}"
                )
            prev_count = now
        report.delta_per_batch.append(delta)
    return report


# ----------------------------------------------------------------------
# Shared-rulebook parity verification
# ----------------------------------------------------------------------
@dataclass
class RulebookParityReport:
    """Outcome of one shared-vs-independent rulebook verification."""

    num_queries: int
    num_batches: int
    executors: list[str]
    aliases: dict[str, str] = field(default_factory=dict)
    delta_per_batch: list[int] = field(default_factory=list)

    @property
    def total_delta(self) -> int:
        return sum(self.delta_per_batch)

    def describe(self) -> str:
        dedup = f", {len(self.aliases)} deduped as isomorphic aliases" if self.aliases else ""
        return (
            f"shared trie matches {len(self.executors)} independent "
            f"executor legs on {self.num_queries} queries over "
            f"{self.num_batches} batches{dedup}; total ΔM = {self.total_delta:+d}"
        )


def _counters_equal(a, b) -> bool:
    if a.summary() != b.summary():
        return False
    ha, hb = a.vertex_access_counts(), b.vertex_access_counts()
    n = max(ha.size, hb.size)
    return bool(
        np.array_equal(
            np.pad(ha, (0, n - ha.size)), np.pad(hb, (0, n - hb.size))
        )
    )


def verify_rulebook(
    initial_graph: StaticGraph,
    queries: list[QueryGraph],
    batches: list[UpdateBatch],
    *,
    seed: int = 0,
    conflict_mode: str | None = None,
    executors: tuple[str, ...] = ("frontier", "recursive"),
    engine_kwargs: dict | None = None,
) -> RulebookParityReport:
    """Shared-trie vs per-query-independent parity spec (the rulebook
    analog of :func:`verify_stream`).

    Runs one shared :class:`~repro.core.multiquery.MultiQueryEngine` and
    one independent engine per executor over the same stream and raises
    :class:`ConsistencyError` unless, per batch:

    * every query's signed ΔM is identical across all legs;
    * every *representative* query's ``MatchStats`` and attributed access
      counters (channel bytes/transactions, compute/output ops, and the
      per-vertex access histogram) are **bit-identical** between the shared
      trie and every independent leg;
    * every alias's results mirror its representative's (the documented
      dedupe contract — ΔM is an isomorphism invariant).

    With the aggregate-invariant pre-filter enabled (``engine_kwargs=
    {"prefilter": "on"}``), the shared trie masks roots at *group*
    granularity while independent legs mask per plan, so stats/counter
    equality is relaxed to: identical ``signed_count``/``embeddings_found``
    plus the audit identity ``roots_processed + roots_skipped`` equal
    across legs with ``shared.roots_processed >= independent.
    roots_processed`` (the group OR keeps at least every root any member's
    own mask keeps).
    """
    from repro.core.multiquery import MultiQueryEngine
    from repro.core.prefilter import normalize_prefilter

    require(len(batches) >= 1, "need at least one batch")
    kwargs = dict(engine_kwargs or {})
    prefilter_on = normalize_prefilter(kwargs.get("prefilter")) != "off"
    if conflict_mode is not None:
        kwargs["conflict_mode"] = conflict_mode
    shared_engine = MultiQueryEngine(
        initial_graph, queries, seed=seed, shared=True, **kwargs
    )
    indep_engines = {
        ex: MultiQueryEngine(
            initial_graph, queries, seed=seed, shared=False, executor=ex, **kwargs
        )
        for ex in executors
    }
    report = RulebookParityReport(
        num_queries=len(queries), num_batches=len(batches),
        executors=list(executors),
        aliases={
            n: r for n, r in shared_engine.canonical_of.items() if n != r
        },
    )
    for k, batch in enumerate(batches):
        shared_res = shared_engine.process_batch(batch)
        for ex, engine in indep_engines.items():
            indep_res = engine.process_batch(batch)
            if shared_res.delta_counts != indep_res.delta_counts:
                raise ConsistencyError(
                    f"batch {k}: shared trie vs independent[{ex}] disagree "
                    f"on ΔM: {shared_res.delta_counts} != {indep_res.delta_counts}"
                )
            for name, indep_stats in indep_res.match_stats.items():
                if name in report.aliases:
                    continue  # aliases mirror their representative
                shared_stats = shared_res.match_stats[name]
                if prefilter_on:
                    ok = (
                        shared_stats.signed_count == indep_stats.signed_count
                        and shared_stats.embeddings_found
                        == indep_stats.embeddings_found
                        and shared_stats.roots_processed
                        + shared_stats.roots_skipped
                        == indep_stats.roots_processed
                        + indep_stats.roots_skipped
                        and shared_stats.roots_processed
                        >= indep_stats.roots_processed
                    )
                    if not ok:
                        raise ConsistencyError(
                            f"batch {k}: prefiltered stats diverge for {name} "
                            f"vs independent[{ex}]: "
                            f"{vars(shared_stats)} != {vars(indep_stats)}"
                        )
                    continue  # counters legitimately differ under masking
                if vars(shared_stats) != vars(indep_stats):
                    raise ConsistencyError(
                        f"batch {k}: stats diverge for {name} vs "
                        f"independent[{ex}]: "
                        f"{vars(shared_stats)} != {vars(indep_stats)}"
                    )
                assert shared_res.match_counters_by_query is not None
                assert indep_res.match_counters_by_query is not None
                if not _counters_equal(
                    shared_res.match_counters_by_query[name],
                    indep_res.match_counters_by_query[name],
                ):
                    raise ConsistencyError(
                        f"batch {k}: attributed counters diverge for {name} "
                        f"vs independent[{ex}]"
                    )
        report.delta_per_batch.append(shared_res.total_delta)
    return report


# ----------------------------------------------------------------------
# Adversarial stream generation
# ----------------------------------------------------------------------

#: Anomaly classes the generator cycles through.  ``clean_*`` keep the
#: stream making progress; the rest reproduce the real-world pathologies
#: the update protocol must be total over.
_OP_CLASSES = (
    "clean_insert",
    "clean_delete",
    "dup_insert",
    "phantom_delete",
    "churn",
    "double_delete",
    "new_vertex",
    "flap",
)


def generate_adversarial_stream(
    initial: StaticGraph,
    *,
    num_batches: int = 4,
    batch_size: int = 16,
    seed: int | np.random.Generator | None = 0,
) -> list[UpdateBatch]:
    """Batches exhibiting every update-anomaly class (fuzzer input).

    Each batch mixes clean inserts/deletes with duplicate inserts, phantom
    deletes (including deletes of never-introduced vertices), same-batch
    insert+delete churn pairs, double deletes, new-vertex bursts (with
    labels), and hot-edge flapping (the same edge toggled several times in
    one batch).  Orientation of every emitted update is randomized, so the
    store's orientation-insensitive netting is exercised too.

    Presence is tracked under **coalesce** (last-occurrence-wins) netting so
    later batches stay plausible; under other conflict modes the class mix
    drifts slightly but every batch remains a legal input.
    """
    require(num_batches >= 1, "need at least one batch")
    require(batch_size >= 4, "adversarial batches need at least 4 updates")
    rng = as_generator(seed)
    num_labels = int(initial.labels.max()) + 1 if initial.num_vertices else 1
    present: set[tuple[int, int]] = {
        (int(u), int(v)) for u, v in initial.edge_array()
    }
    materialized = initial.num_vertices
    next_fresh = initial.num_vertices
    assigned_labels: dict[int, int] = {}
    hot: list[tuple[int, int]] = []

    def orient(e: tuple[int, int]) -> tuple[int, int]:
        return e if rng.random() < 0.5 else (e[1], e[0])

    def pick_present() -> tuple[int, int] | None:
        if not present:
            return None
        pool = sorted(present)
        return pool[int(rng.integers(0, len(pool)))]

    def pick_absent() -> tuple[int, int] | None:
        for _ in range(64):
            u = int(rng.integers(0, materialized))
            v = int(rng.integers(0, materialized))
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e not in present:
                return e
        return None

    def fresh_vertex() -> int:
        nonlocal next_fresh
        v = next_fresh
        next_fresh += 1
        assigned_labels[v] = int(rng.integers(0, num_labels))
        return v

    batches: list[UpdateBatch] = []
    for _ in range(num_batches):
        ops: list[tuple[int, int, int]] = []

        def emit(e: tuple[int, int], sign: int) -> None:
            u, v = orient(e)
            ops.append((u, v, sign))

        classes = list(_OP_CLASSES)
        rng.shuffle(classes)
        ci = 0
        while len(ops) < batch_size:
            cls = classes[ci % len(classes)]
            ci += 1
            if cls == "clean_insert":
                e = pick_absent()
                if e:
                    emit(e, +1)
            elif cls == "clean_delete":
                e = pick_present()
                if e:
                    emit(e, -1)
            elif cls == "dup_insert":
                e = pick_present()
                if e:
                    emit(e, +1)
            elif cls == "phantom_delete":
                if rng.random() < 0.5:
                    e = pick_absent()
                else:
                    # delete an edge of a vertex id nobody ever introduced
                    u = int(rng.integers(0, max(1, materialized)))
                    e = (u, next_fresh + int(rng.integers(1, 4)))
                if e:
                    emit(e, -1)
            elif cls == "churn":
                # insert-then-delete of the same edge inside one batch; the
                # delete must hit the unsorted ΔN run, then net to nothing
                e = pick_absent()
                if e:
                    emit(e, +1)
                    emit(e, -1)
            elif cls == "double_delete":
                e = pick_present()
                if e:
                    emit(e, -1)
                    emit(e, -1)
            elif cls == "new_vertex":
                # burst: a fresh vertex attached to the graph, sometimes
                # chained to a second fresh vertex
                if materialized == 0:
                    continue
                anchor = int(rng.integers(0, materialized))
                v = fresh_vertex()
                emit((anchor, v), +1)
                if rng.random() < 0.3:
                    emit((v, fresh_vertex()), +1)
            elif cls == "flap":
                if not hot:
                    e = pick_present() or pick_absent()
                    if e is None:
                        continue
                    hot.append(e)
                e = hot[int(rng.integers(0, len(hot)))]
                for _ in range(int(rng.integers(2, 4))):
                    emit(e, +1 if rng.random() < 0.5 else -1)
        ops = ops[:batch_size]
        if not ops:  # pragma: no cover - batch_size >= 4 always yields ops
            continue

        # settle presence under coalesce (last occurrence wins per edge)
        final: dict[tuple[int, int], int] = {}
        for u, v, sign in ops:
            final[(min(u, v), max(u, v))] = sign
        for e, sign in final.items():
            if sign > 0 and e not in present:
                present.add(e)
                materialized = max(materialized, e[1] + 1)
            elif sign < 0:
                present.discard(e)

        edges = np.array([(u, v) for u, v, _ in ops], dtype=np.int64)
        signs = np.array([s for _, _, s in ops], dtype=np.int64)
        labels = {
            v: lbl for v, lbl in assigned_labels.items()
            if v >= initial.num_vertices
        }
        batches.append(UpdateBatch(edges, signs, labels))
    return batches


# ----------------------------------------------------------------------
# Differential fuzzing
# ----------------------------------------------------------------------

#: Every system the fuzzer cross-checks by default — both GCSM engines
#: (single-GPU and 2-device sharded), the pipelined engine (same results,
#: overlapped schedule), all four GPU baselines, the CPU loop, RapidFlow,
#: the prefiltered GCSM/pipelined variants (certified skips must be
#: invisible in ΔM), the min-cut-partitioned 4-device fleet, and the
#: sticky-ownership online-repartitioning fleet (placement and migration
#: must both be invisible in ΔM).
DEFAULT_FUZZ_SYSTEMS = (
    "GCSM", "GCSM@2", "Pipelined", "ZC", "UM", "Naive", "VSGM", "CPU",
    "RapidFlow", "GCSM+prefilter", "Pipelined+prefilter",
    "GCSM@4:mincut", "GCSM+repart@2:mincut",
)

#: Queries the fuzz cases rotate through (kept small: the oracle recounts
#: embeddings from scratch after every batch).
_FUZZ_QUERIES = ("Q1", "Q2", "Q4")


@dataclass
class FuzzReport:
    """Aggregate outcome of a differential fuzzing run."""

    num_cases: int
    systems: list[str]
    conflict_mode: str
    total_batches: int = 0
    total_updates: int = 0
    total_effective: int = 0
    total_delta: int = 0
    anomalies: CanonicalReport = field(
        default_factory=lambda: CanonicalReport(mode="aggregate")
    )
    case_seeds: list[int] = field(default_factory=list)

    def describe(self) -> str:
        a = self.anomalies
        return (
            f"fuzz: {self.num_cases} adversarial cases x {len(self.systems)} "
            f"systems agree with the oracle (mode={self.conflict_mode}); "
            f"{self.total_updates} raw updates -> {self.total_effective} "
            f"effective over {self.total_batches} batches "
            f"(absorbed {a.duplicate_inserts} dup-insert, "
            f"{a.phantom_deletes} phantom-delete, "
            f"{a.intra_batch_dropped} intra-batch); "
            f"total ΔM = {self.total_delta:+d}"
        )


def fuzz_verify(
    num_cases: int,
    *,
    systems: list[str] | None = None,
    seed: int = 0,
    conflict_mode: str = DEFAULT_CONFLICT_MODE,
    num_batches: int = 4,
    batch_size: int = 16,
    verbose: bool = False,
) -> FuzzReport:
    """Differential stream fuzzing: ``num_cases`` adversarial streams.

    Each case draws a small random labeled graph, a catalog query, and an
    adversarial stream, then runs every system batch-by-batch with the
    brute-force oracle and per-batch store-invariant checks enabled.  Any
    ΔM disagreement, oracle mismatch, classification divergence, or store
    corruption raises :class:`ConsistencyError` annotated with the exact
    case seed so the failure replays deterministically.
    """
    from repro.query import QUERIES

    require(num_cases >= 1, "need at least one fuzz case")
    systems = list(systems or DEFAULT_FUZZ_SYSTEMS)
    report = FuzzReport(
        num_cases=num_cases, systems=systems, conflict_mode=conflict_mode,
    )
    master = np.random.default_rng(seed)
    for case in range(num_cases):
        case_seed = int(master.integers(0, 2**31 - 1))
        report.case_seeds.append(case_seed)
        rng = np.random.default_rng(case_seed)
        # dense enough that the catalog queries have embeddings to gain and
        # lose (ΔM != 0), small enough that the oracle recount stays cheap
        n = int(rng.integers(24, 49))
        avg_degree = float(rng.uniform(6.0, 9.0))
        g0 = generators.erdos_renyi(
            n, avg_degree, num_labels=3, seed=np.random.default_rng(case_seed)
        )
        query = QUERIES[_FUZZ_QUERIES[case % len(_FUZZ_QUERIES)]]
        batches = generate_adversarial_stream(
            g0, num_batches=num_batches, batch_size=batch_size,
            seed=np.random.default_rng(case_seed + 1),
        )
        try:
            case_report = verify_stream(
                systems, g0, query, batches,
                against_oracle=True, seed=case_seed,
                conflict_mode=conflict_mode, check_invariants=True,
            )
        except ConsistencyError as exc:
            raise ConsistencyError(
                f"fuzz case {case} (seed={case_seed}, query={query.name}, "
                f"n={n}): {exc}"
            ) from exc
        report.total_batches += case_report.num_batches
        report.total_delta += case_report.total_delta
        assert case_report.anomalies is not None
        report.anomalies.merge(case_report.anomalies)
        report.total_updates += case_report.anomalies.input_size
        report.total_effective += case_report.anomalies.output_size
        if verbose:
            print(f"  case {case} (seed={case_seed}): {case_report.describe()}")
    return report
