"""RapidFlow-style CPU baseline (paper Sec. VI-A / Fig. 14).

RapidFlow [15] is the state-of-the-art CPU CSM system the paper compares
against.  Its two relevant characteristics are reproduced:

1. **Candidate index + optimized matching order.**  For every query vertex
   ``u`` it maintains the candidate set ``C(u)`` — data vertices with the
   right label and degree ≥ deg_Q(u) — and picks matching orders that bind
   low-|C| query vertices early; during enumeration candidates are pruned
   against ``C(u)``.  That is why it can beat the plain nested-loop CPU
   baseline by up to 7.7x on favorable queries.
2. **Index memory blow-up.**  The index materializes per-query-edge
   candidate adjacency, whose footprint grows with Σ_{v∈C(u)} deg(v) per
   query edge.  On the paper's large graphs this exhausts 512 GB of RAM and
   crashes the system; here the same footprint is computed against a scaled
   ``memory_budget_bytes`` and :class:`IndexMemoryError` is raised — which
   is why Fig. 14 only covers AZ and LJ.

Matching itself reuses the shared executor on the CPU view, with
``filters`` carrying the candidate sets, so counted costs are directly
comparable with every other system.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.engine import BatchResult
from repro.core.frequency import DEFAULT_ESTIMATOR
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    normalize_prefilter,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig, default_device
from repro.query.pattern import WILDCARD_LABEL, QueryGraph
from repro.query.plan import MatchPlan, _build_levels, EdgeVersion
from repro.utils import require

__all__ = ["RapidFlowSystem", "IndexMemoryError", "candidate_index_bytes"]

#: Scaled analog of the paper platform's 512 GB host RAM: large enough for
#: the AZ/LJ analogs' candidate indexes, exceeded by FR/SF3K/SF10K.
DEFAULT_MEMORY_BUDGET_BYTES = 5_000_000


class IndexMemoryError(MemoryError):
    """Candidate-index footprint exceeds the host memory budget.

    The reproduction of "RapidFlow runs out of CPU memory when storing
    candidate vertices on the three large graphs" (Sec. VI-C)."""


def candidate_index_bytes(
    graph: DynamicGraph, query: QueryGraph, candidates: dict[int, np.ndarray]
) -> int:
    """Model of the index footprint: per query edge ``(u, u')`` the index
    stores the candidate adjacency — one entry per (candidate of ``u``,
    neighbor) pair — plus the candidate arrays themselves."""
    degrees = graph.degrees_new()
    total = sum(c.size for c in candidates.values()) * BYTES_PER_NEIGHBOR
    for u, w in query.edges:
        for endpoint in (u, w):
            cand = candidates[endpoint]
            total += int(degrees[cand].sum()) * BYTES_PER_NEIGHBOR
    return total


class RapidFlowSystem:
    """Candidate-indexed CPU CSM (RapidFlow analog)."""

    name = "RapidFlow"
    platform = "cpu"

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        device: DeviceConfig | None = None,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
    ) -> None:
        self.device = device or default_device()
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.executor = executor
        self.conflict_mode = conflict_mode
        # RapidFlow never estimates; recorded for uniform results JSON
        self.estimator_name = estimator
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.memory_budget_bytes = memory_budget_bytes
        self.candidates = self._build_candidates()
        self.index_bytes = candidate_index_bytes(self.graph, query, self.candidates)
        if self.index_bytes > memory_budget_bytes:
            raise IndexMemoryError(
                f"candidate index needs {self.index_bytes} B, budget is "
                f"{memory_budget_bytes} B (graph too large for RapidFlow)"
            )
        self.plans = self._optimized_plans()
        self.batches_processed = 0
        self.total_delta = 0

    # ------------------------------------------------------------------
    def _build_candidates(self) -> dict[int, np.ndarray]:
        """``C(u)`` per query vertex: label match + degree filter."""
        degrees = self.graph.degrees_new()
        labels = self.graph.labels
        out: dict[int, np.ndarray] = {}
        for u in range(self.query.num_vertices):
            mask = degrees >= self.query.degree(u)
            ql = self.query.label(u)
            if ql != WILDCARD_LABEL:
                mask &= labels == ql
            out[u] = np.nonzero(mask)[0].astype(np.int64)
        return out

    def _optimized_plans(self) -> list[MatchPlan]:
        """RapidFlow's matching-order optimization.

        Reuses the plan compiler's level builder with a candidate-aware
        order: connectivity to the bound prefix stays the primary criterion
        (every dropped constraint multiplies the search tree), and among
        equally-connected vertices the one with the *scarcest* candidate set
        is bound first — the index-informed refinement that lets RapidFlow
        beat the plain nested-loop order on selective queries.
        """
        sizes = {u: self.candidates[u].size for u in range(self.query.num_vertices)}
        plans: list[MatchPlan] = []
        for i, (u_a, u_b) in enumerate(self.query.edges):
            order = [u_a, u_b]
            bound = {u_a, u_b}
            while len(order) < self.query.num_vertices:
                best = min(
                    (
                        u
                        for u in range(self.query.num_vertices)
                        if u not in bound and self.query.neighbors(u) & bound
                    ),
                    key=lambda u: (
                        -len(self.query.neighbors(u) & bound),
                        sizes[u],
                        -self.query.degree(u),
                        u,
                    ),
                )
                order.append(best)
                bound.add(best)

            def version(j: int, i: int = i) -> EdgeVersion:
                return EdgeVersion.OLD if j < i else EdgeVersion.NEW

            levels = _build_levels(self.query, order, version)
            plans.append(
                MatchPlan(
                    query=self.query,
                    order=tuple(order),
                    root_edge=(u_a, u_b),
                    root_edge_index=i,
                    levels=levels,
                    delta_index=i,
                )
            )
        return plans

    # ------------------------------------------------------------------
    def _maintain_index(self, batch: UpdateBatch, counters: AccessCounters) -> None:
        """Refresh candidate membership of vertices the batch touched.

        Degree changes can move vertices across the deg ≥ deg_Q(u)
        thresholds; a real implementation patches the index incrementally —
        we recompute membership for the touched set and charge the work.
        """
        touched = sorted(self.graph.touched_vertices)
        if not touched:
            return
        # union degree (pre-batch edges + inserted edges): the degree filter
        # must be a necessary condition for *every* ΔM_i term uniformly —
        # an embedding may mix OLD and NEW edges, so its vertices' incident
        # edges live in G_k ∪ G_{k+1}.  Pruning per-term with a narrower
        # degree would break the IVM cancellation between terms.
        degrees = np.array(
            [self.graph.degree_old(v) + self.graph.delta_neighbors(v).size
             for v in touched],
            dtype=np.int64,
        )
        labels = self.graph.labels
        counters.record_compute(len(touched) * (self.query.num_vertices + 2))
        counters.record_access(
            Channel.CPU_DRAM, int(touched[0]), len(touched) * BYTES_PER_NEIGHBOR
        )
        touched_arr = np.asarray(touched, dtype=np.int64)
        for u in range(self.query.num_vertices):
            ok = degrees >= self.query.degree(u)
            ql = self.query.label(u)
            if ql != WILDCARD_LABEL:
                ok &= labels[touched_arr] == ql
            now_in = touched_arr[ok]
            cand = self.candidates[u]
            keep = cand[~np.isin(cand, touched_arr, assume_unique=False)]
            self.candidates[u] = np.union1d(keep, now_in)
        self.index_bytes = candidate_index_bytes(self.graph, self.query, self.candidates)
        if self.index_bytes > self.memory_budget_bytes:
            raise IndexMemoryError(
                f"candidate index grew to {self.index_bytes} B over budget"
            )

    def process_batch(self, batch: UpdateBatch) -> BatchResult:
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        raw_len = len(batch)  # the CPU scans (and classifies) every raw update
        batch = graph.apply_batch(batch, mode=self.conflict_mode)
        upd = AccessCounters()
        avg_deg = max(2.0, 2.0 * graph.num_edges / max(1, graph.num_vertices))
        upd.record_compute(raw_len * int(2 * (1 + math.log2(avg_deg))))
        self._maintain_index(batch, upd)
        breakdown.update_ns = simulated_time_ns(upd, self.device, platform="cpu")

        decision = None
        if self.prefilter_index is not None:
            pc = self.prefilter_index.apply_batch(batch)
            decision = self.prefilter_index.evaluate(self.plans, batch)
            pc.merge(decision.counters)
            breakdown.prefilter_ns = simulated_time_ns(pc, self.device, platform="cpu")
            if decision.skip_batch:
                reorg = graph.reorganize()
                rc = AccessCounters()
                rc.record_compute(reorg.merged_elements + reorg.lists_touched)
                rc.record_access(
                    Channel.CPU_DRAM, 0, reorg.merged_elements * BYTES_PER_NEIGHBOR
                )
                breakdown.reorg_ns = simulated_time_ns(rc, self.device, platform="cpu")
                self.prefilter_index.close_batch()
                self.batches_processed += 1
                return BatchResult(
                    delta_count=0,
                    match_stats=MatchStats(roots_skipped=decision.roots_total),
                    breakdown=breakdown,
                    match_counters=AccessCounters(),
                    estimation=None,
                    cached_vertices=np.empty(0, dtype=np.int64),
                    cache_bytes=self.index_bytes,
                    cache_hits=0,
                    cache_misses=0,
                    conflicts=graph.last_canonical_report,
                    prefilter=decision.to_stats(breakdown.prefilter_ns),
                )

        from repro.gpu.views import HostCPUView

        match_counters = AccessCounters()
        view = HostCPUView(graph, self.device, match_counters)
        # RapidFlow's own candidate filters shrink the roots before the
        # prefilter, so the decision's precomputed masks would misalign —
        # hand the live index instead (its masker recomputes per call)
        stats = match_batch(
            self.plans, batch, view, filters=self.candidates,
            prefilter=self.prefilter_index, executor=self.executor,
        )
        breakdown.match_ns = simulated_time_ns(match_counters, self.device, platform="cpu")

        reorg = graph.reorganize()
        rc = AccessCounters()
        rc.record_compute(reorg.merged_elements + reorg.lists_touched)
        rc.record_access(Channel.CPU_DRAM, 0, reorg.merged_elements * BYTES_PER_NEIGHBOR)
        breakdown.reorg_ns = simulated_time_ns(rc, self.device, platform="cpu")
        if self.prefilter_index is not None:
            self.prefilter_index.close_batch()

        self.batches_processed += 1
        self.total_delta += stats.signed_count
        prefilter_stats = None
        if decision is not None:
            # report the drops the kernel actually saw (the candidate
            # filters already removed some certified-skippable roots)
            prefilter_stats = decision.to_stats(breakdown.prefilter_ns)
            prefilter_stats.roots_skipped = stats.roots_skipped
        return BatchResult(
            delta_count=stats.signed_count,
            match_stats=stats,
            breakdown=breakdown,
            match_counters=match_counters,
            estimation=None,
            cached_vertices=np.empty(0, dtype=np.int64),
            cache_bytes=self.index_bytes,
            cache_hits=0,
            cache_misses=0,
            conflicts=graph.last_canonical_report,
            prefilter=prefilter_stats,
        )

    def snapshot(self) -> StaticGraph:
        return self.graph.snapshot()
