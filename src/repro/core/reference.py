"""Brute-force reference matcher (correctness oracle).

A plain backtracking subgraph-isomorphism enumerator over
:class:`~repro.graphs.static_graph.StaticGraph`, independent of the plan
compiler and the view machinery.  It defines the ground truth the entire
incremental pipeline is validated against: for any batch,

    signed ΔM  ==  count(G_{k+1}) − count(G_k)

where both counts come from this module.  Counts are *embeddings*
(injective label-preserving homomorphisms); divide by ``|Aut(Q)|`` for
distinct subgraphs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.attributes import edge_weight
from repro.graphs.static_graph import StaticGraph
from repro.query.pattern import WILDCARD_LABEL, QueryGraph

__all__ = ["count_embeddings", "find_embeddings"]


def _label_ok(query: QueryGraph, u: int, data_label: int) -> bool:
    ql = query.label(u)
    return ql == WILDCARD_LABEL or ql == data_label


def _predicate_ok(
    query: QueryGraph, assignment: dict[int, int], u: int, v: int, attributes
) -> bool:
    """Check every predicated query edge (u, w) with w already assigned.

    Each query edge is validated exactly once per embedding: when its later
    endpoint (in the matching order) is bound.
    """
    for w in query.neighbors(u):
        if w in assignment:
            bounds = query.edge_predicate(u, w)
            if bounds is not None:
                wt = (attributes.weight(assignment[w], v) if attributes is not None
                      else edge_weight(assignment[w], v))
                if not (bounds[0] <= wt <= bounds[1]):
                    return False
    return True


def _order_by_connectivity(query: QueryGraph) -> list[int]:
    """Connected matching order starting from a max-degree vertex."""
    start = max(range(query.num_vertices), key=query.degree)
    order = [start]
    seen = {start}
    while len(order) < query.num_vertices:
        best = max(
            (u for u in range(query.num_vertices) if u not in seen
             and query.neighbors(u) & seen),
            key=lambda u: (len(query.neighbors(u) & seen), query.degree(u)),
        )
        order.append(best)
        seen.add(best)
    return order


def find_embeddings(
    graph: StaticGraph, query: QueryGraph, *, limit: int | None = None,
    attributes=None,
) -> list[tuple[int, ...]]:
    """Enumerate embeddings as tuples indexed by query vertex.

    ``limit`` caps the number returned (handy for existence checks).
    ``attributes`` optionally overrides the hash edge weights used for the
    query's weight predicates.
    """
    check_preds = query.has_predicates()
    order = _order_by_connectivity(query)
    n = query.num_vertices
    assignment: dict[int, int] = {}
    used: set[int] = set()
    out: list[tuple[int, ...]] = []

    def candidates(u: int) -> np.ndarray:
        anchors = [w for w in query.neighbors(u) if w in assignment]
        if not anchors:
            return np.arange(graph.num_vertices)
        cand = graph.neighbors(assignment[anchors[0]])
        for w in anchors[1:]:
            cand = np.intersect1d(cand, graph.neighbors(assignment[w]), assume_unique=True)
        return cand

    def backtrack(depth: int) -> bool:
        if depth == n:
            out.append(tuple(assignment[u] for u in range(n)))
            return limit is not None and len(out) >= limit
        u = order[depth]
        for v in candidates(u).tolist():
            if v in used:
                continue
            if not _label_ok(query, u, graph.label(v)):
                continue
            if check_preds and not _predicate_ok(query, assignment, u, v, attributes):
                continue
            assignment[u] = v
            used.add(v)
            if backtrack(depth + 1):
                return True
            used.remove(v)
            del assignment[u]
        return False

    backtrack(0)
    return out


def count_embeddings(graph: StaticGraph, query: QueryGraph, *, attributes=None) -> int:
    """Number of embeddings of ``query`` in ``graph``."""
    check_preds = query.has_predicates()
    order = _order_by_connectivity(query)
    n = query.num_vertices
    assignment: dict[int, int] = {}
    used: set[int] = set()

    def backtrack(depth: int) -> int:
        if depth == n:
            return 1
        u = order[depth]
        anchors = [w for w in query.neighbors(u) if w in assignment]
        if anchors:
            cand = graph.neighbors(assignment[anchors[0]])
            for w in anchors[1:]:
                cand = np.intersect1d(cand, graph.neighbors(assignment[w]),
                                      assume_unique=True)
        else:
            cand = np.arange(graph.num_vertices)
        total = 0
        for v in cand.tolist():
            if v in used:
                continue
            if not _label_ok(query, u, graph.label(v)):
                continue
            if check_preds and not _predicate_ok(query, assignment, u, v, attributes):
                continue
            assignment[u] = v
            used.add(v)
            total += backtrack(depth + 1)
            used.remove(v)
            del assignment[u]
        return total

    return backtrack(0)
