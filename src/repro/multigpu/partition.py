"""Graph partitioners: which shard owns each vertex.

Ownership drives two things in the sharded pipeline:

* **root routing** — a directed root delta edge ``(x_a, x_b)`` is matched by
  the shard owning ``x_a``, so the owner map is also the work distribution;
* **cache placement** — each shard caches only the hot lists it owns, so a
  read of a remote shard's cached list crosses the peer interconnect
  (:data:`repro.gpu.counters.Channel.PEER`).

Four strategies are provided:

* :class:`HashPartitioner` — multiplicative-hash the vertex id.  Balanced
  and oblivious: neighbors land on random shards, so ``(N-1)/N`` of all
  cached-list reads are remote.
* :class:`RangePartitioner` — contiguous vertex-id ranges balanced by
  degree mass.  Captures id-locality when the graph has it (road networks);
  on shuffled social graphs it behaves like hash.
* :class:`FrequencyPartitioner` — frequency-aware: uses the Sec. IV
  random-walk estimates to find the hot vertices (exactly the ones every
  shard will cache) and re-homes each one onto the shard that already owns
  the plurality of its neighbors.  Roots are delta edges, so the shard
  processing a root owns one endpoint — co-locating a hot list with its
  neighborhood converts PEER reads into local ``GPU_GLOBAL`` reads.  Cold
  vertices keep their hash home, which keeps root routing balanced.
* :class:`MincutPartitioner` — balance-constrained min-cut over the
  batch's **reader graph**: roots read the cached lists around their own
  endpoints, so the partitioner links each root's owner-designating
  endpoint to the hot vertices within one hop, weights each link by the
  target's list bytes, and partitions *that* graph — Fennel-style
  streaming (strongest reader-graph vertices first, load-penalized shard
  scores, hard ``balance_slack`` work cap) plus bounded label-propagation
  refinement accepting only cut-reducing, balance-respecting passes.
  Without batch roots it falls back to a chunked stream + refinement over
  the full adjacency with hotness-weighted edge prices.

The placement never changes results (roots are a disjoint cover and
per-root work is placement-independent) — only where the bytes flow.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "FrequencyPartitioner",
    "MincutPartitioner",
    "adjacency_csr",
    "weighted_cut",
    "refine_labels",
    "make_partitioner",
    "PARTITIONER_NAMES",
]

#: Knuth's multiplicative hash constant (2^32 / phi), mod 2^32.
_HASH_MULT = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFFFFFF)


def _hash_owners(num_vertices: int, num_devices: int) -> np.ndarray:
    ids = np.arange(num_vertices, dtype=np.uint64)
    mixed = (ids * _HASH_MULT) & _HASH_MASK
    return (mixed % np.uint64(num_devices)).astype(np.int64)


def adjacency_csr(graph: DynamicGraph) -> tuple[np.ndarray, np.ndarray, int]:
    """Post-batch adjacency of every vertex as ``(rowptr, cols, ops)``.

    One bulk gather over :meth:`DynamicGraph.packed_runs` with the deletion
    marks dropped — no per-vertex Python merges (``csr_new`` sorts each
    list; the partitioners only ever bincount over rows, so the unsorted
    run order is irrelevant).  ``ops`` is the host work performed (entries
    touched), for :meth:`AccessCounters.record_compute` charging.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64), 0
    _, total_len, views = graph.packed_runs(np.arange(n, dtype=np.int64))
    flat = (
        np.concatenate(views) if views else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    rows = np.repeat(np.arange(n, dtype=np.int64), total_len)
    keep = flat >= 0
    flat = flat[keep]
    rows = rows[keep]
    counts = np.bincount(rows, minlength=n)
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    return rowptr, flat, int(total_len.sum()) + n


def weighted_cut(
    rowptr: np.ndarray, cols: np.ndarray, owner: np.ndarray, weight: np.ndarray
) -> tuple[float, float]:
    """``(cut_weight, total_weight)`` of the directed CSR under ``owner``.

    Each directed edge ``(u, v)`` is priced ``1 + weight[u] + weight[v]``:
    the hotter the endpoints, the likelier the list read crosses the peer
    link when the edge is cut.  Undirected edges appear twice (both
    directions), which cancels in every ratio the callers take.
    """
    rows = np.repeat(np.arange(rowptr.size - 1, dtype=np.int64), np.diff(rowptr))
    ew = 1.0 + weight[rows] + weight[cols]
    return float(ew[owner[rows] != owner[cols]].sum()), float(ew.sum())


def refine_labels(
    rowptr: np.ndarray,
    cols: np.ndarray,
    owner: np.ndarray,
    weight: np.ndarray,
    dmass: np.ndarray,
    num_devices: int,
    cap: float,
    *,
    passes: int = 4,
    move_cost: np.ndarray | None = None,
    horizon: float = 0.0,
) -> tuple[np.ndarray, int, int, float, float]:
    """Bounded label-propagation refinement of an owner map.

    Per pass every vertex votes for the shard owning the plurality of its
    hotness-weighted edges; gain-positive relabels are applied strongest
    gain first (ties to the lower vertex id) while the receiving shard's
    degree-mass stays under ``cap``, and the pass is kept only if the
    weighted cut actually went down — otherwise it is reverted and the
    search stops.  Deterministic: stable orderings, no RNG.

    ``move_cost``/``horizon`` add the online-repartitioning payback filter:
    vertex ``v`` is only a candidate when ``gain(v) * horizon >=
    move_cost[v]`` (its per-pass cut-weight gain must repay the migration
    bytes within the horizon).

    Returns ``(owner, ops, moved, cut_before, cut_after)``.
    """
    owner = owner.astype(np.int64, copy=True)
    n = owner.size
    k = num_devices
    if n == 0 or cols.size == 0 or passes <= 0 or k <= 1:
        cut0 = weighted_cut(rowptr, cols, owner, weight)[0] if cols.size else 0.0
        return owner, cols.size, 0, cut0, cut0
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(rowptr))
    ew = 1.0 + weight[rows] + weight[cols]
    ops = 2 * cols.size

    def cut_of(o: np.ndarray) -> float:
        return float(ew[o[rows] != o[cols]].sum())

    best_cut = cut_of(owner)
    cut_before = best_cut
    moved_total = 0
    idx = np.arange(n)
    for _ in range(passes):
        votes = np.zeros((n, k), dtype=np.float64)
        np.add.at(votes, (rows, owner[cols]), ew)
        ops += 3 * cols.size
        cur = votes[idx, owner]
        masked = votes
        masked[idx, owner] = -np.inf
        alt = np.argmax(masked, axis=1).astype(np.int64)
        gain = masked[idx, alt] - cur
        cand = gain > 0.0
        if move_cost is not None:
            cand &= gain * horizon >= move_cost
        movers = np.nonzero(cand)[0]
        if movers.size == 0:
            break
        morder = movers[np.lexsort((movers, -gain[movers]))]
        load = np.bincount(owner, weights=dmass, minlength=k)
        room = np.maximum(cap - load, 0.0)  # conservative: leavers not credited
        tgt = alt[morder]
        accepted = np.zeros(morder.size, dtype=bool)
        for s in range(k):
            rows_s = np.nonzero(tgt == s)[0]
            if rows_s.size == 0:
                continue
            cum = np.cumsum(dmass[morder[rows_s]])
            accepted[rows_s[cum <= room[s]]] = True
        acc = morder[accepted]
        ops += n + morder.size
        if acc.size == 0:
            break
        # Applying every gain-positive move at once oscillates for k > 2
        # (all votes were taken against the *old* map), so back off by
        # halving to the strongest-gain prefix until the cut drops.  Any
        # subset of the accepted set stays under the per-shard caps.
        trial = trial_cut = None
        while acc.size:
            trial = owner.copy()
            trial[acc] = alt[acc]
            trial_cut = cut_of(trial)
            ops += cols.size
            if trial_cut < best_cut:
                break
            acc = acc[: acc.size // 2]
        if acc.size == 0:
            break  # even the single best move does not reduce the cut
        owner = trial
        best_cut = trial_cut
        moved_total += int(acc.size)
    return owner, ops, moved_total, cut_before, best_cut


class Partitioner(ABC):
    """Strategy assigning every vertex to one of ``num_devices`` shards."""

    name: str = "abstract"
    #: whether :meth:`assign` wants the random-walk frequency estimates
    requires_frequencies: bool = False

    @abstractmethod
    def assign(
        self,
        graph: DynamicGraph,
        frequencies: np.ndarray | None,
        num_devices: int,
        counters: AccessCounters | None = None,
        *,
        roots: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return ``int64[num_vertices]`` owner ids in ``[0, num_devices)``.

        ``counters``, when given, receives the host-side compute cost of
        producing the assignment (priced into the pack phase).

        ``roots``, when given, is the batch's effective root delta edges
        (``int[num_roots, 2]``) — the actual read workload of the batch.
        Partitioners that model reader traffic directly (mincut) use it;
        the others ignore it.
        """

    def options(self) -> dict:
        """Resolved tuning knobs, recorded in the harness/results JSON."""
        return {}


class HashPartitioner(Partitioner):
    """Owner = multiplicative hash of the vertex id, mod N."""

    name = "hash"

    def assign(self, graph, frequencies, num_devices, counters=None, *, roots=None):
        if counters is not None:
            counters.record_compute(graph.num_vertices)
        return _hash_owners(graph.num_vertices, num_devices)


class RangePartitioner(Partitioner):
    """Contiguous id ranges, boundaries placed to balance degree mass."""

    name = "range"

    def assign(self, graph, frequencies, num_devices, counters=None, *, roots=None):
        n = graph.num_vertices
        degrees = graph.degrees_new().astype(np.float64)
        if counters is not None:
            counters.record_compute(2 * n)
        total = degrees.sum()
        if total <= 0:
            # empty graph: plain id ranges
            return np.minimum(
                (np.arange(n, dtype=np.int64) * num_devices) // max(1, n),
                num_devices - 1,
            )
        cumulative = np.cumsum(degrees)
        targets = total * (np.arange(1, num_devices, dtype=np.float64) / num_devices)
        bounds = np.searchsorted(cumulative, targets)
        return np.searchsorted(bounds, np.arange(n, dtype=np.int64), side="right").astype(
            np.int64
        )


class FrequencyPartitioner(Partitioner):
    """Frequency-aware clustering: hot vertices pull their neighborhoods.

    Hot = vertices the random walks sampled (estimate > 0) — the same set
    the frequency cache policy will select, i.e. exactly the lists whose
    placement decides how much traffic crosses the interconnect.  A read of
    hot list ``v`` is issued by the shard owning the root endpoint, and
    roots land on arbitrary vertices of ``v``'s neighborhood — so moving
    only ``v`` barely helps (the readers stay scattered).  Instead, each hot
    vertex (hottest first) pulls itself *and its still-unclaimed neighbors*
    onto one shard, chosen by current plurality among the group.  Roots
    rooted anywhere in that neighborhood then read ``v`` locally.

    A degree-mass load cap (``balance_slack`` over the perfect share) stops
    the hottest hubs from collapsing the graph onto one shard, which would
    trade PEER traffic for a straggler.  Cold vertices keep their hash home;
    with no estimates available (degree policy, cold start) the result is
    plain hash.
    """

    name = "freq"
    requires_frequencies = True

    def __init__(self, balance_slack: float = 0.25) -> None:
        self.balance_slack = float(balance_slack)

    def options(self) -> dict:
        return {"balance_slack": self.balance_slack}

    def assign(self, graph, frequencies, num_devices, counters=None, *, roots=None):
        n = graph.num_vertices
        owners = _hash_owners(n, num_devices)
        if counters is not None:
            counters.record_compute(n)
        if frequencies is None or num_devices == 1:
            return owners
        hot = np.nonzero(frequencies[:n] > 0)[0]
        if hot.size == 0:
            return owners
        order = np.argsort(-frequencies[hot], kind="stable")
        hot = hot[order]

        degrees = graph.degrees_new().astype(np.int64)
        load = np.bincount(owners, weights=degrees, minlength=num_devices)
        cap = (1.0 + self.balance_slack) * degrees.sum() / num_devices
        claimed = np.zeros(n, dtype=bool)

        # One bulk gather replaces the per-vertex ``neighbors_new`` merges:
        # the raw packed runs minus deletion marks are the same *set* of
        # neighbors, and every consumer below (integer-weighted bincount
        # votes, boolean claims) is order-independent — so the claiming
        # loop is bit-identical to :meth:`assign_reference`.
        _, total_len, views = graph.packed_runs(hot)
        flat = (
            np.concatenate(views) if views else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        bounds = np.zeros(hot.size + 1, dtype=np.int64)
        np.cumsum(total_len, out=bounds[1:])

        ops = n
        for i, v in enumerate(hot.tolist()):
            if claimed[v]:
                continue
            run = flat[bounds[i]:bounds[i + 1]]
            nbrs = run[run >= 0]
            ops += nbrs.size + 1
            group = nbrs[~claimed[nbrs]]
            group = np.append(group, v)
            votes = np.bincount(owners[group], weights=degrees[group] + 1,
                                minlength=num_devices)
            target = int(np.argmax(votes))
            movers = group[owners[group] != target]
            moved_mass = int(degrees[movers].sum())
            if load[target] + moved_mass > cap:
                claimed[v] = True
                continue
            np.subtract.at(load, owners[movers], degrees[movers])
            load[target] += moved_mass
            owners[group] = target
            claimed[group] = True
        if counters is not None:
            counters.record_compute(ops)
        return owners

    def assign_reference(self, graph, frequencies, num_devices, counters=None,
                         *, roots=None):
        """Scalar parity oracle: the original per-hot-vertex loop.

        Kept verbatim (one ``neighbors_new`` merge per hot vertex) so tests
        can assert the vectorized :meth:`assign` reproduces its owner map
        and charged ops bit-for-bit.
        """
        n = graph.num_vertices
        owners = _hash_owners(n, num_devices)
        if counters is not None:
            counters.record_compute(n)
        if frequencies is None or num_devices == 1:
            return owners
        hot = np.nonzero(frequencies[:n] > 0)[0]
        if hot.size == 0:
            return owners
        order = np.argsort(-frequencies[hot], kind="stable")
        hot = hot[order]

        degrees = graph.degrees_new().astype(np.int64)
        load = np.bincount(owners, weights=degrees, minlength=num_devices)
        cap = (1.0 + self.balance_slack) * degrees.sum() / num_devices
        claimed = np.zeros(n, dtype=bool)
        ops = n
        for v in hot.tolist():
            if claimed[v]:
                continue
            nbrs = graph.neighbors_new(v)
            ops += nbrs.size + 1
            group = nbrs[~claimed[nbrs]]
            group = np.append(group, v)
            votes = np.bincount(owners[group], weights=degrees[group] + 1,
                                minlength=num_devices)
            target = int(np.argmax(votes))
            movers = group[owners[group] != target]
            moved_mass = int(degrees[movers].sum())
            if load[target] + moved_mass > cap:
                claimed[v] = True
                continue
            np.subtract.at(load, owners[movers], degrees[movers])
            load[target] += moved_mass
            owners[group] = target
            claimed[group] = True
        if counters is not None:
            counters.record_compute(ops)
        return owners


class MincutPartitioner(Partitioner):
    """Balance-constrained min-cut over the *reader graph* of the batch.

    The quantity a partitioner can actually change is PEER bytes, and those
    flow through a very specific structure: root delta edge ``(a, b)`` is
    matched by the shard owning ``a``, and while matching it reads the
    *cached* (hot) adjacency lists in the immediate vicinity of the root —
    empirically the hot vertices within one hop of either endpoint.  A read
    is remote exactly when ``owner[a] != owner[t]`` for target list ``t``.
    The true objective is therefore a **bipartite reader graph**: reader
    vertices (the roots' first endpoints) joined to hot target vertices,
    each incidence weighted by the target's list size — *not* the global
    adjacency cut, which optimizes co-location of all edges when only a few
    hundred root neighborhoods ever generate traffic.

    Given the batch's ``roots``, the partitioner:

    1. **builds the reader graph** — for every root ``(a, b)``, reader ``a``
       is linked to each hot vertex in ``{a, b} ∪ N(a) ∪ N(b)``, with edge
       weight ``deg(t)`` (the bytes of ``t``'s list) accumulated over roots
       (all one bulk gather + ``np.unique`` aggregation);
    2. **streams it Fennel-style** — reader-graph vertices are placed
       strongest-first (sum of incident weight desc), each choosing the
       shard maximizing ``affinity/max_affinity - load_weight·load/target``
       among shards whose *work load* stays under the hard cap
       ``(1 + balance_slack) · total_work / N`` (work = the read bytes a
       reader's roots will issue — the real match-time distribution);
    3. **refines by label propagation** — bounded to ``refine_passes``,
       strongest gains first, per-shard cap enforced, a pass kept only if
       the weighted cut strictly drops;
    4. **scatters** the placement over the hash base map: every vertex
       outside the reader graph keeps its hash home, so root routing of the
       cold fringe stays balanced.

    Every accepted load is below the cap except spills to the least-loaded
    shard, so ``max_load <= cap + max_vertex_work`` — the same guarantee
    the freq partitioner gives.

    With no ``roots`` (or no frequency estimates) it falls back to a
    chunked Fennel stream + :func:`refine_labels` on the full adjacency
    with hotness-weighted edge prices — the best available proxy when the
    batch workload is unknown.
    """

    name = "mincut"
    requires_frequencies = True

    def __init__(
        self,
        balance_slack: float = 0.15,
        refine_passes: int = 4,
        chunk: int = 1024,
        load_weight: float = 0.5,
        root_slack: float = 0.4,
    ) -> None:
        self.balance_slack = float(balance_slack)
        self.refine_passes = int(refine_passes)
        self.chunk = int(chunk)
        self.load_weight = float(load_weight)
        self.root_slack = float(root_slack)

    def options(self) -> dict:
        return {
            "balance_slack": self.balance_slack,
            "refine_passes": self.refine_passes,
            "chunk": self.chunk,
            "load_weight": self.load_weight,
            "root_slack": self.root_slack,
        }

    def assign(self, graph, frequencies, num_devices, counters=None, *, roots=None):
        n = graph.num_vertices
        hash_home = _hash_owners(n, num_devices)
        ops = n
        if num_devices == 1 or n == 0:
            if counters is not None:
                counters.record_compute(ops)
            return hash_home
        rowptr, cols, csr_ops = adjacency_csr(graph)
        ops += csr_ops
        degrees = np.diff(rowptr)
        dmass = degrees.astype(np.float64)
        total = float(dmass.sum())
        if total <= 0.0 or cols.size == 0:
            if counters is not None:
                counters.record_compute(ops)
            return hash_home
        k = num_devices
        if roots is not None and frequencies is not None:
            roots = np.asarray(roots)
            if roots.ndim == 2 and roots.shape[0] > 0 and roots.shape[1] >= 2:
                hot = np.asarray(frequencies[:n], dtype=np.float64) > 0
                if hot.any():
                    owner, reader_ops = self._assign_reader(
                        n, hash_home, rowptr, cols, dmass, hot, roots, k
                    )
                    ops += reader_ops
                    if owner is not None:
                        if counters is not None:
                            counters.record_compute(int(ops))
                        return owner
        target = total / k
        cap = (1.0 + self.balance_slack) * target

        weight = self._weights(frequencies, n, dmass)
        if frequencies is not None:
            freqs = np.asarray(frequencies[:n], dtype=np.float64)
            order = np.lexsort((np.arange(n), -dmass, -freqs))
        else:
            order = np.lexsort((np.arange(n), -dmass))
        ops += 3 * n

        owner = np.full(n, -1, dtype=np.int64)
        load = np.zeros(k, dtype=np.float64)
        chunk = max(1, self.chunk)
        for start in range(0, n, chunk):
            ops += self._place_chunk(
                order[start:start + chunk], rowptr, cols, owner, hash_home,
                weight, dmass, load, cap, target, k,
            )
        owner, refine_ops, _, _, _ = refine_labels(
            rowptr, cols, owner, weight, dmass, k, cap,
            passes=self.refine_passes,
        )
        ops += refine_ops
        if counters is not None:
            counters.record_compute(int(ops))
        return owner

    @staticmethod
    def _weights(frequencies, n: int, dmass: np.ndarray) -> np.ndarray:
        """Hotness weight per vertex: degree mass of cache candidates."""
        if frequencies is None:
            return dmass
        return dmass * (np.asarray(frequencies[:n], dtype=np.float64) > 0)

    def _place_chunk(
        self, chunk, rowptr, cols, owner, hash_home, weight, dmass, load,
        cap, target, k,
    ) -> int:
        """Place one stream chunk in place (mutates owner/load); returns ops."""
        m = chunk.size
        starts = rowptr[chunk]
        lens = rowptr[chunk + 1] - starts
        total_c = int(lens.sum())
        votes = np.zeros((m, k), dtype=np.float64)
        if total_c:
            offs = np.zeros(m, dtype=np.int64)
            np.cumsum(lens[:-1], out=offs[1:])
            flat = np.arange(total_c, dtype=np.int64) + np.repeat(starts - offs, lens)
            nbrs = cols[flat]
            rows = np.repeat(np.arange(m, dtype=np.int64), lens)
            nown = owner[nbrs]
            placed = nown >= 0
            if placed.any():
                ew = 1.0 + weight[nbrs[placed]] + weight[chunk[rows[placed]]]
                np.add.at(votes, (rows[placed], nown[placed]), ew)
        vmax = votes.max(axis=1, keepdims=True)
        score = votes / np.where(vmax > 0.0, vmax, 1.0)
        score -= self.load_weight * (load / max(target, 1.0))[None, :]
        feasible = (load[None, :] + dmass[chunk][:, None]) <= cap
        score = np.where(feasible, score, -np.inf)
        tgt = np.argmax(score, axis=1).astype(np.int64)
        # no placed neighbor: keep the hash home while it fits
        ridx = np.arange(m)
        novote = vmax[:, 0] <= 0.0
        home = hash_home[chunk]
        tgt = np.where(novote & feasible[ridx, home], home, tgt)
        # no feasible shard at chunk-start loads: spill handling below
        tgt[~feasible.any(axis=1)] = -1
        # enforce the cap *within* the chunk: accept additions per shard in
        # stream order until the cap is hit, spill the rest
        for s in range(k):
            rows_s = np.nonzero(tgt == s)[0]
            if rows_s.size == 0:
                continue
            cum = load[s] + np.cumsum(dmass[chunk[rows_s]])
            over = rows_s[cum > cap]
            if over.size:
                tgt[over] = -1
        spill = np.nonzero(tgt < 0)[0].tolist()
        ok = tgt >= 0
        owner[chunk[ok]] = tgt[ok]
        load += np.bincount(tgt[ok], weights=dmass[chunk[ok]], minlength=k)
        # spilled vertices go to the least-loaded shard (stream order);
        # min load <= total/N <= cap, so the overshoot is bounded by one
        # vertex's degree — the same guarantee the freq partitioner gives
        for r in spill:
            s = int(np.argmin(load))
            owner[chunk[r]] = s
            load[s] += dmass[chunk[r]]
        return total_c + 2 * m * k

    # -- reader-graph path -------------------------------------------------

    def _assign_reader(self, n, hash_home, rowptr, cols, dmass, hot, roots, k):
        """Owner map from the batch's reader graph; ``(map | None, ops)``."""
        built = self._reader_graph(n, rowptr, cols, dmass, hot, roots)
        if built is None:
            return None, rowptr[-1]
        rg_rowptr, rg_cols, rg_w, work, is_reader, verts, ops = built
        owner, load, rload, cap, rcap, stream_ops = self._stream_reader(
            rg_rowptr, rg_cols, rg_w, work, is_reader, k
        )
        owner, refine_ops = self._refine_reader(
            rg_rowptr, rg_cols, rg_w, work, is_reader, owner, load, rload,
            k, cap, rcap,
        )
        full = hash_home.copy()
        full[verts] = owner
        return full, ops + stream_ops + refine_ops + n

    @staticmethod
    def _reader_graph(n, rowptr, cols, dmass, hot, roots):
        """Bipartite reader graph as a symmetric CSR in compact id space.

        Returns ``(rg_rowptr, rg_cols, rg_w, work, is_reader, verts, ops)``
        or ``None`` when no root touches a hot list.  ``verts`` maps compact
        ids back to graph ids; ``work[i]`` is the read-byte mass vertex
        ``i``'s roots will issue (its match-time share), plus its own degree
        when it is a reader; ``is_reader`` flags the vertices that route
        roots (used by the secondary root-count balance cap).
        """
        reader = roots[:, 0].astype(np.int64)
        eid = np.arange(roots.shape[0], dtype=np.int64)
        rdr_parts, tgt_parts, eid_parts = [], [], []
        ops = 0
        for c in (0, 1):
            x = roots[:, c].astype(np.int64)
            keep = hot[x]
            rdr_parts.append(reader[keep])
            tgt_parts.append(x[keep])
            eid_parts.append(eid[keep])
            cnt = rowptr[x + 1] - rowptr[x]
            tot = int(cnt.sum())
            ops += tot + x.size
            if tot:
                offs = np.zeros(x.size, dtype=np.int64)
                np.cumsum(cnt[:-1], out=offs[1:])
                flat = cols[
                    np.arange(tot, dtype=np.int64)
                    + np.repeat(rowptr[x] - offs, cnt)
                ]
                keep = hot[flat]
                rdr_parts.append(np.repeat(reader, cnt)[keep])
                tgt_parts.append(flat[keep])
                eid_parts.append(np.repeat(eid, cnt)[keep])
        rdr = np.concatenate(rdr_parts)
        tgt = np.concatenate(tgt_parts)
        ed = np.concatenate(eid_parts)
        if rdr.size == 0:
            return None
        # one incidence per (root edge, target): a target reachable from
        # both endpoints is still read once per root
        stride = np.int64(n) + 1
        _, first = np.unique(ed * stride + tgt, return_index=True)
        rdr, tgt = rdr[first], tgt[first]
        keep = rdr != tgt
        rdr, tgt = rdr[keep], tgt[keep]
        ops += 2 * ed.size
        if rdr.size == 0:
            return None
        # aggregate to weighted (reader, target) edges
        keys, inv = np.unique(rdr * stride + tgt, return_inverse=True)
        w = np.zeros(keys.size, dtype=np.float64)
        np.add.at(w, inv, dmass[tgt])
        ur = (keys // stride).astype(np.int64)
        ut = (keys % stride).astype(np.int64)
        # compact vertex space + symmetric CSR
        verts = np.unique(np.concatenate([ur, ut]))
        ri = np.searchsorted(verts, ur)
        ti = np.searchsorted(verts, ut)
        m = verts.size
        u = np.concatenate([ri, ti])
        v = np.concatenate([ti, ri])
        ew = np.concatenate([w, w])
        order = np.argsort(u, kind="stable")
        u, v, ew = u[order], v[order], ew[order]
        rg_rowptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(rg_rowptr, u + 1, 1)
        rg_rowptr = np.cumsum(rg_rowptr)
        work = np.zeros(m, dtype=np.float64)
        np.add.at(work, ri, w)
        is_reader = np.isin(verts, np.unique(reader))
        work[is_reader] += dmass[verts[is_reader]]
        ops += 6 * keys.size + 2 * m
        return rg_rowptr, v, ew, work, is_reader, verts, ops

    def _stream_reader(self, rg_rowptr, rg_cols, rg_w, work, is_reader, k):
        """Sequential Fennel stream over the reader graph, strongest first.

        The reader graph is small (hot vicinity of one batch's roots) and
        hub-dominated, so each placement must see the previous ones —
        chunked snapshot placement measurably degrades the cut here.  The
        per-vertex shard scoring stays vectorized over ``k``.

        Two hard caps per shard: read-work mass (``cap``) keeps the match
        time balanced, reader count (``rcap``) keeps root routing balanced
        (one reader = one routed root group).  A vertex with no feasible
        shard spills to the least-loaded one, so the overshoot is bounded by
        a single vertex's mass.
        """
        m = work.size
        counts = np.diff(rg_rowptr)
        strength = np.zeros(m, dtype=np.float64)
        np.add.at(strength, np.repeat(np.arange(m, dtype=np.int64), counts), rg_w)
        order = np.lexsort((np.arange(m), -strength))
        total = float(work.sum())
        target = max(total / k, 1.0)
        cap = (1.0 + self.balance_slack) * total / k
        n_readers = int(is_reader.sum())
        rcap = (1.0 + self.root_slack) * n_readers / k
        owner = np.full(m, -1, dtype=np.int64)
        load = np.zeros(k, dtype=np.float64)
        rload = np.zeros(k, dtype=np.float64)
        for v in order.tolist():
            nb = rg_cols[rg_rowptr[v]:rg_rowptr[v + 1]]
            wn = rg_w[rg_rowptr[v]:rg_rowptr[v + 1]]
            votes = np.zeros(k, dtype=np.float64)
            placed = owner[nb] >= 0
            if placed.any():
                np.add.at(votes, owner[nb[placed]], wn[placed])
            score = votes / max(float(votes.max()), 1.0)
            score -= self.load_weight * load / target
            feasible = load + work[v] <= cap
            if is_reader[v]:
                feasible &= rload + 1.0 <= rcap
            score[~feasible] = -np.inf
            if feasible.any():
                s = int(np.argmax(score))
            else:
                s = int(np.argmin(rload if is_reader[v] else load))
            owner[v] = s
            load[s] += work[v]
            if is_reader[v]:
                rload[s] += 1.0
        return owner, load, rload, cap, rcap, int(rg_cols.size + 2 * m * k)

    def _refine_reader(self, rg_rowptr, rg_cols, rg_w, work, is_reader,
                       owner, load, rload, k, cap, rcap):
        """Cap-respecting LP on the reader graph; keeps only cut-reducing
        passes.  Returns ``(owner, ops)``."""
        m = work.size
        src = np.repeat(np.arange(m, dtype=np.int64), np.diff(rg_rowptr))
        idx = np.arange(m)
        rmass = is_reader.astype(np.float64)
        ops = 0

        def cut_of(o):
            return float(rg_w[o[src] != o[rg_cols]].sum())

        best_cut = cut_of(owner)
        ops += rg_cols.size
        for _ in range(max(0, self.refine_passes)):
            votes = np.zeros((m, k), dtype=np.float64)
            np.add.at(votes, (src, owner[rg_cols]), rg_w)
            cur = votes[idx, owner]
            cand = np.argmax(votes, axis=1).astype(np.int64)
            gain = votes[idx, cand] - cur
            movers = np.nonzero((gain > 0.0) & (cand != owner))[0]
            ops += 3 * rg_cols.size + m
            if movers.size == 0:
                break
            movers = movers[np.lexsort((movers, -gain[movers]))]
            room = np.maximum(cap - load, 0.0)
            rroom = np.maximum(rcap - rload, 0.0)
            trial = owner.copy()
            accepted = 0
            for s in range(k):
                ms = movers[cand[movers] == s]
                if ms.size == 0:
                    continue
                ok = ms[
                    (np.cumsum(work[ms]) <= room[s])
                    & (np.cumsum(rmass[ms]) <= rroom[s])
                ]
                trial[ok] = s
                accepted += ok.size
            if accepted == 0:
                break
            trial_cut = cut_of(trial)
            ops += rg_cols.size
            if trial_cut >= best_cut:
                break
            owner = trial
            best_cut = trial_cut
            load = np.bincount(owner, weights=work, minlength=k)
            rload = np.bincount(owner, weights=rmass, minlength=k)
        return owner, ops


PARTITIONER_NAMES = ("hash", "range", "freq", "mincut")

_PARTITIONER_CLASSES: dict[str, type[Partitioner]] = {
    "hash": HashPartitioner,
    "range": RangePartitioner,
    "freq": FrequencyPartitioner,
    "frequency": FrequencyPartitioner,
    "mincut": MincutPartitioner,
}


def make_partitioner(
    partitioner: str | Partitioner,
    opts: Mapping | None = None,
) -> Partitioner:
    """Resolve a partitioner name ('hash' | 'range' | 'freq' | 'mincut').

    ``opts`` is a mapping of tuning knobs forwarded to the constructor
    (``balance_slack`` for freq/mincut; ``refine_passes`` / ``chunk`` /
    ``load_weight`` for mincut).  Unknown names and unknown knobs raise
    ``ValueError``; the resolved knobs are readable back via
    :meth:`Partitioner.options` for the results JSON.
    """
    if isinstance(partitioner, Partitioner):
        if opts:
            raise ValueError(
                "partitioner_opts requires a partitioner *name*, not an instance"
            )
        return partitioner
    cls = _PARTITIONER_CLASSES.get(partitioner)
    if cls is None:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; choose from {PARTITIONER_NAMES}"
        )
    try:
        return cls(**dict(opts or {}))
    except TypeError as exc:
        raise ValueError(
            f"bad partitioner_opts for {partitioner!r}: {exc}"
        ) from None
