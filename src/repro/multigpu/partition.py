"""Graph partitioners: which shard owns each vertex.

Ownership drives two things in the sharded pipeline:

* **root routing** — a directed root delta edge ``(x_a, x_b)`` is matched by
  the shard owning ``x_a``, so the owner map is also the work distribution;
* **cache placement** — each shard caches only the hot lists it owns, so a
  read of a remote shard's cached list crosses the peer interconnect
  (:data:`repro.gpu.counters.Channel.PEER`).

Three strategies are provided:

* :class:`HashPartitioner` — multiplicative-hash the vertex id.  Balanced
  and oblivious: neighbors land on random shards, so ``(N-1)/N`` of all
  cached-list reads are remote.
* :class:`RangePartitioner` — contiguous vertex-id ranges balanced by
  degree mass.  Captures id-locality when the graph has it (road networks);
  on shuffled social graphs it behaves like hash.
* :class:`FrequencyPartitioner` — frequency-aware: uses the Sec. IV
  random-walk estimates to find the hot vertices (exactly the ones every
  shard will cache) and re-homes each one onto the shard that already owns
  the plurality of its neighbors.  Roots are delta edges, so the shard
  processing a root owns one endpoint — co-locating a hot list with its
  neighborhood converts PEER reads into local ``GPU_GLOBAL`` reads.  Cold
  vertices keep their hash home, which keeps root routing balanced.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "FrequencyPartitioner",
    "make_partitioner",
    "PARTITIONER_NAMES",
]

#: Knuth's multiplicative hash constant (2^32 / phi), mod 2^32.
_HASH_MULT = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFFFFFF)


def _hash_owners(num_vertices: int, num_devices: int) -> np.ndarray:
    ids = np.arange(num_vertices, dtype=np.uint64)
    mixed = (ids * _HASH_MULT) & _HASH_MASK
    return (mixed % np.uint64(num_devices)).astype(np.int64)


class Partitioner(ABC):
    """Strategy assigning every vertex to one of ``num_devices`` shards."""

    name: str = "abstract"
    #: whether :meth:`assign` wants the random-walk frequency estimates
    requires_frequencies: bool = False

    @abstractmethod
    def assign(
        self,
        graph: DynamicGraph,
        frequencies: np.ndarray | None,
        num_devices: int,
        counters: AccessCounters | None = None,
    ) -> np.ndarray:
        """Return ``int64[num_vertices]`` owner ids in ``[0, num_devices)``.

        ``counters``, when given, receives the host-side compute cost of
        producing the assignment (priced into the pack phase).
        """


class HashPartitioner(Partitioner):
    """Owner = multiplicative hash of the vertex id, mod N."""

    name = "hash"

    def assign(self, graph, frequencies, num_devices, counters=None):
        if counters is not None:
            counters.record_compute(graph.num_vertices)
        return _hash_owners(graph.num_vertices, num_devices)


class RangePartitioner(Partitioner):
    """Contiguous id ranges, boundaries placed to balance degree mass."""

    name = "range"

    def assign(self, graph, frequencies, num_devices, counters=None):
        n = graph.num_vertices
        degrees = graph.degrees_new().astype(np.float64)
        if counters is not None:
            counters.record_compute(2 * n)
        total = degrees.sum()
        if total <= 0:
            # empty graph: plain id ranges
            return np.minimum(
                (np.arange(n, dtype=np.int64) * num_devices) // max(1, n),
                num_devices - 1,
            )
        cumulative = np.cumsum(degrees)
        targets = total * (np.arange(1, num_devices, dtype=np.float64) / num_devices)
        bounds = np.searchsorted(cumulative, targets)
        return np.searchsorted(bounds, np.arange(n, dtype=np.int64), side="right").astype(
            np.int64
        )


class FrequencyPartitioner(Partitioner):
    """Frequency-aware clustering: hot vertices pull their neighborhoods.

    Hot = vertices the random walks sampled (estimate > 0) — the same set
    the frequency cache policy will select, i.e. exactly the lists whose
    placement decides how much traffic crosses the interconnect.  A read of
    hot list ``v`` is issued by the shard owning the root endpoint, and
    roots land on arbitrary vertices of ``v``'s neighborhood — so moving
    only ``v`` barely helps (the readers stay scattered).  Instead, each hot
    vertex (hottest first) pulls itself *and its still-unclaimed neighbors*
    onto one shard, chosen by current plurality among the group.  Roots
    rooted anywhere in that neighborhood then read ``v`` locally.

    A degree-mass load cap (``balance_slack`` over the perfect share) stops
    the hottest hubs from collapsing the graph onto one shard, which would
    trade PEER traffic for a straggler.  Cold vertices keep their hash home;
    with no estimates available (degree policy, cold start) the result is
    plain hash.
    """

    name = "freq"
    requires_frequencies = True

    def __init__(self, balance_slack: float = 0.25) -> None:
        self.balance_slack = balance_slack

    def assign(self, graph, frequencies, num_devices, counters=None):
        n = graph.num_vertices
        owners = _hash_owners(n, num_devices)
        if counters is not None:
            counters.record_compute(n)
        if frequencies is None or num_devices == 1:
            return owners
        hot = np.nonzero(frequencies[:n] > 0)[0]
        if hot.size == 0:
            return owners
        order = np.argsort(-frequencies[hot], kind="stable")
        hot = hot[order]

        degrees = graph.degrees_new().astype(np.int64)
        load = np.bincount(owners, weights=degrees, minlength=num_devices)
        cap = (1.0 + self.balance_slack) * degrees.sum() / num_devices
        claimed = np.zeros(n, dtype=bool)
        ops = n
        for v in hot.tolist():
            if claimed[v]:
                continue
            nbrs = graph.neighbors_new(v)
            ops += nbrs.size + 1
            group = nbrs[~claimed[nbrs]]
            group = np.append(group, v)
            votes = np.bincount(owners[group], weights=degrees[group] + 1,
                                minlength=num_devices)
            target = int(np.argmax(votes))
            movers = group[owners[group] != target]
            moved_mass = int(degrees[movers].sum())
            if load[target] + moved_mass > cap:
                claimed[v] = True
                continue
            np.subtract.at(load, owners[movers], degrees[movers])
            load[target] += moved_mass
            owners[group] = target
            claimed[group] = True
        if counters is not None:
            counters.record_compute(ops)
        return owners


PARTITIONER_NAMES = ("hash", "range", "freq")


def make_partitioner(partitioner: str | Partitioner) -> Partitioner:
    """Resolve a partitioner name ('hash' | 'range' | 'freq')."""
    if isinstance(partitioner, Partitioner):
        return partitioner
    if partitioner == "hash":
        return HashPartitioner()
    if partitioner == "range":
        return RangePartitioner()
    if partitioner in ("freq", "frequency"):
        return FrequencyPartitioner()
    raise ValueError(
        f"unknown partitioner {partitioner!r}; choose from {PARTITIONER_NAMES}"
    )
