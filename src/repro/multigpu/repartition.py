"""Online repartitioning: ownership drift tracking + incremental migration.

The static partitioners re-place every vertex from scratch each batch —
free in the cost model only because the per-shard caches are rebuilt and
re-shipped every batch anyway.  That stops being true the moment placement
is *stateful*: a streaming workload whose hot set drifts (today's hot
community is not yesterday's) either keeps a stale owner map (rising
cut-rate) or pays real interconnect bytes to move vertex lists between
shards.  This module models exactly that trade:

* :class:`OwnershipManager` keeps the owner map **sticky** across batches
  and tracks per-vertex access heat as an EWMA over the per-batch match
  counters (:meth:`~repro.gpu.counters.AccessCounters.vertex_access_bytes`).
* Every ``every`` batches it measures drift: the heat-weighted cut-rate of
  the current map and the per-shard heat imbalance.  Below threshold the
  map stands (the evaluation costs only host compute).
* Above threshold it computes an **incremental migration plan** — a
  bounded :func:`~repro.multigpu.partition.refine_labels` pass warm-started
  from the current map with heat weights, where a vertex may only move if
  its per-batch cut-weight gain repays its migration bytes within
  ``horizon`` batches (the payback filter).
* Accepted moves are charged to the cost model as PEER traffic (the
  vertex's packed neighbor list crosses the interconnect) plus a DMA
  owner-map broadcast, surfaced as ``TimeBreakdown.repartition_ns`` and
  overlapped by the pipelined engine's host lane.

Placement never changes results: ΔM / MatchStats stay bit-identical to any
other partitioner (fuzzer-enforced via the ``GCSM+repart@N:mincut`` spec).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.counters import AccessCounters
from repro.gpu.device import BYTES_PER_NEIGHBOR, DeviceConfig
from repro.graphs.dynamic_graph import DynamicGraph
from repro.multigpu.partition import adjacency_csr, refine_labels, weighted_cut

__all__ = [
    "RepartitionConfig",
    "RepartitionReport",
    "OwnershipManager",
    "normalize_repartition",
]

#: bytes to ship one owner-map entry in the post-migration broadcast
OWNER_ENTRY_BYTES = 8


@dataclass(frozen=True)
class RepartitionConfig:
    """Knobs of the online repartitioning layer.

    every:
        Evaluate drift every N batches (the off-batches only fold the new
        heat sample into the EWMA).
    threshold:
        Heat-weighted cut-rate above which a replan is attempted — the
        fraction of access heat flowing over cut edges.
    imbalance_threshold:
        Per-shard heat-mass max/mean above which a replan is attempted even
        when the cut looks fine (a drifted hot set piling onto one shard).
    ewma:
        Smoothing factor of the per-vertex heat average: ``heat =
        (1 - ewma) * heat + ewma * batch_bytes``.  1.0 reacts instantly,
        small values favor long-lived hotness.
    horizon:
        Payback window in batches: vertex ``v`` may migrate only if its
        per-batch cut-weight gain times ``horizon`` covers its migration
        bytes.
    balance_slack:
        Degree-mass cap slack for the migration plan (migrations must not
        unbalance root routing).
    refine_passes:
        Bound on the label-propagation passes of one replan.
    """

    every: int = 4
    threshold: float = 0.25
    imbalance_threshold: float = 1.5
    ewma: float = 0.5
    horizon: float = 8.0
    balance_slack: float = 0.10
    refine_passes: int = 2

    def to_dict(self) -> dict:
        return {
            "every": self.every,
            "threshold": self.threshold,
            "imbalance_threshold": self.imbalance_threshold,
            "ewma": self.ewma,
            "horizon": self.horizon,
            "balance_slack": self.balance_slack,
            "refine_passes": self.refine_passes,
        }


def normalize_repartition(
    value: "RepartitionConfig | Mapping | bool | None",
) -> RepartitionConfig | None:
    """Resolve the engine/CLI ``repartition=`` argument.

    ``None``/``False`` → off; ``True`` → defaults; a mapping → knob
    overrides; a config → itself.
    """
    if value is None or value is False:
        return None
    if value is True:
        return RepartitionConfig()
    if isinstance(value, RepartitionConfig):
        return value
    if isinstance(value, Mapping):
        try:
            return RepartitionConfig(**dict(value))
        except TypeError as exc:
            raise ValueError(f"bad repartition options: {exc}") from None
    raise ValueError(f"bad repartition argument {value!r}")


@dataclass(frozen=True)
class RepartitionReport:
    """What the ownership manager did for one batch."""

    evaluated: bool = False
    triggered: bool = False
    moved: int = 0
    migration_bytes: int = 0
    cut_rate_before: float = 0.0
    cut_rate_after: float = 0.0
    heat_imbalance: float = 1.0
    repartition_ns: float = 0.0

    def to_dict(self) -> dict:
        return {
            "evaluated": self.evaluated,
            "triggered": self.triggered,
            "moved": self.moved,
            "migration_bytes": self.migration_bytes,
            "cut_rate_before": self.cut_rate_before,
            "cut_rate_after": self.cut_rate_after,
            "heat_imbalance": self.heat_imbalance,
            "repartition_ns": self.repartition_ns,
        }


@dataclass
class OwnershipManager:
    """Sticky owner map + EWMA heat + drift-triggered migration planning.

    One per :class:`~repro.multigpu.engine.MultiGpuEngine` fleet.  Call
    :meth:`step` at the start of every batch (after the graph update, before
    packing) with the current owner map — it returns the possibly-migrated
    map plus a report; call :meth:`observe` after matching with the merged
    per-vertex byte histogram to feed the heat average.
    """

    num_devices: int
    config: RepartitionConfig
    device: DeviceConfig
    heat: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.float64))
    batches_seen: int = 0

    def observe(self, access_bytes: np.ndarray) -> None:
        """Fold one batch's per-vertex access bytes into the EWMA heat."""
        n = access_bytes.shape[0]
        if n > self.heat.shape[0]:
            grown = np.zeros(n, dtype=np.float64)
            grown[: self.heat.shape[0]] = self.heat
            self.heat = grown
        a = self.config.ewma
        self.heat[:n] = (1.0 - a) * self.heat[:n] + a * access_bytes
        self.batches_seen += 1

    def step(
        self,
        graph: DynamicGraph,
        owner: np.ndarray,
        counters: AccessCounters | None = None,
    ) -> tuple[np.ndarray, RepartitionReport]:
        """Evaluate drift and maybe migrate; returns ``(owner, report)``.

        The returned report's ``repartition_ns`` prices the migration
        traffic (PEER list shipment + DMA owner broadcast); the host-side
        planning compute goes to ``counters`` like the partitioners'.
        """
        cfg = self.config
        due = (
            self.batches_seen > 0
            and cfg.every > 0
            and self.batches_seen % cfg.every == 0
        )
        if not due or self.num_devices <= 1:
            return owner, RepartitionReport()

        n = graph.num_vertices
        heat = np.zeros(n, dtype=np.float64)
        k = min(n, self.heat.shape[0])
        heat[:k] = self.heat[:k]

        rowptr, cols, ops = adjacency_csr(graph)
        degrees = np.diff(rowptr)
        dmass = degrees.astype(np.float64)
        cut_w, total_w = weighted_cut(rowptr, cols, owner, heat)
        ops += 2 * cols.size
        cut_rate = cut_w / total_w if total_w > 0.0 else 0.0
        shard_heat = np.bincount(owner, weights=heat, minlength=self.num_devices)
        mean_heat = shard_heat.mean()
        imbalance = float(shard_heat.max() / mean_heat) if mean_heat > 0.0 else 1.0

        drifted = cut_rate > cfg.threshold or imbalance > cfg.imbalance_threshold
        if not drifted:
            if counters is not None:
                counters.record_compute(int(ops))
            return owner, RepartitionReport(
                evaluated=True,
                cut_rate_before=cut_rate,
                cut_rate_after=cut_rate,
                heat_imbalance=imbalance,
            )

        # migration cost of each vertex: its packed list + one owner entry
        move_cost = dmass * BYTES_PER_NEIGHBOR + OWNER_ENTRY_BYTES
        cap = (1.0 + cfg.balance_slack) * dmass.sum() / self.num_devices
        new_owner, refine_ops, moved, _, cut_after_w = refine_labels(
            rowptr, cols, owner, heat, dmass, self.num_devices, cap,
            passes=cfg.refine_passes,
            move_cost=move_cost, horizon=cfg.horizon,
        )
        ops += refine_ops
        if counters is not None:
            counters.record_compute(int(ops))
        movers = np.nonzero(new_owner != owner)[0]
        migration_bytes = int(
            degrees[movers].sum() * BYTES_PER_NEIGHBOR
            + movers.size * OWNER_ENTRY_BYTES
        )
        ns = 0.0
        if movers.size:
            # the moved lists cross the interconnect; the updated owner map
            # is broadcast to the fleet over the host links
            ns = self.device.peer_time_ns(self.device.peer_lines(migration_bytes))
            ns += self.device.dma_time_ns(owner.size * OWNER_ENTRY_BYTES, 1)
        cut_after = cut_after_w / total_w if total_w > 0.0 else 0.0
        return new_owner, RepartitionReport(
            evaluated=True,
            triggered=True,
            moved=int(movers.size),
            migration_bytes=migration_bytes,
            cut_rate_before=cut_rate,
            cut_rate_after=cut_after,
            heat_imbalance=imbalance,
            repartition_ns=ns,
        )
