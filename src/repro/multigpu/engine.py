"""Sharded execution of the five-step GCSM pipeline over N devices.

:class:`MultiGpuEngine` mirrors :class:`~repro.core.engine.GCSMEngine`
batch-for-batch, but fans the device-side steps over a fleet:

1. **Update** — host-side, shared (one CPU store feeds every device).
2. **Estimate** — host-side, shared: one random-walk pass; its estimates
   drive both cache selection *and* the frequency-aware partitioner.
3. **Pack** — per shard: each device selects the hot vertices *it owns*
   within its own buffer budget, packs its DCSR slice, and uploads over its
   own host link.  Phase time is the slowest shard (uploads overlap).
4. **Match** — per shard: directed roots are routed to the shard owning
   their first endpoint; each shard's kernel reads local cache / peer
   caches / host zero-copy as the walk dictates.  Phase time is the slowest
   shard, plus the ΔM all-reduce (reported separately as ``comm_ns``).
5. **Reorganize** — host-side, shared.

Steps 3 and 4 reuse the factored single-GPU internals
(:func:`~repro.core.engine.pack_step`, the shared matching executor) rather
than forking them, and run under :func:`repro.parallel.parallel_map` for
wall-clock speedup of the harness itself.

**Invariant (enforced by tests):** with ``devices=1`` the engine takes the
exact single-GPU code path — no owner map, no peer caches, no collective —
and reproduces :class:`~repro.core.engine.GCSMEngine`'s match counts,
channel byte counters, and simulated time bit-for-bit.  For ``N > 1`` the
match counts stay identical (roots are a disjoint cover; per-root work is
independent) while the timing shows sub-linear speedup dominated by
cross-shard PEER traffic and the serial host phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CachePolicy
from repro.core.engine import (
    BatchResult,
    GCSMEngine,
    make_policy,
    reorganize_step,
    update_step,
)
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    EstimationResult,
    make_estimator,
)
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    normalize_prefilter,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import PipelineClock, ScheduleReport, TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import ClusterConfig, DeviceConfig, default_device
from repro.multigpu.comm import CommReport, allreduce_delta_ns, comm_report
from repro.multigpu.partition import Partitioner, make_partitioner
from repro.multigpu.shard import Shard, ShardedDeviceView
from repro.parallel import parallel_map
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.utils import as_generator, require, spawn_generator

__all__ = ["MultiGpuEngine", "MultiBatchResult", "LoadBalanceReport", "ShardBatchReport"]


@dataclass(frozen=True)
class ShardBatchReport:
    """What one shard did during one batch."""

    shard_id: int
    roots_processed: int
    match_ns: float
    pack_ns: float
    cache_bytes: int
    cached_vertices: int
    local_hits: int
    local_misses: int
    remote_hits: int
    remote_misses: int
    peer_bytes: int

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "roots_processed": self.roots_processed,
            "match_ns": self.match_ns,
            "pack_ns": self.pack_ns,
            "cache_bytes": self.cache_bytes,
            "cached_vertices": self.cached_vertices,
            "local_hits": self.local_hits,
            "local_misses": self.local_misses,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "peer_bytes": self.peer_bytes,
        }


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-batch straggler diagnosis of the fleet (the scaling table's
    imbalance column): max/mean shard match time and who the straggler is."""

    shard_match_ns: tuple[float, ...]
    shard_roots: tuple[int, ...]

    @property
    def num_devices(self) -> int:
        return len(self.shard_match_ns)

    @property
    def max_ns(self) -> float:
        return max(self.shard_match_ns) if self.shard_match_ns else 0.0

    @property
    def mean_ns(self) -> float:
        return (
            sum(self.shard_match_ns) / len(self.shard_match_ns)
            if self.shard_match_ns
            else 0.0
        )

    @property
    def imbalance(self) -> float:
        """max/mean shard match time; 1.0 is a perfectly balanced fleet."""
        return self.max_ns / self.mean_ns if self.mean_ns else 1.0

    @property
    def straggler(self) -> int:
        """Shard id of the slowest device."""
        if not self.shard_match_ns:
            return 0
        return int(max(range(len(self.shard_match_ns)),
                       key=lambda i: self.shard_match_ns[i]))

    def to_dict(self) -> dict:
        return {
            "num_devices": self.num_devices,
            "shard_match_ns": list(self.shard_match_ns),
            "shard_roots": list(self.shard_roots),
            "max_ns": self.max_ns,
            "mean_ns": self.mean_ns,
            "imbalance": self.imbalance,
            "straggler": self.straggler,
        }


@dataclass
class MultiBatchResult(BatchResult):
    """A :class:`~repro.core.engine.BatchResult` plus fleet diagnostics.

    Duck-type compatible with the single-GPU result, so the bench harness
    drives both engines through the same aggregation loop; the extras carry
    the per-shard load-balance report and cross-device traffic summary.
    """

    shard_reports: list[ShardBatchReport] = field(default_factory=list)
    load_balance: LoadBalanceReport | None = None
    comm: CommReport | None = None


class _ShardMatchOutcome:
    """Mutable per-shard match-step result (internal)."""

    __slots__ = ("stats", "counters", "match_ns", "view")

    def __init__(self, stats: MatchStats, counters: AccessCounters,
                 match_ns: float, view: ShardedDeviceView) -> None:
        self.stats = stats
        self.counters = counters
        self.match_ns = match_ns
        self.view = view


class MultiGpuEngine:
    """Continuous subgraph matching sharded across N simulated devices.

    Parameters mirror :class:`~repro.core.engine.GCSMEngine` (``policy``,
    ``num_walks``, ``adaptive_walks``, ``cache_budget_bytes``, ``survival``,
    ``seed``, ``estimator``, ``executor``) plus:

    devices:
        Device count, or a full :class:`~repro.gpu.device.ClusterConfig`
        (interconnect choice, all-reduce latency, base device).
    partitioner:
        ``"hash"`` | ``"range"`` | ``"freq"`` or a
        :class:`~repro.multigpu.partition.Partitioner` instance.  The
        frequency-aware partitioner re-runs per batch on that batch's
        random-walk estimates (the cache is rebuilt and re-shipped every
        batch anyway, so re-homing is free).
    device:
        Base per-shard DeviceConfig; ignored when ``devices`` is a
        ClusterConfig (use its ``base``).
    workers:
        Thread-pool width for fanning the per-shard pack/match steps
        (wall-clock only — simulated time is unaffected).  ``None`` uses
        :func:`repro.parallel.default_workers`.
    cache_budget_bytes:
        Per-device budget: every card in the fleet has its own buffer of
        this size (aggregate fleet cache capacity grows with N).
    pipeline:
        Model the staged cross-batch schedule in simulated time: a
        :class:`~repro.gpu.clock.PipelineClock` annotates every batch's
        breakdown with ``critical_path_ns``/``fill_ns``/``drain_ns`` (the
        fleet-wide match phase is one GPU-lane entry, the ΔM all-reduce
        rides the PEER lane).  Results are unaffected — only the time
        accounting changes, exactly as for
        :class:`~repro.service.pipeline.PipelinedEngine`.
    """

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        devices: int | ClusterConfig = 1,
        partitioner: str | Partitioner = "hash",
        device: DeviceConfig | None = None,
        policy: str | CachePolicy = "frequency",
        num_walks: int | None = None,
        adaptive_walks: bool = False,
        cache_budget_bytes: int | None = None,
        survival: float | None = 1.0,
        seed: int | np.random.Generator | None = 0,
        workers: int | None = None,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
        pipeline: bool = False,
    ) -> None:
        if isinstance(devices, ClusterConfig):
            self.cluster = devices
        else:
            self.cluster = ClusterConfig(
                num_devices=int(devices), base=device or default_device()
            )
        self.num_devices = self.cluster.num_devices
        self.device = self.cluster.device()
        self.cache_budget_bytes = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else self.device.cache_buffer_bytes
        )
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.plans = compile_delta_plans(query)
        self.num_walks = num_walks
        self.adaptive_walks = adaptive_walks
        # same RNG derivation as GCSMEngine: estimates are bit-identical
        rng = as_generator(seed)
        self.estimator = make_estimator(
            estimator, self.graph, self.device,
            seed=spawn_generator(rng), survival=survival,
        )
        self.estimator_name = estimator
        self.policy = make_policy(policy)
        self.executor = executor
        self.conflict_mode = conflict_mode
        # one shared host-side index for the whole fleet: maintenance is a
        # host phase (like update/estimate), and the per-shard kernels only
        # *read* it — so certified skips stay PEER-free
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.partitioner = make_partitioner(partitioner)
        self.workers = workers
        self.shards = [
            Shard(i, dev, self.cache_budget_bytes)
            for i, dev in enumerate(self.cluster.devices())
        ]
        self.batches_processed = 0
        self.total_delta = 0
        self.clock: PipelineClock | None = PipelineClock() if pipeline else None

    def schedule_report(self) -> ScheduleReport:
        """Stream-level pipeline schedule summary (``pipeline=True`` only)."""
        require(self.clock is not None, "engine built without pipeline=True")
        return self.clock.report()

    # ------------------------------------------------------------------
    def process_batch(self, batch: UpdateBatch) -> MultiBatchResult:
        """Run the sharded five-step pipeline for one batch."""
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        # -- step 1: dynamic graph update (host, shared) -------------------
        # every later step runs on the canonicalized *effective* batch
        batch, breakdown.update_ns = update_step(
            graph, batch, self.device, self.conflict_mode
        )

        # -- step 1b: invariant maintenance + certified skips (host) -------
        decision = None
        if self.prefilter_index is not None:
            pc = self.prefilter_index.apply_batch(batch)
            decision = self.prefilter_index.evaluate(self.plans, batch)
            pc.merge(decision.counters)
            breakdown.prefilter_ns = simulated_time_ns(pc, self.device, platform="cpu")
            if decision.skip_batch:
                # certified ΔM = 0 fleet-wide: no estimation, no per-shard
                # pack, no kernels, no all-reduce — only the host settles
                breakdown.reorg_ns = reorganize_step(graph, self.device)
                self.prefilter_index.close_batch()
                if self.clock is not None:
                    self.clock.annotate(breakdown)
                self.batches_processed += 1
                return MultiBatchResult(
                    delta_count=0,
                    match_stats=MatchStats(roots_skipped=decision.roots_total),
                    breakdown=breakdown,
                    match_counters=AccessCounters(),
                    estimation=None,
                    cached_vertices=np.empty(0, dtype=np.int64),
                    cache_bytes=0,
                    cache_hits=0,
                    cache_misses=0,
                    conflicts=graph.last_canonical_report,
                    prefilter=decision.to_stats(breakdown.prefilter_ns),
                )

        # -- step 2: frequency estimation (host, shared) -------------------
        # root-masked updates shrink the shared walk budget for the fleet
        estimate_input = decision.estimate_batch if decision is not None else batch
        estimation: EstimationResult | None = None
        if self.policy.requires_estimation:
            if self.adaptive_walks:
                estimation = self.estimator.estimate_adaptive(
                    self.plans, estimate_input, initial_walks=self.num_walks
                )
            else:
                estimation = self.estimator.estimate(
                    self.plans, estimate_input, num_walks=self.num_walks
                )
            breakdown.estimate_ns = simulated_time_ns(
                estimation.counters, self.device, platform="cpu_estimator"
            )
        frequencies = estimation.frequencies if estimation is not None else None

        # -- partition (host; folded into the pack phase) ------------------
        owner: np.ndarray | None = None
        partition_ns = 0.0
        if self.num_devices > 1:
            part_counters = AccessCounters()
            owner = self.partitioner.assign(
                graph, frequencies, self.num_devices, part_counters
            )
            partition_ns = simulated_time_ns(part_counters, self.device, platform="cpu")

        # -- step 3: per-shard select + pack + DMA (own links overlap) -----
        ranked = self.policy.rank(graph, frequencies)
        parallel_map(
            lambda shard: shard.select_and_pack(graph, ranked, owner),
            self.shards,
            workers=self.workers,
        )
        breakdown.pack_ns = partition_ns + max(s.pack_ns for s in self.shards)

        # -- step 4: per-shard incremental matching ------------------------
        caches = [s.cache for s in self.shards]

        def _match_one(shard: Shard) -> _ShardMatchOutcome:
            counters = AccessCounters()
            view = ShardedDeviceView(
                graph, shard.device, counters, shard.cache,
                shard_id=shard.shard_id, owner=owner, peer_caches=caches,
            )
            mask = None
            if owner is not None:
                sid = shard.shard_id
                mask = lambda roots: owner[roots[:, 0]] == sid  # noqa: E731
            # the live index masker recomputes per shard-routed subset, so
            # skipped-root accounting partitions exactly across the fleet
            stats = match_batch(
                self.plans, batch, view, root_mask=mask,
                prefilter=self.prefilter_index, executor=self.executor,
            )
            match_ns = simulated_time_ns(counters, shard.device, platform="gpu")
            return _ShardMatchOutcome(stats, counters, match_ns, view)

        outcomes = parallel_map(_match_one, self.shards, workers=self.workers)
        breakdown.match_ns = max(o.match_ns for o in outcomes)
        breakdown.comm_ns = (
            allreduce_delta_ns(self.cluster, len(self.plans))
            if self.num_devices > 1
            else 0.0
        )

        # -- step 5: reorganize CPU lists (host, shared) -------------------
        breakdown.reorg_ns = reorganize_step(graph, self.device)
        if self.prefilter_index is not None:
            self.prefilter_index.close_batch()

        # -- aggregate across the fleet ------------------------------------
        total_stats = MatchStats()
        merged = AccessCounters()
        for o in outcomes:
            total_stats.merge(o.stats)
            merged.merge(o.counters)
        shard_reports = [
            ShardBatchReport(
                shard_id=s.shard_id,
                roots_processed=o.stats.roots_processed,
                match_ns=o.match_ns,
                pack_ns=s.pack_ns,
                cache_bytes=s.cache.total_bytes,
                cached_vertices=s.cache.num_cached,
                local_hits=o.view.hits,
                local_misses=o.view.misses,
                remote_hits=o.view.remote_hits,
                remote_misses=o.view.remote_misses,
                peer_bytes=o.counters.bytes_by_channel[Channel.PEER],
            )
            for s, o in zip(self.shards, outcomes)
        ]
        balance = LoadBalanceReport(
            shard_match_ns=tuple(o.match_ns for o in outcomes),
            shard_roots=tuple(o.stats.roots_processed for o in outcomes),
        )
        comm = comm_report([o.counters for o in outcomes], breakdown.comm_ns)

        if self.clock is not None:
            self.clock.annotate(breakdown)
        self.batches_processed += 1
        self.total_delta += total_stats.signed_count
        return MultiBatchResult(
            delta_count=total_stats.signed_count,
            match_stats=total_stats,
            breakdown=breakdown,
            match_counters=merged,
            estimation=estimation,
            cached_vertices=np.concatenate([s.selected for s in self.shards])
            if self.shards
            else np.empty(0, dtype=np.int64),
            cache_bytes=sum(s.cache.total_bytes for s in self.shards),
            cache_hits=sum(o.view.total_hits for o in outcomes),
            cache_misses=sum(o.view.total_misses for o in outcomes),
            conflicts=graph.last_canonical_report,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
            shard_reports=shard_reports,
            load_balance=balance,
            comm=comm,
        )

    def process_stream(self, batches: list[UpdateBatch]) -> list[MultiBatchResult]:
        """Convenience: process a whole stream, returning per-batch results."""
        return [self.process_batch(b) for b in batches]

    def initial_match(self) -> tuple[int, float]:
        """Static bootstrap pass — see :meth:`GCSMEngine.initial_match`.

        Sharding the static pass is future work; it reuses the single-GPU
        implementation (zero-copy path on one device).
        """
        return GCSMEngine.initial_match(self)  # type: ignore[arg-type]

    def snapshot(self) -> StaticGraph:
        """Current settled graph snapshot."""
        return self.graph.snapshot()
