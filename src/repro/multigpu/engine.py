"""Sharded execution of the five-step GCSM pipeline over N devices.

:class:`MultiGpuEngine` mirrors :class:`~repro.core.engine.GCSMEngine`
batch-for-batch, but fans the device-side steps over a fleet:

1. **Update** — host-side, shared (one CPU store feeds every device).
2. **Estimate** — host-side, shared: one random-walk pass; its estimates
   drive both cache selection *and* the frequency-aware partitioner.
3. **Pack** — per shard: each device selects the hot vertices *it owns*
   within its own buffer budget, packs its DCSR slice, and uploads over its
   own host link.  Phase time is the slowest shard (uploads overlap).
4. **Match** — per shard: directed roots are routed to the shard owning
   their first endpoint; each shard's kernel reads local cache / peer
   caches / host zero-copy as the walk dictates.  Phase time is the slowest
   shard, plus the ΔM all-reduce (reported separately as ``comm_ns``).
5. **Reorganize** — host-side, shared.

Steps 3 and 4 reuse the factored single-GPU internals
(:func:`~repro.core.engine.pack_step`, the shared matching executor) rather
than forking them, and run under :func:`repro.parallel.parallel_map` for
wall-clock speedup of the harness itself.

**Invariant (enforced by tests):** with ``devices=1`` the engine takes the
exact single-GPU code path — no owner map, no peer caches, no collective —
and reproduces :class:`~repro.core.engine.GCSMEngine`'s match counts,
channel byte counters, and simulated time bit-for-bit.  For ``N > 1`` the
match counts stay identical (roots are a disjoint cover; per-root work is
independent) while the timing shows sub-linear speedup dominated by
cross-shard PEER traffic and the serial host phases.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.cache import CachePolicy
from repro.core.engine import (
    BatchResult,
    GCSMEngine,
    make_policy,
    reorganize_step,
    update_step,
)
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    EstimationResult,
    make_estimator,
)
from repro.core.matching import DEFAULT_EXECUTOR, MatchStats, match_batch
from repro.core.prefilter import (
    DEFAULT_PREFILTER,
    InvariantIndex,
    normalize_prefilter,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.static_graph import StaticGraph
from repro.graphs.stream import DEFAULT_CONFLICT_MODE, UpdateBatch
from repro.gpu.clock import PipelineClock, ScheduleReport, TimeBreakdown, simulated_time_ns
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import ClusterConfig, DeviceConfig, default_device
from repro.multigpu.comm import CommReport, allreduce_delta_ns, comm_report
from repro.multigpu.partition import Partitioner, _hash_owners, make_partitioner
from repro.multigpu.repartition import (
    OwnershipManager,
    RepartitionConfig,
    RepartitionReport,
    normalize_repartition,
)
from repro.multigpu.shard import Shard, ShardedDeviceView
from repro.parallel import parallel_map
from repro.query.pattern import QueryGraph
from repro.query.plan import compile_delta_plans
from repro.utils import as_generator, require, spawn_generator

__all__ = ["MultiGpuEngine", "MultiBatchResult", "LoadBalanceReport", "ShardBatchReport"]


@dataclass(frozen=True)
class ShardBatchReport:
    """What one shard did during one batch."""

    shard_id: int
    roots_processed: int
    match_ns: float
    pack_ns: float
    cache_bytes: int
    cached_vertices: int
    local_hits: int
    local_misses: int
    remote_hits: int
    remote_misses: int
    peer_bytes: int

    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "roots_processed": self.roots_processed,
            "match_ns": self.match_ns,
            "pack_ns": self.pack_ns,
            "cache_bytes": self.cache_bytes,
            "cached_vertices": self.cached_vertices,
            "local_hits": self.local_hits,
            "local_misses": self.local_misses,
            "remote_hits": self.remote_hits,
            "remote_misses": self.remote_misses,
            "peer_bytes": self.peer_bytes,
        }


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-batch straggler diagnosis of the fleet (the scaling table's
    imbalance column): max/mean shard match time and who the straggler is."""

    shard_match_ns: tuple[float, ...]
    shard_roots: tuple[int, ...]

    @property
    def num_devices(self) -> int:
        return len(self.shard_match_ns)

    @property
    def max_ns(self) -> float:
        return max(self.shard_match_ns) if self.shard_match_ns else 0.0

    @property
    def mean_ns(self) -> float:
        return (
            sum(self.shard_match_ns) / len(self.shard_match_ns)
            if self.shard_match_ns
            else 0.0
        )

    @property
    def imbalance(self) -> float:
        """max/mean shard match time; 1.0 is a perfectly balanced fleet.

        An idle fleet (every shard's match time zero — e.g. all roots
        masked away) is *defined* as perfectly balanced: 1.0, not 0/0.
        """
        return self.max_ns / self.mean_ns if self.mean_ns else 1.0

    @property
    def straggler(self) -> int | None:
        """Shard id of the slowest device, or ``None`` on an idle fleet
        (all shard match times zero: nobody straggled)."""
        if not self.shard_match_ns or self.max_ns == 0.0:
            return None
        return int(max(range(len(self.shard_match_ns)),
                       key=lambda i: self.shard_match_ns[i]))

    def to_dict(self) -> dict:
        return {
            "num_devices": self.num_devices,
            "shard_match_ns": list(self.shard_match_ns),
            "shard_roots": list(self.shard_roots),
            "max_ns": self.max_ns,
            "mean_ns": self.mean_ns,
            "imbalance": self.imbalance,
            "straggler": self.straggler,
        }


@dataclass
class MultiBatchResult(BatchResult):
    """A :class:`~repro.core.engine.BatchResult` plus fleet diagnostics.

    Duck-type compatible with the single-GPU result, so the bench harness
    drives both engines through the same aggregation loop; the extras carry
    the per-shard load-balance report and cross-device traffic summary.
    """

    shard_reports: list[ShardBatchReport] = field(default_factory=list)
    load_balance: LoadBalanceReport | None = None
    comm: CommReport | None = None
    repartition: RepartitionReport | None = None


class _ShardMatchOutcome:
    """Mutable per-shard match-step result (internal)."""

    __slots__ = ("stats", "counters", "match_ns", "view")

    def __init__(self, stats: MatchStats, counters: AccessCounters,
                 match_ns: float, view: ShardedDeviceView) -> None:
        self.stats = stats
        self.counters = counters
        self.match_ns = match_ns
        self.view = view


class MultiGpuEngine:
    """Continuous subgraph matching sharded across N simulated devices.

    Parameters mirror :class:`~repro.core.engine.GCSMEngine` (``policy``,
    ``num_walks``, ``adaptive_walks``, ``cache_budget_bytes``, ``survival``,
    ``seed``, ``estimator``, ``executor``) plus:

    devices:
        Device count, or a full :class:`~repro.gpu.device.ClusterConfig`
        (interconnect choice, all-reduce latency, base device).
    partitioner:
        ``"hash"`` | ``"range"`` | ``"freq"`` | ``"mincut"`` or a
        :class:`~repro.multigpu.partition.Partitioner` instance.  The
        frequency-aware partitioners re-run per batch on that batch's
        random-walk estimates (the cache is rebuilt and re-shipped every
        batch anyway, so re-homing is free) — unless ``repartition`` makes
        ownership sticky.
    partitioner_opts:
        Optional mapping of tuning knobs for a *named* partitioner
        (``balance_slack`` for freq/mincut; ``refine_passes`` / ``chunk``
        / ``load_weight`` for mincut).  The resolved knobs are recorded in
        the harness/results JSON.
    repartition:
        Online repartitioning (``None``/``False`` off, ``True`` defaults,
        or a mapping / :class:`~repro.multigpu.repartition.RepartitionConfig`
        of knobs).  When enabled the owner map becomes **sticky**: the
        partitioner runs once on the first batch, new vertices get hash
        homes, and an :class:`~repro.multigpu.repartition.OwnershipManager`
        tracks per-vertex access heat (EWMA over the match counters),
        detects drift, and migrates vertices whose move pays back within
        the horizon — migration priced as PEER + DMA traffic in
        ``breakdown.repartition_ns`` (its own host pipeline lane stage).
        Results never change, only placement and timing.
    device:
        Base per-shard DeviceConfig; ignored when ``devices`` is a
        ClusterConfig (use its ``base``).
    workers:
        Thread-pool width for fanning the per-shard pack/match steps
        (wall-clock only — simulated time is unaffected).  ``None`` uses
        :func:`repro.parallel.default_workers`.
    cache_budget_bytes:
        Per-device budget: every card in the fleet has its own buffer of
        this size (aggregate fleet cache capacity grows with N).
    pipeline:
        Model the staged cross-batch schedule in simulated time: a
        :class:`~repro.gpu.clock.PipelineClock` annotates every batch's
        breakdown with ``critical_path_ns``/``fill_ns``/``drain_ns`` (the
        fleet-wide match phase is one GPU-lane entry, the ΔM all-reduce
        rides the PEER lane).  Results are unaffected — only the time
        accounting changes, exactly as for
        :class:`~repro.service.pipeline.PipelinedEngine`.
    """

    def __init__(
        self,
        initial_graph: StaticGraph,
        query: QueryGraph,
        *,
        devices: int | ClusterConfig = 1,
        partitioner: str | Partitioner = "hash",
        partitioner_opts: Mapping | None = None,
        repartition: RepartitionConfig | Mapping | bool | None = None,
        device: DeviceConfig | None = None,
        policy: str | CachePolicy = "frequency",
        num_walks: int | None = None,
        adaptive_walks: bool = False,
        cache_budget_bytes: int | None = None,
        survival: float | None = 1.0,
        seed: int | np.random.Generator | None = 0,
        workers: int | None = None,
        executor: str = DEFAULT_EXECUTOR,
        estimator: str = DEFAULT_ESTIMATOR,
        conflict_mode: str = DEFAULT_CONFLICT_MODE,
        prefilter: str = DEFAULT_PREFILTER,
        pipeline: bool = False,
    ) -> None:
        if isinstance(devices, ClusterConfig):
            self.cluster = devices
        else:
            self.cluster = ClusterConfig(
                num_devices=int(devices), base=device or default_device()
            )
        self.num_devices = self.cluster.num_devices
        self.device = self.cluster.device()
        self.cache_budget_bytes = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else self.device.cache_buffer_bytes
        )
        self.graph = DynamicGraph(initial_graph)
        self.query = query
        self.plans = compile_delta_plans(query)
        self.num_walks = num_walks
        self.adaptive_walks = adaptive_walks
        # same RNG derivation as GCSMEngine: estimates are bit-identical
        rng = as_generator(seed)
        self.estimator = make_estimator(
            estimator, self.graph, self.device,
            seed=spawn_generator(rng), survival=survival,
        )
        self.estimator_name = estimator
        self.policy = make_policy(policy)
        self.executor = executor
        self.conflict_mode = conflict_mode
        # one shared host-side index for the whole fleet: maintenance is a
        # host phase (like update/estimate), and the per-shard kernels only
        # *read* it — so certified skips stay PEER-free
        self.prefilter_name = normalize_prefilter(prefilter)
        self.prefilter_index = (
            InvariantIndex(self.graph) if self.prefilter_name != "off" else None
        )
        self.partitioner = make_partitioner(partitioner, partitioner_opts)
        self.repartition_config = normalize_repartition(repartition)
        # online repartitioning is a fleet concern: at N=1 there is no
        # placement, so the manager is absent and the single-GPU code path
        # (and its bit-identical invariant) is untouched
        self.ownership = (
            OwnershipManager(self.num_devices, self.repartition_config, self.device)
            if self.repartition_config is not None and self.num_devices > 1
            else None
        )
        self._owner: np.ndarray | None = None  # sticky map (repartition mode)
        self.workers = workers
        self.shards = [
            Shard(i, dev, self.cache_budget_bytes)
            for i, dev in enumerate(self.cluster.devices())
        ]
        self.batches_processed = 0
        self.total_delta = 0
        self.clock: PipelineClock | None = PipelineClock() if pipeline else None

    def schedule_report(self) -> ScheduleReport:
        """Stream-level pipeline schedule summary (``pipeline=True`` only)."""
        require(self.clock is not None, "engine built without pipeline=True")
        return self.clock.report()

    # ------------------------------------------------------------------
    def process_batch(self, batch: UpdateBatch) -> MultiBatchResult:
        """Run the sharded five-step pipeline for one batch."""
        require(len(batch) > 0, "empty batch")
        graph = self.graph
        breakdown = TimeBreakdown()

        # -- step 1: dynamic graph update (host, shared) -------------------
        # every later step runs on the canonicalized *effective* batch
        batch, breakdown.update_ns = update_step(
            graph, batch, self.device, self.conflict_mode
        )

        # -- step 1b: invariant maintenance + certified skips (host) -------
        decision = None
        if self.prefilter_index is not None:
            pc = self.prefilter_index.apply_batch(batch)
            decision = self.prefilter_index.evaluate(self.plans, batch)
            pc.merge(decision.counters)
            breakdown.prefilter_ns = simulated_time_ns(pc, self.device, platform="cpu")
            if decision.skip_batch:
                # certified ΔM = 0 fleet-wide: no estimation, no per-shard
                # pack, no kernels, no all-reduce — only the host settles
                breakdown.reorg_ns = reorganize_step(graph, self.device)
                self.prefilter_index.close_batch()
                if self.clock is not None:
                    self.clock.annotate(breakdown)
                self.batches_processed += 1
                return MultiBatchResult(
                    delta_count=0,
                    match_stats=MatchStats(roots_skipped=decision.roots_total),
                    breakdown=breakdown,
                    match_counters=AccessCounters(),
                    estimation=None,
                    cached_vertices=np.empty(0, dtype=np.int64),
                    cache_bytes=0,
                    cache_hits=0,
                    cache_misses=0,
                    conflicts=graph.last_canonical_report,
                    prefilter=decision.to_stats(breakdown.prefilter_ns),
                )

        # -- step 2: frequency estimation (host, shared) -------------------
        # root-masked updates shrink the shared walk budget for the fleet
        estimate_input = decision.estimate_batch if decision is not None else batch
        estimation: EstimationResult | None = None
        if self.policy.requires_estimation:
            if self.adaptive_walks:
                estimation = self.estimator.estimate_adaptive(
                    self.plans, estimate_input, initial_walks=self.num_walks
                )
            else:
                estimation = self.estimator.estimate(
                    self.plans, estimate_input, num_walks=self.num_walks
                )
            breakdown.estimate_ns = simulated_time_ns(
                estimation.counters, self.device, platform="cpu_estimator"
            )
        frequencies = estimation.frequencies if estimation is not None else None

        # -- partition (host) ----------------------------------------------
        # per-batch re-placement folds into the pack phase; sticky ownership
        # (repartition mode) is its own host stage: repartition_ns
        owner: np.ndarray | None = None
        partition_ns = 0.0
        repart_report: RepartitionReport | None = None
        if self.num_devices > 1:
            part_counters = AccessCounters()
            if self.ownership is None:
                owner = self.partitioner.assign(
                    graph, frequencies, self.num_devices, part_counters,
                    roots=batch.edges,
                )
                partition_ns = simulated_time_ns(
                    part_counters, self.device, platform="cpu"
                )
            else:
                owner, repart_report = self._sticky_owner_step(
                    graph, frequencies, part_counters, batch.edges
                )
                breakdown.repartition_ns = (
                    simulated_time_ns(part_counters, self.device, platform="cpu")
                    + (repart_report.repartition_ns if repart_report else 0.0)
                )
                if repart_report is not None:
                    # surface the full stage cost (planning compute +
                    # migration traffic) to JSON consumers
                    repart_report = replace(
                        repart_report, repartition_ns=breakdown.repartition_ns
                    )

        # -- step 3: per-shard select + pack + DMA (own links overlap) -----
        ranked = self.policy.rank(graph, frequencies)
        parallel_map(
            lambda shard: shard.select_and_pack(graph, ranked, owner),
            self.shards,
            workers=self.workers,
        )
        breakdown.pack_ns = partition_ns + max(s.pack_ns for s in self.shards)

        # -- step 4: per-shard incremental matching ------------------------
        caches = [s.cache for s in self.shards]

        def _match_one(shard: Shard) -> _ShardMatchOutcome:
            counters = AccessCounters()
            view = ShardedDeviceView(
                graph, shard.device, counters, shard.cache,
                shard_id=shard.shard_id, owner=owner, peer_caches=caches,
            )
            mask = None
            if owner is not None:
                sid = shard.shard_id
                mask = lambda roots: owner[roots[:, 0]] == sid  # noqa: E731
            # the live index masker recomputes per shard-routed subset, so
            # skipped-root accounting partitions exactly across the fleet
            stats = match_batch(
                self.plans, batch, view, root_mask=mask,
                prefilter=self.prefilter_index, executor=self.executor,
            )
            match_ns = simulated_time_ns(counters, shard.device, platform="gpu")
            return _ShardMatchOutcome(stats, counters, match_ns, view)

        outcomes = parallel_map(_match_one, self.shards, workers=self.workers)
        breakdown.match_ns = max(o.match_ns for o in outcomes)
        breakdown.comm_ns = (
            allreduce_delta_ns(self.cluster, len(self.plans))
            if self.num_devices > 1
            else 0.0
        )

        # -- step 5: reorganize CPU lists (host, shared) -------------------
        breakdown.reorg_ns = reorganize_step(graph, self.device)
        if self.prefilter_index is not None:
            self.prefilter_index.close_batch()

        # -- aggregate across the fleet ------------------------------------
        total_stats = MatchStats()
        merged = AccessCounters()
        for o in outcomes:
            total_stats.merge(o.stats)
            merged.merge(o.counters)
        shard_reports = [
            ShardBatchReport(
                shard_id=s.shard_id,
                roots_processed=o.stats.roots_processed,
                match_ns=o.match_ns,
                pack_ns=s.pack_ns,
                cache_bytes=s.cache.total_bytes,
                cached_vertices=s.cache.num_cached,
                local_hits=o.view.hits,
                local_misses=o.view.misses,
                remote_hits=o.view.remote_hits,
                remote_misses=o.view.remote_misses,
                peer_bytes=o.counters.bytes_by_channel[Channel.PEER],
            )
            for s, o in zip(self.shards, outcomes)
        ]
        balance = LoadBalanceReport(
            shard_match_ns=tuple(o.match_ns for o in outcomes),
            shard_roots=tuple(o.stats.roots_processed for o in outcomes),
        )
        comm = comm_report([o.counters for o in outcomes], breakdown.comm_ns)
        if self.ownership is not None:
            # feed the heat EWMA with this batch's per-vertex read bytes
            self.ownership.observe(merged.vertex_access_bytes(graph.num_vertices))

        if self.clock is not None:
            self.clock.annotate(breakdown)
        self.batches_processed += 1
        self.total_delta += total_stats.signed_count
        return MultiBatchResult(
            delta_count=total_stats.signed_count,
            match_stats=total_stats,
            breakdown=breakdown,
            match_counters=merged,
            estimation=estimation,
            cached_vertices=np.concatenate([s.selected for s in self.shards])
            if self.shards
            else np.empty(0, dtype=np.int64),
            cache_bytes=sum(s.cache.total_bytes for s in self.shards),
            cache_hits=sum(o.view.total_hits for o in outcomes),
            cache_misses=sum(o.view.total_misses for o in outcomes),
            conflicts=graph.last_canonical_report,
            prefilter=decision.to_stats(breakdown.prefilter_ns)
            if decision is not None
            else None,
            shard_reports=shard_reports,
            load_balance=balance,
            comm=comm,
            repartition=repart_report,
        )

    def _sticky_owner_step(
        self,
        graph: DynamicGraph,
        frequencies: np.ndarray | None,
        counters: AccessCounters,
        roots: np.ndarray | None = None,
    ) -> tuple[np.ndarray, RepartitionReport | None]:
        """Owner map under online repartitioning (sticky across batches).

        First batch: one full partitioner placement.  Later batches: grow
        the map with hash homes for new vertices, then let the ownership
        manager evaluate drift and maybe migrate.
        """
        if self._owner is None:
            self._owner = self.partitioner.assign(
                graph, frequencies, self.num_devices, counters, roots=roots
            )
            return self._owner, None
        n = graph.num_vertices
        if n > self._owner.size:
            old = self._owner.size
            grown = _hash_owners(n, self.num_devices)
            grown[:old] = self._owner
            self._owner = grown
            counters.record_compute(n - old)
        self._owner, report = self.ownership.step(graph, self._owner, counters)
        return self._owner, report

    def process_stream(self, batches: list[UpdateBatch]) -> list[MultiBatchResult]:
        """Convenience: process a whole stream, returning per-batch results."""
        return [self.process_batch(b) for b in batches]

    def initial_match(self) -> tuple[int, float]:
        """Static bootstrap pass — see :meth:`GCSMEngine.initial_match`.

        Sharding the static pass is future work; it reuses the single-GPU
        implementation (zero-copy path on one device).
        """
        return GCSMEngine.initial_match(self)  # type: ignore[arg-type]

    def snapshot(self) -> StaticGraph:
        """Current settled graph snapshot."""
        return self.graph.snapshot()
