"""Multi-GPU sharded execution of the GCSM pipeline (simulated fleet).

Public surface:

* :class:`~repro.multigpu.engine.MultiGpuEngine` — the sharded engine;
  drop-in for :class:`~repro.core.engine.GCSMEngine` (``devices=1`` is
  bit-identical to it).
* :mod:`~repro.multigpu.partition` — hash / range / frequency-aware
  vertex-ownership strategies.
* :mod:`~repro.multigpu.shard` — per-device state and the peer-read path.
* :mod:`~repro.multigpu.comm` — interconnect cost model (PEER reads,
  ΔM all-reduce) and per-batch traffic reports.
"""

from repro.gpu.counters import Channel
from repro.multigpu.comm import CommReport, allreduce_delta_ns, comm_report
from repro.multigpu.engine import (
    LoadBalanceReport,
    MultiBatchResult,
    MultiGpuEngine,
    ShardBatchReport,
)
from repro.multigpu.partition import (
    PARTITIONER_NAMES,
    FrequencyPartitioner,
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.multigpu.shard import Shard, ShardedDeviceView

__all__ = [
    "MultiGpuEngine",
    "MultiBatchResult",
    "LoadBalanceReport",
    "ShardBatchReport",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "FrequencyPartitioner",
    "make_partitioner",
    "PARTITIONER_NAMES",
    "Shard",
    "ShardedDeviceView",
    "CommReport",
    "comm_report",
    "allreduce_delta_ns",
    "Channel",
]
