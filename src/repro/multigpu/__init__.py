"""Multi-GPU sharded execution of the GCSM pipeline (simulated fleet).

Public surface:

* :class:`~repro.multigpu.engine.MultiGpuEngine` — the sharded engine;
  drop-in for :class:`~repro.core.engine.GCSMEngine` (``devices=1`` is
  bit-identical to it).
* :mod:`~repro.multigpu.partition` — hash / range / frequency-aware /
  min-cut vertex-ownership strategies.
* :mod:`~repro.multigpu.repartition` — online repartitioning: sticky
  ownership, EWMA access-heat tracking, drift-triggered incremental
  migration priced as interconnect traffic.
* :mod:`~repro.multigpu.shard` — per-device state and the peer-read path.
* :mod:`~repro.multigpu.comm` — interconnect cost model (PEER reads,
  ΔM all-reduce) and per-batch traffic reports.
"""

from repro.gpu.counters import Channel
from repro.multigpu.comm import CommReport, allreduce_delta_ns, comm_report
from repro.multigpu.engine import (
    LoadBalanceReport,
    MultiBatchResult,
    MultiGpuEngine,
    ShardBatchReport,
)
from repro.multigpu.partition import (
    PARTITIONER_NAMES,
    FrequencyPartitioner,
    HashPartitioner,
    MincutPartitioner,
    Partitioner,
    RangePartitioner,
    adjacency_csr,
    make_partitioner,
    refine_labels,
    weighted_cut,
)
from repro.multigpu.repartition import (
    OwnershipManager,
    RepartitionConfig,
    RepartitionReport,
    normalize_repartition,
)
from repro.multigpu.shard import Shard, ShardedDeviceView

__all__ = [
    "MultiGpuEngine",
    "MultiBatchResult",
    "LoadBalanceReport",
    "ShardBatchReport",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "FrequencyPartitioner",
    "MincutPartitioner",
    "adjacency_csr",
    "weighted_cut",
    "refine_labels",
    "make_partitioner",
    "PARTITIONER_NAMES",
    "OwnershipManager",
    "RepartitionConfig",
    "RepartitionReport",
    "normalize_repartition",
    "Shard",
    "ShardedDeviceView",
    "CommReport",
    "comm_report",
    "allreduce_delta_ns",
    "Channel",
]
