"""Inter-device communication model: peer reads and the ΔM all-reduce.

Two kinds of cross-device traffic exist in the sharded pipeline:

* **fine-grained peer reads** — when a shard's matching walk crosses a
  partition boundary into a remote shard's *cached* list.  These are
  recorded per access on :data:`~repro.gpu.counters.Channel.PEER` by
  :class:`~repro.multigpu.shard.ShardedDeviceView` and priced as kernel
  stalls by :func:`~repro.gpu.clock.simulated_time_ns` (same reasoning as
  zero-copy: latency-bound single-list reads do not overlap with compute);
* **the per-batch collective** — each shard produces its partial signed
  ΔM_i per plan; a ring all-reduce combines them into the batch's ΔM.
  Payload is tiny (a handful of int64 counters), so the collective is
  latency-dominated: ``2(N-1)`` steps of
  :attr:`~repro.gpu.device.ClusterConfig.allreduce_latency_ns` each.

Both models are deliberately *knob-sensitive*: switching the
:class:`~repro.gpu.device.ClusterConfig` interconnect between ``nvlink``
and ``pcie`` re-prices every PEER line and all-reduce step, which is what
the interconnect-sensitivity experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import ClusterConfig

__all__ = ["allreduce_delta_ns", "CommReport", "comm_report"]

#: bytes per reduced counter (int64 partial ΔM per plan, plus the total)
_COUNTER_BYTES = 8


def allreduce_delta_ns(cluster: ClusterConfig, num_plans: int) -> float:
    """Simulated cost of all-reducing the per-plan signed counts.

    Zero on a single device — there is nothing to combine, so the N=1
    pipeline's timing is untouched by the collective model.
    """
    payload = (num_plans + 1) * _COUNTER_BYTES
    return cluster.allreduce_time_ns(payload)


@dataclass(frozen=True)
class CommReport:
    """Cross-device traffic of one batch, aggregated over shards."""

    peer_bytes: int
    peer_transactions: int
    zero_copy_bytes: int
    allreduce_ns: float

    @property
    def peer_fraction(self) -> float:
        """PEER share of all off-device byte traffic (the interconnect
        pressure the scaling table attributes sub-linearity to)."""
        total = self.peer_bytes + self.zero_copy_bytes
        return self.peer_bytes / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "peer_bytes": self.peer_bytes,
            "peer_transactions": self.peer_transactions,
            "zero_copy_bytes": self.zero_copy_bytes,
            "allreduce_ns": self.allreduce_ns,
            "peer_fraction": self.peer_fraction,
        }


def comm_report(
    shard_counters: list[AccessCounters], allreduce_ns: float
) -> CommReport:
    """Aggregate the fleet's cross-device traffic for one batch."""
    return CommReport(
        peer_bytes=sum(c.bytes_by_channel[Channel.PEER] for c in shard_counters),
        peer_transactions=sum(
            c.transactions_by_channel[Channel.PEER] for c in shard_counters
        ),
        zero_copy_bytes=sum(
            c.bytes_by_channel[Channel.ZERO_COPY] for c in shard_counters
        ),
        allreduce_ns=allreduce_ns,
    )
