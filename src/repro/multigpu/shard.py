"""Per-device shard state and the sharded kernel data path.

Each :class:`Shard` is one simulated GPU: it owns its own
:class:`~repro.gpu.device.DeviceConfig`, its slice of the DCSR cache (built
from the hot vertices *it owns*, within its own device-buffer budget), its
own :class:`~repro.gpu.counters.AccessCounters`, and its own DMA engine
(every card sits on its own host link, so per-shard uploads overlap).

:class:`ShardedDeviceView` extends GCSM's cached view with the multi-GPU
read path.  For a vertex the shard owns it is byte-for-byte the single-GPU
view (probe own rowidx; hit → GPU global, miss → host zero-copy).  For a
remote-owned vertex the kernel probes the owner's (replicated, tiny) rowidx
directory: a remote *hit* is served over the peer interconnect
(:data:`~repro.gpu.counters.Channel.PEER`), a remote *miss* falls back to
host zero-copy — the host graph is pinned and visible to every device, so
an uncached list never takes two hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import CachedDeviceView, select_within_budget
from repro.core.dcsr import DcsrCache
from repro.core.engine import pack_step
from repro.graphs.dynamic_graph import DynamicGraph
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import DeviceConfig
from repro.query.plan import EdgeVersion

__all__ = ["Shard", "ShardedDeviceView"]


@dataclass
class Shard:
    """State of one simulated device in the fleet."""

    shard_id: int
    device: DeviceConfig
    cache_budget_bytes: int
    cache: DcsrCache | None = None
    selected: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    pack_ns: float = 0.0

    def select_and_pack(
        self,
        graph: DynamicGraph,
        ranked: np.ndarray,
        owner: np.ndarray | None,
    ) -> None:
        """Step 3 for this shard: keep the owned prefix of the global rank,
        fit it to this device's budget, pack, and DMA (own link).

        With ``owner is None`` (single device) the selection is exactly the
        single-GPU engine's ``policy.select`` — same rank array, same greedy
        budget prefix — which is what the N=1 equivalence invariant rests on.
        """
        if owner is not None:
            ranked = ranked[owner[ranked] == self.shard_id]
        self.selected = select_within_budget(graph, ranked, self.cache_budget_bytes)
        self.cache, self.pack_ns = pack_step(graph, self.selected, self.device)


class ShardedDeviceView(CachedDeviceView):
    """GCSM's cached view plus the remote-read path of a sharded fleet.

    ``owner is None`` short-circuits every branch below and behaves exactly
    like :class:`~repro.core.cache.CachedDeviceView` — the N=1 case.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        device: DeviceConfig,
        counters: AccessCounters,
        cache: DcsrCache,
        *,
        shard_id: int = 0,
        owner: np.ndarray | None = None,
        peer_caches: list[DcsrCache] | None = None,
    ) -> None:
        super().__init__(graph, device, counters, cache)
        self.shard_id = shard_id
        self.owner = owner
        self.peer_caches = peer_caches or []
        self.remote_hits = 0
        self.remote_misses = 0

    def fetch(self, v: int, version: EdgeVersion) -> tuple[np.ndarray, ...]:
        if self.owner is None or int(self.owner[v]) == self.shard_id:
            return super().fetch(v, version)
        return self._fetch_remote(v, int(self.owner[v]), version)

    def _fetch_remote(
        self, v: int, owner_shard: int, version: EdgeVersion
    ) -> tuple[np.ndarray, ...]:
        remote = self.peer_caches[owner_shard]
        # the kernel probes the replicated remote rowidx directory the same
        # way it probes its own (Sec. V-C's binary search, remote copy)
        self.counters.record_compute(remote.probe_cost_ops())
        row = remote.lookup(v)
        if row >= 0:
            self.remote_hits += 1
            if version is EdgeVersion.OLD:
                runs: tuple[np.ndarray, ...] = (remote.neighbors_old(row),)
            else:
                base, delta = remote.neighbors_new_parts(row)
                runs = (base, delta) if delta.size else (base,)
            nbytes = self._nbytes(runs)
            lines = self.device.peer_lines(nbytes)
            self.counters.record_access(Channel.PEER, v, nbytes, transactions=lines)
            return runs
        # remote miss: the list lives only in pinned host memory, which every
        # device reads directly — one zero-copy hop, never peer + host
        self.remote_misses += 1
        runs = self._runs(v, version)
        nbytes = self._nbytes(runs)
        lines = self.device.zero_copy_lines(nbytes)
        self.counters.record_access(Channel.ZERO_COPY, v, nbytes, transactions=lines)
        return runs

    def fetch_block(self, vertices: np.ndarray, version: EdgeVersion) -> None:
        """Vectorized recording with the sharded routing of :meth:`fetch`.

        Locally-owned accesses take the single-GPU cached path; remote-owned
        ones are grouped per owner shard, probe that shard's replicated
        rowidx directory, and are charged to the peer interconnect (hit) or
        host zero-copy (miss) — summing to exactly the per-access counters.
        """
        if self.owner is None:
            super().fetch_block(vertices, version)
            return
        owners = self.owner[vertices]
        local = owners == self.shard_id
        super().fetch_block(vertices[local], version)
        remote_verts = vertices[~local]
        remote_owners = owners[~local]
        for sid in np.unique(remote_owners).tolist():
            verts = remote_verts[remote_owners == sid]
            remote = self.peer_caches[int(sid)]
            self.counters.record_compute(remote.probe_cost_ops() * int(verts.size))
            hit = remote.lookup_block(verts)
            self.remote_hits += int(np.count_nonzero(hit))
            self.remote_misses += int(verts.size - np.count_nonzero(hit))
            nbytes = self._block_nbytes(verts, version)
            hit_bytes = nbytes[hit]
            peer_lines = -(-hit_bytes // self.device.peer_line_bytes)
            self.counters.record_access_block(
                Channel.PEER, verts[hit], hit_bytes, transactions=peer_lines
            )
            miss = ~hit
            if miss.any():
                miss_bytes = nbytes[miss]
                zc_lines = -(-miss_bytes // self.device.zero_copy_line_bytes)
                self.counters.record_access_block(
                    Channel.ZERO_COPY, verts[miss], miss_bytes, transactions=zc_lines
                )

    @property
    def total_hits(self) -> int:
        """Reads served from *some* device's cache (local or peer)."""
        return self.hits + self.remote_hits

    @property
    def total_misses(self) -> int:
        """Reads that fell through to host memory."""
        return self.misses + self.remote_misses
