"""Shared utilities: seeded RNG plumbing, validation helpers, formatting.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  :func:`as_generator` normalizes both forms so
call sites never touch global NumPy RNG state, keeping all experiments
deterministic and replayable.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generator",
    "require",
    "is_sorted",
    "format_bytes",
    "format_time_ns",
    "merge_sorted",
    "merge_sorted_unique",
    "intersect_sorted",
    "intersect_sorted_merge",
    "intersect_sorted_gallop",
    "GALLOP_RATIO",
    "VERTEX_DTYPE",
]

#: dtype used for vertex ids throughout the library.  int64 keeps headroom for
#: the encoded deletion marks (``-(v+1)``) used by the dynamic graph store.
VERTEX_DTYPE = np.int64


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a new
    PCG64 generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generator(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Used when a component needs private randomness that must not perturb the
    caller's stream (e.g. the frequency estimator inside the GCSM engine).
    """
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def is_sorted(values: np.ndarray) -> bool:
    """Return True when 1-D ``values`` is non-decreasing."""
    if values.size <= 1:
        return True
    return bool(np.all(values[:-1] <= values[1:]))


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable linear merge of two sorted 1-D arrays, duplicates preserved.

    The vectorized analog of a two-pointer merge: each element's output slot
    is its own rank plus the number of elements of the *other* run that
    precede it, obtained with two ``searchsorted`` passes instead of the
    concatenate-then-full-sort that :func:`numpy.sort` would run.  Elements
    of ``a`` win ties (``side='left'``/``'right'``), matching a two-pointer
    merge that pops from ``a`` on ``<=``.
    """
    if a.size == 0:
        return np.asarray(b, dtype=VERTEX_DTYPE).copy()
    if b.size == 0:
        return np.asarray(a, dtype=VERTEX_DTYPE).copy()
    out = np.empty(a.size + b.size, dtype=VERTEX_DTYPE)
    out[np.arange(a.size) + np.searchsorted(b, a, side="left")] = a
    out[np.arange(b.size) + np.searchsorted(a, b, side="right")] = b
    return out


def segment_offsets(lengths: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of segment lengths, with the total appended.

    ``offsets[i]`` is where segment ``i`` starts in the flat buffer and
    ``offsets[-1]`` is the total size — the standard GPU scan that turns
    per-row lengths into bulk-copy destinations (DCSR packing, frontier
    candidate buffers).
    """
    out = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=out[1:])
    return out


def merge_sorted_unique(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted unique 1-D arrays into one sorted unique array.

    Mirrors the linear-time merge step the paper uses when reorganizing
    updated neighbor lists (Sec. V-A step 4).
    """
    if a.size == 0:
        return np.asarray(b, dtype=VERTEX_DTYPE).copy()
    if b.size == 0:
        return np.asarray(a, dtype=VERTEX_DTYPE).copy()
    merged = np.union1d(a, b)
    return merged.astype(VERTEX_DTYPE, copy=False)


#: size ratio above which :func:`intersect_sorted` switches from the
#: merge-based kernel to galloping probes of the smaller array into the
#: larger one (the classic skewed-intersection crossover).
GALLOP_RATIO = 8


def intersect_sorted_merge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge-based intersection of two sorted unique arrays.

    Equivalent to the unrolled SIMD set intersection in STMatch;
    ``np.intersect1d(assume_unique=True)`` runs the same merge-based
    algorithm vectorized in C.  Best when the inputs are of similar size.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    return np.intersect1d(a, b, assume_unique=True).astype(VERTEX_DTYPE, copy=False)


def intersect_sorted_gallop(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Galloping intersection: binary-probe the smaller array into the larger.

    ``O(min·log(max))`` instead of the merge kernel's ``O(min+max)`` — the
    GPU matchers' binary-search intersection for skewed list sizes.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    small, large = (a, b) if a.size <= b.size else (b, a)
    pos = np.searchsorted(large, small)
    in_range = pos < large.size
    hit = np.zeros(small.size, dtype=bool)
    hit[in_range] = large[pos[in_range]] == small[in_range]
    return small[hit].astype(VERTEX_DTYPE, copy=False)


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique vertex arrays.

    The WCOJ executor's innermost primitive.  Dispatches on the size ratio:
    similar sizes take the linear merge kernel, skewed sizes gallop the
    smaller array through the larger one.  Both return the identical sorted
    unique intersection.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=VERTEX_DTYPE)
    small, large = (a, b) if a.size <= b.size else (b, a)
    if large.size >= GALLOP_RATIO * small.size:
        return intersect_sorted_gallop(small, large)
    return intersect_sorted_merge(small, large)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count (e.g. ``'3.2 MB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time_ns(ns: float) -> str:
    """Human-readable simulated duration from nanoseconds."""
    if ns < 1e3:
        return f"{ns:.0f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.2f} us"
    if ns < 1e9:
        return f"{ns / 1e6:.2f} ms"
    return f"{ns / 1e9:.3f} s"


def geometric_mean(values: Sequence[float] | Iterable[float]) -> float:
    """Geometric mean of positive values (used for average-speedup reporting)."""
    vals = [float(v) for v in values]
    require(len(vals) > 0, "geometric_mean of empty sequence")
    require(all(v > 0 for v in vals), "geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
