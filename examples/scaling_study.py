#!/usr/bin/env python3
"""Multi-GPU scaling study: how far does sharding the GCSM pipeline go?

Sweeps the simulated fleet size (1/2/4/8 devices) and the vertex
partitioner (hash / range / frequency-aware) on one workload, and prints

* the device-scaling table — end-to-end and kernel-phase speedup,
  cross-device (PEER) traffic, all-reduce cost, and load imbalance;
* the partitioner ablation at a fixed fleet size — how much PEER traffic
  the frequency-aware partitioner removes, and what it costs in host-side
  partitioning time and balance;
* the interconnect sensitivity — the same fleet on NVLink vs PCIe-P2P.

Everything is simulated and deterministic; see docs/multigpu.md.

Run:  python examples/scaling_study.py
"""

from repro.core.engine import GCSMEngine
from repro.gpu.device import ClusterConfig
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.multigpu import MultiGpuEngine
from repro.query import QueryGraph
from repro.utils import format_bytes, format_time_ns


def run_fleet(g0, batches, query, *, devices, partitioner="hash",
              interconnect="nvlink"):
    engine = MultiGpuEngine(
        g0, query,
        devices=ClusterConfig(num_devices=devices, interconnect=interconnect),
        partitioner=partitioner, seed=7,
    )
    results = [engine.process_batch(b) for b in batches]
    return {
        "delta": sum(r.delta_count for r in results),
        "total_ns": sum(r.breakdown.total_ns for r in results),
        "match_ns": sum(r.breakdown.match_ns for r in results),
        "comm_ns": sum(r.breakdown.comm_ns for r in results),
        "peer_bytes": sum(r.comm.peer_bytes for r in results if r.comm),
        "imbalance": max((r.load_balance.imbalance for r in results
                          if r.load_balance), default=1.0),
        "straggler": results[-1].load_balance.straggler
        if results[-1].load_balance else None,
    }


def main() -> None:
    graph = powerlaw_graph(6_000, 12.0, max_degree=250, num_labels=1, seed=7)
    query = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
    g0, batches = derive_stream(graph, num_updates=768, batch_size=256, seed=7)
    print(f"workload: {g0}, {len(batches)} batches of 256, query {query.name}\n")

    # sanity: the sharded engine must agree with the single-GPU engine
    single = GCSMEngine(g0, query, seed=7)
    expected = sum(single.process_batch(b).delta_count for b in batches)

    print("== device scaling (NVLink fleet, hash partitioner)")
    print(f"{'devices':>8} {'total':>10} {'speedup':>8} {'match':>10} "
          f"{'peer':>10} {'comm':>10} {'imbalance':>9}")
    base = None
    for n in (1, 2, 4, 8):
        r = run_fleet(g0, batches, query, devices=n)
        assert r["delta"] == expected, "sharding changed the answer!"
        base = base or r["total_ns"]
        print(f"{n:>8} {format_time_ns(r['total_ns']):>10} "
              f"{base / r['total_ns']:>7.2f}x {format_time_ns(r['match_ns']):>10} "
              f"{format_bytes(r['peer_bytes']):>10} "
              f"{format_time_ns(r['comm_ns']):>10} {r['imbalance']:>9.2f}")

    print("\n== partitioner ablation (4 devices, NVLink)")
    print(f"{'partitioner':>12} {'total':>10} {'peer':>10} "
          f"{'imbalance':>9} {'straggler':>9}")
    for part in ("hash", "range", "freq", "mincut"):
        r = run_fleet(g0, batches, query, devices=4, partitioner=part)
        assert r["delta"] == expected
        straggler = "-" if r["straggler"] is None else str(r["straggler"])
        print(f"{part:>12} {format_time_ns(r['total_ns']):>10} "
              f"{format_bytes(r['peer_bytes']):>10} {r['imbalance']:>9.2f} "
              f"shard {straggler:>3}")

    print("\n== interconnect sensitivity (4 devices, hash partitioner)")
    for link in ("nvlink", "pcie"):
        r = run_fleet(g0, batches, query, devices=4, interconnect=link)
        assert r["delta"] == expected
        print(f"{link:>8}: total {format_time_ns(r['total_ns'])}, "
              f"match {format_time_ns(r['match_ns'])} "
              f"(peer traffic {format_bytes(r['peer_bytes'])})")

    print("\nTakeaway: speedup is monotone but sub-linear — serial host "
          "phases,\npeer-read stalls, and the ΔM all-reduce all grow their "
          "share with N;\nthe frequency-aware and min-cut partitioners trade "
          "host-side placement\ntime for less interconnect traffic (mincut "
          "cutting the most).")


if __name__ == "__main__":
    main()
