#!/usr/bin/env python3
"""Monitoring a whole rule book of patterns with one shared pipeline.

Production CSM systems rarely watch a single pattern: a fraud team runs a
*rule book*.  Running one engine per rule repeats the per-batch graph
update, frequency estimation, cache packing, DMA, and reorganization for
every rule.  The :class:`repro.MultiQueryEngine` extension shares all of
that — one pooled random-walk estimate covers the union workload (the sum
of unbiased per-rule estimates is unbiased for the union), one DCSR cache
serves every rule's kernel.

This example monitors the full Q1-Q6 catalog on the LiveJournal analog and
compares wall-of-simulated-time against six independent engines.
"""

from repro import GCSMEngine, MultiQueryEngine, QUERIES, QUERY_ORDER
from repro.bench.harness import build_workload
from repro.utils import format_time_ns


def _shared_phases(bd) -> float:
    """Everything except the matching kernel: paid once per batch."""
    return bd.update_ns + bd.estimate_ns + bd.pack_ns + bd.reorg_ns


def main() -> None:
    # small batches = frequent pipeline turns, where the fixed per-batch
    # phases (update / estimate / pack / reorganize) matter most
    g0, batches = build_workload("LJ", batch_size=64, num_batches=6, seed=0)
    rules = [QUERIES[name] for name in QUERY_ORDER]
    print(f"rule book: {len(rules)} patterns ({', '.join(QUERY_ORDER)}) on {g0}\n")

    # --- shared pipeline ------------------------------------------------
    shared = MultiQueryEngine(g0, rules, seed=5)
    shared_ns = 0.0
    shared_phase_ns = 0.0
    print("multi-query engine (shared update/FE/cache/reorg):")
    for k, batch in enumerate(batches):
        r = shared.process_batch(batch)
        shared_ns += r.breakdown.total_ns
        shared_phase_ns += _shared_phases(r.breakdown)
        deltas = "  ".join(f"{n}:{d:+d}" for n, d in r.delta_counts.items())
        print(f"  batch {k}: {format_time_ns(r.breakdown.total_ns):>9}  {deltas}")

    # --- one engine per rule ---------------------------------------------
    separate_ns = 0.0
    separate_phase_ns = 0.0
    engines = {q.name: GCSMEngine(g0, q, seed=5) for q in rules}
    per_rule_deltas = {name: 0 for name in QUERY_ORDER}
    for batch in batches:
        for name, engine in engines.items():
            result = engine.process_batch(batch)
            separate_ns += result.breakdown.total_ns
            separate_phase_ns += _shared_phases(result.breakdown)
            per_rule_deltas[name] += result.delta_count

    # the shared pipeline computes exactly the same answers
    shared_totals = {name: 0 for name in QUERY_ORDER}
    check = MultiQueryEngine(g0, rules, seed=5)
    for batch in batches:
        r = check.process_batch(batch)
        for name, d in r.delta_counts.items():
            shared_totals[name] += d
    assert shared_totals == per_rule_deltas

    print(f"\nsimulated time, {len(batches)} batches x {len(rules)} rules:")
    print(f"  separate engines : {format_time_ns(separate_ns)} total, "
          f"{format_time_ns(separate_phase_ns)} in non-matching phases")
    print(f"  shared pipeline  : {format_time_ns(shared_ns)} total "
          f"({separate_ns / shared_ns:.2f}x), "
          f"{format_time_ns(shared_phase_ns)} in non-matching phases "
          f"({separate_phase_ns / shared_phase_ns:.2f}x saved)")
    print("  (identical ΔM per rule — verified)")


if __name__ == "__main__":
    main()
