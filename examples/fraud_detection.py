#!/usr/bin/env python3
"""Continuous fraud-pattern monitoring on a transaction stream.

The paper's motivating scenario (Sec. I): "financial transactions among bank
accounts are a dynamic graph, and CSM can be used to monitor suspected
transaction patterns such as money laundering."

This example models a payment network: vertices are accounts labeled by type
(0=retail, 1=business, 2=mule-suspect, 3=exchange) and edges are transaction
relationships arriving in batches.  Two classic laundering motifs are
monitored simultaneously:

* **cycle-4** — money moving in a ring through a suspect account
  (layering), and
* **fan-in bridge** — two retail accounts both feeding a business that
  forwards to an exchange (smurfing + cash-out).

Every batch, GCSM reports how many *new* instances of each pattern appeared
(or disappeared, when transactions age out of the monitoring window, modeled
as deletions).  Materialized new embeddings are printed as alerts.
"""

from collections import Counter

import numpy as np

from repro.core.engine import GCSMEngine
from repro.core.matching import match_batch
from repro.gpu import AccessCounters, HostCPUView, default_device
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph, compile_delta_plans
from repro.utils import format_time_ns

RETAIL, BUSINESS, SUSPECT, EXCHANGE = 0, 1, 2, 3


def laundering_cycle() -> QueryGraph:
    """4-cycle through a suspect account: retail -> business -> suspect ->
    exchange -> back to the retail account."""
    return QueryGraph(
        4,
        [(0, 1), (1, 2), (2, 3), (0, 3)],
        labels=[RETAIL, BUSINESS, SUSPECT, EXCHANGE],
        name="laundering-cycle",
    )


def fan_in_bridge() -> QueryGraph:
    """Two retail accounts feeding one business that forwards to an
    exchange, with the retail pair also transacting directly (a tell)."""
    return QueryGraph(
        4,
        [(0, 2), (1, 2), (0, 1), (2, 3)],
        labels=[RETAIL, RETAIL, BUSINESS, EXCHANGE],
        name="fan-in-bridge",
    )


def main() -> None:
    rng = np.random.default_rng(11)
    # Payment network: heavy-tailed account activity, labeled account types.
    network = powerlaw_graph(8_000, 9.0, max_degree=200, num_labels=4, seed=11)
    g0, batches = derive_stream(network, update_fraction=0.08, batch_size=96, seed=11)
    print(f"payment network: {network}")
    print(f"monitoring {len(batches)} transaction batches of ≤96 updates each\n")

    patterns = [laundering_cycle(), fan_in_bridge()]
    engines = {p.name: GCSMEngine(g0, p, seed=13) for p in patterns}
    alerts: Counter[str] = Counter()

    for k, batch in enumerate(batches[:6]):
        line = [f"batch {k}:"]
        for pattern in patterns:
            engine = engines[pattern.name]
            result = engine.process_batch(batch)
            alerts[pattern.name] += max(0, result.delta_count)
            line.append(
                f"{pattern.name}: ΔM={result.delta_count:+5d} "
                f"({format_time_ns(result.breakdown.total_ns)})"
            )
        print("  ".join(line))

    print("\ncumulative new pattern instances (embeddings):")
    for name, count in alerts.items():
        print(f"  {name:18s} {count}")

    # Drill-down: materialize the actual new embeddings of the last batch
    # for the cycle pattern (an analyst wants account ids, not counts).
    pattern = patterns[0]
    engine = engines[pattern.name]
    batch = batches[6]
    engine.graph.apply_batch(batch)
    hits: list[tuple[tuple[int, ...], int]] = []
    view = HostCPUView(engine.graph, default_device(), AccessCounters())
    match_batch(compile_delta_plans(pattern), batch, view,
                sink=lambda emb, sign: hits.append((emb, sign)))
    engine.graph.reorganize()
    new_rings = [emb for emb, sign in hits if sign > 0][:5]
    print(f"\nbatch 6 drill-down — first {len(new_rings)} new "
          f"{pattern.name} instances (retail, business, suspect, exchange):")
    for emb in new_rings:
        print(f"  accounts {emb}")


if __name__ == "__main__":
    main()
