#!/usr/bin/env python3
"""Quickstart: continuous subgraph matching with GCSM in ~40 lines.

Builds a small labeled power-law graph, derives a dynamic edge stream from
it (the paper's Sec. VI-A methodology), and monitors a labeled triangle
pattern continuously with the GCSM engine — printing, per batch, the signed
incremental match count ΔM, the simulated per-phase timings, and the GPU
cache statistics.

Run:  python examples/quickstart.py
"""

from repro.core.engine import GCSMEngine
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph
from repro.utils import format_bytes, format_time_ns


def main() -> None:
    # 1. A data graph: 5k vertices, power-law degrees, 4 vertex labels.
    graph = powerlaw_graph(5_000, 10.0, max_degree=150, num_labels=4, seed=7)
    print(f"data graph: {graph}")

    # 2. A query: triangle with labels (0, 1, 1).
    triangle = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels=[0, 1, 1],
                          name="labeled-triangle")
    print(f"query:      {triangle}")

    # 3. A dynamic stream: 10% of edges become updates (half insertions,
    #    half deletions), replayed in batches of 128.
    g0, batches = derive_stream(graph, update_fraction=0.10, batch_size=128, seed=7)
    print(f"initial snapshot: {g0}, {len(batches)} update batches\n")

    # 4. Continuous matching with the GCSM engine.
    engine = GCSMEngine(g0, triangle, seed=7)
    running_total = 0
    for k, batch in enumerate(batches):
        result = engine.process_batch(batch)
        running_total += result.delta_count
        bd = result.breakdown
        print(
            f"batch {k}: ΔM={result.delta_count:+6d}  "
            f"total={format_time_ns(bd.total_ns):>9}  "
            f"(FE {100 * bd.fe_fraction:4.1f}%, DC {100 * bd.dc_fraction:4.1f}%)  "
            f"cache={len(result.cached_vertices):4d} vertices "
            f"/ {format_bytes(result.cache_bytes):>9}  "
            f"hit-rate={result.cache_hits / max(1, result.cache_hits + result.cache_misses):.2f}"
        )

    print(f"\nnet match-count change over the stream: {running_total:+d}")

    # 5. Sanity: replaying the stream from scratch gives the same number.
    from repro.core.reference import count_embeddings

    expected = count_embeddings(engine.snapshot(), triangle) - count_embeddings(g0, triangle)
    assert running_total == expected, (running_total, expected)
    print(f"verified against a from-scratch recount: {expected:+d} ✓")


if __name__ == "__main__":
    main()
