#!/usr/bin/env python3
"""How close is GCSM's online cache to the offline optimum?

The random-walk policy predicts access frequencies *before* matching; the
best any same-size cache could do is known only *after* matching.  This
example captures the exact access trace of one batch with
:class:`repro.gpu.TracingView`, then replays the identical trace under:

* the empty cache (= the ZC baseline),
* degree-ranked caches (the Naive policy),
* GCSM's actual online selection, and
* the **offline-optimal** cache of the same size (the trace's own
  most-accessed vertices),

pricing each with the device cost model.  The gap between GCSM's selection
and the oracle is the headroom left for any smarter online policy — the
kind of analysis Sec. IV's estimator guarantees are about.
"""

import numpy as np

from repro.bench.harness import build_workload
from repro.core.engine import GCSMEngine
from repro.core.matching import match_batch
from repro.gpu import (
    AccessCounters,
    Channel,
    TracingView,
    ZeroCopyView,
    default_device,
    replay_cached,
    simulated_time_ns,
)
from repro.graphs import DynamicGraph
from repro.query import compile_delta_plans, query_by_name
from repro.utils import format_bytes, format_time_ns


def main() -> None:
    device = default_device()
    g0, batches = build_workload("FR", batch_size=256, seed=0)
    batch = batches[0]
    query = query_by_name("Q2")
    print(f"workload: {g0}, query {query.name}, |ΔE|={len(batch)}\n")

    # 1. GCSM's actual run (online policy)
    engine = GCSMEngine(g0, query, seed=1)
    gcsm = engine.process_batch(batch)
    online_set = set(gcsm.cached_vertices.tolist())
    k = len(online_set)

    # 2. capture the exact access trace of the same batch
    dg = DynamicGraph(g0)
    dg.apply_batch(batch)
    view = TracingView(ZeroCopyView(dg, device, AccessCounters()))
    match_batch(compile_delta_plans(query), batch, view)
    trace = view.trace()
    dg.reorganize()
    print(f"trace: {len(trace):,} accesses to {trace.distinct_vertices().size:,} "
          f"distinct vertices, {format_bytes(trace.total_bytes)} of list data")
    print(f"GCSM cached {k} vertices ({format_bytes(gcsm.cache_bytes)})\n")

    # 3. replay the trace under competing cache selections of the same size
    degrees = np.array([dg.degree_new(v) for v in range(dg.num_vertices)])
    contenders = {
        "no cache (ZC)": set(),
        f"degree top-{k} (Naive)": set(np.argsort(-degrees)[:k].tolist()),
        f"GCSM online top-{k}": online_set,
        f"offline oracle top-{k}": set(trace.top_vertices(k).tolist()),
    }
    print(f"{'cache selection':>24} {'PCIe traffic':>14} {'kernel time':>12} {'hit rate':>9}")
    oracle_ns = online_ns = None
    for label, cached in contenders.items():
        counters = replay_cached(trace, device, cached)
        t = simulated_time_ns(counters, device)
        traffic = counters.bytes_by_channel[Channel.ZERO_COPY]
        hits = sum(1 for v in trace.vertices.tolist() if v in cached)
        print(f"{label:>24} {format_bytes(traffic):>14} "
              f"{format_time_ns(t):>12} {hits / len(trace):>9.2f}")
        if "oracle" in label:
            oracle_ns = t
        if "online" in label:
            online_ns = t

    assert oracle_ns is not None and online_ns is not None
    print(f"\nGCSM's online selection is within {online_ns / oracle_ns:.2f}x of the "
          f"offline-optimal cache of the same size.")


if __name__ == "__main__":
    main()
