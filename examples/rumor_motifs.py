#!/usr/bin/env python3
"""Rumor-spread motif tracking on a social message stream.

The paper's other motivating scenario (Sec. I): "message transmission on a
social network can be modeled as a dynamic graph, and CSM can be used to
detect the spread of rumors."  Rumor-diffusion research characterizes
cascades by their local wiring motifs — e.g. densely-triangulated spread
(echo chambers) versus broadcast stars.

This example streams message edges into a social graph and continuously
tracks the *distinct subgraph* counts (embeddings / |Aut|) of all connected
size-4 motifs, comparing the GCSM engine against the zero-copy baseline on
the same stream — reproducing, at example scale, the system comparison of
the paper's road-network experiment (Fig. 11, where wildcard motifs are the
workload).
"""

import numpy as np

from repro.core.baselines import make_system
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import motifs
from repro.query.symmetry import automorphism_count
from repro.utils import format_time_ns


def main() -> None:
    social = powerlaw_graph(6_000, 8.0, max_degree=120, num_labels=1, seed=23)
    g0, batches = derive_stream(social, update_fraction=0.06, batch_size=64, seed=23)
    print(f"social graph: {social}")

    size4 = motifs(4)
    print(f"tracking {len(size4)} connected size-4 motifs over "
          f"{min(4, len(batches))} message batches\n")

    header = f"{'motif':>10} {'edges':>5} {'|Aut|':>5} {'Δsubgraphs':>12} " \
             f"{'GCSM':>10} {'ZC':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))

    for motif in size4:
        gcsm = make_system("GCSM", g0, motif, seed=29)
        zc = make_system("ZC", g0, motif, seed=29)
        delta_embeddings = 0
        gcsm_ns = zc_ns = 0.0
        for batch in batches[:4]:
            r1 = gcsm.process_batch(batch)
            r2 = zc.process_batch(batch)
            assert r1.delta_count == r2.delta_count  # same answer, different data path
            delta_embeddings += r1.delta_count
            gcsm_ns += r1.breakdown.total_ns
            zc_ns += r2.breakdown.total_ns
        aut = automorphism_count(motif)
        assert delta_embeddings % aut == 0, "embedding orbit counts must divide evenly"
        print(
            f"{motif.name:>10} {motif.num_edges:>5} {aut:>5} "
            f"{delta_embeddings // aut:>+12d} "
            f"{format_time_ns(gcsm_ns):>10} {format_time_ns(zc_ns):>10} "
            f"{zc_ns / gcsm_ns:>7.2f}x"
        )

    print("\nΔsubgraphs = net change in *distinct* motif occurrences "
          "(embeddings divided by the motif's automorphism count).")


if __name__ == "__main__":
    main()
