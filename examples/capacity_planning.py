#!/usr/bin/env python3
"""Capacity planning: choosing a GPU cache budget and sampling effort.

A systems-facing example: before deploying continuous matching against a
graph that exceeds GPU memory, an operator wants to know (a) how much cache
buffer actually pays off, and (b) how many random walks the frequency
estimator needs.  This script sweeps both knobs on the SF3K-style analog
and prints the trade-off tables, using the same simulated cost model as the
paper-reproduction benchmarks.

It also demonstrates the device model is a first-class object: the second
sweep re-prices the *same counted run* under a slower interconnect
(PCIe 8 GB/s vs 16 GB/s), showing how GCSM's advantage grows when the
CPU-GPU link gets relatively slower — the regime the paper targets.
"""

from repro.bench.harness import build_workload
from repro.core.engine import GCSMEngine
from repro.gpu.device import DeviceConfig, default_device
from repro.query import query_by_name
from repro.utils import format_bytes, format_time_ns


def sweep_cache_budget(g0, batch, query) -> None:
    print("cache-budget sweep (frequency policy, Q4):")
    print(f"{'budget':>10} {'total':>10} {'match':>10} {'PCIe traffic':>14} {'hit rate':>9}")
    for budget in (0, 50_000, 200_000, 800_000, 1_400_000):
        engine = GCSMEngine(g0, query, cache_budget_bytes=budget, seed=3)
        r = engine.process_batch(batch)
        hit = r.cache_hits / max(1, r.cache_hits + r.cache_misses)
        print(
            f"{format_bytes(budget):>10} {format_time_ns(r.breakdown.total_ns):>10} "
            f"{format_time_ns(r.breakdown.match_ns):>10} "
            f"{format_bytes(r.cpu_access_bytes):>14} {hit:>9.2f}"
        )


def sweep_walks(g0, batch, query) -> None:
    print("\nsampling-effort sweep (M random walks):")
    print(f"{'M':>6} {'FE time':>10} {'FE %':>6} {'coverage@1%':>12} {'total':>10}")
    for walks in (128, 512, 2048, 8192):
        engine = GCSMEngine(g0, query, num_walks=walks, seed=3)
        r = engine.process_batch(batch)
        print(
            f"{walks:>6} {format_time_ns(r.breakdown.estimate_ns):>10} "
            f"{100 * r.breakdown.fe_fraction:>5.1f}% "
            f"{r.coverage(0.01):>12.2f} {format_time_ns(r.breakdown.total_ns):>10}"
        )


def sweep_interconnect(g0, batch, query) -> None:
    print("\ninterconnect sensitivity (GCSM vs zero-copy):")
    print(f"{'PCIe GB/s':>10} {'GCSM':>10} {'ZC-like':>10} {'speedup':>8}")
    for bw in (32.0, 16.0, 8.0, 4.0):
        device = DeviceConfig(pcie_bandwidth_bpns=bw)
        gcsm = GCSMEngine(g0, query, device=device, seed=3).process_batch(batch)
        zc = GCSMEngine(g0, query, device=device, cache_budget_bytes=0,
                        seed=3).process_batch(batch)
        speedup = zc.breakdown.total_ns / gcsm.breakdown.total_ns
        print(
            f"{bw:>10.0f} {format_time_ns(gcsm.breakdown.total_ns):>10} "
            f"{format_time_ns(zc.breakdown.total_ns):>10} {speedup:>7.2f}x"
        )


def main() -> None:
    device = default_device()
    print(f"device model: {format_bytes(device.global_memory_bytes)} global memory, "
          f"{format_bytes(device.cache_buffer_bytes)} cache buffer, "
          f"PCIe {device.pcie_bandwidth_bpns:.0f} GB/s\n")
    g0, batches = build_workload("SF3K", batch_size=256, seed=0)
    batch = batches[0]
    query = query_by_name("Q4")
    sweep_cache_budget(g0, batch, query)
    sweep_walks(g0, batch, query)
    sweep_interconnect(g0, batch, query)


if __name__ == "__main__":
    main()
