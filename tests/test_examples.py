"""Smoke tests for the example scripts.

Every example must at least import and expose a ``main``; the fastest one
(quickstart, which self-verifies against the oracle) is executed end to end.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {p.name for p in ALL_EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # deliverable: at least three runnable examples


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), path.name


def test_quickstart_runs_and_self_verifies():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "verified against a from-scratch recount" in proc.stdout
