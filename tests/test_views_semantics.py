"""Focused tests on adjacency-version semantics across views and states."""

import numpy as np
import pytest

from repro.core.cache import CachedDeviceView
from repro.core.dcsr import DcsrCache
from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.gpu import (
    AccessCounters,
    HostCPUView,
    UnifiedMemoryView,
    ZeroCopyView,
    default_device,
)
from repro.query.plan import EdgeVersion

ALL_VIEW_CLASSES = [HostCPUView, ZeroCopyView, UnifiedMemoryView]


def settled_store():
    g = StaticGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)])
    return DynamicGraph(g)


@pytest.mark.parametrize("cls", ALL_VIEW_CLASSES, ids=lambda c: c.__name__)
class TestSettledSemantics:
    def test_current_equals_old_when_settled(self, cls):
        """With no open batch, OLD and NEW/CURRENT coincide."""
        dg = settled_store()
        view = cls(dg, default_device(), AccessCounters())
        for v in range(dg.num_vertices):
            (old,) = view.fetch(v, EdgeVersion.OLD)
            new = np.concatenate(view.fetch(v, EdgeVersion.NEW))
            cur = np.concatenate(view.fetch(v, EdgeVersion.CURRENT))
            assert old.tolist() == sorted(new.tolist()) == sorted(cur.tolist())

    def test_fetch_returns_sorted_runs(self, cls):
        dg = settled_store()
        dg.apply_batch(UpdateBatch([(0, 3), (1, 4)], [1, 1]))
        view = cls(dg, default_device(), AccessCounters())
        for v in range(dg.num_vertices):
            for version in (EdgeVersion.OLD, EdgeVersion.NEW):
                for run in view.fetch(v, version):
                    assert bool(np.all(run[1:] >= run[:-1])) if run.size > 1 else True

    def test_degree_bounds_match_run_lengths(self, cls):
        dg = settled_store()
        dg.apply_batch(UpdateBatch([(0, 2), (0, 1)], [1, -1]))
        view = cls(dg, default_device(), AccessCounters())
        for v in range(dg.num_vertices):
            (old,) = view.fetch(v, EdgeVersion.OLD)
            assert view.degree_bound(v, EdgeVersion.OLD) == old.size
            new_total = sum(r.size for r in view.fetch(v, EdgeVersion.NEW))
            assert view.degree_bound(v, EdgeVersion.NEW) == new_total


class TestCachedViewSemantics:
    def test_cached_view_matches_plain_views(self):
        """For every vertex and version, the cached view (hit or miss) must
        return the same logical adjacency as the uncached views."""
        g = erdos_renyi(40, 5.0, seed=17)
        from repro.graphs.stream import derive_stream

        g0, batches = derive_stream(g, update_fraction=0.5, batch_size=15, seed=17)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        half = np.arange(0, dg.num_vertices, 2)
        cache = DcsrCache.build(dg, half)
        device = default_device()
        cached = CachedDeviceView(dg, device, AccessCounters(), cache)
        plain = HostCPUView(dg, device, AccessCounters())
        for v in range(dg.num_vertices):
            for version in (EdgeVersion.OLD, EdgeVersion.NEW):
                a = sorted(np.concatenate(cached.fetch(v, version)).tolist())
                b = sorted(np.concatenate(plain.fetch(v, version)).tolist())
                assert a == b, (v, version)
        assert cached.hits > 0 and cached.misses > 0
