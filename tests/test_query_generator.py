"""Tests for random query generation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.query.generator import random_query, random_query_suite
from repro.query.pattern import WILDCARD_LABEL


class TestRandomQuery:
    def test_deterministic(self):
        assert random_query(5, seed=3) == random_query(5, seed=3)
        assert random_query(5, seed=3) != random_query(5, seed=4)

    def test_exact_edge_count(self):
        q = random_query(6, 9, seed=1)
        assert q.num_edges == 9

    def test_wildcard_by_default(self):
        q = random_query(4, seed=2)
        assert all(l == WILDCARD_LABEL for l in q.labels)

    def test_labels_in_range(self):
        q = random_query(5, num_labels=3, seed=5)
        assert all(0 <= l < 3 for l in q.labels)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            random_query(1)
        with pytest.raises(ValueError):
            random_query(4, 2)  # below spanning tree
        with pytest.raises(ValueError):
            random_query(4, 7)  # above complete graph


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_always_connected_simple(n, density, seed):
    q = random_query(n, density=density, seed=seed)
    g = q.to_networkx()
    assert nx.is_connected(g)
    assert g.number_of_nodes() == n
    assert q.num_edges >= n - 1
    # QueryGraph constructor already rejects loops/duplicates; spot-check
    assert all(u != v for u, v in q.edges)


class TestSuite:
    def test_size_range_and_count(self):
        suite = random_query_suite(10, min_vertices=3, max_vertices=5, seed=7)
        assert len(suite) == 10
        assert all(3 <= q.num_vertices <= 5 for q in suite)
        assert len({q.name for q in suite}) == 10

    def test_suite_usable_by_matcher(self):
        from repro.core.reference import count_embeddings
        from repro.graphs.generators import erdos_renyi

        g = erdos_renyi(25, 4.0, num_labels=3, seed=8)
        for q in random_query_suite(4, num_labels=3, seed=8):
            count_embeddings(g, q)  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            random_query_suite(0)
        with pytest.raises(ValueError):
            random_query_suite(2, min_vertices=5, max_vertices=3)
