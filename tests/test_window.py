"""Temporal/windowed matching: TTL expiry as a stream-to-stream transform."""

import numpy as np
import pytest

from repro.core.validation import verify_stream
from repro.graphs import UpdateBatch, apply_window
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import DELETE, INSERT, derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def _empty_initial():
    # a tiny snapshot whose edges never collide with the streamed ones
    # (streamed tests use vertices 20+; the snapshot triangle sits at 0-2)
    from repro.graphs.static_graph import StaticGraph

    return StaticGraph.from_edges(30, [(0, 1), (1, 2), (0, 2)])


def _batch(*ops):
    edges = [(u, v) for u, v, _ in ops]
    signs = [s for _, _, s in ops]
    return UpdateBatch(edges, signs)


class TestApplyWindow:
    def test_expiry_fires_after_window(self):
        g0 = _empty_initial()
        batches = [
            _batch((20, 21, INSERT)),
            _batch((22, 23, INSERT)),
            _batch((24, 25, INSERT)),
        ]
        out, report = apply_window(g0, batches, window=2)
        # batch 2 must open with the expiry delete of batch 0's insert
        assert np.array_equal(out[2].edges[0], np.array([20, 21]))
        assert out[2].signs[0] == DELETE
        assert report.expiry_deletes == 1
        assert report.live_at_end == 2

    def test_reinsert_refreshes_ttl(self):
        g0 = _empty_initial()
        batches = [
            _batch((20, 21, INSERT)),
            _batch((20, 21, INSERT)),  # re-arm: now expires at batch 3
            _batch((22, 23, INSERT)),
            _batch((24, 25, INSERT)),
        ]
        out, report = apply_window(g0, batches, window=2)
        assert report.refreshed == 1
        # no expiry in batch 2; the refreshed TTL fires in batch 3
        assert not np.any(out[2].signs == DELETE)
        assert out[3].signs[0] == DELETE
        assert np.array_equal(out[3].edges[0], np.array([20, 21]))

    def test_explicit_delete_cancels_ttl(self):
        g0 = _empty_initial()
        batches = [
            _batch((20, 21, INSERT)),
            _batch((20, 21, DELETE)),
            _batch((22, 23, INSERT)),
            _batch((24, 25, INSERT)),
        ]
        out, report = apply_window(g0, batches, window=2)
        assert report.cancelled == 1
        assert report.expiry_deletes == 0
        for b in out[2:]:
            assert not np.any(b.signs == DELETE)

    def test_initial_snapshot_edges_never_expire(self):
        g0 = _empty_initial()
        batches = [_batch((20, 21, INSERT)) for _ in range(3)]
        out, report = apply_window(g0, batches, window=1)
        expired = {
            (int(e[0]), int(e[1]))
            for b in out for e, s in zip(b.edges, b.signs) if s == DELETE
        }
        snapshot = {(int(u), int(v)) for u, v in g0.edge_array()}
        assert not expired & snapshot

    def test_drain_empties_every_ttl(self):
        g0 = _empty_initial()
        batches = [_batch((20, 21, INSERT)), _batch((22, 23, INSERT))]
        out, report = apply_window(g0, batches, window=3, drain=True)
        assert report.live_at_end == 0
        assert report.num_batches_out > len(batches)
        inserted = sum(int(np.sum(b.signs == INSERT)) for b in out)
        deleted = sum(int(np.sum(b.signs == DELETE)) for b in out)
        assert inserted == deleted == 2

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            apply_window(_empty_initial(), [], window=0)


class TestWindowedExactness:
    def test_differential_validation_all_executors(self):
        """Windowed stream through the fuzzer's checker: both executors x
        both estimators agree with the from-scratch oracle."""
        g = erdos_renyi(40, 5.0, num_labels=2, seed=4)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=10, seed=4)
        windowed, report = apply_window(g0, batches, window=2)
        assert report.expiry_deletes > 0  # the axis is actually exercised
        for executor in ("frontier", "recursive"):
            for estimator in ("frontier", "recursive"):
                rep = verify_stream(
                    ["GCSM", "ZC"], g0, TRIANGLE, windowed[:4],
                    against_oracle=True, conflict_mode="coalesce",
                    system_kwargs={"executor": executor, "estimator": estimator},
                )
                assert rep.oracle_checked

    def test_strict_mode_rejects_expiry_collisions(self):
        """An expiry delete colliding with a same-batch re-insert must trip
        strict conflict handling (windowed streams need coalesce/ignore)."""
        g0 = _empty_initial()
        batches = [
            _batch((20, 21, INSERT)),
            _batch((24, 25, INSERT)),
            _batch((20, 21, INSERT)),  # re-insert in the expiry batch
        ]
        windowed, _ = apply_window(g0, batches, window=2)
        from repro.graphs import DynamicGraph
        from repro.graphs.stream import BatchConflictError

        store = DynamicGraph(g0)
        with pytest.raises(BatchConflictError):
            for b in windowed:
                store.apply_batch(b, mode="strict")
                store.reorganize()
