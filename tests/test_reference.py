"""Tests for the brute-force reference matcher (the oracle itself)."""

import networkx as nx
import numpy as np

from repro.core.reference import count_embeddings, find_embeddings
from repro.graphs import StaticGraph
from repro.graphs.generators import erdos_renyi
from repro.query import QueryGraph
from repro.query.symmetry import automorphism_count


def triangle_query(labels=None):
    return QueryGraph(3, [(0, 1), (1, 2), (0, 2)], labels)


class TestCountEmbeddings:
    def test_single_triangle(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        # unlabeled triangle: 3! = 6 embeddings of one subgraph
        assert count_embeddings(g, triangle_query()) == 6

    def test_labeled_triangle(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)], np.array([0, 1, 1]))
        q = triangle_query([0, 1, 1])
        # query vertex 0 -> data 0; vertices 1,2 -> data 1,2 in 2 orders
        assert count_embeddings(g, q) == 2

    def test_no_match_wrong_labels(self):
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)], np.array([0, 0, 0]))
        assert count_embeddings(g, triangle_query([0, 1, 1])) == 0

    def test_matches_networkx_triangle_count(self):
        g = erdos_renyi(40, 5.0, num_labels=1, seed=3)
        nxg = nx.Graph(list(map(tuple, g.edge_array().tolist())))
        nxg.add_nodes_from(range(g.num_vertices))
        tri = sum(nx.triangles(nxg).values()) // 3
        assert count_embeddings(g, triangle_query()) == 6 * tri

    def test_embeddings_divided_by_automorphisms(self):
        q = QueryGraph(3, [(0, 1), (1, 2)])  # path, |Aut| = 2
        g = StaticGraph.from_edges(3, [(0, 1), (1, 2)])
        assert count_embeddings(g, q) == 2  # one path, 2 automorphic images
        assert count_embeddings(g, q) // automorphism_count(q) == 1

    def test_count_matches_find(self):
        g = erdos_renyi(25, 4.0, num_labels=2, seed=4)
        for edges, labels in [
            ([(0, 1), (1, 2), (0, 2)], [0, 1, 1]),
            ([(0, 1), (1, 2), (2, 3)], None),
            ([(0, 1), (1, 2), (2, 3), (0, 3)], None),
        ]:
            q = QueryGraph(max(max(e) for e in edges) + 1, edges, labels)
            found = find_embeddings(g, q)
            assert len(found) == count_embeddings(g, q)
            # all found embeddings are valid and distinct
            assert len(set(found)) == len(found)
            for emb in found:
                assert len(set(emb)) == len(emb)  # injective
                for u, v in q.edges:
                    assert g.has_edge(emb[u], emb[v])

    def test_find_limit(self):
        g = erdos_renyi(30, 6.0, num_labels=1, seed=5)
        q = triangle_query()
        limited = find_embeddings(g, q, limit=4)
        assert len(limited) == 4

    def test_empty_graph(self):
        g = StaticGraph.empty(5)
        assert count_embeddings(g, triangle_query()) == 0
        assert find_embeddings(g, triangle_query()) == []
