"""Edge weights/attributes and predicate-pushdown matching."""

import numpy as np
import pytest

from repro.core.reference import count_embeddings
from repro.core.validation import verify_stream
from repro.graphs import DynamicGraph, EdgeAttributeStore, UpdateBatch, edge_weight, edge_weights
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
PRED_TRIANGLE = TRIANGLE.with_edge_predicates(
    {(0, 1): (0.0, 0.6), (1, 2): (0.25, 1.0)}, name="triangle~w"
)


def small_case(seed=1):
    g = erdos_renyi(40, 5.0, num_labels=2, seed=seed)
    return derive_stream(g, update_fraction=0.3, batch_size=12, seed=seed)


class TestHashWeights:
    def test_deterministic_and_orientation_free(self):
        assert edge_weight(3, 17) == edge_weight(3, 17)
        assert edge_weight(3, 17) == edge_weight(17, 3)

    def test_range_and_spread(self):
        us = np.arange(1000)
        ws = edge_weights(us, us + 1)
        assert np.all((ws >= 0.0) & (ws < 1.0))
        # avalanche-mixed: near-uniform over [0, 1) even on adjacent ids
        assert 0.4 < ws.mean() < 0.6
        assert len(np.unique(ws)) == 1000

    def test_vector_matches_scalar(self):
        us = np.array([0, 5, 9])
        vs = np.array([1, 2, 7])
        ws = edge_weights(us, vs)
        for i in range(3):
            assert ws[i] == edge_weight(int(us[i]), int(vs[i]))

    def test_broadcasts_scalar_anchor(self):
        cand = np.array([1, 2, 3])
        ws = edge_weights(7, cand)
        assert ws.shape == (3,)
        assert ws[1] == edge_weight(7, 2)


class TestEdgeAttributeStore:
    def test_falls_through_to_hash(self):
        store = EdgeAttributeStore()
        assert store.weight(2, 9) == edge_weight(2, 9)
        assert np.array_equal(
            store.pair_weights([2], [9]), edge_weights([2], [9])
        )

    def test_override_and_orientation(self):
        store = EdgeAttributeStore()
        store.set_weight(4, 1, 0.125)
        assert store.weight(1, 4) == 0.125
        assert store.pair_weights([4], [1])[0] == 0.125
        store.clear_weight(1, 4)
        assert store.weight(4, 1) == edge_weight(4, 1)

    def test_insert_records_delete_deferred(self):
        """Deleted overrides survive until close_batch (OLD-read epoch)."""
        store = EdgeAttributeStore()
        ins = UpdateBatch([(0, 1)], [+1])
        store.apply_batch(ins, weights=np.array([0.75]))
        assert store.weight(0, 1) == 0.75
        store.close_batch()
        dele = UpdateBatch([(0, 1)], [-1])
        store.apply_batch(dele)
        # open batch: OLD reads still see the explicit weight
        assert store.weight(0, 1) == 0.75
        store.close_batch()
        assert store.weight(0, 1) == edge_weight(0, 1)
        assert store.num_overrides == 0

    def test_reinsert_cancels_pending_removal(self):
        store = EdgeAttributeStore({(0, 1): 0.4})
        store.apply_batch(UpdateBatch([(0, 1), (0, 1)], [-1, +1]))
        store.close_batch()
        assert store.weight(0, 1) == 0.4


class TestPredicatePushdown:
    def test_executors_agree_with_oracle(self):
        """Both executors x both estimators, predicated query, oracle on."""
        g0, batches = small_case(seed=3)
        for executor in ("frontier", "recursive"):
            for estimator in ("frontier", "recursive"):
                report = verify_stream(
                    ["GCSM", "ZC"], g0, PRED_TRIANGLE, batches[:3],
                    against_oracle=True,
                    system_kwargs={"executor": executor, "estimator": estimator},
                )
                assert report.oracle_checked

    def test_predicates_restrict_counts(self):
        g = erdos_renyi(40, 6.0, num_labels=1, seed=5)
        full = count_embeddings(g, TRIANGLE)
        pred = count_embeddings(g, PRED_TRIANGLE)
        assert 0 < pred < full

    def test_full_range_predicate_matches_unpredicated(self):
        """[0, 1] bounds accept every weight: same embeddings, same delta."""
        g0, batches = small_case(seed=7)
        permissive = TRIANGLE.with_edge_predicates(
            {e: (0.0, 1.0) for e in TRIANGLE.edges}, name="triangle~all"
        )
        plain = verify_stream(["GCSM"], g0, TRIANGLE, batches[:2])
        loose = verify_stream(["GCSM"], g0, permissive, batches[:2])
        assert plain.delta_per_batch == loose.delta_per_batch

    def test_oracle_respects_store_overrides(self):
        g = erdos_renyi(30, 5.0, num_labels=1, seed=2)
        q = TRIANGLE.with_edge_predicates(
            {e: (0.0, 0.5) for e in TRIANGLE.edges}, name="t~half"
        )
        base = count_embeddings(g, q)
        # force one data edge's weight out of range: count can only shrink
        u, v = (int(x) for x in g.edge_array()[0])
        store = EdgeAttributeStore({(u, v): 0.99})
        assert count_embeddings(g, q, attributes=store) <= base

    def test_dynamic_engine_matches_recount(self):
        """Signed delta accumulates to a from-scratch final recount."""
        from repro.core.baselines import make_system

        g0, batches = small_case(seed=11)
        system = make_system("GCSM", g0, PRED_TRIANGLE, seed=0)
        delta = sum(system.process_batch(b).delta_count for b in batches[:3])
        store = DynamicGraph(g0)
        for b in batches[:3]:
            store.apply_batch(b)
            store.reorganize()
        final = store.snapshot()
        assert count_embeddings(g0, PRED_TRIANGLE) + delta == count_embeddings(
            final, PRED_TRIANGLE
        )


class TestQueryGraphPredicates:
    def test_validation(self):
        with pytest.raises(ValueError):
            TRIANGLE.with_edge_predicates({(0, 1): (0.9, 0.1)})
        with pytest.raises(KeyError):
            TRIANGLE.with_edge_predicates({(1, 9): (0.0, 1.0)})

    def test_identity_includes_predicates(self):
        assert PRED_TRIANGLE != TRIANGLE
        assert hash(PRED_TRIANGLE) != hash(TRIANGLE)
        again = TRIANGLE.with_edge_predicates(
            {(0, 1): (0.0, 0.6), (1, 2): (0.25, 1.0)}, name="triangle~w"
        )
        assert PRED_TRIANGLE == again

    def test_lookup_helpers(self):
        assert PRED_TRIANGLE.has_predicates()
        assert not TRIANGLE.has_predicates()
        assert PRED_TRIANGLE.edge_predicate(1, 0) == (0.0, 0.6)
        assert PRED_TRIANGLE.edge_predicate(0, 2) is None
