"""Tests for synthetic graph generators and the Table I dataset registry."""

import numpy as np
import pytest

from repro.graphs import datasets
from repro.graphs.generators import (
    assign_labels,
    erdos_renyi,
    powerlaw_graph,
    road_network,
)


class TestPowerlaw:
    def test_shape_and_determinism(self):
        g1 = powerlaw_graph(500, 8.0, seed=1)
        g2 = powerlaw_graph(500, 8.0, seed=1)
        assert g1 == g2
        assert g1.num_vertices == 500
        # within 25% of the requested edge budget
        assert abs(g1.num_edges - 2000) < 500

    def test_different_seeds_differ(self):
        assert powerlaw_graph(300, 6.0, seed=1) != powerlaw_graph(300, 6.0, seed=2)

    def test_max_degree_cap_respected(self):
        g = powerlaw_graph(2000, 10.0, max_degree=60, seed=3)
        # Chung-Lu realizes weights with binomial noise; allow slack
        assert g.max_degree() <= 90

    def test_skewed_degrees(self):
        g = powerlaw_graph(5000, 20.0, exponent=2.1, max_degree=500, seed=4)
        d = np.sort(g.degrees())[::-1]
        top5 = d[: len(d) // 20].sum() / d.sum()
        assert top5 > 0.3  # heavy hub concentration

    def test_labels_in_range(self):
        g = powerlaw_graph(400, 5.0, num_labels=3, seed=5)
        assert set(np.unique(g.labels)) <= {0, 1, 2}

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            powerlaw_graph(1, 2.0)
        with pytest.raises(ValueError):
            powerlaw_graph(10, 2.0, exponent=1.5)


class TestRoadNetwork:
    def test_bounded_degree(self):
        g = road_network(40, 50, seed=1)
        assert g.max_degree() <= 14
        assert g.num_vertices == 2000

    def test_connected_lattice_core(self):
        g = road_network(10, 10, diagonal_fraction=0.0, extra_edge_fraction=0.0, seed=2)
        # pure grid: interior degree 4, corners 2
        assert g.max_degree() == 4
        assert g.num_edges == 9 * 10 * 2

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            road_network(1, 5)


class TestErdosRenyi:
    def test_edge_budget(self):
        g = erdos_renyi(300, 6.0, seed=1)
        assert abs(g.num_edges - 900) < 120

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, 100.0)


class TestAssignLabels:
    def test_single_label(self):
        labels = assign_labels(10, 1)
        assert labels.tolist() == [0] * 10

    def test_uniform_when_no_skew(self):
        labels = assign_labels(20_000, 4, skew=0.0, rng=1)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() > 4000

    def test_skew_orders_frequencies(self):
        labels = assign_labels(20_000, 4, skew=1.5, rng=2)
        counts = np.bincount(labels, minlength=4)
        assert counts[0] > counts[1] > counts[2] > counts[3]


class TestDatasets:
    def test_registry_complete(self):
        assert set(datasets.TABLE1_ORDER) == set(datasets.DATASETS)
        assert len(datasets.TABLE1_ORDER) == 7

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            datasets.build("nope")

    def test_road_analogs_small_degree(self):
        for name in ("PA", "CA"):
            g = datasets.build(name)
            assert g.max_degree() <= 14, name

    def test_social_analogs_skewed(self):
        g = datasets.build("LJ")
        assert g.max_degree() > 8 * g.degrees().mean()

    def test_memory_fit_pattern_matches_paper(self):
        # AZ/PA/CA/LJ fit the scaled cache buffer; FR/SF3K/SF10K overflow it
        for name in ("AZ", "PA", "CA", "LJ"):
            spec = datasets.DATASETS[name]
            assert spec.fits_on_device(spec.build(0)), name
        for name in ("FR", "SF3K", "SF10K"):
            spec = datasets.DATASETS[name]
            assert not spec.fits_on_device(spec.build(0)), name

    def test_overflow_ratios_ordered_like_paper(self):
        sizes = {n: datasets.DATASETS[n].build(0).size_bytes() for n in ("FR", "SF3K", "SF10K")}
        assert sizes["FR"] < sizes["SF3K"] < sizes["SF10K"]
        assert sizes["SF10K"] > 4 * datasets.DEVICE_BUFFER_BYTES

    def test_num_updates_rules(self):
        spec = datasets.DATASETS["AZ"]
        g = spec.build(0)
        assert spec.num_updates(g) == max(512, int(0.1 * g.num_edges))
        spec_fr = datasets.DATASETS["FR"]
        g_fr = spec_fr.build(0)
        assert spec_fr.num_updates(g_fr) == 512 * 6
        assert spec_fr.num_updates(g_fr, batch_size=128) == 128 * 6

    def test_table1_rows_structure(self):
        rows = datasets.table1_rows()
        assert [r["graph"] for r in rows] == datasets.TABLE1_ORDER
        for r in rows:
            assert r["vertices"] > 0 and r["edges"] > 0
            assert r["paper_size_gb"] > 0
