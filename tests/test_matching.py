"""Tests for the incremental WCOJ executor.

The centerpiece is the hypothesis property test: for random labeled graphs
and random signed batches, the signed ΔM produced by the ΔM_i plans equals
the from-scratch difference ``count(G_{k+1}) − count(G_k)`` — validating the
IVM decomposition, the N/N′ versioning, deletion handling, and the dynamic
store in one go.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import delta_roots, match_batch, match_static, static_roots
from repro.core.reference import count_embeddings
from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.gpu import AccessCounters, HostCPUView, ZeroCopyView, default_device
from repro.query import QueryGraph, compile_delta_plans, compile_static_plan

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
WEDGE = QueryGraph(3, [(0, 1), (1, 2)], name="wedge")
SQUARE = QueryGraph(4, [(0, 1), (1, 2), (2, 3), (0, 3)], name="square")
TAILED = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], [0, 0, 1, 1], name="tailed")
EDGE = QueryGraph(2, [(0, 1)], [0, 1], name="edge")

ALL_QUERIES = [TRIANGLE, WEDGE, SQUARE, TAILED, EDGE]


def make_view(dg):
    return HostCPUView(dg, default_device(), AccessCounters())


class TestStaticMatching:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_matches_reference_on_random_graphs(self, query):
        for seed in (0, 1, 2):
            g = erdos_renyi(30, 4.0, num_labels=2, seed=seed)
            dg = DynamicGraph(g)
            plan = compile_static_plan(query)
            stats = match_static(plan, make_view(dg))
            assert stats.signed_count == count_embeddings(g, query)
            assert stats.embeddings_found == stats.signed_count

    def test_empty_graph(self):
        dg = DynamicGraph(StaticGraph.empty(4))
        stats = match_static(compile_static_plan(TRIANGLE), make_view(dg))
        assert stats.signed_count == 0

    def test_sink_receives_valid_embeddings(self):
        g = erdos_renyi(25, 5.0, num_labels=1, seed=7)
        dg = DynamicGraph(g)
        seen = []
        stats = match_static(
            compile_static_plan(TRIANGLE), make_view(dg),
            sink=lambda emb, sign: seen.append((emb, sign)),
        )
        assert len(seen) == stats.embeddings_found
        for emb, sign in seen:
            assert sign == 1
            u, v, w = emb
            assert g.has_edge(u, v) and g.has_edge(v, w) and g.has_edge(u, w)
        # embeddings are distinct vertex mappings
        assert len({e for e, _ in seen}) == len(seen)


class TestRoots:
    def test_delta_roots_label_filtering(self):
        g = StaticGraph.from_edges(4, [(0, 1)], np.array([0, 1, 0, 1]))
        dg = DynamicGraph(g)
        batch = UpdateBatch([(2, 3), (0, 2)], [1, 1])
        plan = compile_delta_plans(EDGE)[0]  # root labels (0, 1)
        roots, signs = delta_roots(plan, batch, dg.labels)
        # (2,3) matches as 2->0,3->1; (0,2) never matches labels (0,0)
        assert roots.tolist() == [[2, 3]]
        assert signs.tolist() == [1]

    def test_delta_roots_both_orientations_when_labels_allow(self):
        g = StaticGraph.from_edges(4, [(0, 1)], np.array([1, 1, 1, 1]))
        dg = DynamicGraph(g)
        batch = UpdateBatch([(2, 3)], [-1])
        plan = compile_delta_plans(QueryGraph(2, [(0, 1)], [1, 1]))[0]
        roots, signs = delta_roots(plan, batch, dg.labels)
        assert sorted(map(tuple, roots.tolist())) == [(2, 3), (3, 2)]
        assert signs.tolist() == [-1, -1]

    def test_static_roots_wildcard(self):
        g = erdos_renyi(10, 3.0, num_labels=3, seed=1)
        plan = compile_static_plan(WEDGE)
        roots, signs = static_roots(plan, g.edge_array(), g.labels)
        assert roots.shape[0] == 2 * g.num_edges
        assert bool(np.all(signs == 1))


class TestSingleEdgeQuery:
    def test_insert_and_delete_counts(self):
        g = StaticGraph.from_edges(4, [(0, 1), (2, 3)], np.array([0, 1, 0, 1]))
        dg = DynamicGraph(g)
        batch = UpdateBatch([(0, 3), (2, 3)], [1, -1])
        dg.apply_batch(batch)
        stats = match_batch(compile_delta_plans(EDGE), batch, make_view(dg))
        # inserted (0,3): labels 0-1 -> one orientation matches (+1)
        # deleted (2,3): labels 0-1 -> one orientation matches (-1)
        assert stats.signed_count == 0
        assert stats.embeddings_found == 2


class TestFilters:
    def test_candidate_filter_prunes(self):
        g = erdos_renyi(30, 5.0, num_labels=1, seed=9)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=8, seed=9)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        plans = compile_delta_plans(TRIANGLE)
        all_vertices = np.arange(30, dtype=np.int64)
        full = match_batch(plans, batches[0], make_view(dg),
                           filters={0: all_vertices, 1: all_vertices, 2: all_vertices})
        unfiltered = match_batch(plans, batches[0], make_view(dg))
        assert full.signed_count == unfiltered.signed_count
        # empty filter kills everything
        none = match_batch(plans, batches[0], make_view(dg),
                           filters={1: np.empty(0, dtype=np.int64)})
        assert none.signed_count == 0
        assert none.embeddings_found == 0


class TestAccounting:
    def test_counters_populated(self):
        g = erdos_renyi(40, 5.0, num_labels=1, seed=11)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=16, seed=11)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        counters = AccessCounters()
        view = ZeroCopyView(dg, default_device(), counters)
        stats = match_batch(compile_delta_plans(TRIANGLE), batches[0], view)
        assert counters.compute_ops > 0
        assert counters.total_access_count > 0
        assert counters.output_embeddings == stats.embeddings_found
        assert stats.roots_processed > 0
        assert stats.tree_nodes >= stats.roots_processed


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_delta_equals_snapshot_difference(seed):
    """ΔM from the incremental plans == count(G_{k+1}) − count(G_k)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 26))
    g = erdos_renyi(n, 4.0, num_labels=2, seed=int(rng.integers(0, 2**31)))
    g0, batches = derive_stream(
        g, update_fraction=0.5, batch_size=int(rng.integers(2, 9)),
        seed=int(rng.integers(0, 2**31)),
    )
    query = ALL_QUERIES[seed % len(ALL_QUERIES)]
    plans = compile_delta_plans(query)
    dg = DynamicGraph(g0)
    prev = count_embeddings(g0, query)
    for batch in batches[:3]:
        dg.apply_batch(batch)
        stats = match_batch(plans, batch, make_view(dg))
        now = count_embeddings(dg.snapshot(), query)
        assert stats.signed_count == now - prev, (query.name, seed)
        prev = now
        dg.reorganize()
