"""Tests for the multi-GPU sharded execution subsystem (``repro.multigpu``).

The load-bearing property is the N=1 equivalence invariant: a one-device
fleet must take the exact single-GPU code path and reproduce
:class:`~repro.core.engine.GCSMEngine` bit-for-bit — match counts, channel
byte counters, and simulated time.  Everything else (partitioners, the peer
read path, the collective model, fleet reports) is tested on top of that.
"""

import numpy as np
import pytest

from repro.core.baselines import make_system
from repro.core.engine import GCSMEngine
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.device import ClusterConfig, DeviceConfig, default_cluster
from repro.multigpu import (
    FrequencyPartitioner,
    HashPartitioner,
    LoadBalanceReport,
    MincutPartitioner,
    MultiGpuEngine,
    RangePartitioner,
    ShardedDeviceView,
    adjacency_csr,
    make_partitioner,
    weighted_cut,
)
from repro.multigpu.comm import allreduce_delta_ns, comm_report
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")
TAILED = QueryGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)], [0, 0, 1, 1], name="tailed")
PATH3 = QueryGraph(3, [(0, 1), (1, 2)], [0, 1, 0], name="path3")

#: three (graph, query, stream) workloads for the equivalence invariant
WORKLOADS = [
    ("er-triangle", lambda: erdos_renyi(60, 6.0, num_labels=1, seed=11), TRIANGLE),
    ("pl-tailed", lambda: powerlaw_graph(300, 6.0, max_degree=40, num_labels=2, seed=12), TAILED),
    ("er-path", lambda: erdos_renyi(80, 5.0, num_labels=2, seed=13), PATH3),
]


def _stream(build, *, batches=3, batch_size=24, seed=5):
    g = build()
    g0, bs = derive_stream(
        g, num_updates=batches * batch_size, batch_size=batch_size, seed=seed
    )
    return g0, bs[:batches]


class TestSingleDeviceEquivalence:
    """``MultiGpuEngine(devices=1)`` == ``GCSMEngine``, bit for bit."""

    @pytest.mark.parametrize("name,build,query", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_bit_identical(self, name, build, query):
        g0, batches = _stream(build)
        single = GCSMEngine(g0, query, seed=9)
        fleet = MultiGpuEngine(g0, query, devices=1, seed=9)
        for batch in batches:
            a = single.process_batch(batch)
            b = fleet.process_batch(batch)
            assert a.delta_count == b.delta_count
            assert a.match_stats.roots_processed == b.match_stats.roots_processed
            assert a.match_stats.embeddings_found == b.match_stats.embeddings_found
            for ch in Channel:
                assert a.match_counters.bytes_by_channel[ch] == \
                    b.match_counters.bytes_by_channel[ch], ch
                assert a.match_counters.transactions_by_channel[ch] == \
                    b.match_counters.transactions_by_channel[ch], ch
            assert a.breakdown.total_ns == b.breakdown.total_ns
            assert a.breakdown.match_ns == b.breakdown.match_ns
            assert a.breakdown.pack_ns == b.breakdown.pack_ns
            assert (a.cache_hits, a.cache_misses) == (b.cache_hits, b.cache_misses)
            assert np.array_equal(a.cached_vertices, b.cached_vertices)
            assert b.breakdown.comm_ns == 0.0  # no collective on one device

    def test_adaptive_walks_also_equivalent(self):
        g0, batches = _stream(WORKLOADS[0][1], batches=2)
        single = GCSMEngine(g0, TRIANGLE, adaptive_walks=True, seed=4)
        fleet = MultiGpuEngine(g0, TRIANGLE, devices=1, adaptive_walks=True, seed=4)
        for batch in batches:
            a, b = single.process_batch(batch), fleet.process_batch(batch)
            assert a.delta_count == b.delta_count
            assert a.breakdown.total_ns == b.breakdown.total_ns


class TestMultiDeviceCorrectness:
    """Sharding must never change ΔM, for any N or partitioner."""

    @pytest.mark.parametrize("partitioner", ["hash", "range", "freq", "mincut"])
    @pytest.mark.parametrize("devices", [2, 4])
    def test_delta_counts_match_single_gpu(self, devices, partitioner):
        g0, batches = _stream(WORKLOADS[1][1])
        single = GCSMEngine(g0, TAILED, seed=9)
        fleet = MultiGpuEngine(
            g0, TAILED, devices=devices, partitioner=partitioner, seed=9
        )
        for batch in batches:
            a, b = single.process_batch(batch), fleet.process_batch(batch)
            assert a.delta_count == b.delta_count
            # the disjoint root cover preserves total roots too
            assert a.match_stats.roots_processed == b.match_stats.roots_processed

    def test_fleet_reports_populated(self):
        g0, batches = _stream(WORKLOADS[0][1], batches=1)
        fleet = MultiGpuEngine(g0, TRIANGLE, devices=4, seed=9)
        result = fleet.process_batch(batches[0])
        assert len(result.shard_reports) == 4
        assert result.load_balance is not None
        assert result.load_balance.num_devices == 4
        assert 0 <= result.load_balance.straggler < 4
        assert result.load_balance.max_ns >= result.load_balance.mean_ns
        assert result.load_balance.imbalance >= 1.0
        assert sum(result.load_balance.shard_roots) == \
            result.match_stats.roots_processed
        assert result.comm is not None
        assert result.comm.allreduce_ns > 0
        assert result.breakdown.comm_ns == result.comm.allreduce_ns

    def test_peer_traffic_appears_only_when_sharded(self):
        g0, batches = _stream(WORKLOADS[0][1], batches=1)
        one = MultiGpuEngine(g0, TRIANGLE, devices=1, seed=9)
        four = MultiGpuEngine(g0, TRIANGLE, devices=4, seed=9)
        r1 = one.process_batch(batches[0])
        r4 = four.process_batch(batches[0])
        assert r1.match_counters.bytes_by_channel[Channel.PEER] == 0
        assert r4.match_counters.bytes_by_channel[Channel.PEER] > 0

    def test_match_time_scales_down(self):
        g0, batches = _stream(
            lambda: powerlaw_graph(1500, 10.0, max_degree=120, num_labels=1, seed=20),
            batches=2, batch_size=96,
        )
        times = {}
        for n in (1, 8):
            e = MultiGpuEngine(g0, TRIANGLE, devices=n, seed=9)
            times[n] = sum(e.process_batch(b).breakdown.match_ns for b in batches)
        assert times[8] < times[1]  # sharded kernel phase is faster...
        assert times[8] > times[1] / 8  # ...but sub-linearly (PEER stalls)

    def test_workers_do_not_change_results(self):
        g0, batches = _stream(WORKLOADS[0][1], batches=2)
        a = MultiGpuEngine(g0, TRIANGLE, devices=4, seed=9, workers=1)
        b = MultiGpuEngine(g0, TRIANGLE, devices=4, seed=9, workers=4)
        for batch in batches:
            ra, rb = a.process_batch(batch), b.process_batch(batch)
            assert ra.delta_count == rb.delta_count
            assert ra.breakdown.total_ns == rb.breakdown.total_ns


class TestPartitioners:
    def _graph(self):
        return DynamicGraph(powerlaw_graph(400, 8.0, max_degree=60, seed=3))

    @pytest.mark.parametrize("name", ["hash", "range", "freq", "mincut"])
    def test_complete_cover(self, name):
        g = self._graph()
        freqs = np.zeros(g.num_vertices)
        freqs[::7] = 1.0
        owner = make_partitioner(name).assign(g, freqs, 4)
        assert owner.shape == (g.num_vertices,)
        assert owner.min() >= 0 and owner.max() < 4
        assert owner.dtype == np.int64

    def test_hash_deterministic(self):
        g = self._graph()
        a = HashPartitioner().assign(g, None, 4)
        b = HashPartitioner().assign(g, None, 4)
        assert np.array_equal(a, b)

    def test_range_is_contiguous(self):
        g = self._graph()
        owner = RangePartitioner().assign(g, None, 4)
        assert np.all(np.diff(owner) >= 0)  # non-decreasing == contiguous ranges

    def test_freq_without_estimates_falls_back_to_hash(self):
        g = self._graph()
        assert np.array_equal(
            FrequencyPartitioner().assign(g, None, 4),
            HashPartitioner().assign(g, None, 4),
        )

    def test_freq_respects_load_cap(self):
        g = self._graph()
        freqs = g.degrees_new().astype(float)  # everything is hot
        owner = FrequencyPartitioner(balance_slack=0.25).assign(g, freqs, 4)
        degrees = g.degrees_new().astype(np.int64)
        load = np.bincount(owner, weights=degrees, minlength=4)
        cap = 1.25 * degrees.sum() / 4
        assert load.max() <= cap + degrees.max()  # cap enforced pre-move

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_partitioner("metis")

    def test_freq_vectorized_matches_reference(self):
        g = self._graph()
        rng = np.random.default_rng(41)
        freqs = rng.random(g.num_vertices)
        freqs[rng.random(g.num_vertices) < 0.6] = 0.0  # mixed hot/cold
        p = FrequencyPartitioner()
        for k in (2, 4, 7):
            assert np.array_equal(
                p.assign(g, freqs, k), p.assign_reference(g, freqs, k)
            )

    def test_mincut_deterministic_with_roots(self):
        g = self._graph()
        freqs = g.degrees_new().astype(float)
        rng = np.random.default_rng(17)
        roots = rng.integers(0, g.num_vertices, size=(64, 2)).astype(np.int64)
        a = MincutPartitioner().assign(g, freqs, 4, roots=roots)
        b = MincutPartitioner().assign(g, freqs, 4, roots=roots)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4

    def test_mincut_respects_degree_mass_cap(self):
        g = self._graph()
        freqs = g.degrees_new().astype(float)
        owner = MincutPartitioner(balance_slack=0.20).assign(g, freqs, 4)
        degrees = g.degrees_new().astype(np.int64)
        load = np.bincount(owner, weights=degrees, minlength=4)
        cap = 1.20 * degrees.sum() / 4
        assert load.max() <= cap + degrees.max()  # cap enforced pre-move

    def test_mincut_cuts_fewer_weighted_edges_than_hash(self):
        g = self._graph()
        freqs = g.degrees_new().astype(float)
        rowptr, cols, _ = adjacency_csr(g)
        hash_owner = HashPartitioner().assign(g, None, 4)
        cut_owner = MincutPartitioner().assign(g, freqs, 4)
        hash_cut, _ = weighted_cut(rowptr, cols, hash_owner, freqs)
        mc_cut, _ = weighted_cut(rowptr, cols, cut_owner, freqs)
        assert mc_cut < hash_cut

    def test_counters_priced(self):
        g = self._graph()
        counters = AccessCounters()
        HashPartitioner().assign(g, None, 2, counters)
        assert counters.compute_ops > 0


class TestLoadBalanceReport:
    def test_idle_fleet_is_balanced_with_no_straggler(self):
        rep = LoadBalanceReport(
            shard_match_ns=(0.0, 0.0, 0.0, 0.0), shard_roots=(0, 0, 0, 0)
        )
        assert rep.imbalance == 1.0
        assert rep.straggler is None
        payload = rep.to_dict()
        assert payload["imbalance"] == 1.0
        assert payload["straggler"] is None

    def test_busy_fleet_straggler_identified(self):
        rep = LoadBalanceReport(
            shard_match_ns=(10.0, 40.0, 30.0), shard_roots=(1, 4, 3)
        )
        assert rep.straggler == 1
        assert rep.imbalance == pytest.approx(40.0 / (80.0 / 3))


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_devices=0)
        with pytest.raises(ValueError):
            ClusterConfig(interconnect="smoke-signals")

    def test_allreduce_zero_on_one_device(self):
        assert default_cluster(1).allreduce_time_ns(64) == 0.0

    def test_allreduce_grows_with_devices(self):
        t = [default_cluster(n).allreduce_time_ns(64) for n in (2, 4, 8)]
        assert t[0] < t[1] < t[2]

    def test_pcie_peer_reads_cost_more_than_nvlink(self):
        nv = default_cluster(2, "nvlink").device()
        pc = default_cluster(2, "pcie").device()
        assert pc.peer_time_ns(pc.peer_lines(4096)) > nv.peer_time_ns(nv.peer_lines(4096))

    def test_interconnect_changes_fleet_timing(self):
        g0, batches = _stream(WORKLOADS[0][1], batches=1)
        nv = MultiGpuEngine(
            g0, TRIANGLE, devices=ClusterConfig(num_devices=4, interconnect="nvlink"),
            seed=9)
        pc = MultiGpuEngine(
            g0, TRIANGLE, devices=ClusterConfig(num_devices=4, interconnect="pcie"),
            seed=9)
        rn, rp = nv.process_batch(batches[0]), pc.process_batch(batches[0])
        assert rp.delta_count == rn.delta_count  # cost model never changes results
        assert rp.breakdown.match_ns > rn.breakdown.match_ns


class TestShardedView:
    def _setup(self):
        g = DynamicGraph(erdos_renyi(40, 6.0, seed=2))
        device = DeviceConfig()
        owner = np.zeros(g.num_vertices, dtype=np.int64)
        owner[1::2] = 1  # odd vertices owned by shard 1
        from repro.core.dcsr import DcsrCache

        cache0 = DcsrCache.build(g, np.arange(0, g.num_vertices, 2, dtype=np.int64))
        cache1 = DcsrCache.build(g, np.arange(1, g.num_vertices, 2, dtype=np.int64))
        counters = AccessCounters()
        view = ShardedDeviceView(
            g, device, counters, cache0,
            shard_id=0, owner=owner, peer_caches=[cache0, cache1],
        )
        return g, view, counters

    def test_remote_cached_read_uses_peer_channel(self):
        from repro.query.plan import EdgeVersion

        g, view, counters = self._setup()
        v = 1  # remote-owned, cached at shard 1
        runs = view.fetch(v, EdgeVersion.NEW)
        assert sum(r.size for r in runs) == g.neighbors_new(v).size
        assert counters.bytes_by_channel[Channel.PEER] > 0
        assert view.remote_hits == 1 and view.remote_misses == 0
        assert view.total_hits == 1

    def test_local_read_unchanged(self):
        from repro.query.plan import EdgeVersion

        g, view, counters = self._setup()
        view.fetch(0, EdgeVersion.NEW)  # owned + cached locally
        assert counters.bytes_by_channel[Channel.PEER] == 0
        assert view.hits == 1


class TestCommModel:
    def test_allreduce_delta_zero_single_device(self):
        assert allreduce_delta_ns(default_cluster(1), num_plans=6) == 0.0

    def test_comm_report_aggregates(self):
        a, b = AccessCounters(), AccessCounters()
        a.record_access(Channel.PEER, 0, 256, transactions=2)
        b.record_access(Channel.ZERO_COPY, 1, 128, transactions=1)
        report = comm_report([a, b], allreduce_ns=42.0)
        assert report.peer_bytes == 256
        assert report.peer_transactions == 2
        assert report.zero_copy_bytes == 128
        assert report.allreduce_ns == 42.0
        assert report.peer_fraction == pytest.approx(256 / 384)
        assert report.to_dict()["peer_bytes"] == 256


class TestFactoryRouting:
    def test_devices_routes_to_fleet_engine(self):
        g0, _ = _stream(WORKLOADS[0][1], batches=1)
        system = make_system("GCSM", g0, TRIANGLE, devices=2, partitioner="range")
        assert isinstance(system, MultiGpuEngine)
        assert system.num_devices == 2
        assert system.partitioner.name == "range"

    def test_default_stays_single_gpu(self):
        g0, _ = _stream(WORKLOADS[0][1], batches=1)
        system = make_system("GCSM", g0, TRIANGLE)
        assert isinstance(system, GCSMEngine)
        assert not isinstance(system, MultiGpuEngine)
