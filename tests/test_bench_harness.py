"""Tests for the experiment harness (workload memoization, aggregation)."""

import warnings

import numpy as np
import pytest

from repro.bench.harness import (
    RunResult,
    Workload,
    build_workload,
    clear_caches,
    print_table,
    resolve_partitioner_opts,
    run_stream,
)
from repro.query import query_by_name


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestBuildWorkload:
    def test_memoized(self):
        g0a, batches_a = build_workload("AZ", batch_size=32, seed=0)
        g0b, batches_b = build_workload("AZ", batch_size=32, seed=0)
        assert g0a is g0b
        assert batches_a is batches_b

    def test_distinct_keys_distinct_streams(self):
        _, a = build_workload("AZ", batch_size=32, seed=0)
        _, b = build_workload("AZ", batch_size=64, seed=0)
        assert len(a[0]) == 32 and len(b[0]) == 64

    def test_same_update_set_across_batch_sizes(self):
        """Fig. 12's requirement: re-batching must not change the updates."""
        _, a = build_workload("AZ", batch_size=32, num_batches=4, seed=0)
        _, b = build_workload("AZ", batch_size=64, num_batches=2, seed=0)
        edges_a = np.concatenate([x.edges for x in a[:4]])
        edges_b = np.concatenate([x.edges for x in b[:2]])
        assert np.array_equal(edges_a, edges_b)

    def test_default_batch_size(self):
        _, batches = build_workload("AZ", seed=0)
        assert len(batches[0]) == 512  # AZ default

    def test_clear_caches(self):
        g0a, _ = build_workload("AZ", batch_size=32, seed=0)
        clear_caches()
        g0b, _ = build_workload("AZ", batch_size=32, seed=0)
        assert g0a is not g0b
        assert g0a == g0b  # deterministic rebuild


class TestWorkloadTruncation:
    """The silent-truncation bugfix: requests beyond num_edges // 2 must be
    surfaced, not quietly shrunk."""

    def test_truncation_warns_and_is_reported(self):
        with pytest.warns(RuntimeWarning, match="truncated"):
            wl = build_workload("AZ", batch_size=10_000, num_batches=50, seed=0)
        assert isinstance(wl, Workload)
        assert wl.truncated
        assert wl.updates_delivered < wl.updates_requested
        assert wl.batch_size_requested == 10_000
        assert wl.num_batches_requested == 50
        assert wl.num_batches_delivered < 50
        assert "truncated" in wl.describe()

    def test_warns_on_cache_hits_too(self):
        with pytest.warns(RuntimeWarning):
            build_workload("AZ", batch_size=10_000, num_batches=50, seed=0)
        with pytest.warns(RuntimeWarning):  # memoized second call still warns
            build_workload("AZ", batch_size=10_000, num_batches=50, seed=0)

    def test_satisfiable_request_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            wl = build_workload("AZ", batch_size=32, num_batches=2, seed=0)
        assert not wl.truncated
        assert wl.updates_delivered == 64

    def test_run_result_records_requested_vs_actual(self):
        with pytest.warns(RuntimeWarning):
            r = run_stream("ZC", "AZ", query_by_name("Q1"),
                           batch_size=10_000, num_batches=50, seed=0)
        assert r.batch_size_requested == 10_000
        assert r.num_batches_requested == 50
        assert r.num_batches < 50
        # batch_size is the *actual* mean over driven batches
        assert 0 < r.batch_size <= 10_000


class TestSizeValidation:
    """``batch_size=0`` must be an error, not 'use the dataset default'."""

    def test_zero_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            build_workload("AZ", batch_size=0, seed=0)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            build_workload("AZ", batch_size=-8, seed=0)
        with pytest.raises(ValueError, match="num_batches"):
            build_workload("AZ", batch_size=32, num_batches=0, seed=0)
        with pytest.raises(ValueError, match="window"):
            build_workload("AZ", batch_size=32, window=0, seed=0)

    def test_none_still_means_dataset_default(self):
        wl = build_workload("AZ", batch_size=None, seed=0)
        assert wl.batch_size_requested == 512  # AZ default

    def test_bad_update_mix_rejected(self):
        with pytest.raises(ValueError, match="update_mix"):
            build_workload("AZ", batch_size=32, update_mix="chaotic", seed=0)


class TestResolvePartitionerOpts:
    """Options may be a zero-arg callable OR a mapping attribute; ``{}``
    (configured, no overrides) must stay distinct from ``None``."""

    class _System:
        def __init__(self, partitioner):
            self.partitioner = partitioner

    class _Holder:
        pass

    def test_no_partitioner(self):
        assert resolve_partitioner_opts(self._System(None)) is None

    def test_callable_options(self):
        p = self._Holder()
        p.options = lambda: {"balance_slack": 0.15}
        assert resolve_partitioner_opts(self._System(p)) == {"balance_slack": 0.15}

    def test_mapping_attribute_options(self):
        p = self._Holder()
        p.options = {"refine_passes": 3}
        assert resolve_partitioner_opts(self._System(p)) == {"refine_passes": 3}

    def test_empty_dict_preserved(self):
        p = self._Holder()
        p.options = {}
        opts = resolve_partitioner_opts(self._System(p))
        assert opts == {} and opts is not None

    def test_no_options_surface(self):
        assert resolve_partitioner_opts(self._System(self._Holder())) is None

    def test_returns_a_copy(self):
        p = self._Holder()
        p.options = {"k": 1}
        out = resolve_partitioner_opts(self._System(p))
        out["k"] = 2
        assert p.options == {"k": 1}

    def test_end_to_end_through_run_stream(self):
        from repro.gpu.device import ClusterConfig

        r = run_stream(
            "GCSM", "AZ", query_by_name("Q1"), batch_size=32, seed=0,
            devices=ClusterConfig(num_devices=2), partitioner="mincut",
            partitioner_opts={"refine_passes": 2},
        )
        assert r.partitioner == "mincut"
        assert r.partitioner_opts is not None
        assert r.partitioner_opts.get("refine_passes") == 2


class TestStreamCacheAliasing:
    """Engines consume memoized batches; a second system run over the same
    cached stream must be byte-identical to its first run."""

    def test_cached_stream_not_mutated_across_systems(self):
        q = query_by_name("Q1")
        kwargs = dict(batch_size=32, num_batches=3, seed=0,
                      conflict_mode="coalesce")
        first = run_stream("GCSM", "AZ", q, **kwargs)
        run_stream("ZC", "AZ", q, **kwargs)  # interleaved consumer
        again = run_stream("GCSM", "AZ", q, **kwargs)
        assert first.delta_total == again.delta_total
        assert first.embeddings_total == again.embeddings_total
        assert first.breakdown.total_ns == again.breakdown.total_ns
        assert (first.counters.bytes_by_channel
                == again.counters.bytes_by_channel)
        assert first.counters.compute_ops == again.counters.compute_ops

    def test_cached_batch_objects_stay_identical(self):
        wl = build_workload("AZ", batch_size=32, num_batches=2, seed=0)
        before = [b.edges.copy() for b in wl.batches]
        run_stream("GCSM", "AZ", query_by_name("Q2"), batch_size=32,
                   num_batches=2, seed=0, conflict_mode="coalesce")
        after = build_workload("AZ", batch_size=32, num_batches=2, seed=0)
        assert after is wl  # same memoized object...
        for orig, now in zip(before, after.batches):
            assert np.array_equal(orig, now.edges)  # ...bitwise untouched


class TestWorkloadMixes:
    def test_insert_and_delete_heavy_skew(self):
        heavy_i = build_workload("AZ", batch_size=64, num_batches=2, seed=0,
                                 update_mix="insert-heavy")
        heavy_d = build_workload("AZ", batch_size=64, num_batches=2, seed=0,
                                 update_mix="delete-heavy")
        frac_i = np.mean([np.mean(b.signs > 0) for b in heavy_i.batches])
        frac_d = np.mean([np.mean(b.signs > 0) for b in heavy_d.batches])
        assert frac_i > 0.75 > 0.25 > frac_d

    def test_churn_mix_runs(self):
        wl = build_workload("AZ", batch_size=32, num_batches=3, seed=0,
                            update_mix="churn")
        assert wl.num_batches_delivered >= 2
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32,
                       num_batches=3, seed=0, update_mix="churn")
        assert r.update_mix == "churn"

    def test_windowed_workload_runs(self):
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32,
                       num_batches=3, seed=0, window=2,
                       conflict_mode="coalesce")
        assert r.window == 2
        assert r.num_batches == 3


class TestRunStream:
    def test_aggregates_batches(self):
        single = run_stream("ZC", "AZ", query_by_name("Q1"), batch_size=32,
                            num_batches=1, seed=0)
        multi = run_stream("ZC", "AZ", query_by_name("Q1"), batch_size=32,
                           num_batches=3, seed=0)
        assert multi.num_batches == 3
        # first batch identical; totals accumulate, means stay comparable
        assert multi.counters.total_access_count > single.counters.total_access_count
        assert multi.breakdown.total_ns > 0

    def test_result_fields(self):
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32, seed=0)
        assert isinstance(r, RunResult)
        assert r.system == "GCSM"
        assert r.dataset == "AZ"
        assert r.query == "Q1"
        assert r.batch_size == 32
        assert r.cache_hit_rate is not None
        assert r.coverage_top1 is not None
        assert r.total_ms == pytest.approx(r.breakdown.total_ns / 1e6)
        assert r.dc_ms == pytest.approx(
            (r.breakdown.estimate_ns + r.breakdown.pack_ns) / 1e6
        )
        assert "GCSM" in r.describe()

    def test_system_kwargs_forwarded(self):
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32,
                       seed=0, cache_budget_bytes=0)
        assert r.cache_bytes <= 8  # empty DCSR sentinel only
        assert r.cache_hit_rate == 0.0

    def test_deterministic(self):
        a = run_stream("GCSM", "AZ", query_by_name("Q2"), batch_size=32, seed=1)
        clear_caches()
        b = run_stream("GCSM", "AZ", query_by_name("Q2"), batch_size=32, seed=1)
        assert a.breakdown.total_ns == b.breakdown.total_ns
        assert a.delta_total == b.delta_total


class TestPrintTable:
    def test_formats_and_aligns(self, capsys):
        print_table("demo", ["a", "long-header"], [[1, 2.5], ["xx", 3.25]])
        out = capsys.readouterr().out
        assert "demo" in out
        assert "long-header" in out
        assert "2.500" in out  # float formatting
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 5  # title, header, rule, two rows
