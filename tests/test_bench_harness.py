"""Tests for the experiment harness (workload memoization, aggregation)."""

import numpy as np
import pytest

from repro.bench.harness import RunResult, build_workload, clear_caches, print_table, run_stream
from repro.query import query_by_name


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestBuildWorkload:
    def test_memoized(self):
        g0a, batches_a = build_workload("AZ", batch_size=32, seed=0)
        g0b, batches_b = build_workload("AZ", batch_size=32, seed=0)
        assert g0a is g0b
        assert batches_a is batches_b

    def test_distinct_keys_distinct_streams(self):
        _, a = build_workload("AZ", batch_size=32, seed=0)
        _, b = build_workload("AZ", batch_size=64, seed=0)
        assert len(a[0]) == 32 and len(b[0]) == 64

    def test_same_update_set_across_batch_sizes(self):
        """Fig. 12's requirement: re-batching must not change the updates."""
        _, a = build_workload("AZ", batch_size=32, num_batches=4, seed=0)
        _, b = build_workload("AZ", batch_size=64, num_batches=2, seed=0)
        edges_a = np.concatenate([x.edges for x in a[:4]])
        edges_b = np.concatenate([x.edges for x in b[:2]])
        assert np.array_equal(edges_a, edges_b)

    def test_default_batch_size(self):
        _, batches = build_workload("AZ", seed=0)
        assert len(batches[0]) == 512  # AZ default

    def test_clear_caches(self):
        g0a, _ = build_workload("AZ", batch_size=32, seed=0)
        clear_caches()
        g0b, _ = build_workload("AZ", batch_size=32, seed=0)
        assert g0a is not g0b
        assert g0a == g0b  # deterministic rebuild


class TestRunStream:
    def test_aggregates_batches(self):
        single = run_stream("ZC", "AZ", query_by_name("Q1"), batch_size=32,
                            num_batches=1, seed=0)
        multi = run_stream("ZC", "AZ", query_by_name("Q1"), batch_size=32,
                           num_batches=3, seed=0)
        assert multi.num_batches == 3
        # first batch identical; totals accumulate, means stay comparable
        assert multi.counters.total_access_count > single.counters.total_access_count
        assert multi.breakdown.total_ns > 0

    def test_result_fields(self):
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32, seed=0)
        assert isinstance(r, RunResult)
        assert r.system == "GCSM"
        assert r.dataset == "AZ"
        assert r.query == "Q1"
        assert r.batch_size == 32
        assert r.cache_hit_rate is not None
        assert r.coverage_top1 is not None
        assert r.total_ms == pytest.approx(r.breakdown.total_ns / 1e6)
        assert r.dc_ms == pytest.approx(
            (r.breakdown.estimate_ns + r.breakdown.pack_ns) / 1e6
        )
        assert "GCSM" in r.describe()

    def test_system_kwargs_forwarded(self):
        r = run_stream("GCSM", "AZ", query_by_name("Q1"), batch_size=32,
                       seed=0, cache_budget_bytes=0)
        assert r.cache_bytes <= 8  # empty DCSR sentinel only
        assert r.cache_hit_rate == 0.0

    def test_deterministic(self):
        a = run_stream("GCSM", "AZ", query_by_name("Q2"), batch_size=32, seed=1)
        clear_caches()
        b = run_stream("GCSM", "AZ", query_by_name("Q2"), batch_size=32, seed=1)
        assert a.breakdown.total_ns == b.breakdown.total_ns
        assert a.delta_total == b.delta_total


class TestPrintTable:
    def test_formats_and_aligns(self, capsys):
        print_table("demo", ["a", "long-header"], [[1, 2.5], ["xx", 3.25]])
        out = capsys.readouterr().out
        assert "demo" in out
        assert "long-header" in out
        assert "2.500" in out  # float formatting
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 5  # title, header, rule, two rows
