"""Tests for dynamic-stream derivation (paper Sec. VI-A methodology)."""

import numpy as np
import pytest

from repro.graphs import BatchConflictError, StaticGraph, UpdateBatch, derive_stream
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import insert_only_stream


class TestUpdateBatch:
    def test_basic_partition(self):
        b = UpdateBatch([(0, 1), (2, 3), (4, 5)], [1, -1, 1])
        assert len(b) == 3
        assert b.insert_edges().tolist() == [[0, 1], [4, 5]]
        assert b.delete_edges().tolist() == [[2, 3]]
        assert b.max_vertex() == 5

    def test_empty_batch(self):
        b = UpdateBatch(np.empty((0, 2)), np.empty(0))
        assert len(b) == 0
        assert b.max_vertex(default=-1) == -1
        edges, signs = b.directed_updates()
        assert edges.shape == (0, 2) and signs.shape == (0,)

    def test_directed_updates_both_orientations(self):
        b = UpdateBatch([(0, 1)], [-1])
        edges, signs = b.directed_updates()
        assert edges.tolist() == [[0, 1], [1, 0]]
        assert signs.tolist() == [-1, -1]

    def test_validation(self):
        with pytest.raises(ValueError):
            UpdateBatch([(0, 1)], [2])
        with pytest.raises(ValueError):
            UpdateBatch([(1, 1)], [1])
        with pytest.raises(ValueError):
            UpdateBatch([(0, 1), (1, 2)], [1])


class TestCanonicalize:
    """Intra-batch netting + classification against the current store."""

    def graph(self):
        # path 0-1-2-3 plus chord 0-2
        return StaticGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (0, 2)], np.array([0, 1, 0, 1])
        )

    def test_clean_batch_passes_through_untouched(self):
        b = UpdateBatch([(0, 3), (1, 2)], [1, -1])
        eff, rep = b.canonicalize(self.graph(), mode="strict")
        assert eff is b  # identity, not a copy
        assert rep.new_inserts == 1 and rep.valid_deletes == 1
        assert rep.anomalies == 0
        assert rep.input_size == rep.output_size == 2

    def test_coalesce_nets_insert_then_delete(self):
        b = UpdateBatch([(0, 3), (0, 3)], [1, -1])
        eff, rep = b.canonicalize(self.graph(), mode="coalesce")
        assert len(eff) == 0
        assert rep.intra_batch_dropped == 1
        assert rep.phantom_deletes == 1  # the surviving delete hits no edge
        assert rep.output_size == 0

    def test_netting_is_orientation_insensitive(self):
        b = UpdateBatch([(0, 3), (3, 0)], [1, -1])
        eff, _ = b.canonicalize(self.graph(), mode="coalesce")
        assert len(eff) == 0

    def test_coalesce_drops_duplicate_insert(self):
        b = UpdateBatch([(0, 1), (1, 3)], [1, 1])
        eff, rep = b.canonicalize(self.graph(), mode="coalesce")
        assert eff.edges.tolist() == [[1, 3]]
        assert rep.duplicate_inserts == 1 and rep.new_inserts == 1

    def test_coalesce_drops_phantom_delete(self):
        # (1, 3) absent; (0, 9) references a vertex the store has never seen
        b = UpdateBatch([(1, 3), (0, 9), (0, 2)], [-1, -1, -1])
        eff, rep = b.canonicalize(self.graph(), mode="coalesce")
        assert eff.edges.tolist() == [[0, 2]]
        assert rep.phantom_deletes == 2 and rep.valid_deletes == 1

    def test_coalesce_dedupes_double_delete(self):
        b = UpdateBatch([(0, 2), (2, 0)], [-1, -1])
        eff, rep = b.canonicalize(self.graph(), mode="coalesce")
        assert len(eff) == 1
        assert rep.valid_deletes == 1 and rep.intra_batch_dropped == 1

    def test_ignore_keeps_first_occurrence(self):
        # delete-then-insert of a present edge: coalesce nets to a no-op
        # (final state present), ignore keeps the first op (the delete)
        b = UpdateBatch([(0, 2), (0, 2)], [-1, 1])
        eff_c, _ = b.canonicalize(self.graph(), mode="coalesce")
        assert len(eff_c) == 0
        eff_i, _ = b.canonicalize(self.graph(), mode="ignore")
        assert eff_i.edges.tolist() == [[0, 2]]
        assert eff_i.signs.tolist() == [-1]

    def test_strict_raises_with_batch_diagnostic(self):
        b = UpdateBatch([(0, 1), (1, 3), (1, 3), (2, 3)], [1, 1, -1, -1])
        with pytest.raises(BatchConflictError) as exc:
            b.canonicalize(self.graph(), mode="strict")
        msg = str(exc.value)
        assert "updated more than once" in msg
        assert "insert(s) of existing edges" in msg and "(0, 1)" in msg
        assert exc.value.report.duplicate_inserts == 1
        assert exc.value.report.intra_batch_dropped == 1

    def test_strict_accepts_clean_batches(self):
        b = UpdateBatch([(1, 3)], [1])
        eff, _ = b.canonicalize(self.graph(), mode="strict")
        assert eff is b

    def test_labels_and_order_preserved(self):
        b = UpdateBatch([(2, 5), (0, 1), (0, 4)], [1, 1, 1],
                        new_vertex_labels={4: 3, 5: 2})
        eff, _ = b.canonicalize(self.graph(), mode="coalesce")
        # dup (0, 1) dropped; survivors keep stream order and orientation
        assert eff.edges.tolist() == [[2, 5], [0, 4]]
        assert eff.new_vertex_labels == {4: 3, 5: 2}

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch([(0, 3)], [1]).canonicalize(self.graph(), mode="merge")

    def test_report_merge_and_describe(self):
        b = UpdateBatch([(0, 1), (1, 3)], [1, 1])
        _, rep = b.canonicalize(self.graph(), mode="coalesce")
        agg = type(rep)(mode="aggregate")
        agg.merge(rep)
        agg.merge(rep)
        assert agg.duplicate_inserts == 2 and agg.new_inserts == 2
        assert "dup-insert" in agg.describe()


class TestDeriveStream:
    def test_requires_exactly_one_size_spec(self):
        g = erdos_renyi(30, 4.0, seed=0)
        with pytest.raises(ValueError):
            derive_stream(g, seed=0)
        with pytest.raises(ValueError):
            derive_stream(g, num_updates=5, update_fraction=0.1, seed=0)

    def test_update_count_and_batching(self):
        g = erdos_renyi(100, 6.0, seed=1)
        g0, batches = derive_stream(g, num_updates=50, batch_size=16, seed=1)
        assert sum(len(b) for b in batches) == 50
        assert [len(b) for b in batches] == [16, 16, 16, 2]

    def test_insertions_removed_from_initial(self):
        g = erdos_renyi(100, 6.0, seed=2)
        g0, batches = derive_stream(g, update_fraction=0.2, batch_size=1000, seed=2)
        all_ins = np.concatenate([b.insert_edges() for b in batches])
        all_del = np.concatenate([b.delete_edges() for b in batches])
        for u, v in all_ins.tolist():
            assert not g0.has_edge(u, v)
        for u, v in all_del.tolist():
            assert g0.has_edge(u, v)
        assert g0.num_edges == g.num_edges - all_ins.shape[0]

    def test_replay_reaches_expected_final_graph(self):
        g = erdos_renyi(80, 5.0, seed=3)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=7, seed=3)
        final = g0
        for b in batches:
            final = final.with_edges(b.insert_edges()).without_edges(b.delete_edges())
        # final graph = original minus the edges selected for deletion
        all_del = np.concatenate([b.delete_edges() for b in batches])
        assert final == g.without_edges(all_del)

    def test_insert_probability_extremes(self):
        g = erdos_renyi(100, 6.0, seed=4)
        _, batches = derive_stream(g, num_updates=40, batch_size=40,
                                   insert_probability=1.0, seed=4)
        assert all(b.delete_edges().shape[0] == 0 for b in batches)
        _, batches = derive_stream(g, num_updates=40, batch_size=40,
                                   insert_probability=0.0, seed=4)
        assert all(b.insert_edges().shape[0] == 0 for b in batches)

    def test_deterministic_given_seed(self):
        g = erdos_renyi(100, 6.0, seed=5)
        a0, ab = derive_stream(g, num_updates=30, batch_size=10, seed=42)
        b0, bb = derive_stream(g, num_updates=30, batch_size=10, seed=42)
        assert a0 == b0
        for x, y in zip(ab, bb):
            assert x.edges.tolist() == y.edges.tolist()
            assert x.signs.tolist() == y.signs.tolist()

    def test_too_many_updates_rejected(self):
        g = erdos_renyi(20, 2.0, seed=6)
        with pytest.raises(ValueError):
            derive_stream(g, num_updates=10 * g.num_edges, batch_size=8, seed=6)


class TestInsertOnlyStream:
    def test_all_inserts(self):
        g = erdos_renyi(60, 4.0, seed=8)
        g0, batches = insert_only_stream(g, num_updates=20, batch_size=6, seed=8)
        assert sum(len(b) for b in batches) == 20
        assert all(b.delete_edges().shape[0] == 0 for b in batches)
        final = g0
        for b in batches:
            final = final.with_edges(b.insert_edges())
        assert final == g


class TestLocalizedStream:
    def _hot_touch_fraction(self, weight, seed=9):
        from repro.graphs.stream import derive_localized_stream
        import numpy as np

        g = erdos_renyi(400, 6.0, seed=seed)
        rng = np.random.default_rng(seed)
        g0, batches = derive_localized_stream(
            g, num_updates=200, batch_size=50, hotspot_fraction=0.05,
            hotspot_weight=weight, seed=seed,
        )
        # recompute the hot set exactly as the deriver does
        hot = rng.choice(g.num_vertices, size=int(g.num_vertices * 0.05),
                         replace=False)
        is_hot = np.zeros(g.num_vertices, dtype=bool)
        is_hot[hot] = True
        edges = np.concatenate([b.edges for b in batches])
        return float((is_hot[edges[:, 0]] | is_hot[edges[:, 1]]).mean())

    def test_hotspots_concentrate_updates(self):
        uniform = self._hot_touch_fraction(weight=1.0)
        skewed = self._hot_touch_fraction(weight=25.0)
        assert skewed > 1.5 * uniform

    def test_structure_matches_uniform_deriver(self):
        from repro.graphs.stream import derive_localized_stream

        g = erdos_renyi(100, 6.0, seed=10)
        g0, batches = derive_localized_stream(
            g, num_updates=60, batch_size=16, seed=10,
        )
        assert sum(len(b) for b in batches) == 60
        for b in batches:
            for u, v in b.delete_edges().tolist():
                assert g0.has_edge(u, v)
            for u, v in b.insert_edges().tolist():
                assert not g0.has_edge(u, v)

    def test_validation(self):
        from repro.graphs.stream import derive_localized_stream

        g = erdos_renyi(50, 4.0, seed=11)
        with pytest.raises(ValueError):
            derive_localized_stream(g, num_updates=10, batch_size=4,
                                    hotspot_fraction=0.0)
        with pytest.raises(ValueError):
            derive_localized_stream(g, num_updates=10, batch_size=4,
                                    hotspot_weight=0.5)
        with pytest.raises(ValueError):
            derive_localized_stream(g, num_updates=10**6, batch_size=4)

    def test_degree_bias_hits_hubs(self):
        from repro.graphs.generators import powerlaw_graph
        from repro.graphs.stream import derive_localized_stream
        import numpy as np

        g = powerlaw_graph(2000, 8.0, max_degree=200, seed=12)
        degs = g.degrees()
        hubs = set(np.argsort(-degs)[:20].tolist())

        def hub_touch(bias):
            _, batches = derive_localized_stream(
                g, num_updates=300, batch_size=100, hotspot_fraction=0.01,
                hotspot_weight=100.0, hotspot_bias=bias, seed=13,
            )
            edges = np.concatenate([b.edges for b in batches])
            return sum(1 for u, v in edges.tolist() if u in hubs or v in hubs)

        assert hub_touch("degree") > hub_touch("uniform")

    def test_bad_bias_rejected(self):
        from repro.graphs.stream import derive_localized_stream

        g = erdos_renyi(50, 4.0, seed=14)
        with pytest.raises(ValueError):
            derive_localized_stream(g, num_updates=10, batch_size=4,
                                    hotspot_bias="fame")
