"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURE_RUNNERS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "GCSM"
        assert args.dataset == "FR"
        assert args.query == "Q1"

    def test_invalid_choices_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "TPU"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_all_figures_registered(self):
        # every Table/Figure of the paper has a runner
        expected = {"table1", "fig7", "fig8", "fig9", "fig10", "fig11",
                    "fig12", "fig13", "fig14", "fig15", "table2", "table3", "um"}
        assert expected == set(FIGURE_RUNNERS)


class TestCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("AZ", "PA", "CA", "LJ", "FR", "SF3K", "SF10K"):
            assert name in out

    def test_list_queries(self, capsys):
        assert main(["list-queries"]) == 0
        out = capsys.readouterr().out
        for name in ("Q1", "Q6"):
            assert name in out

    def test_run_with_json_export(self, capsys, tmp_path):
        path = tmp_path / "record.json"
        code = main([
            "run", "--system", "ZC", "--dataset", "AZ", "--query", "Q1",
            "--batch-size", "32", "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ΔM total" in out
        payload = json.loads(path.read_text())
        assert payload[0]["system"] == "ZC"
        assert payload[0]["dataset"] == "AZ"

    def test_compare(self, capsys):
        code = main([
            "compare", "--systems", "GCSM,ZC", "--dataset", "AZ",
            "--query", "Q1", "--batch-size", "32",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "GCSM vs ZC" in out

    def test_figure_fig7(self, capsys):
        assert main(["figure", "fig7"]) == 0
        assert "Fig. 7" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_passes(self, capsys):
        code = main([
            "verify", "--systems", "GCSM,ZC", "--dataset", "AZ",
            "--query", "Q1", "--batch-size", "16", "--batches", "2",
        ])
        assert code == 0
        assert "systems agree" in capsys.readouterr().out

    def test_verify_fuzz(self, capsys):
        code = main(["verify", "--fuzz", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "adversarial cases" in out
        assert "agree with the oracle" in out

    def test_verify_fuzz_with_conflict_mode(self, capsys):
        code = main(["verify", "--fuzz", "1", "--conflict-mode", "ignore"])
        assert code == 0
        assert "mode=ignore" in capsys.readouterr().out

    def test_run_conflict_mode_in_json(self, capsys, tmp_path):
        path = tmp_path / "record.json"
        code = main([
            "run", "--system", "CPU", "--dataset", "AZ", "--query", "Q1",
            "--batch-size", "16", "--conflict-mode", "strict",
            "--json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload[0]["conflict_mode"] == "strict"

    def test_bad_conflict_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--conflict-mode", "merge"])


class TestRulebookCommand:
    def test_inline_rulebook_runs_shared(self, capsys, tmp_path):
        path = tmp_path / "rb.json"
        code = main([
            "run", "--rulebook", "Q1,Q2", "--dataset", "AZ",
            "--batch-size", "32", "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 queries, shared=True" in out
        payload = json.loads(path.read_text())
        assert payload[0]["shared"] is True
        assert payload[0]["rulebook_size"] == 2
        assert payload[0]["query"] == "rulebook[2]"

    def test_rulebook_file_and_no_shared(self, capsys, tmp_path):
        book = tmp_path / "book.txt"
        book.write_text("Q1  # house\nQ3\n")
        path = tmp_path / "rb.json"
        code = main([
            "run", "--rulebook", str(book), "--no-shared", "--dataset", "AZ",
            "--batch-size", "32", "--json", str(path),
        ])
        assert code == 0
        assert "shared=False" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload[0]["shared"] is False

    def test_rulebook_json_file_with_inline_pattern(self, capsys, tmp_path):
        book = tmp_path / "book.json"
        book.write_text(json.dumps({
            "queries": [
                "Q1",
                {"name": "wedge", "edges": [[0, 1], [1, 2]], "labels": [0, 1, 0]},
            ]
        }))
        code = main([
            "run", "--rulebook", str(book), "--dataset", "AZ",
            "--batch-size", "32",
        ])
        assert code == 0
        assert "2 queries" in capsys.readouterr().out

    def test_unknown_rulebook_entry_rejected(self, capsys):
        assert main(["run", "--rulebook", "Q1,QX", "--dataset", "AZ"]) == 2
        assert "unknown rulebook entry" in capsys.readouterr().err

    def test_rulebook_excludes_other_systems(self, capsys):
        assert main(["run", "--rulebook", "Q1", "--system", "CPU"]) == 2
        assert "--rulebook only applies to GCSM" in capsys.readouterr().err
