"""Tests for online repartitioning (``repro.multigpu.repartition``).

Three layers: the config normalizer (CLI/engine argument forms), the
:class:`OwnershipManager` unit behavior (EWMA heat, due-schedule, drift
detection, payback-filtered migration priced as interconnect traffic), and
the end-to-end invariant — a repartitioning fleet recovers its cut-rate
after a hotness drift while ΔM stays bit-identical to a single GPU.
"""

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.gpu.counters import AccessCounters
from repro.gpu.device import DeviceConfig
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.multigpu import (
    MultiGpuEngine,
    OwnershipManager,
    RepartitionConfig,
    normalize_repartition,
)
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


class TestNormalize:
    def test_off_forms(self):
        assert normalize_repartition(None) is None
        assert normalize_repartition(False) is None

    def test_true_gives_defaults(self):
        cfg = normalize_repartition(True)
        assert cfg == RepartitionConfig()

    def test_mapping_overrides(self):
        cfg = normalize_repartition({"every": 2, "threshold": 0.1})
        assert cfg.every == 2
        assert cfg.threshold == 0.1
        assert cfg.horizon == RepartitionConfig().horizon  # untouched knob

    def test_config_passthrough(self):
        cfg = RepartitionConfig(every=7)
        assert normalize_repartition(cfg) is cfg

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            normalize_repartition({"cadence": 3})

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            normalize_repartition("every-batch")


def _manager(**overrides) -> OwnershipManager:
    cfg = RepartitionConfig(**overrides)
    return OwnershipManager(num_devices=2, config=cfg, device=DeviceConfig())


def _graph(n=200, seed=3) -> DynamicGraph:
    return DynamicGraph(powerlaw_graph(n, 8.0, max_degree=40, seed=seed))


class TestOwnershipManager:
    def test_ewma_folds_and_grows(self):
        mgr = _manager(ewma=0.5)
        mgr.observe(np.array([8.0, 0.0]))
        assert mgr.heat.tolist() == [4.0, 0.0]
        mgr.observe(np.array([8.0, 0.0, 2.0]))  # graph grew by one vertex
        assert mgr.heat.tolist() == [6.0, 0.0, 1.0]
        assert mgr.batches_seen == 2

    def test_not_due_is_a_no_op(self):
        mgr = _manager(every=4)
        g = _graph()
        owner = np.arange(g.num_vertices, dtype=np.int64) % 2
        mgr.observe(np.ones(g.num_vertices))  # batches_seen = 1, not % 4
        new, rep = mgr.step(g, owner)
        assert new is owner
        assert not rep.evaluated and not rep.triggered
        assert rep.repartition_ns == 0.0

    def test_single_device_never_evaluates(self):
        cfg = RepartitionConfig(every=1)
        mgr = OwnershipManager(num_devices=1, config=cfg, device=DeviceConfig())
        g = _graph()
        mgr.observe(np.ones(g.num_vertices))
        _, rep = mgr.step(g, np.zeros(g.num_vertices, dtype=np.int64))
        assert not rep.evaluated

    def test_below_threshold_keeps_map(self):
        mgr = _manager(every=1, threshold=0.99, imbalance_threshold=100.0)
        g = _graph()
        owner = np.arange(g.num_vertices, dtype=np.int64) % 2
        mgr.observe(g.degrees_new().astype(float))
        counters = AccessCounters()
        new, rep = mgr.step(g, owner, counters)
        assert rep.evaluated and not rep.triggered
        assert np.array_equal(new, owner)
        assert rep.cut_rate_before == rep.cut_rate_after
        assert counters.compute_ops > 0  # evaluation is host work

    def test_drift_triggers_paid_migration(self):
        mgr = _manager(every=1, threshold=0.0, horizon=100.0)
        g = _graph()
        # deliberately terrible sticky map: alternating owners cut ~half
        # the heat-weighted edges, far above any sane threshold
        owner = np.arange(g.num_vertices, dtype=np.int64) % 2
        mgr.observe(g.degrees_new().astype(float))
        counters = AccessCounters()
        new, rep = mgr.step(g, owner, counters)
        assert rep.evaluated and rep.triggered
        assert rep.moved > 0
        assert rep.migration_bytes > 0
        assert rep.repartition_ns > 0.0  # migration is not free
        assert rep.cut_rate_after < rep.cut_rate_before
        assert int((new != owner).sum()) == rep.moved

    def test_zero_horizon_blocks_all_moves(self):
        mgr = _manager(every=1, threshold=0.0, horizon=0.0)
        g = _graph()
        owner = np.arange(g.num_vertices, dtype=np.int64) % 2
        mgr.observe(g.degrees_new().astype(float))
        new, rep = mgr.step(g, owner)
        # a move can never repay its migration bytes within zero batches
        assert rep.triggered and rep.moved == 0
        assert rep.repartition_ns == 0.0
        assert np.array_equal(new, owner)


class TestEndToEnd:
    def _stream(self, batches=6, batch_size=32):
        g = powerlaw_graph(400, 8.0, max_degree=60, num_labels=1, seed=21)
        return derive_stream(
            g, num_updates=batches * batch_size, batch_size=batch_size, seed=7
        )

    def test_repartitioning_fleet_matches_single_gpu(self):
        g0, batches = self._stream()
        single = GCSMEngine(g0, TRIANGLE, seed=9)
        fleet = MultiGpuEngine(
            g0, TRIANGLE, devices=2, partitioner="mincut", seed=9,
            repartition={"every": 1, "threshold": 0.0,
                         "imbalance_threshold": 1.0, "horizon": 100.0},
        )
        reports = []
        for batch in batches:
            a, b = single.process_batch(batch), fleet.process_batch(batch)
            assert a.delta_count == b.delta_count  # ΔM bit-identical
            reports.append(b)
        # the forced-trigger config must have replanned at least once, and
        # every migration shows up in the dedicated time lane
        evaluated = [r.repartition for r in reports if r.repartition is not None]
        assert any(r.evaluated for r in evaluated)
        for r, rep in zip(reports, [x.repartition for x in reports]):
            if rep is not None and rep.moved:
                assert r.breakdown.repartition_ns >= rep.repartition_ns > 0.0

    def test_cut_rate_recovers_after_drift(self):
        g0, batches = self._stream(batches=8)
        fleet = MultiGpuEngine(
            g0, TRIANGLE, devices=2, partitioner="mincut", seed=9,
            repartition={"every": 2, "threshold": 0.05, "horizon": 50.0},
        )
        rates = []
        for batch in batches:
            rep = fleet.process_batch(batch).repartition
            if rep is not None and rep.triggered:
                rates.append((rep.cut_rate_before, rep.cut_rate_after))
        # every replan must leave the heat-weighted cut no worse than it
        # found it (refinement only accepts cut-reducing moves)
        for before, after in rates:
            assert after <= before

    def test_repartition_off_keeps_report_none(self):
        g0, batches = self._stream(batches=2)
        fleet = MultiGpuEngine(g0, TRIANGLE, devices=2, seed=9)
        for batch in batches:
            assert fleet.process_batch(batch).repartition is None
