"""Tests for edge-list / npz graph I/O."""

import numpy as np

from repro.graphs.generators import erdos_renyi
from repro.graphs.io import load_edge_list, load_npz, save_edge_list, save_npz


def test_edge_list_roundtrip(tmp_path):
    g = erdos_renyi(50, 4.0, seed=1)
    path = tmp_path / "graph.txt"
    save_edge_list(g, path)
    g2 = load_edge_list(path)
    # labels are not stored in edge lists; compare structure only
    assert g2.num_vertices == g.num_vertices
    assert g2.num_edges == g.num_edges
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.indices, g.indices)


def test_edge_list_with_comments_and_remap(tmp_path):
    path = tmp_path / "snap.txt"
    path.write_text("# a SNAP-style comment\n10 20\n20 30\n10 30\n")
    g = load_edge_list(path)
    assert g.num_vertices == 3  # ids compacted
    assert g.num_edges == 3


def test_edge_list_with_labels(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n1 2\n")
    lab = tmp_path / "labels.txt"
    lab.write_text("5\n6\n7\n")
    g = load_edge_list(path, labels_path=lab)
    assert g.labels.tolist() == [5, 6, 7]


def test_npz_roundtrip(tmp_path):
    g = erdos_renyi(80, 5.0, seed=2)
    path = tmp_path / "graph.npz"
    save_npz(g, path)
    g2 = load_npz(path)
    assert g2 == g
