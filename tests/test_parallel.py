"""Tests for the thread-pool helpers."""

import threading

import numpy as np
import pytest

from repro.parallel import (
    chunked,
    default_workers,
    parallel_map,
    parallel_root_partition,
    submit,
)


class TestDefaultWorkers:
    def test_bounds(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert 1 <= default_workers() <= 8

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "13")
        assert default_workers() == 13
        monkeypatch.setenv("REPRO_WORKERS", " 2 ")
        assert default_workers() == 2

    @pytest.mark.parametrize("bogus", ["", "0", "-4", "many", "3.5"])
    def test_invalid_env_ignored(self, monkeypatch, bogus):
        monkeypatch.setenv("REPRO_WORKERS", bogus)
        assert 1 <= default_workers() <= 8


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(20)), workers=4)
        assert out == [x * x for x in range(20)]

    def test_single_worker_plain_loop(self):
        seen_threads = set()

        def fn(x):
            seen_threads.add(threading.current_thread().name)
            return x

        parallel_map(fn, [1, 2, 3], workers=1)
        assert seen_threads == {threading.main_thread().name}

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], workers=2)

    def test_empty(self):
        assert parallel_map(lambda x: x, [], workers=3) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], workers=0)

    def test_unordered_still_complete(self):
        out = parallel_map(lambda x: x + 1, list(range(10)), workers=3, ordered=False)
        assert sorted(out) == list(range(1, 11))

    def test_workers_exceeding_items(self):
        out = parallel_map(lambda x: x * 2, [1, 2, 3], workers=16)
        assert out == [2, 4, 6]

    def test_single_item_many_workers(self):
        assert parallel_map(lambda x: -x, [5], workers=8) == [-5]

    def test_generator_input(self):
        out = parallel_map(lambda x: x + 1, (x for x in range(6)), workers=3)
        assert out == list(range(1, 7))

    def test_empty_generator(self):
        assert parallel_map(lambda x: x, (x for x in ()), workers=3) == []


class TestChunked:
    def test_balanced_partition(self):
        chunks = chunked(list(range(10)), 3)
        assert [len(c) for c in chunks] == [3, 4, 3] or sum(len(c) for c in chunks) == 10
        flat = [x for c in chunks for x in c]
        assert flat == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunked([1, 2], 5)
        assert [list(c) for c in chunks] == [[1], [2]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_single_element(self):
        assert [list(c) for c in chunked([7], 4)] == [[7]]

    def test_numpy_array_items(self):
        chunks = chunked(np.arange(10), 3)
        assert np.array_equal(np.concatenate(chunks), np.arange(10))

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_pad_fixes_width_when_chunks_exceed_items(self):
        chunks = chunked([1, 2], 5, pad=True)
        assert len(chunks) == 5
        assert [list(c) for c in chunks] == [[1], [2], [], [], []]

    def test_pad_empty_input_yields_all_empty_lanes(self):
        chunks = chunked([], 4, pad=True)
        assert len(chunks) == 4
        assert all(len(c) == 0 for c in chunks)

    def test_pad_noop_when_items_fill_every_chunk(self):
        assert chunked(list(range(10)), 3, pad=True) == chunked(list(range(10)), 3)

    def test_pad_preserves_sequence_type(self):
        chunks = chunked(np.arange(3), 5, pad=True)
        assert len(chunks) == 5
        assert all(isinstance(c, np.ndarray) for c in chunks)
        assert np.array_equal(np.concatenate(chunks), np.arange(3))


class TestSubmit:
    def test_runs_off_the_calling_thread(self):
        names = []

        def task():
            names.append(threading.current_thread().name)
            return 42

        handle = submit(task)
        assert handle.result() == 42
        assert handle.done()
        assert names and names[0] != threading.main_thread().name

    def test_result_reraises(self):
        def boom():
            raise RuntimeError("task failed")

        with pytest.raises(RuntimeError, match="task failed"):
            submit(boom).result()

    def test_args_and_kwargs_forwarded(self):
        assert submit(lambda a, b=0: a + b, 2, b=3).result() == 5

    def test_result_is_idempotent(self):
        handle = submit(lambda: [1, 2])
        assert handle.result() is handle.result()


class TestRootPartition:
    def test_covers_exactly_once(self):
        roots = np.arange(14).reshape(7, 2)
        signs = np.array([1, -1, 1, 1, -1, 1, -1])
        parts = parallel_root_partition(roots, signs, 3)
        recon_roots = np.concatenate([p[0] for p in parts])
        recon_signs = np.concatenate([p[1] for p in parts])
        assert np.array_equal(recon_roots, roots)
        assert np.array_equal(recon_signs, signs)

    def test_empty(self):
        assert parallel_root_partition(np.empty((0, 2)), np.empty(0), 4) == []

    def test_one_root_many_workers(self):
        parts = parallel_root_partition(np.array([[1, 2]]), np.array([1]), 8)
        assert len(parts) == 1
        assert np.array_equal(parts[0][0], np.array([[1, 2]]))

    def test_workers_exceeding_roots(self):
        roots = np.arange(6).reshape(3, 2)
        signs = np.array([1, -1, 1])
        parts = parallel_root_partition(roots, signs, 10)
        assert len(parts) == 3  # never more parts than roots
        assert np.array_equal(np.concatenate([p[0] for p in parts]), roots)

    def test_rejects_zero_workers_even_when_empty(self):
        with pytest.raises(ValueError):
            parallel_root_partition(np.empty((0, 2)), np.empty(0), 0)

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parallel_root_partition(np.zeros((2, 2)), np.zeros(3), 2)
