"""Tests for the thread-pool helpers."""

import threading

import numpy as np
import pytest

from repro.parallel import chunked, default_workers, parallel_map, parallel_root_partition


class TestDefaultWorkers:
    def test_bounds(self):
        assert 1 <= default_workers() <= 8


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(20)), workers=4)
        assert out == [x * x for x in range(20)]

    def test_single_worker_plain_loop(self):
        seen_threads = set()

        def fn(x):
            seen_threads.add(threading.current_thread().name)
            return x

        parallel_map(fn, [1, 2, 3], workers=1)
        assert seen_threads == {threading.main_thread().name}

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_map(boom, [1, 2], workers=2)

    def test_empty(self):
        assert parallel_map(lambda x: x, [], workers=3) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            parallel_map(lambda x: x, [1], workers=0)

    def test_unordered_still_complete(self):
        out = parallel_map(lambda x: x + 1, list(range(10)), workers=3, ordered=False)
        assert sorted(out) == list(range(1, 11))


class TestChunked:
    def test_balanced_partition(self):
        chunks = chunked(list(range(10)), 3)
        assert [len(c) for c in chunks] == [3, 4, 3] or sum(len(c) for c in chunks) == 10
        flat = [x for c in chunks for x in c]
        assert flat == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunked([1, 2], 5)
        assert [list(c) for c in chunks] == [[1], [2]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestRootPartition:
    def test_covers_exactly_once(self):
        roots = np.arange(14).reshape(7, 2)
        signs = np.array([1, -1, 1, 1, -1, 1, -1])
        parts = parallel_root_partition(roots, signs, 3)
        recon_roots = np.concatenate([p[0] for p in parts])
        recon_signs = np.concatenate([p[1] for p in parts])
        assert np.array_equal(recon_roots, roots)
        assert np.array_equal(recon_signs, signs)

    def test_empty(self):
        assert parallel_root_partition(np.empty((0, 2)), np.empty(0), 4) == []

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parallel_root_partition(np.zeros((2, 2)), np.zeros(3), 2)
