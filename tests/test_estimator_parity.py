"""Differential tests: frontier estimator vs the recursive reference.

The parity contract (see ``docs/frequency.md``) has three layers:

(a) **exact** — in the deterministic full-expansion regime (``survival``
    large enough that every child-continuation probability saturates to 1)
    the two samplers consume identical RNG streams (root draws only) and
    perform the same multiset of charges, so frequencies, FE counters, and
    ``nodes_visited`` agree exactly, and ``GCSMEngine`` end-to-end results
    are identical under either estimator;
(b) **statistical** — under the stochastic schedules both are unbiased:
    their seed-averaged estimates converge to the exact access counts ``C_v``
    measured by instrumenting the exact kernel;
(c) the DCSR-side contract (vectorized vs reference ``build``) lives in
    ``tests/test_dcsr.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import GCSMEngine
from repro.core.frequency import (
    DEFAULT_ESTIMATOR,
    ESTIMATORS,
    FrequencyEstimator,
    make_estimator,
)
from repro.core.frequency_frontier import FrontierFrequencyEstimator
from repro.core.matching import match_batch
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.generators import erdos_renyi, powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.gpu.counters import AccessCounters, Channel
from repro.gpu.views import HostCPUView
from repro.gpu.device import default_device
from repro.query import QueryGraph, query_by_name
from repro.query.plan import compile_delta_plans

DEVICE = default_device()

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")

#: large enough that min(1, survival/|V|) == 1 for every candidate set
FULL_EXPANSION = 1e18


def estimator_fingerprint(result, num_vertices: int) -> dict:
    c = result.counters
    return {
        "freq": result.frequencies.tolist(),
        "walks": result.num_walks,
        "nodes": result.nodes_visited,
        "bytes": {ch.value: v for ch, v in c.bytes_by_channel.items()},
        "tx": {ch.value: v for ch, v in c.transactions_by_channel.items()},
        "compute": c.compute_ops,
        "hist": c.vertex_access_counts(num_vertices).tolist(),
        "hist_bytes": c.vertex_access_bytes(num_vertices).tolist(),
    }


def run_estimates(name, g0, batches, plans, *, survival, num_walks, seed=123):
    """Drive one estimator over a whole stream (deletions included)."""
    graph = DynamicGraph(g0)
    est = make_estimator(name, graph, DEVICE, seed=seed, survival=survival)
    prints = []
    for batch in batches:
        graph.apply_batch(batch)
        res = est.estimate(plans, batch, num_walks=num_walks)
        prints.append(estimator_fingerprint(res, graph.num_vertices))
        graph.reorganize()
    return prints


class TestFactory:
    def test_registry(self):
        assert DEFAULT_ESTIMATOR == "frontier"
        assert set(ESTIMATORS) == {"frontier", "recursive"}
        g = erdos_renyi(10, 2.0, num_labels=1, seed=0)
        graph = DynamicGraph(g)
        assert isinstance(
            make_estimator("frontier", graph, DEVICE), FrontierFrequencyEstimator
        )
        rec = make_estimator("recursive", graph, DEVICE)
        assert isinstance(rec, FrequencyEstimator)
        assert not isinstance(rec, FrontierFrequencyEstimator)
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("vectorized", graph, DEVICE)

    def test_engine_uses_default(self):
        g = erdos_renyi(30, 3.0, num_labels=1, seed=1)
        engine = GCSMEngine(g, query_by_name("Q1"))
        assert isinstance(engine.estimator, FrontierFrequencyEstimator)
        assert engine.estimator_name == "frontier"
        rec = GCSMEngine(g, query_by_name("Q1"), estimator="recursive")
        assert not isinstance(rec.estimator, FrontierFrequencyEstimator)


class TestDeterministicExactParity:
    """Layer (a): exact equality in the full-expansion regime."""

    @pytest.mark.parametrize("query_name", ["Q1", "Q3", "Q5"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_randomized_streams(self, query_name, seed):
        g = powerlaw_graph(500, 6.0, max_degree=40, num_labels=3, seed=seed)
        g0, batches = derive_stream(
            g, num_updates=128, batch_size=32, insert_probability=0.5,
            seed=seed + 10,
        )
        plans = compile_delta_plans(query_by_name(query_name))
        rec = run_estimates(
            "recursive", g0, batches, plans,
            survival=FULL_EXPANSION, num_walks=400,
        )
        fro = run_estimates(
            "frontier", g0, batches, plans,
            survival=FULL_EXPANSION, num_walks=400,
        )
        assert rec == fro

    def test_unlabeled_dense_case(self):
        g = erdos_renyi(120, 8.0, num_labels=1, seed=5)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=24, seed=6)
        plans = compile_delta_plans(TRIANGLE)
        rec = run_estimates(
            "recursive", g0, batches[:4], plans,
            survival=FULL_EXPANSION, num_walks=600,
        )
        fro = run_estimates(
            "frontier", g0, batches[:4], plans,
            survival=FULL_EXPANSION, num_walks=600,
        )
        assert rec == fro

    def test_adaptive_inherited(self):
        """estimate_adaptive (inherited by the frontier class) stays exact."""
        g = erdos_renyi(80, 5.0, num_labels=2, seed=7)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=16, seed=8)
        plans = compile_delta_plans(query_by_name("Q1"))
        results = {}
        for name in ESTIMATORS:
            graph = DynamicGraph(g0)
            graph.apply_batch(batches[0])
            est = make_estimator(
                name, graph, DEVICE, seed=9, survival=FULL_EXPANSION
            )
            res = est.estimate_adaptive(
                plans, batches[0], initial_walks=64, max_walks=1024
            )
            results[name] = estimator_fingerprint(res, graph.num_vertices)
        assert results["frontier"] == results["recursive"]


class TestEngineEndToEnd:
    """Layer (a) through the whole pipeline: cache selection, match counts,
    and simulated breakdowns are identical under either estimator."""

    def batch_fingerprint(self, result) -> dict:
        bd = result.breakdown
        return {
            "delta": result.delta_count,
            "embeddings": result.match_stats.embeddings_found,
            "tree_nodes": result.match_stats.tree_nodes,
            "cached": result.cached_vertices.tolist(),
            "cache_bytes": result.cache_bytes,
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "update_ns": bd.update_ns,
            "estimate_ns": bd.estimate_ns,
            "pack_ns": bd.pack_ns,
            "match_ns": bd.match_ns,
            "reorg_ns": bd.reorg_ns,
            "match_compute": result.match_counters.compute_ops,
        }

    @pytest.mark.parametrize("query_name", ["Q1", "Q3"])
    def test_gcsm_engine_identical(self, query_name):
        g = powerlaw_graph(400, 6.0, max_degree=30, num_labels=3, seed=3)
        g0, batches = derive_stream(g, num_updates=96, batch_size=32, seed=4)
        prints = {}
        for name in ESTIMATORS:
            engine = GCSMEngine(
                g0, query_by_name(query_name),
                estimator=name, survival=FULL_EXPANSION, seed=11,
            )
            prints[name] = [
                self.batch_fingerprint(engine.process_batch(b)) for b in batches
            ]
        assert prints["frontier"] == prints["recursive"]

    def test_multigpu_engine_identical(self):
        from repro.multigpu import MultiGpuEngine

        g = powerlaw_graph(300, 5.0, max_degree=25, num_labels=2, seed=12)
        g0, batches = derive_stream(g, num_updates=64, batch_size=32, seed=13)
        prints = {}
        for name in ESTIMATORS:
            engine = MultiGpuEngine(
                g0, query_by_name("Q1"), devices=2,
                estimator=name, survival=FULL_EXPANSION, seed=14,
            )
            prints[name] = [
                self.batch_fingerprint(engine.process_batch(b)) for b in batches
            ]
        assert prints["frontier"] == prints["recursive"]


class TestStatisticalParity:
    """Layer (b): both samplers are unbiased under the stochastic schedules."""

    def _exact_and_setup(self, seed=3, n=30, batch=8):
        g = erdos_renyi(n, 5.0, num_labels=1, seed=seed)
        g0, batches = derive_stream(
            g, update_fraction=0.4, batch_size=batch, seed=seed
        )
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        plans = compile_delta_plans(TRIANGLE)
        counters = AccessCounters()
        match_batch(plans, batches[0], HostCPUView(dg, DEVICE, counters))
        exact = counters.vertex_access_counts(dg.num_vertices).astype(float)
        return dg, batches[0], plans, exact

    @pytest.mark.parametrize("survival", [None, 1.0])
    def test_frontier_unbiased_against_exact_counts(self, survival):
        dg, batch, plans, exact = self._exact_and_setup()
        acc = np.zeros(dg.num_vertices)
        runs = 60
        est = make_estimator("frontier", dg, DEVICE, seed=10, survival=survival)
        for _ in range(runs):
            acc += est.estimate(plans, batch, num_walks=600).frequencies
        mean = acc / runs
        heavy = exact >= np.percentile(exact[exact > 0], 70)
        rel = np.abs(mean[heavy] - exact[heavy]) / exact[heavy]
        assert float(np.median(rel)) < 0.35

    def test_means_agree_across_estimators(self):
        """Seed-averaged estimates of the two samplers agree on the heavy
        vertices (same sampling probabilities, different RNG consumption)."""
        dg, batch, plans, exact = self._exact_and_setup(seed=5)
        means = {}
        for name in ESTIMATORS:
            acc = np.zeros(dg.num_vertices)
            runs = 50
            for s in range(runs):
                est = make_estimator(
                    name, dg, DEVICE, seed=100 + s, survival=1.0
                )
                acc += est.estimate(plans, batch, num_walks=500).frequencies
            means[name] = acc / runs
        heavy = exact >= np.percentile(exact[exact > 0], 70)
        r, f = means["recursive"][heavy], means["frontier"][heavy]
        rel = np.abs(r - f) / np.maximum(1.0, (r + f) / 2)
        assert float(np.median(rel)) < 0.25
