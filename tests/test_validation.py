"""Tests for the cross-system consistency checker."""

import pytest

from repro.core.validation import ConsistencyError, VerificationReport, verify_stream
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def small_case(seed=1):
    g = erdos_renyi(40, 5.0, num_labels=2, seed=seed)
    return derive_stream(g, update_fraction=0.3, batch_size=12, seed=seed)


def test_all_systems_agree_with_oracle():
    g0, batches = small_case()
    report = verify_stream(
        ["GCSM", "ZC", "UM", "Naive", "CPU"], g0, TRIANGLE, batches[:2],
        against_oracle=True,
    )
    assert report.oracle_checked
    assert len(report.delta_per_batch) == 2
    assert "systems agree" in report.describe()
    assert report.total_delta == sum(report.delta_per_batch)


def test_single_system_cross_check():
    g0, batches = small_case(seed=2)
    report = verify_stream(["ZC"], g0, TRIANGLE, batches[:1])
    assert not report.oracle_checked
    assert report.num_batches == 1


def test_validation_of_inputs():
    g0, batches = small_case(seed=3)
    with pytest.raises(ValueError):
        verify_stream([], g0, TRIANGLE, batches[:1])
    with pytest.raises(ValueError):
        verify_stream(["ZC"], g0, TRIANGLE, [])


def test_detects_injected_disagreement(monkeypatch):
    """Tamper with one system's result; the checker must catch it."""
    from repro.core import baselines

    g0, batches = small_case(seed=4)
    real_make = baselines.make_system

    class Liar:
        def __init__(self, inner):
            self.inner = inner

        def process_batch(self, batch):
            result = self.inner.process_batch(batch)
            result.delta_count += 1  # off-by-one corruption
            return result

        def snapshot(self):
            return self.inner.snapshot()

    def tampered(name, *args, **kwargs):
        system = real_make(name, *args, **kwargs)
        return Liar(system) if name == "ZC" else system

    monkeypatch.setattr("repro.core.validation.make_system", tampered)
    with pytest.raises(ConsistencyError):
        verify_stream(["GCSM", "ZC"], g0, TRIANGLE, batches[:1])
