"""Tests for the cross-system consistency checker and the stream fuzzer."""

import pytest

from repro.core.validation import (
    ConsistencyError,
    _parse_system_spec,
    fuzz_verify,
    generate_adversarial_stream,
    verify_stream,
)
from repro.graphs import DynamicGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import BatchConflictError, CanonicalReport, derive_stream
from repro.query import QueryGraph

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def small_case(seed=1):
    g = erdos_renyi(40, 5.0, num_labels=2, seed=seed)
    return derive_stream(g, update_fraction=0.3, batch_size=12, seed=seed)


def test_all_systems_agree_with_oracle():
    g0, batches = small_case()
    report = verify_stream(
        ["GCSM", "ZC", "UM", "Naive", "CPU"], g0, TRIANGLE, batches[:2],
        against_oracle=True,
    )
    assert report.oracle_checked
    assert len(report.delta_per_batch) == 2
    assert "systems agree" in report.describe()
    assert report.total_delta == sum(report.delta_per_batch)


def test_single_system_cross_check():
    g0, batches = small_case(seed=2)
    report = verify_stream(["ZC"], g0, TRIANGLE, batches[:1])
    assert not report.oracle_checked
    assert report.num_batches == 1


def test_validation_of_inputs():
    g0, batches = small_case(seed=3)
    with pytest.raises(ValueError):
        verify_stream([], g0, TRIANGLE, batches[:1])
    with pytest.raises(ValueError):
        verify_stream(["ZC"], g0, TRIANGLE, [])


def test_detects_injected_disagreement(monkeypatch):
    """Tamper with one system's result; the checker must catch it."""
    from repro.core import baselines

    g0, batches = small_case(seed=4)
    real_make = baselines.make_system

    class Liar:
        def __init__(self, inner):
            self.inner = inner

        def process_batch(self, batch):
            result = self.inner.process_batch(batch)
            result.delta_count += 1  # off-by-one corruption
            return result

        def snapshot(self):
            return self.inner.snapshot()

    def tampered(name, *args, **kwargs):
        system = real_make(name, *args, **kwargs)
        return Liar(system) if name == "ZC" else system

    monkeypatch.setattr("repro.core.validation.make_system", tampered)
    with pytest.raises(ConsistencyError):
        verify_stream(["GCSM", "ZC"], g0, TRIANGLE, batches[:1])


class TestSystemSpecs:
    def test_parse_device_suffix(self):
        assert _parse_system_spec("GCSM") == ("GCSM", {})
        assert _parse_system_spec("GCSM@2") == ("GCSM", {"devices": 2})
        assert _parse_system_spec("CPU") == ("CPU", {})

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            _parse_system_spec("ZC@2")
        with pytest.raises(ValueError):
            _parse_system_spec("GCSM@zero")
        with pytest.raises(ValueError):
            _parse_system_spec("GCSM@0")

    def test_multigpu_spec_participates(self):
        g0, batches = small_case(seed=5)
        report = verify_stream(
            ["GCSM", "GCSM@2"], g0, TRIANGLE, batches[:2],
            check_invariants=True,
        )
        assert report.num_batches == 2


class TestAdversarialStream:
    def test_covers_every_anomaly_class(self):
        g = erdos_renyi(40, 5.0, num_labels=3, seed=0)
        batches = generate_adversarial_stream(
            g, num_batches=8, batch_size=20, seed=0
        )
        assert len(batches) == 8
        agg = CanonicalReport(mode="aggregate")
        dg = DynamicGraph(g)
        for b in batches:
            dg.apply_batch(b, mode="coalesce")
            assert dg.last_canonical_report is not None
            agg.merge(dg.last_canonical_report)
            dg.reorganize()
            dg.check_invariants()
        assert agg.new_inserts > 0
        assert agg.valid_deletes > 0
        assert agg.duplicate_inserts > 0
        assert agg.phantom_deletes > 0
        assert agg.intra_batch_dropped > 0
        assert any(b.new_vertex_labels for b in batches)  # new-vertex bursts
        assert dg.num_vertices > g.num_vertices

    def test_deterministic_given_seed(self):
        g = erdos_renyi(30, 4.0, num_labels=2, seed=1)
        a = generate_adversarial_stream(g, num_batches=3, batch_size=10, seed=3)
        b = generate_adversarial_stream(g, num_batches=3, batch_size=10, seed=3)
        for x, y in zip(a, b):
            assert x.edges.tolist() == y.edges.tolist()
            assert x.signs.tolist() == y.signs.tolist()

    def test_strict_mode_raises_on_adversarial_input(self):
        g = erdos_renyi(30, 4.0, num_labels=2, seed=2)
        batches = generate_adversarial_stream(g, num_batches=4, batch_size=16, seed=2)
        with pytest.raises(BatchConflictError):
            verify_stream(["CPU"], g, TRIANGLE, batches, conflict_mode="strict")


class TestConflictModeCorrectness:
    def test_match_counts_stay_correct_after_dirty_batch(self):
        """The batch *after* an absorbed anomaly must still report the exact
        ΔM — the regression the duplicate-insert corruption used to cause."""
        g = erdos_renyi(35, 6.0, num_labels=1, seed=6)
        edges = g.edge_array()
        dup = edges[0].tolist()
        absent = None
        for u in range(g.num_vertices):
            for v in range(u + 1, g.num_vertices):
                if not g.has_edge(u, v):
                    absent = (u, v)
                    break
            if absent:
                break
        dirty = UpdateBatch([dup, dup, list(absent)], [1, 1, 1])
        clean = UpdateBatch([absent], [-1])
        report = verify_stream(
            ["GCSM", "CPU"], g, TRIANGLE, [dirty, clean],
            against_oracle=True, conflict_mode="coalesce", check_invariants=True,
        )
        assert report.anomalies is not None
        assert report.anomalies.duplicate_inserts >= 1
        # the two batches are exact inverses on the effective stream
        assert report.delta_per_batch[1] == -report.delta_per_batch[0]

    def test_classification_agreement_enforced(self):
        g0, batches = small_case(seed=7)
        report = verify_stream(
            ["GCSM", "ZC", "CPU"], g0, TRIANGLE, batches[:2],
            conflict_mode="coalesce",
        )
        assert report.conflict_mode == "coalesce"
        assert report.anomalies is not None
        assert report.anomalies.input_size == sum(len(b) for b in batches[:2])


class TestFuzzVerify:
    def test_small_fuzz_run(self):
        report = fuzz_verify(2, systems=["GCSM", "CPU"], seed=0)
        assert report.num_cases == 2
        assert len(report.case_seeds) == 2
        assert report.total_batches == 8
        assert report.total_updates > report.total_effective
        assert report.anomalies.anomalies > 0
        assert "agree with the oracle" in report.describe()

    def test_fuzz_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fuzz_verify(0)

    def test_fuzz_failure_names_the_case(self, monkeypatch):
        from repro.core import validation

        def broken(*args, **kwargs):
            raise ConsistencyError("injected")

        monkeypatch.setattr(validation, "verify_stream", broken)
        with pytest.raises(ConsistencyError, match="fuzz case 0 \\(seed="):
            fuzz_verify(1, systems=["CPU"], seed=0)
