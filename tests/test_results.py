"""Tests for experiment records and comparison summaries."""

import pytest

from repro.core.results import (
    ComparisonSummary,
    ExperimentRecord,
    load_records,
    save_records,
    summarize,
)


def rec(system, dataset="FR", query="Q1", total=100.0, **kw):
    defaults = dict(
        system=system, dataset=dataset, query=query, batch_size=256,
        num_batches=1, total_ns=total, match_ns=total * 0.8,
        estimate_ns=total * 0.05, pack_ns=total * 0.05, reorg_ns=total * 0.05,
        update_ns=total * 0.05, cpu_access_bytes=1000, delta_total=5,
        embeddings_total=7,
    )
    defaults.update(kw)
    return ExperimentRecord(**defaults)


class TestRecord:
    def test_dict_roundtrip(self):
        r = rec("GCSM", cache_hit_rate=0.5, coverage_top1=0.9, coverage_top5=0.8)
        assert ExperimentRecord.from_dict(r.to_dict()) == r

    def test_json_roundtrip(self, tmp_path):
        records = [rec("GCSM"), rec("ZC", total=180.0), rec("CPU", query="Q2")]
        path = tmp_path / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded == records

    def test_from_run(self):
        from repro.bench.harness import run_stream
        from repro.query import query_by_name

        run = run_stream("ZC", "AZ", query_by_name("Q1"), batch_size=64, seed=0)
        r = ExperimentRecord.from_run(run)
        assert r.system == "ZC"
        assert r.dataset == "AZ"
        assert r.total_ns == run.breakdown.total_ns
        assert r.cache_hit_rate == run.cache_hit_rate


class TestSummarize:
    def test_speedups(self):
        records = [
            rec("GCSM", query="Q1", total=100.0),
            rec("ZC", query="Q1", total=200.0),
            rec("GCSM", query="Q2", total=50.0),
            rec("ZC", query="Q2", total=400.0),
        ]
        s = summarize(records, "GCSM", "ZC")
        assert s.speedups[("FR", "Q1")] == pytest.approx(2.0)
        assert s.speedups[("FR", "Q2")] == pytest.approx(8.0)
        assert s.min == pytest.approx(2.0)
        assert s.max == pytest.approx(8.0)
        assert s.geomean == pytest.approx(4.0)
        assert s.wins == 2
        assert "GCSM vs ZC" in s.describe()

    def test_missing_baseline_legs_skipped(self):
        records = [
            rec("GCSM", query="Q1", total=100.0),
            rec("ZC", query="Q1", total=150.0),
            rec("GCSM", query="Q9", total=10.0),  # no ZC leg
        ]
        s = summarize(records, "GCSM", "ZC")
        assert list(s.speedups) == [("FR", "Q1")]

    def test_no_overlap_rejected(self):
        with pytest.raises(ValueError):
            summarize([rec("GCSM")], "GCSM", "UM")
