"""Tests for host memory layout, the UM pager, DMA engine, and graph views."""

import numpy as np
import pytest

from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.gpu import (
    AccessCounters,
    Channel,
    DeviceConfig,
    DmaEngine,
    FullDeviceView,
    HostCPUView,
    HostMemoryLayout,
    UnifiedMemoryPager,
    UnifiedMemoryView,
    ZeroCopyView,
    default_device,
)
from repro.query.plan import EdgeVersion


class TestHostMemoryLayout:
    def test_offsets_aligned_and_monotone(self):
        layout = HostMemoryLayout(np.array([3, 0, 100, 1]), alignment=64)
        assert layout.offsets[0] == 0
        assert bool(np.all(np.diff(layout.offsets) >= 0))
        for off in layout.offsets:
            assert off % 64 == 0
        assert layout.total_bytes == 64 + 0 + 448 + 64

    def test_pages_for(self):
        layout = HostMemoryLayout(np.array([2000, 2000]), alignment=64)
        pages = layout.pages_for(0, 2000 * 4, page_bytes=4096)
        assert list(pages) == [0, 1]
        assert list(layout.pages_for(0, 0, 4096)) == []
        # second vertex starts at byte 8000 -> page 1
        assert list(layout.pages_for(1, 4, 4096)) == [1]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            HostMemoryLayout(np.array([-1]))


class TestUnifiedMemoryPager:
    def make(self, pages):
        return UnifiedMemoryPager(
            DeviceConfig(global_memory_bytes=4096 * pages, um_cache_fraction=1.0)
        )

    def test_cold_faults_then_hits(self):
        p = self.make(4)
        hits, faults = p.access(range(0, 2))
        assert (hits, faults) == (0, 2)
        hits, faults = p.access(range(0, 2))
        assert (hits, faults) == (2, 0)

    def test_lru_eviction(self):
        p = self.make(2)
        p.access(range(0, 2))  # pages 0,1 resident
        p.access(range(0, 1))  # refresh page 0 -> LRU order: 1, 0
        p.access(range(5, 6))  # evicts page 1
        hits, faults = p.access(range(1, 2))
        assert faults == 1  # page 1 was evicted
        assert p.total_evictions == 2

    def test_reset(self):
        p = self.make(2)
        p.access(range(0, 2))
        p.reset()
        assert p.resident_pages == 0
        assert p.total_faults == 0


class TestDmaEngine:
    def test_transfer_records_and_prices(self):
        d = default_device()
        c = AccessCounters()
        eng = DmaEngine(d, c)
        t = eng.transfer(10_000)
        assert c.dma_bytes == 10_000 and c.dma_requests == 1
        assert t == pytest.approx(d.dma_time_ns(10_000, 1))

    def test_transfer_many_pays_setup_per_request(self):
        d = default_device()
        c = AccessCounters()
        eng = DmaEngine(d, c)
        many = eng.transfer_many([1000] * 10)
        c2 = AccessCounters()
        single = DmaEngine(d, c2).transfer(10_000)
        assert many > single  # 10 setups vs 1
        assert c.dma_requests == 10


def _store_with_batch():
    g = StaticGraph.from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
    dg = DynamicGraph(g)
    dg.apply_batch(UpdateBatch([(0, 3), (1, 2)], [1, -1]))
    return dg


class TestViews:
    def test_version_semantics_shared_by_all_views(self):
        dg = _store_with_batch()
        d = default_device()
        for cls in (HostCPUView, ZeroCopyView, UnifiedMemoryView):
            view = cls(dg, d, AccessCounters())
            (old,) = view.fetch(1, EdgeVersion.OLD)
            assert old.tolist() == [0, 2]  # deletion still visible in N
            runs = view.fetch(1, EdgeVersion.NEW)
            merged = sorted(np.concatenate(runs).tolist())
            assert merged == [0]  # (1,2) deleted
            runs0 = view.fetch(0, EdgeVersion.NEW)
            assert sorted(np.concatenate(runs0).tolist()) == [1, 2, 3]

    def test_host_cpu_channel(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = HostCPUView(dg, default_device(), c)
        view.fetch(0, EdgeVersion.OLD)
        assert c.bytes_by_channel[Channel.CPU_DRAM] == 2 * 4
        assert c.bytes_by_channel[Channel.ZERO_COPY] == 0

    def test_zero_copy_channel_lines(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = ZeroCopyView(dg, default_device(), c)
        view.fetch(0, EdgeVersion.NEW)  # 3 neighbors = 12 bytes -> 1 line
        assert c.transactions_by_channel[Channel.ZERO_COPY] == 1
        assert c.bytes_by_channel[Channel.ZERO_COPY] == 12

    def test_um_view_faults_then_hits(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = UnifiedMemoryView(dg, default_device(), c)
        view.fetch(0, EdgeVersion.NEW)
        first_faults = c.um_faults
        assert first_faults >= 1
        view.fetch(0, EdgeVersion.NEW)
        assert c.um_faults == first_faults  # now resident
        assert c.um_hits >= 1

    def test_full_device_view_resident_vs_fallthrough(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = FullDeviceView(dg, default_device(), c, resident={0, 1, 2, 3})
        view.fetch(0, EdgeVersion.NEW)
        assert c.bytes_by_channel[Channel.GPU_GLOBAL] > 0
        assert c.bytes_by_channel[Channel.ZERO_COPY] == 0
        view.fetch(4, EdgeVersion.NEW)
        assert view.fallthrough_accesses == 1
        assert c.bytes_by_channel[Channel.ZERO_COPY] > 0

    def test_degree_bound_free(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = ZeroCopyView(dg, default_device(), c)
        assert view.degree_bound(0, EdgeVersion.OLD) == 2
        assert view.degree_bound(0, EdgeVersion.NEW) == 3
        assert c.total_access_count == 0  # length lookups are free

    def test_vertex_histogram_counts_fetches(self):
        dg = _store_with_batch()
        c = AccessCounters()
        view = ZeroCopyView(dg, default_device(), c)
        for _ in range(5):
            view.fetch(2, EdgeVersion.OLD)
        assert c.vertex_access_counts(5)[2] == 5
