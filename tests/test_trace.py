"""Tests for access-trace capture and what-if replay."""

import numpy as np
import pytest

from repro.core.matching import match_batch
from repro.gpu import AccessCounters, Channel, ZeroCopyView, UnifiedMemoryView, default_device
from repro.gpu.trace import (
    AccessTrace,
    TracingView,
    replay_cached,
    replay_unified_memory,
    replay_zero_copy,
)
from repro.graphs import DynamicGraph
from repro.graphs.generators import powerlaw_graph
from repro.graphs.stream import derive_stream
from repro.query import QueryGraph, compile_delta_plans

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


@pytest.fixture(scope="module")
def traced_run():
    g = powerlaw_graph(1_500, 8.0, max_degree=100, num_labels=1, seed=4)
    g0, batches = derive_stream(g, num_updates=64, batch_size=64, seed=4)
    dg = DynamicGraph(g0)
    dg.apply_batch(batches[0])
    device = default_device()
    live = AccessCounters()
    view = TracingView(ZeroCopyView(dg, device, live))
    stats = match_batch(compile_delta_plans(TRIANGLE), batches[0], view)
    return view.trace(), live, device, stats


class TestCapture:
    def test_trace_nonempty_and_consistent(self, traced_run):
        trace, live, device, stats = traced_run
        assert len(trace) > 0
        assert trace.total_bytes == live.bytes_by_channel[Channel.ZERO_COPY]
        assert len(trace) == live.total_access_count

    def test_access_counts_match_live_histogram(self, traced_run):
        trace, live, device, _ = traced_run
        n = trace.list_lengths.shape[0]
        assert np.array_equal(trace.access_counts(), live.vertex_access_counts(n))

    def test_top_vertices(self, traced_run):
        trace, _, _, _ = traced_run
        top = trace.top_vertices(10)
        counts = trace.access_counts()
        assert top.size <= 10
        # every top vertex is accessed at least as often as any non-top one
        if top.size:
            floor = counts[top].min()
            others = np.setdiff1d(trace.distinct_vertices(), top)
            if others.size:
                assert counts[others].max() <= floor
        assert trace.top_vertices(0).size == 0


class TestReplay:
    def test_zero_copy_replay_reproduces_live_counters(self, traced_run):
        trace, live, device, _ = traced_run
        replayed = replay_zero_copy(trace, device)
        assert replayed.bytes_by_channel[Channel.ZERO_COPY] == \
            live.bytes_by_channel[Channel.ZERO_COPY]
        assert replayed.transactions_by_channel[Channel.ZERO_COPY] == \
            live.transactions_by_channel[Channel.ZERO_COPY]

    def test_cached_replay_splits_channels(self, traced_run):
        trace, live, device, _ = traced_run
        everything = set(trace.distinct_vertices().tolist())
        all_cached = replay_cached(trace, device, everything)
        assert all_cached.bytes_by_channel[Channel.ZERO_COPY] == 0
        assert all_cached.bytes_by_channel[Channel.GPU_GLOBAL] == trace.total_bytes
        nothing = replay_cached(trace, device, set())
        assert nothing.bytes_by_channel[Channel.GPU_GLOBAL] == 0
        assert nothing.bytes_by_channel[Channel.ZERO_COPY] == trace.total_bytes

    def test_oracle_cache_monotone_in_size(self, traced_run):
        trace, _, device, _ = traced_run
        prev = None
        for k in (0, 5, 20, 100):
            counters = replay_cached(trace, device, trace.top_vertices(k))
            traffic = counters.bytes_by_channel[Channel.ZERO_COPY]
            if prev is not None:
                assert traffic <= prev
            prev = traffic

    def test_um_replay_matches_live_um_view(self):
        """Replaying a trace through the UM pricer must equal a live UM run
        of the same workload (same pager, same layout)."""
        g = powerlaw_graph(1_000, 6.0, max_degree=60, num_labels=1, seed=5)
        g0, batches = derive_stream(g, num_updates=32, batch_size=32, seed=5)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        device = default_device()
        plans = compile_delta_plans(TRIANGLE)

        live = AccessCounters()
        match_batch(plans, batches[0], UnifiedMemoryView(dg, device, live))

        traced = AccessCounters()
        view = TracingView(ZeroCopyView(dg, device, traced))
        match_batch(plans, batches[0], view)
        replayed = replay_unified_memory(view.trace(), device)

        assert replayed.um_faults == live.um_faults
        assert replayed.um_hits == live.um_hits
