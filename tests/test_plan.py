"""Tests for WCOJ plan compilation (paper Fig. 2 structure)."""

import pytest

from repro.query import (
    QUERIES,
    EdgeVersion,
    QueryGraph,
    compile_delta_plans,
    compile_static_plan,
)
from repro.query.plan import greedy_matching_order


def square_with_diag():
    # the paper's Fig. 1 query: 4 vertices, 5 edges
    return QueryGraph(
        4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)], name="fig1-query"
    )


class TestMatchingOrder:
    def test_starts_with_root(self):
        q = square_with_diag()
        order = greedy_matching_order(q, 1, 2)
        assert order[:2] == (1, 2)
        assert sorted(order) == [0, 1, 2, 3]

    def test_every_vertex_connected_to_prefix(self):
        for q in QUERIES.values():
            for u, v in q.edges:
                order = greedy_matching_order(q, u, v)
                for p in range(2, len(order)):
                    assert q.neighbors(order[p]) & set(order[:p])

    def test_rejects_non_edge_root(self):
        q = square_with_diag()
        with pytest.raises(ValueError):
            greedy_matching_order(q, 0, 3)


class TestStaticPlan:
    def test_structure(self):
        q = square_with_diag()
        plan = compile_static_plan(q)
        assert not plan.is_delta
        assert plan.depth == 4
        assert len(plan.levels) == 2
        # all constraints read the single snapshot
        for lvl in plan.levels:
            for c in lvl.constraints:
                assert c.version is EdgeVersion.CURRENT

    def test_every_query_edge_covered_exactly_once(self):
        for q in list(QUERIES.values()) + [square_with_diag()]:
            plan = compile_static_plan(q)
            covered = [c.edge_index for lvl in plan.levels for c in lvl.constraints]
            covered.append(plan.root_edge_index)
            assert sorted(covered) == list(range(q.num_edges))

    def test_explicit_root(self):
        q = square_with_diag()
        plan = compile_static_plan(q, root_edge=(1, 3))
        assert plan.order[:2] == (1, 3)
        assert plan.root_edge_index == q.edge_index(1, 3)

    def test_describe_mentions_all_levels(self):
        q = QUERIES["Q6"]
        text = compile_static_plan(q).describe()
        # one loop line per level beyond the root edge, plus the root line
        assert text.count("for x") == q.num_vertices - 2
        assert "ΔE" not in text


class TestDeltaPlans:
    def test_one_plan_per_edge(self):
        q = square_with_diag()
        plans = compile_delta_plans(q)
        assert len(plans) == q.num_edges
        for i, plan in enumerate(plans):
            assert plan.is_delta
            assert plan.delta_index == i
            assert plan.root_edge == q.edges[i]
            assert plan.root_edge_index == i

    def test_old_new_versioning_matches_ivm_decomposition(self):
        """Constraint on edge j must read OLD iff j < i (paper Eq. 1)."""
        for q in list(QUERIES.values()) + [square_with_diag()]:
            for i, plan in enumerate(compile_delta_plans(q)):
                for lvl in plan.levels:
                    for c in lvl.constraints:
                        assert c.edge_index != i
                        expected = EdgeVersion.OLD if c.edge_index < i else EdgeVersion.NEW
                        assert c.version is expected, (q.name, i, c)

    def test_every_edge_covered_in_every_delta_plan(self):
        q = QUERIES["Q4"]
        for plan in compile_delta_plans(q):
            covered = [c.edge_index for lvl in plan.levels for c in lvl.constraints]
            covered.append(plan.root_edge_index)
            assert sorted(covered) == list(range(q.num_edges))

    def test_first_plan_all_new_last_plan_all_old(self):
        """ΔM_1 joins only updated relations; ΔM_m only original ones."""
        q = square_with_diag()
        plans = compile_delta_plans(q)
        first_versions = {c.version for lvl in plans[0].levels for c in lvl.constraints}
        last_versions = {c.version for lvl in plans[-1].levels for c in lvl.constraints}
        assert first_versions == {EdgeVersion.NEW}
        assert last_versions == {EdgeVersion.OLD}

    def test_levels_have_labels_from_query(self):
        q = QUERIES["Q1"]
        for plan in compile_delta_plans(q):
            for lvl in plan.levels:
                assert lvl.label == q.label(lvl.query_vertex)

    def test_single_edge_query(self):
        q = QueryGraph(2, [(0, 1)], [3, 4])
        plans = compile_delta_plans(q)
        assert len(plans) == 1
        assert plans[0].levels == ()
        assert plans[0].root_labels() == (3, 4)


class TestExecutionSignatures:
    """Prefix-alignable structural identities driving the execution trie."""

    def test_signature_ignores_provenance(self):
        from repro.query.plan import level_signature

        q = QUERIES["Q1"]
        for plan in compile_delta_plans(q):
            for lvl in plan.levels:
                sig = level_signature(lvl)
                assert sig[0] == lvl.label
                # positions/versions present, edge_index/query_vertex absent
                assert sig[1] == tuple(
                    (c.position, c.version.value) for c in lvl.constraints
                )

    def test_isomorphic_copies_share_full_signatures(self):
        from repro.query.plan import plan_signature

        q = square_with_diag()
        clone = QueryGraph(
            q.num_vertices, list(q.edges), list(q.labels), name="clone"
        )
        a = [plan_signature(p) for p in compile_delta_plans(q)]
        b = [plan_signature(p) for p in compile_delta_plans(clone)]
        assert a == b

    def test_root_signature_is_the_label_pair(self):
        from repro.query.plan import root_signature

        for plan in compile_delta_plans(QUERIES["Q3"]):
            assert root_signature(plan) == plan.root_labels()
