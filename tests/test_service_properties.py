"""Property tests: the pipelined engine is bit-identical to the serial one.

The contract (docs/service.md): for any stream, executor pair, estimator
pair, and conflict mode, :class:`~repro.service.pipeline.PipelinedEngine`
produces the same per-batch ΔM, match stats, counters, cache decisions, and
final store as :class:`~repro.core.engine.GCSMEngine` — overlap only changes
*when* work runs, never *what* it computes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import GCSMEngine
from repro.core.matching import EXECUTORS
from repro.core.frequency import ESTIMATORS
from repro.core.validation import (
    DEFAULT_FUZZ_SYSTEMS,
    fuzz_verify,
    generate_adversarial_stream,
    verify_stream,
)
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import CONFLICT_MODES
from repro.query import QUERIES, QueryGraph
from repro.service import PipelinedEngine

TRIANGLE = QueryGraph(3, [(0, 1), (1, 2), (0, 2)], name="triangle")


def _final_state(engine):
    snap = engine.snapshot()
    return snap.labels.tolist(), sorted(map(tuple, snap.edge_array()))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    executor=st.sampled_from(EXECUTORS),
    estimator=st.sampled_from(ESTIMATORS),
    conflict_mode=st.sampled_from([m for m in CONFLICT_MODES if m != "strict"]),
    threaded=st.booleans(),
)
def test_pipelined_engine_bit_parity(seed, executor, estimator, conflict_mode,
                                     threaded):
    rng = np.random.default_rng(seed)
    g = erdos_renyi(30, 5.0, num_labels=2, seed=rng)
    batches = generate_adversarial_stream(
        g, num_batches=3, batch_size=10, seed=seed + 1
    )
    kwargs = dict(
        executor=executor, estimator=estimator,
        conflict_mode=conflict_mode, seed=seed,
    )
    serial = GCSMEngine(g, TRIANGLE, **kwargs)
    piped = PipelinedEngine(g, TRIANGLE, threaded=threaded, **kwargs)
    ser = [serial.process_batch(b) for b in batches]
    pip = piped.process_stream(batches)
    for a, b in zip(ser, pip):
        assert a.delta_count == b.delta_count
        assert a.match_stats == b.match_stats
        assert a.match_counters.summary() == b.match_counters.summary()
        assert np.array_equal(a.cached_vertices, b.cached_vertices)
        assert (a.cache_hits, a.cache_misses, a.cache_bytes) == \
            (b.cache_hits, b.cache_misses, b.cache_bytes)
        # same simulated stage costs; the pipeline only re-times them
        assert a.breakdown.total_ns == b.breakdown.total_ns
    assert _final_state(serial) == _final_state(piped)
    piped.graph.check_invariants()
    assert piped.graph._active_freezes == 0  # no leaked COW epochs


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_strict_mode_raises_identically(seed):
    # strict mode rejects adversarial batches: both engines must raise the
    # same way at the same batch, leaving their stores in step
    from repro.graphs.stream import BatchConflictError

    rng = np.random.default_rng(seed)
    g = erdos_renyi(24, 5.0, num_labels=2, seed=rng)
    batches = generate_adversarial_stream(
        g, num_batches=2, batch_size=8, seed=seed + 1
    )
    serial = GCSMEngine(g, TRIANGLE, conflict_mode="strict", seed=seed)
    piped = PipelinedEngine(g, TRIANGLE, conflict_mode="strict", seed=seed)
    for batch in batches:
        a_exc = b_exc = None
        try:
            a = serial.process_batch(batch)
        except BatchConflictError as exc:
            a_exc = str(exc)
        try:
            b = piped.process_batch(batch)
        except BatchConflictError as exc:
            b_exc = str(exc)
        assert (a_exc is None) == (b_exc is None)
        if a_exc is not None:
            assert a_exc == b_exc
            break  # stores diverge from a half-applied batch; stop here
        assert a.delta_count == b.delta_count


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_verify_stream_accepts_pipelined_system(seed):
    rng = np.random.default_rng(seed)
    g = erdos_renyi(24, 4.0, num_labels=2, seed=rng)
    batches = generate_adversarial_stream(
        g, num_batches=3, batch_size=8, seed=seed + 1
    )
    query = [QUERIES["Q1"], QUERIES["Q2"]][seed % 2]
    report = verify_stream(
        ["GCSM", "Pipelined"], g, query, batches,
        against_oracle=True, check_invariants=True,
        conflict_mode="coalesce", seed=seed,
    )
    assert len(report.delta_per_batch) == 3  # raises on any disagreement


def test_pipelined_in_default_fuzz_systems():
    assert "Pipelined" in DEFAULT_FUZZ_SYSTEMS


def test_fuzz_smoke_with_pipelined():
    report = fuzz_verify(
        2, systems=["GCSM", "Pipelined", "CPU"], seed=42,
        num_batches=3, batch_size=10,
    )
    assert report.num_cases == 2  # raises on any disagreement
    assert len(report.case_seeds) == 2
    assert report.total_batches == 6
