"""Unit + property tests for the dynamic CPU-side store (paper Sec. V-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import DynamicGraph, StaticGraph, UpdateBatch
from repro.graphs.generators import erdos_renyi
from repro.graphs.stream import derive_stream


def base_graph():
    # path 0-1-2-3 plus chord 0-2
    return StaticGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)], np.array([0, 1, 0, 1]))


class TestInsertions:
    def test_insert_appends_to_delta(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 3)], [1]))
        assert dg.delta_neighbors(0).tolist() == [3]
        assert dg.delta_neighbors(3).tolist() == [0]
        assert dg.neighbors_old(0).tolist() == [1, 2]
        base, delta = dg.neighbors_new_parts(0)
        assert base.tolist() == [1, 2] and delta.tolist() == [3]
        assert dg.neighbors_new(0).tolist() == [1, 2, 3]

    def test_delta_run_sorted(self):
        dg = DynamicGraph(StaticGraph.empty(6))
        dg.apply_batch(UpdateBatch([(0, 5), (0, 2), (0, 4)], [1, 1, 1]))
        assert dg.delta_neighbors(0).tolist() == [2, 4, 5]

    def test_edge_count_updated(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 3), (1, 3)], [1, 1]))
        assert dg.num_edges == 6

    def test_new_vertices_grow_store(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(2, 6)], [1], new_vertex_labels={6: 7, 5: 3}))
        assert dg.num_vertices == 7
        assert dg.label(6) == 7
        assert dg.label(5) == 3
        assert dg.label(4) == 0  # implicit new vertex gets default label
        assert dg.neighbors_new(6).tolist() == [2]
        assert dg.host_address.shape[0] == 7
        assert dg.device_address.shape[0] == 7

    def test_amortized_doubling(self):
        dg = DynamicGraph(StaticGraph.empty(2))
        n = 64
        for i in range(n):
            dg.apply_batch(UpdateBatch([(0, i + 2)], [1], new_vertex_labels={}))
            dg.reorganize()
        # O(log n) reallocations for vertex 0, not O(n)
        assert dg.realloc_count <= 4 * int(np.log2(n) + 2)


class TestDeletions:
    def test_delete_marks_negative_in_base(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2)], [-1]))
        # N still sees the deleted edge; N' does not
        assert dg.neighbors_old(0).tolist() == [1, 2]
        base, delta = dg.neighbors_new_parts(0)
        assert base.tolist() == [1] and delta.size == 0
        assert not dg.has_edge_new(0, 2)
        assert dg.has_edge_new(0, 1)

    def test_delete_vertex_zero_neighbor(self):
        # the -(v+1) encoding must represent deletion of neighbor 0
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 1)], [-1]))
        assert dg.neighbors_old(1).tolist() == [0, 2]
        base, _ = dg.neighbors_new_parts(1)
        assert base.tolist() == [2]

    def test_delete_missing_edge_rejected(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.apply_batch(UpdateBatch([(1, 3)], [-1]))

    def test_degrees_old_new(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2), (0, 3)], [-1, 1]))
        assert dg.degree_old(0) == 2
        assert dg.degree_new(0) == 2  # -1 +1
        assert dg.degree_old(3) == 1
        assert dg.degree_new(3) == 2


class TestReorganize:
    def test_reorganize_restores_sorted_invariant(self):
        dg = DynamicGraph(base_graph())
        dg.apply_batch(UpdateBatch([(0, 2), (0, 3)], [-1, 1]))
        snap = dg.snapshot()
        stats = dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == snap
        assert stats.lists_touched == 3  # vertices 0, 2, 3 (vertex 0 touched twice)
        assert stats.deletions_dropped == 2  # both directions of (0,2)
        assert stats.insertions_merged == 2

    def test_batch_lifecycle_enforced(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.reorganize()
        dg.apply_batch(UpdateBatch([(0, 3)], [1]))
        with pytest.raises(ValueError):
            dg.apply_batch(UpdateBatch([(1, 3)], [1]))
        dg.reorganize()
        dg.apply_batch(UpdateBatch([(1, 3)], [1]))
        dg.reorganize()
        assert dg.num_edges == 6

    def test_snapshot_old_requires_open_batch(self):
        dg = DynamicGraph(base_graph())
        with pytest.raises(ValueError):
            dg.snapshot_old()


class TestSnapshots:
    def test_snapshot_old_equals_initial(self):
        g = erdos_renyi(60, 4.0, seed=7)
        g0, batches = derive_stream(g, update_fraction=0.3, batch_size=16, seed=7)
        dg = DynamicGraph(g0)
        dg.apply_batch(batches[0])
        assert dg.snapshot_old() == g0

    def test_replay_stream_matches_incremental_application(self):
        g = erdos_renyi(60, 4.0, seed=11)
        g0, batches = derive_stream(g, update_fraction=0.4, batch_size=8, seed=11)
        dg = DynamicGraph(g0)
        expected = g0
        for batch in batches:
            expected = expected.with_edges(batch.insert_edges()).without_edges(batch.delete_edges())
            dg.apply_batch(batch)
            assert dg.snapshot() == expected
            dg.reorganize()
            dg.check_invariants()
            assert dg.snapshot() == expected
            assert dg.num_edges == expected.num_edges


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_random_batches_roundtrip(seed):
    """For random graphs and random signed batches, snapshot(old/new) always
    matches independent edge-set arithmetic and reorganize() is a no-op on
    the logical graph."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 25))
    g = erdos_renyi(n, 3.0, seed=int(rng.integers(0, 2**31)))
    dg = DynamicGraph(g)
    current = g
    for _ in range(3):
        edges = current.edge_array()
        dels = []
        if edges.shape[0]:
            k = int(rng.integers(0, min(4, edges.shape[0]) + 1))
            if k:
                dels = edges[rng.choice(edges.shape[0], size=k, replace=False)].tolist()
        ins = []
        for _ in range(int(rng.integers(0, 4))):
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u != v and not current.has_edge(u, v):
                if (min(u, v), max(u, v)) not in {tuple(sorted(e)) for e in ins}:
                    ins.append((u, v))
        updates = [(e, -1) for e in dels] + [(e, 1) for e in ins]
        if not updates:
            continue
        batch = UpdateBatch([e for e, _ in updates], [s for _, s in updates])
        dg.apply_batch(batch)
        assert dg.snapshot_old() == current
        current = current.without_edges(np.array(dels).reshape(-1, 2)).with_edges(
            np.array(ins).reshape(-1, 2)
        )
        assert dg.snapshot() == current
        dg.reorganize()
        dg.check_invariants()
        assert dg.snapshot() == current
